//! Single source of truth for the detectability thresholds.
//!
//! Table 1 of the paper enumerates the *statically knowable* tells of an
//! automated interaction; the level-1 detector ([`crate::interaction`])
//! and the `hlisa-lint` action-chain linter both judge against the same
//! limits. Keeping the numbers here — exported, documented, and imported
//! by both sides — means the linter and the detector cannot drift apart:
//! a chain that lints clean is exactly a chain the level-1 detector has
//! no threshold left to fire on.
//!
//! Two groups live here:
//!
//! * **Detector thresholds** — consumed by
//!   [`crate::interaction::InteractionDetector`]'s level-1 checks.
//! * **Linter refinements** — extra limits the *static* linter needs
//!   (windows, floors) that the trace-side detector derives implicitly
//!   from recorded timestamps. They are tied to
//!   `HumanParams::paper_baseline()` so that planner output always
//!   clears them; `tests` below pin that coupling.

/// Chord/path ratio above which a movement segment counts as perfectly
/// straight (§4.1: Selenium moves "in a straight line", Fig. 1 A).
/// Human and HLISA min-jerk paths curve enough to stay well below.
pub const STRAIGHTNESS_TELL: f64 = 0.9995;

/// Coefficient of variation of within-segment speed below which motion
/// counts as uniform-speed (§4.1: Selenium moves "with uniform speed").
pub const UNIFORM_SPEED_CV: f64 = 0.05;

/// Peak cursor speed (px/ms) beyond human motor limits. A zero-duration
/// WebDriver move teleports the cursor, i.e. infinite speed.
pub const MAX_HUMAN_SPEED_PX_PER_MS: f64 = 10.0;

/// Button dwell (ms) below which a click counts as a zero-dwell press —
/// "the press and release … happen in the same millisecond" (Table 1).
pub const MIN_HUMAN_CLICK_DWELL_MS: f64 = 5.0;

/// Key dwell (ms) below which a keystroke counts as zero-dwell.
pub const MIN_HUMAN_KEY_DWELL_MS: f64 = 3.0;

/// Normalised radial offset from the element centre below which a click
/// counts as dead-centre (Fig. 2 top left: Selenium clicks "in the exact
/// middle of the element").
pub const DEAD_CENTRE_OFFSET_FRAC: f64 = 0.004;

/// Typing speed (characters per minute) beyond human limits. Selenium
/// types at ~13,333 cpm; fast humans reach several hundred (§4.1).
pub const MAX_HUMAN_TYPING_CPM: f64 = 1_500.0;

/// Single scroll-event position delta (px) that, with total wheel
/// silence, marks a script scroll (§4.1: "scrolling … of an arbitrary
/// amount at once, without the corresponding wheel events").
pub const SCRIPT_SCROLL_JUMP_PX: f64 = 400.0;

/// Scroll-event gap (ms) below which two ticks belong to one flick;
/// larger gaps are finger-repositioning breaks.
pub const INTRA_FLICK_GAP_MS: f64 = 250.0;

/// Cursor-trace pause (ms) that splits the trace into movement segments.
pub const SEGMENT_SPLIT_PAUSE_MS: f64 = 150.0;

/// Minimum segment path length (px) worth judging for straightness and
/// speed uniformity.
pub const MIN_SEGMENT_PATH_PX: f64 = 40.0;

// --- Linter refinements -------------------------------------------------

/// Shortest finger-repositioning break (ms) a human scroller exhibits.
/// Equals the truncation floor of `scroll_finger_break` in
/// `HumanParams::paper_baseline()`, so planner breaks are always ≥ this
/// value and a *strictly* shorter gap never misclassifies one.
pub const FINGER_BREAK_FLOOR_MS: f64 = 150.0;

/// Longest run of wheel ticks a human produces without a single
/// finger-repositioning break. Paper-baseline flicks run 3–7 ticks, so a
/// break-free run this long can only come from a tick loop.
pub const MAX_FLICK_RUN_TICKS: usize = 30;

/// Coefficient of variation of inter-keydown intervals below which a
/// typing burst counts as metronomic. Humans drift (CV ≈ 0.4 under the
/// paper-baseline dwell/flight model); fixed-delay loops with narrow
/// uniform jitter sit near 0.08.
pub const METRONOME_CV: f64 = 0.12;

/// Longest gap (ms) since the previous pointer release inside which a
/// press-without-approach is still a legitimate double/triple click.
/// Paper-baseline double-click gaps truncate at 450 ms, well inside.
pub const REPRESS_WINDOW_MS: f64 = 700.0;

/// Keydown gap (ms) that ends a typing burst for cadence analysis.
pub const CADENCE_WINDOW_RESET_MS: f64 = 5_000.0;

/// Minimum keydowns in a burst before cadence rules judge it.
pub const MIN_CADENCE_KEYS: usize = 10;

/// Minimum pointer moves in a gesture before the uniform-speed rule
/// judges it (very short gestures have too few samples for a stable CV).
pub const MIN_GESTURE_MOVES: usize = 4;

/// Chord/path shortfall below which a *waypoint* gesture counts as
/// exactly collinear. The static linter sees coarse (≥ 50 ms) waypoints,
/// not the dense cursor trace the detector judges with
/// [`STRAIGHTNESS_TELL`]: subsampled human curves can reach chord/path
/// ≈ 1 − 2×10⁻⁵, while programmatic straight lines are collinear to
/// floating-point precision (shortfall ≲ 10⁻¹²). Requiring the
/// shortfall to be under this epsilon separates the two by orders of
/// magnitude in both directions.
pub const WAYPOINT_COLLINEARITY_EPS: f64 = 1e-9;

#[cfg(test)]
mod tests {
    use super::*;
    use hlisa_human::HumanParams;

    #[test]
    fn finger_break_floor_matches_paper_baseline() {
        // The linter's "no-finger-breaks" rule treats any gap strictly
        // below the floor as intra-flick; the planner must never emit a
        // break below it.
        let p = HumanParams::paper_baseline();
        assert_eq!(p.scroll_finger_break.lo(), FINGER_BREAK_FLOOR_MS);
    }

    #[test]
    fn repress_window_covers_paper_baseline_double_clicks() {
        let p = HumanParams::paper_baseline();
        assert!(p.double_click_gap.hi() < REPRESS_WINDOW_MS);
    }

    #[test]
    fn dwell_floors_clear_the_zero_dwell_thresholds() {
        // Planner dwell distributions truncate above the artificial-
        // behaviour limits, so planned chains can never trip them.
        let p = HumanParams::paper_baseline();
        assert!(p.click_dwell.lo() > MIN_HUMAN_CLICK_DWELL_MS);
        assert!(p.key_dwell.lo() > MIN_HUMAN_KEY_DWELL_MS);
    }
}
