//! The interaction-detector ladder of Fig. 3.
//!
//! Detector escalation levels, applied cumulatively (a level-k detector
//! also runs every check below k, the way deployed detectors evolve):
//!
//! 1. **Detect artificial behaviour** — behaviour outside human limits:
//!    perfectly straight uniform-speed cursor paths, zero-dwell clicks,
//!    dead-centre click placement, >1,500 cpm typing, capitals without
//!    Shift, single-event long-distance scrolls.
//! 2. **Detect deviations from human behaviour** — two-sample KS tests of
//!    observed timing/placement distributions against a human reference
//!    corpus ([`crate::HumanReference`]).
//! 3. **Track consistency of behaviour** — serial structure that i.i.d.
//!    sampling lacks: the lag-1 autocorrelation of key dwell times.
//! 4. **Recognise a specific user profile** — feature-vector comparison
//!    against an enrolled individual (requires an enrolment period; the
//!    paper notes this level may conflict with the GDPR).

use crate::reference::HumanReference;
use crate::thresholds::{
    DEAD_CENTRE_OFFSET_FRAC, INTRA_FLICK_GAP_MS, MAX_HUMAN_SPEED_PX_PER_MS, MAX_HUMAN_TYPING_CPM,
    MIN_HUMAN_CLICK_DWELL_MS, MIN_HUMAN_KEY_DWELL_MS, MIN_SEGMENT_PATH_PX, SCRIPT_SCROLL_JUMP_PX,
    SEGMENT_SPLIT_PAUSE_MS, STRAIGHTNESS_TELL, UNIFORM_SPEED_CV,
};
use hlisa_browser::dom::Document;
use hlisa_browser::recorder::EventRecorder;
use hlisa_browser::{EventKind, EventPayload};
use hlisa_stats::descriptive::{coefficient_of_variation, mean, pearson, Summary};
use hlisa_stats::ks::ks_two_sample;

/// Detector escalation level (cumulative).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DetectorLevel {
    /// Detect artificial behaviour.
    L1Artificial,
    /// Detect deviations from human distributions.
    L2Deviation,
    /// Track behavioural consistency.
    L3Consistency,
    /// Recognise a specific user profile.
    L4Profile,
}

impl DetectorLevel {
    /// All levels in escalation order.
    pub const ALL: [DetectorLevel; 4] = [
        DetectorLevel::L1Artificial,
        DetectorLevel::L2Deviation,
        DetectorLevel::L3Consistency,
        DetectorLevel::L4Profile,
    ];

    /// Fig. 3 label.
    pub fn label(&self) -> &'static str {
        match self {
            DetectorLevel::L1Artificial => "Detect artificial behaviour",
            DetectorLevel::L2Deviation => "Detect deviations from human behaviour",
            DetectorLevel::L3Consistency => "Tracking consistency of behaviour",
            DetectorLevel::L4Profile => "Recognise specific user profile",
        }
    }

    /// Whether the paper flags this level as potentially conflicting with
    /// privacy regulation (the top two levels "focus detection to such an
    /// extent, that individual users could be distinguished").
    pub fn gdpr_sensitive(&self) -> bool {
        matches!(
            self,
            DetectorLevel::L3Consistency | DetectorLevel::L4Profile
        )
    }
}

/// One fired detection signal.
#[derive(Debug, Clone, PartialEq)]
pub struct Signal {
    /// Level whose check fired.
    pub level: DetectorLevel,
    /// Short name of the check.
    pub name: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

/// Verdict of a detector run.
#[derive(Debug, Clone, PartialEq)]
pub struct InteractionVerdict {
    /// True when the session is judged automated.
    pub is_bot: bool,
    /// Signals that fired.
    pub signals: Vec<Signal>,
}

/// An enrolled per-user behavioural profile (level 4).
#[derive(Debug, Clone, PartialEq)]
pub struct UserProfile {
    /// Mean key dwell (ms).
    pub mean_key_dwell_ms: f64,
    /// Std dev of key dwell (ms).
    pub sd_key_dwell_ms: f64,
    /// Mean click dwell (ms).
    pub mean_click_dwell_ms: f64,
    /// Std dev of click dwell (ms).
    pub sd_click_dwell_ms: f64,
    /// Mean normalised click offset.
    pub mean_click_offset_frac: f64,
    /// Std dev of normalised click offset.
    pub sd_click_offset_frac: f64,
    /// Mean intra-flick scroll tick gap (ms; gaps < 250 ms). Hundreds of
    /// ticks accrue per long page, making this the statistically strongest
    /// per-user tempo feature.
    pub mean_scroll_gap_ms: f64,
    /// Std dev of intra-flick scroll tick gaps (ms).
    pub sd_scroll_gap_ms: f64,
    /// Enrolment sample sizes per feature (key dwell, click dwell, click
    /// offset, scroll gap) — the profile means are estimates, and the
    /// match test must carry their uncertainty.
    pub enrolment_n: [usize; 4],
}

/// Keeps only intra-flick gaps (excludes finger-repositioning breaks).
fn intra_flick(gaps: &[f64]) -> Vec<f64> {
    gaps.iter()
        .copied()
        .filter(|g| *g < INTRA_FLICK_GAP_MS)
        .collect()
}

impl UserProfile {
    /// Enrols a profile from a reference corpus of *one individual*.
    pub fn enroll(reference: &HumanReference) -> Self {
        let kd = Summary::of(&reference.key_dwell_ms);
        let cd = Summary::of(&reference.click_dwell_ms);
        let co = Summary::of(&reference.click_offset_frac);
        let sg = Summary::of(&intra_flick(&reference.scroll_gap_ms));
        Self {
            mean_key_dwell_ms: kd.mean,
            sd_key_dwell_ms: kd.std_dev.max(1.0),
            mean_click_dwell_ms: cd.mean,
            sd_click_dwell_ms: cd.std_dev.max(1.0),
            mean_click_offset_frac: co.mean,
            sd_click_offset_frac: co.std_dev.max(1e-3),
            mean_scroll_gap_ms: sg.mean,
            sd_scroll_gap_ms: sg.std_dev.max(1.0),
            enrolment_n: [
                reference.key_dwell_ms.len(),
                reference.click_dwell_ms.len(),
                reference.click_offset_frac.len(),
                intra_flick(&reference.scroll_gap_ms).len(),
            ],
        }
    }
}

/// Behavioural features extracted from one session trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceFeatures {
    /// Key dwell times (ms), in order.
    pub key_dwells_ms: Vec<f64>,
    /// Key flight times (ms).
    pub key_flights_ms: Vec<f64>,
    /// Typing speed (characters per minute, 0 if <2 presses).
    pub typing_cpm: f64,
    /// Count of capital-letter keydowns without Shift held.
    pub capitals_without_shift: usize,
    /// Button dwell times (ms).
    pub click_dwells_ms: Vec<f64>,
    /// Normalised radial click offsets from the clicked element's centre.
    pub click_offsets_frac: Vec<f64>,
    /// Straightness (chord/path) of each movement segment.
    pub straightness: Vec<f64>,
    /// Speed coefficient of variation per segment.
    pub speed_cvs: Vec<f64>,
    /// Peak segment speed (px/ms).
    pub max_speed: f64,
    /// Scroll event inter-arrival gaps (ms).
    pub scroll_gaps_ms: Vec<f64>,
    /// Per-scroll-event position deltas (px).
    pub scroll_deltas_px: Vec<f64>,
    /// Number of wheel events.
    pub wheel_events: usize,
    /// Number of scroll events.
    pub scroll_events: usize,
    /// Click events with no corresponding button press (synthetic
    /// `element.click()` dispatches).
    pub pointerless_clicks: usize,
    /// Click events whose target element is invisible (honey elements,
    /// §4.2).
    pub hidden_element_clicks: usize,
    /// Interaction events that occurred while the page was hidden
    /// (Appendix D: after minimising, "no further interaction should
    /// occur").
    pub interactions_while_hidden: usize,
}

impl TraceFeatures {
    /// Extracts features from a recorded trace over a document.
    pub fn extract(recorder: &EventRecorder, doc: &Document) -> Self {
        let mut f = TraceFeatures::default();

        // Typing. Modifier keys are excluded from the timing series: their
        // dwell spans whole character groups and would swamp the
        // per-character rhythm every level analyses. Strokes are ordered
        // by press time (rollover typing completes out of order).
        let mut strokes = recorder.keystrokes().to_vec();
        strokes.sort_by(|a, b| {
            a.down_t
                .partial_cmp(&b.down_t)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let char_strokes: Vec<_> = strokes
            .iter()
            .filter(|k| k.key != "Shift" && k.key.chars().count() == 1)
            .collect();
        f.key_dwells_ms = char_strokes.iter().map(|k| k.dwell_ms).collect();
        f.key_flights_ms = char_strokes
            .windows(2)
            .map(|w| w[1].down_t - w[0].up_t)
            .collect();
        let presses: Vec<f64> = char_strokes.iter().map(|k| k.down_t).collect();
        if let [first, .., last] = presses.as_slice() {
            let span = last - first;
            if span > 0.0 {
                f.typing_cpm = (presses.len() - 1) as f64 * 60_000.0 / span;
            }
        }
        f.capitals_without_shift = recorder
            .events()
            .iter()
            .filter(|e| e.kind == EventKind::KeyDown)
            .filter(|e| match &e.payload {
                EventPayload::Key { key, shift } => {
                    let mut chars = key.chars();
                    matches!(
                        (chars.next(), chars.next()),
                        (Some(c), None) if c.is_ascii_uppercase()
                    ) && !shift
                }
                _ => false,
            })
            .count();

        // Clicks. Offsets come from the recorder's dispatch-time
        // annotations (pages compute them inside the click listener, when
        // the element's box is still where the click happened).
        for c in recorder.clicks() {
            f.click_dwells_ms.push(c.dwell_ms);
        }
        f.click_offsets_frac = recorder.click_offsets().to_vec();
        let _ = doc;

        // Movement segments: split the cursor trace at long pauses.
        let trace = recorder.cursor_trace();
        let mut segment: Vec<(f64, f64, f64)> = Vec::new();
        let mut segments: Vec<Vec<(f64, f64, f64)>> = Vec::new();
        for s in trace {
            if let Some((pt, ..)) = segment.last() {
                if s.t - pt > SEGMENT_SPLIT_PAUSE_MS {
                    segments.push(std::mem::take(&mut segment));
                }
            }
            segment.push((s.t, s.x, s.y));
        }
        segments.push(segment);
        for seg in segments.iter().filter(|s| s.len() >= 5) {
            let path: f64 = seg
                .windows(2)
                .map(|w| ((w[1].1 - w[0].1).powi(2) + (w[1].2 - w[0].2).powi(2)).sqrt())
                .sum();
            let Some(last) = seg.last() else { continue };
            let chord = ((last.1 - seg[0].1).powi(2) + (last.2 - seg[0].2).powi(2)).sqrt();
            if path < MIN_SEGMENT_PATH_PX {
                continue; // too short to judge
            }
            f.straightness
                .push(if path > 0.0 { chord / path } else { 1.0 });
            let speeds: Vec<f64> = seg
                .windows(2)
                .filter(|w| w[1].0 > w[0].0)
                .map(|w| {
                    ((w[1].1 - w[0].1).powi(2) + (w[1].2 - w[0].2).powi(2)).sqrt()
                        / (w[1].0 - w[0].0)
                })
                .collect();
            if speeds.len() >= 3 {
                f.speed_cvs.push(coefficient_of_variation(&speeds));
                f.max_speed = f.max_speed.max(speeds.iter().copied().fold(0.0, f64::max));
            }
        }

        // Scrolling.
        f.scroll_gaps_ms = recorder.scroll_gaps().to_vec();
        f.scroll_deltas_px = recorder.scroll_deltas().to_vec();
        f.wheel_events = recorder.wheel_count();
        f.scroll_events = recorder.of_kind(EventKind::Scroll).len();

        // Synthetic clicks: click events in excess of completed left
        // press/release pairs.
        let click_events = recorder.of_kind(EventKind::Click).len();
        let left_pairs = recorder
            .clicks()
            .iter()
            .filter(|c| c.button == hlisa_browser::events::MouseButton::Left)
            .count();
        f.pointerless_clicks = click_events.saturating_sub(left_pairs);

        // Honey elements: clicks whose target is invisible.
        f.hidden_element_clicks = recorder
            .of_kind(EventKind::Click)
            .iter()
            .filter(|e| e.target.map(|id| !doc.element(id).visible).unwrap_or(false))
            .count();

        // Interaction while the page is hidden: replay visibility state.
        let mut hidden = false;
        for e in recorder.events() {
            match (&e.kind, &e.payload) {
                (EventKind::VisibilityChange, EventPayload::Visibility { visible }) => {
                    hidden = !visible;
                }
                (EventKind::Blur | EventKind::Focus, _) => {}
                _ if hidden => f.interactions_while_hidden += 1,
                _ => {}
            }
        }
        f
    }

    /// Merges another session's features into this one.
    pub fn merge(&mut self, other: &TraceFeatures) {
        self.key_dwells_ms.extend_from_slice(&other.key_dwells_ms);
        self.key_flights_ms.extend_from_slice(&other.key_flights_ms);
        if other.typing_cpm > 0.0 {
            self.typing_cpm = if self.typing_cpm > 0.0 {
                (self.typing_cpm + other.typing_cpm) / 2.0
            } else {
                other.typing_cpm
            };
        }
        self.capitals_without_shift += other.capitals_without_shift;
        self.click_dwells_ms
            .extend_from_slice(&other.click_dwells_ms);
        self.click_offsets_frac
            .extend_from_slice(&other.click_offsets_frac);
        self.straightness.extend_from_slice(&other.straightness);
        self.speed_cvs.extend_from_slice(&other.speed_cvs);
        self.max_speed = self.max_speed.max(other.max_speed);
        self.scroll_gaps_ms.extend_from_slice(&other.scroll_gaps_ms);
        self.scroll_deltas_px
            .extend_from_slice(&other.scroll_deltas_px);
        self.wheel_events += other.wheel_events;
        self.scroll_events += other.scroll_events;
        self.pointerless_clicks += other.pointerless_clicks;
        self.hidden_element_clicks += other.hidden_element_clicks;
        self.interactions_while_hidden += other.interactions_while_hidden;
    }
}

/// A detector configured at some escalation level.
#[derive(Debug, Clone)]
pub struct InteractionDetector {
    level: DetectorLevel,
    reference: Option<HumanReference>,
    profile: Option<UserProfile>,
    /// Significance level for the KS tests.
    pub alpha: f64,
}

impl InteractionDetector {
    /// A level-1 detector (no model of human behaviour needed).
    pub fn level1() -> Self {
        Self {
            level: DetectorLevel::L1Artificial,
            reference: None,
            profile: None,
            alpha: 0.01,
        }
    }

    /// A level-2 detector with a human reference corpus.
    pub fn level2(reference: HumanReference) -> Self {
        Self {
            level: DetectorLevel::L2Deviation,
            reference: Some(reference),
            profile: None,
            alpha: 0.01,
        }
    }

    /// A level-3 detector (consistency tracking on top of level 2).
    pub fn level3(reference: HumanReference) -> Self {
        Self {
            level: DetectorLevel::L3Consistency,
            reference: Some(reference),
            profile: None,
            alpha: 0.01,
        }
    }

    /// A level-4 detector with an enrolled user profile.
    pub fn level4(reference: HumanReference, profile: UserProfile) -> Self {
        Self {
            level: DetectorLevel::L4Profile,
            reference: Some(reference),
            profile: Some(profile),
            alpha: 0.01,
        }
    }

    /// The configured level.
    pub fn level(&self) -> DetectorLevel {
        self.level
    }

    /// Judges a recorded session.
    pub fn judge(&self, recorder: &EventRecorder, doc: &Document) -> InteractionVerdict {
        let features = TraceFeatures::extract(recorder, doc);
        self.judge_features(&features)
    }

    /// Judges pre-extracted features.
    pub fn judge_features(&self, f: &TraceFeatures) -> InteractionVerdict {
        let mut signals = Vec::new();
        self.check_l1(f, &mut signals);
        if self.level >= DetectorLevel::L2Deviation {
            self.check_l2(f, &mut signals);
        }
        if self.level >= DetectorLevel::L3Consistency {
            self.check_l3(f, &mut signals);
        }
        if self.level >= DetectorLevel::L4Profile {
            self.check_l4(f, &mut signals);
        }
        InteractionVerdict {
            is_bot: !signals.is_empty(),
            signals,
        }
    }

    // --- Level 1: behaviour outside human limits ------------------------

    fn check_l1(&self, f: &TraceFeatures, signals: &mut Vec<Signal>) {
        let l = DetectorLevel::L1Artificial;
        let straight = f
            .straightness
            .iter()
            .filter(|s| **s > STRAIGHTNESS_TELL)
            .count();
        if straight > 0 && straight * 2 >= f.straightness.len() {
            signals.push(Signal {
                level: l,
                name: "straight-trajectories",
                detail: format!(
                    "{straight}/{} segments perfectly straight",
                    f.straightness.len()
                ),
            });
        }
        let uniform = f
            .speed_cvs
            .iter()
            .filter(|cv| **cv < UNIFORM_SPEED_CV)
            .count();
        if uniform > 0 && uniform * 2 >= f.speed_cvs.len() {
            signals.push(Signal {
                level: l,
                name: "uniform-speed",
                detail: format!("{uniform}/{} segments at constant speed", f.speed_cvs.len()),
            });
        }
        if f.max_speed > MAX_HUMAN_SPEED_PX_PER_MS {
            signals.push(Signal {
                level: l,
                name: "superhuman-speed",
                detail: format!("peak {:.1} px/ms", f.max_speed),
            });
        }
        if f.click_dwells_ms
            .iter()
            .any(|d| *d < MIN_HUMAN_CLICK_DWELL_MS)
        {
            signals.push(Signal {
                level: l,
                name: "zero-dwell-click",
                detail: "button released within the press millisecond".to_string(),
            });
        }
        let centred = f
            .click_offsets_frac
            .iter()
            .filter(|o| **o < DEAD_CENTRE_OFFSET_FRAC)
            .count();
        if centred > 0 && centred * 2 >= f.click_offsets_frac.len().max(1) {
            signals.push(Signal {
                level: l,
                name: "dead-centre-clicks",
                detail: format!("{centred} clicks exactly on element centres"),
            });
        }
        if f.key_dwells_ms.iter().any(|d| *d < MIN_HUMAN_KEY_DWELL_MS) {
            signals.push(Signal {
                level: l,
                name: "zero-dwell-key",
                detail: "key released within the press millisecond".to_string(),
            });
        }
        if f.typing_cpm > MAX_HUMAN_TYPING_CPM {
            signals.push(Signal {
                level: l,
                name: "superhuman-typing",
                detail: format!("{:.0} cpm", f.typing_cpm),
            });
        }
        if f.capitals_without_shift > 0 {
            signals.push(Signal {
                level: l,
                name: "capitals-without-shift",
                detail: format!(
                    "{} capital keydowns with no Shift",
                    f.capitals_without_shift
                ),
            });
        }
        if f.pointerless_clicks > 0 {
            signals.push(Signal {
                level: l,
                name: "click-without-pointer",
                detail: format!("{} click events with no button press", f.pointerless_clicks),
            });
        }
        if f.hidden_element_clicks > 0 {
            signals.push(Signal {
                level: l,
                name: "honey-element-interaction",
                detail: format!("{} clicks on invisible elements", f.hidden_element_clicks),
            });
        }
        if f.interactions_while_hidden > 0 {
            signals.push(Signal {
                level: l,
                name: "interaction-while-hidden",
                detail: format!(
                    "{} events while the page was not visible",
                    f.interactions_while_hidden
                ),
            });
        }
        // Scrolls of hundreds of px in a single event with no wheel events
        // anywhere: Selenium's script scroll. (Weak on its own — anchors do
        // this too — so it requires total wheel silence.)
        if f.wheel_events == 0
            && f.scroll_deltas_px
                .iter()
                .any(|d| d.abs() > SCRIPT_SCROLL_JUMP_PX)
        {
            signals.push(Signal {
                level: l,
                name: "single-event-jump-scroll",
                detail: "long scroll with no wheel activity".to_string(),
            });
        }
    }

    // --- Level 2: deviation from human distributions --------------------

    fn check_l2(&self, f: &TraceFeatures, signals: &mut Vec<Signal>) {
        let l = DetectorLevel::L2Deviation;
        let Some(reference) = &self.reference else {
            return;
        };
        // A deviation must be both statistically significant and large:
        // a level-2 detector models the *population*, and individual tempo
        // variation must not bar human visitors (§4.2: "detectors must not
        // be too strict or risk barring human visitors entry"). Timing
        // channels get a wider tolerance than placement because human
        // tempo drifts within a session.
        let mut ks_check =
            |name: &'static str, obs: &[f64], reference: &[f64], min_n: usize, d_floor: f64| {
                if obs.len() >= min_n && reference.len() >= min_n {
                    if let Some(r) = ks_two_sample(obs, reference) {
                        if r.p_value < self.alpha && r.statistic >= d_floor {
                            signals.push(Signal {
                                level: l,
                                name,
                                detail: format!("KS D={:.3}, p={:.2e}", r.statistic, r.p_value),
                            });
                        }
                    }
                }
            };
        ks_check(
            "key-dwell-distribution",
            &f.key_dwells_ms,
            &reference.key_dwell_ms,
            20,
            0.48,
        );
        ks_check(
            "key-flight-distribution",
            &f.key_flights_ms,
            &reference.key_flight_ms,
            20,
            0.48,
        );
        ks_check(
            "click-dwell-distribution",
            &f.click_dwells_ms,
            &reference.click_dwell_ms,
            20,
            0.48,
        );
        // Small-sample KS p-values are anti-conservative, so placement
        // needs a larger sample than the timing channels.
        ks_check(
            "click-offset-distribution",
            &f.click_offsets_frac,
            &reference.click_offset_frac,
            20,
            0.30,
        );
        ks_check(
            "scroll-gap-distribution",
            &f.scroll_gaps_ms,
            &reference.scroll_gap_ms,
            20,
            0.32,
        );
    }

    // --- Level 3: behavioural consistency --------------------------------

    fn check_l3(&self, f: &TraceFeatures, signals: &mut Vec<Signal>) {
        let l = DetectorLevel::L3Consistency;
        // Human key dwell deviates as a drifting tempo: consecutive dwells
        // are serially correlated. i.i.d. draws (HLISA's normals) are not.
        if f.key_dwells_ms.len() >= 40 {
            let a: Vec<f64> = f.key_dwells_ms[..f.key_dwells_ms.len() - 1].to_vec();
            let b: Vec<f64> = f.key_dwells_ms[1..].to_vec();
            let r = pearson(&a, &b);
            // A model-informed threshold: measured human rhythm drifts
            // with lag-1 autocorrelation ≈ 0.5, so anything below 0.25 is
            // far more likely i.i.d. sampling than a person (the paper:
            // at this level "the exact model of consistency needed to
            // satisfy a detector may not be public knowledge").
            if r < 0.25 {
                signals.push(Signal {
                    level: l,
                    name: "no-tempo-drift",
                    detail: format!("dwell lag-1 autocorr {:.3} (human rhythm drifts)", r),
                });
            }
        }
    }

    // --- Level 4: enrolled user profile -----------------------------------

    fn check_l4(&self, f: &TraceFeatures, signals: &mut Vec<Signal>) {
        let l = DetectorLevel::L4Profile;
        let Some(p) = &self.profile else {
            return;
        };
        let mut z_check =
            |name: &'static str, obs: &[f64], mu: f64, sd: f64, n_enrol: usize, min_n: usize| {
                if obs.len() >= min_n && n_enrol >= min_n {
                    let m = mean(obs);
                    // z of the difference of two estimated means: both the
                    // session sample and the enrolled profile carry error.
                    let se = sd * (1.0 / obs.len() as f64 + 1.0 / n_enrol as f64).sqrt();
                    let z = (m - mu) / se;
                    if z.abs() > 3.5 {
                        signals.push(Signal {
                            level: l,
                            name,
                            detail: format!(
                                "sample mean {:.1} vs enrolled {:.1} (z={:.1})",
                                m, mu, z
                            ),
                        });
                    }
                }
            };
        // Key dwells are serially correlated in humans (tempo drift), so
        // the sample mean's standard error must be inflated by the usual
        // AR(1) factor sqrt((1+r)/(1-r)), estimated from the session.
        let ar_inflation = if f.key_dwells_ms.len() >= 20 {
            let a = &f.key_dwells_ms[..f.key_dwells_ms.len() - 1];
            let b = &f.key_dwells_ms[1..];
            let r = pearson(a, b).clamp(0.0, 0.9);
            ((1.0 + r) / (1.0 - r)).sqrt()
        } else {
            1.0
        };
        z_check(
            "profile-key-dwell",
            &f.key_dwells_ms,
            p.mean_key_dwell_ms,
            p.sd_key_dwell_ms * ar_inflation,
            p.enrolment_n[0],
            20,
        );
        z_check(
            "profile-click-dwell",
            &f.click_dwells_ms,
            p.mean_click_dwell_ms,
            p.sd_click_dwell_ms,
            p.enrolment_n[1],
            8,
        );
        z_check(
            "profile-click-offset",
            &f.click_offsets_frac,
            p.mean_click_offset_frac,
            p.sd_click_offset_frac,
            p.enrolment_n[2],
            8,
        );
        z_check(
            "profile-scroll-gap",
            &intra_flick(&f.scroll_gaps_ms),
            p.mean_scroll_gap_ms,
            p.sd_scroll_gap_ms,
            p.enrolment_n[3],
            50,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{run_human_session, HumanReference};

    #[test]
    fn level_ordering_and_labels() {
        assert!(DetectorLevel::L1Artificial < DetectorLevel::L4Profile);
        assert!(DetectorLevel::L4Profile.gdpr_sensitive());
        assert!(!DetectorLevel::L1Artificial.gdpr_sensitive());
        let labels: std::collections::HashSet<_> =
            DetectorLevel::ALL.iter().map(|l| l.label()).collect();
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn human_session_passes_l1_through_l3() {
        let reference = HumanReference::generate(100, 2);
        let features = run_human_session(555);
        for det in [
            InteractionDetector::level1(),
            InteractionDetector::level2(reference.clone()),
            InteractionDetector::level3(reference.clone()),
        ] {
            let v = det.judge_features(&features);
            assert!(
                !v.is_bot,
                "human flagged at {:?}: {:?}",
                det.level(),
                v.signals
            );
        }
    }

    #[test]
    fn same_human_passes_own_profile() {
        let reference = HumanReference::generate(100, 2);
        // Enrol on the same individual model that generates the session.
        let profile = UserProfile::enroll(&reference);
        let det = InteractionDetector::level4(reference, profile);
        let features = run_human_session(777);
        let v = det.judge_features(&features);
        assert!(!v.is_bot, "enrolled human flagged: {:?}", v.signals);
    }

    #[test]
    fn empty_trace_is_not_a_bot() {
        // No interaction = no evidence.
        let det = InteractionDetector::level1();
        let v = det.judge_features(&TraceFeatures::default());
        assert!(!v.is_bot);
    }

    #[test]
    fn script_clicks_and_honey_elements_fire_l1() {
        use hlisa_browser::dom::standard_test_page;
        use hlisa_browser::{Browser, BrowserConfig};
        let mut b = Browser::open(
            BrowserConfig::webdriver(),
            standard_test_page("https://honey.test/", 3_000.0),
        );
        let honey = b.document().by_id("honey").unwrap();
        b.advance(25.0);
        b.synthetic_click(honey);
        let det = InteractionDetector::level1();
        let v = det.judge(&b.recorder, b.document());
        assert!(v.is_bot);
        let names: Vec<&str> = v.signals.iter().map(|s| s.name).collect();
        assert!(names.contains(&"click-without-pointer"), "{names:?}");
        assert!(names.contains(&"honey-element-interaction"), "{names:?}");
    }

    #[test]
    fn interaction_while_hidden_fires_l1() {
        use hlisa_browser::dom::standard_test_page;
        use hlisa_browser::{Browser, BrowserConfig, RawInput};
        let mut b = Browser::open(
            BrowserConfig::webdriver(),
            standard_test_page("https://hidden.test/", 3_000.0),
        );
        b.input_after(20.0, RawInput::Minimize);
        // A bot keeps typing into the minimised window.
        b.input_after(50.0, RawInput::KeyDown { key: "a".into() });
        b.input_after(60.0, RawInput::KeyUp { key: "a".into() });
        let det = InteractionDetector::level1();
        let v = det.judge(&b.recorder, b.document());
        assert!(v
            .signals
            .iter()
            .any(|s| s.name == "interaction-while-hidden"));
    }

    #[test]
    fn synthetic_artificial_features_fire_l1() {
        let det = InteractionDetector::level1();
        let f = TraceFeatures {
            straightness: vec![1.0, 1.0],
            speed_cvs: vec![0.0, 0.0],
            click_dwells_ms: vec![0.0],
            click_offsets_frac: vec![0.0],
            key_dwells_ms: vec![0.0; 10],
            typing_cpm: 13_333.0,
            capitals_without_shift: 3,
            max_speed: 50.0,
            scroll_deltas_px: vec![5_000.0],
            ..TraceFeatures::default()
        };
        let v = det.judge_features(&f);
        assert!(v.is_bot);
        assert!(v.signals.len() >= 6, "signals: {:?}", v.signals);
    }
}
