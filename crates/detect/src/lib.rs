//! Bot detectors — the adversary side of both halves of the paper.
//!
//! * Fingerprint side (§3): [`fingerprint`] implements the
//!   `navigator.webdriver` check that "plays a crucial role in the
//!   identification of WebDriver-controlled user agents" (Vastel et al.),
//!   [`template_attack`] implements the Schwarz et al. template diff, and
//!   [`side_effects`] implements the five probes of Table 1 that expose
//!   *spoofing attempts*.
//! * Interaction side (§4): [`interaction`] implements the detector ladder
//!   of Fig. 3 — level 1 detects behaviour outside human limits, level 2
//!   detects statistical deviation from human distributions, level 3 tracks
//!   behavioural consistency, and level 4 compares against an enrolled
//!   per-user profile. [`mod@reference`] generates the human reference corpus
//!   the upper levels need.

pub mod fingerprint;
pub mod interaction;
pub mod live;
pub mod reference;
pub mod replay;
pub mod side_effects;
pub mod template_attack;
pub mod thresholds;

pub use fingerprint::{scan_fingerprint, FingerprintVerdict};
pub use interaction::{DetectorLevel, InteractionDetector, InteractionVerdict, Signal};
pub use live::{LiveInteractionMonitor, LiveMonitorHandle};
pub use reference::HumanReference;
pub use replay::{fingerprint_trace, ReplayDetector};
pub use side_effects::{probe_side_effects, probe_unstable_method_identity, SideEffect};
pub use template_attack::TemplateAttackDetector;
