//! Template-attack detector (Schwarz et al., NDSS'19).
//!
//! §3.1: "To check for the occurrence of side effects of each method, we
//! use JavaScript template attacks". The detector records a template of a
//! pristine regular Firefox once, then diffs candidate page worlds against
//! it. Any diff under `window.navigator` that is not explained by the
//! webdriver *value* itself indicates tampering.

use hlisa_jsom::{build_firefox_world, BrowserFlavor, Template, TemplateDiff, World};

/// A template-attack detector with a pre-captured reference.
#[derive(Debug, Clone)]
pub struct TemplateAttackDetector {
    reference: Template,
    depth: usize,
}

impl TemplateAttackDetector {
    /// Builds the detector by templating a pristine regular Firefox.
    pub fn new() -> Self {
        Self::with_depth(3)
    }

    /// Builds with a custom traversal depth.
    pub fn with_depth(depth: usize) -> Self {
        let mut reference_world = build_firefox_world(BrowserFlavor::RegularFirefox);
        let reference = Template::capture(
            &mut reference_world.realm,
            reference_world.window,
            "window",
            depth,
        );
        Self { reference, depth }
    }

    /// Diffs the candidate against the regular-Firefox reference.
    pub fn diff(&self, candidate: &mut World) -> Vec<TemplateDiff> {
        let t = Template::capture(&mut candidate.realm, candidate.window, "window", self.depth);
        self.reference.diff(&t)
    }

    /// True when the candidate shows *structural* tampering: any diff other
    /// than a pure value change of `navigator.webdriver` itself. (A value
    /// change alone just distinguishes bot from human; structure reveals a
    /// spoofing attempt.)
    pub fn is_tampered(&self, candidate: &mut World) -> bool {
        self.diff(candidate).iter().any(|d| match d {
            TemplateDiff::Changed(path, field) => {
                !(path == "window.navigator.webdriver" && field == "value")
            }
            _ => true,
        })
    }
}

impl Default for TemplateAttackDetector {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlisa_jsom::Value;
    use hlisa_spoof::{SpoofMethod, SpoofingExtension};

    #[test]
    fn pristine_bot_differs_only_in_webdriver_value() {
        let det = TemplateAttackDetector::new();
        let mut bot = build_firefox_world(BrowserFlavor::WebDriverFirefox);
        let diffs = det.diff(&mut bot);
        assert!(!diffs.is_empty());
        assert!(!det.is_tampered(&mut bot), "pristine bot is not *tampered*");
    }

    #[test]
    fn own_property_spoofing_is_structural_tampering() {
        let det = TemplateAttackDetector::new();
        for m in [SpoofMethod::DefineProperty, SpoofMethod::DefineGetter] {
            let mut w = build_firefox_world(BrowserFlavor::WebDriverFirefox);
            m.apply(&mut w, "webdriver", Value::Bool(false)).unwrap();
            assert!(det.is_tampered(&mut w), "method {} evaded", m.name());
        }
    }

    #[test]
    fn proto_clone_spoofing_is_structural_tampering() {
        let det = TemplateAttackDetector::new();
        let mut w = build_firefox_world(BrowserFlavor::WebDriverFirefox);
        SpoofMethod::SetPrototypeOf
            .apply(&mut w, "webdriver", Value::Bool(false))
            .unwrap();
        assert!(det.is_tampered(&mut w));
    }

    #[test]
    fn proxy_spoofing_is_caught_via_function_sources() {
        let det = TemplateAttackDetector::new();
        let mut w = build_firefox_world(BrowserFlavor::WebDriverFirefox);
        SpoofingExtension::paper_default().inject(&mut w).unwrap();
        // The proxy unnames every function reached through navigator, which
        // the template's fn_source field captures.
        assert!(det.is_tampered(&mut w));
    }

    #[test]
    fn regular_firefox_is_clean() {
        let det = TemplateAttackDetector::new();
        let mut w = build_firefox_world(BrowserFlavor::RegularFirefox);
        assert!(det.diff(&mut w).is_empty());
        assert!(!det.is_tampered(&mut w));
    }
}
