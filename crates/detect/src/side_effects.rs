//! The five side-effect probes of Table 1.
//!
//! Each probe is a check a page script could run against `window.navigator`
//! to discover that *something* tampered with the object — without needing
//! to know which property was spoofed. The expected pattern (Table 1):
//!
//! | Side effect                                | m1 | m2 | m3 | m4 |
//! |--------------------------------------------|----|----|----|----|
//! | Incorrect order of navigator properties    | ×  | ×  |    |    |
//! | Modified navigator._length                 | ×  | ×  |    |    |
//! | New Object.keys(navigator)                 | ×  | ×  |    |    |
//! | Defined navigator.__proto__.webdriver      |    |    | ×  |    |
//! | Unnamed window.navigator functions         |    |    |    | ×  |

use hlisa_jsom::{build_firefox_world, BrowserFlavor, World};

/// A detectable spoofing side effect (rows of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SideEffect {
    /// for-in order over `navigator` differs from stock Firefox.
    IncorrectNavigatorOrder,
    /// `navigator` gained own properties (the `_length` observable: a
    /// pristine navigator instance has zero own properties; shadowing a
    /// prototype accessor grows the count while the original remains on
    /// the prototype chain).
    ModifiedNavigatorLength,
    /// `Object.keys(navigator)` is no longer empty.
    NewObjectKeys,
    /// The `webdriver` property resolves as an *own data property* on a
    /// prototype-chain hop instead of Firefox's native accessor on
    /// `Navigator.prototype` (including an interposed extra hop).
    DefinedProtoWebdriver,
    /// Methods obtained through `navigator` stringify without a function
    /// name (Listing 1's proxy giveaway).
    UnnamedNavigatorFunctions,
}

impl SideEffect {
    /// All probes, in Table 1 row order.
    pub const ALL: [SideEffect; 5] = [
        SideEffect::IncorrectNavigatorOrder,
        SideEffect::ModifiedNavigatorLength,
        SideEffect::NewObjectKeys,
        SideEffect::DefinedProtoWebdriver,
        SideEffect::UnnamedNavigatorFunctions,
    ];

    /// Row label as printed in Table 1.
    pub fn label(&self) -> &'static str {
        match self {
            SideEffect::IncorrectNavigatorOrder => "Incorrect order of navigator properties",
            SideEffect::ModifiedNavigatorLength => "Modified navigator._length",
            SideEffect::NewObjectKeys => "New Object.keys(navigator)",
            SideEffect::DefinedProtoWebdriver => "Defined navigator.__proto__.webdriver",
            SideEffect::UnnamedNavigatorFunctions => "Unnamed window.navigator functions",
        }
    }
}

/// Baseline facts about a pristine Firefox navigator, computed fresh so
/// the probe does not depend on the candidate world.
struct PristineBaseline {
    for_in_order: Vec<String>,
    proto_chain_len: usize,
}

fn pristine_baseline() -> PristineBaseline {
    let w = build_firefox_world(BrowserFlavor::RegularFirefox);
    PristineBaseline {
        for_in_order: w.realm.for_in_keys(w.navigator),
        proto_chain_len: w.realm.proto_chain(w.navigator).len(),
    }
}

/// Runs all five probes against a world, returning the side effects found.
pub fn probe_side_effects(world: &mut World) -> Vec<SideEffect> {
    let baseline = pristine_baseline();
    let nav = world.resolve_navigator();
    let mut found = Vec::new();

    // 1. Enumeration order.
    if world.realm.for_in_keys(nav) != baseline.for_in_order {
        found.push(SideEffect::IncorrectNavigatorOrder);
    }

    // 2. Own-property census ("navigator._length").
    if world.realm.own_len(nav) != 0 {
        found.push(SideEffect::ModifiedNavigatorLength);
    }

    // 3. Object.keys.
    if !world.realm.object_keys(nav).is_empty() {
        found.push(SideEffect::NewObjectKeys);
    }

    // 4. webdriver on the proto chain as an own data property / extra hop.
    let chain = world.realm.proto_chain(nav);
    let mut proto_data_webdriver = chain.len() != baseline.proto_chain_len;
    for hop in &chain {
        if let Some(desc) = world.realm.get_own_descriptor(*hop, "webdriver") {
            if !desc.is_accessor() {
                proto_data_webdriver = true;
            }
        }
    }
    if proto_data_webdriver {
        found.push(SideEffect::DefinedProtoWebdriver);
    }

    // 5. Function-name check on a method reached through navigator.
    if let Ok(v) = world.realm.get(nav, "javaEnabled") {
        if let Some(fid) = v.as_object() {
            if let Ok(src) = world.realm.function_to_string(fid) {
                if src.starts_with("function ()") {
                    found.push(SideEffect::UnnamedNavigatorFunctions);
                }
            }
        }
    }

    found
}

/// A refinement probe beyond Table 1: Proxy `get` traps that re-bind
/// methods hand out a *fresh* function object on every access, so
/// `navigator.javaEnabled !== navigator.javaEnabled` — an identity
/// instability no native object exhibits. (This is the "refine their
/// current techniques" move of §4.2's arms race, applied to the
/// fingerprint side.)
pub fn probe_unstable_method_identity(world: &mut World) -> bool {
    let nav = world.resolve_navigator();
    let a = world
        .realm
        .get(nav, "javaEnabled")
        .ok()
        .and_then(|v| v.as_object());
    let b = world
        .realm
        .get(nav, "javaEnabled")
        .ok()
        .and_then(|v| v.as_object());
    match (a, b) {
        (Some(a), Some(b)) => a != b,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pristine_worlds_have_no_side_effects() {
        for flavor in [
            BrowserFlavor::RegularFirefox,
            BrowserFlavor::WebDriverFirefox,
        ] {
            let mut w = build_firefox_world(flavor);
            assert!(
                probe_side_effects(&mut w).is_empty(),
                "false positives on pristine {flavor:?}"
            );
        }
    }

    #[test]
    fn method_identity_is_stable_except_under_proxies() {
        use hlisa_jsom::object::ProxyHandler;
        let mut w = build_firefox_world(BrowserFlavor::WebDriverFirefox);
        assert!(!probe_unstable_method_identity(&mut w));
        let nav = w.resolve_navigator();
        let proxy = w.realm.wrap_in_proxy(nav, ProxyHandler::default());
        w.rebind_navigator(proxy);
        assert!(probe_unstable_method_identity(&mut w));
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            SideEffect::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), 5);
    }
}
