//! Human reference corpus for the deviation (level-2) detectors.
//!
//! A level-2 detector "compares the observed interaction to a model of
//! human behaviour" (§5). Its model here is an empirical corpus generated
//! by running the human agent through the same three Appendix E tasks the
//! paper recorded: a repeated click task, typing a ~100-character text, and
//! wheel-scrolling a long page.

use hlisa_browser::dom::{standard_test_page, Document, ElementBuilder};
use hlisa_browser::{Browser, BrowserConfig, Rect};
use hlisa_human::{HumanAgent, HumanParams};
use hlisa_stats::rngutil::derive_seed;

use crate::interaction::TraceFeatures;

/// Empirical human reference distributions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HumanReference {
    /// Key dwell times (ms).
    pub key_dwell_ms: Vec<f64>,
    /// Key flight times (ms; may be negative for rollover).
    pub key_flight_ms: Vec<f64>,
    /// Mouse-button dwell times (ms).
    pub click_dwell_ms: Vec<f64>,
    /// Normalised radial click offsets from element centres.
    pub click_offset_frac: Vec<f64>,
    /// Movement straightness ratios (chord/path).
    pub straightness: Vec<f64>,
    /// Movement speed coefficient of variation per segment.
    pub speed_cv: Vec<f64>,
    /// Gaps between consecutive scroll events (ms).
    pub scroll_gap_ms: Vec<f64>,
}

/// The text used for the typing task (~100 characters, mixed case and
/// punctuation, mirroring Appendix E's "given text of 100 characters").
pub const TYPING_TASK_TEXT: &str =
    "The quick brown Fox jumps over the lazy Dog. Pack my box, with five dozen Liquor jugs!";

/// Builds the moving-click-target page of Appendix E (an element that
/// "relocates every time after it is clicked"). Positions are supplied by
/// the caller per round.
pub fn click_task_page() -> Document {
    let mut doc = Document::new("https://tasks.test/click", 1280.0, 2_000.0);
    ElementBuilder::new("body", Rect::new(0.0, 0.0, 1280.0, 2_000.0)).insert(&mut doc);
    ElementBuilder::new("button", Rect::new(580.0, 340.0, 120.0, 40.0))
        .id("target")
        .insert(&mut doc);
    doc
}

/// Deterministic pseudo-random target positions for the click task.
pub fn click_target_position(seed: u64, round: usize) -> (f64, f64) {
    let h = derive_seed(seed, "click-target", round as u64);
    let x = 40.0 + (h % 1_000) as f64 / 1_000.0 * 1_100.0;
    let y = 60.0 + ((h >> 16) % 1_000) as f64 / 1_000.0 * 560.0;
    (x, y)
}

impl HumanReference {
    /// Generates a reference corpus from `sessions` independent simulated
    /// human sessions, each by a *different individual* — a level-2
    /// detector models the population, not one person.
    pub fn generate(seed: u64, sessions: usize) -> Self {
        let mut out = Self::default();
        for s in 0..sessions {
            let session_seed = derive_seed(seed, "human-ref", s as u64);
            let subject = HumanParams::individual(derive_seed(seed, "subject", s as u64));
            let features = run_human_session_with(subject, session_seed);
            out.absorb(&features);
        }
        out
    }

    fn absorb(&mut self, f: &TraceFeatures) {
        self.key_dwell_ms.extend_from_slice(&f.key_dwells_ms);
        self.key_flight_ms.extend_from_slice(&f.key_flights_ms);
        self.click_dwell_ms.extend_from_slice(&f.click_dwells_ms);
        self.click_offset_frac
            .extend_from_slice(&f.click_offsets_frac);
        self.straightness.extend_from_slice(&f.straightness);
        self.speed_cv.extend_from_slice(&f.speed_cvs);
        self.scroll_gap_ms.extend_from_slice(&f.scroll_gaps_ms);
    }
}

/// Runs one full baseline-human session through the three tasks.
pub fn run_human_session(seed: u64) -> TraceFeatures {
    run_human_session_with(HumanParams::paper_baseline(), seed)
}

/// Runs one full human session with the given individual's parameters.
pub fn run_human_session_with(params: HumanParams, seed: u64) -> TraceFeatures {
    let mut human = HumanAgent::new(params, seed);

    // Task 1: click the relocating target 12 times.
    let mut browser = Browser::open(BrowserConfig::regular(), click_task_page());
    let target = browser
        .document()
        .by_id("target")
        // the page literal built above defines the id. lint: allow(no-panic)
        .expect("standard test page defines #target");
    for round in 0..12 {
        let (x, y) = click_target_position(seed, round);
        browser.document_mut().element_mut(target).rect = Rect::new(x, y, 120.0, 40.0);
        human.click_element(&mut browser, target);
        human.settle(&mut browser, 150.0, 500.0);
    }
    let mut features = TraceFeatures::extract(&browser.recorder, browser.document());

    // Task 2: type the text into the standard page's input.
    let mut browser = Browser::open(
        BrowserConfig::regular(),
        standard_test_page("https://tasks.test/type", 2_000.0),
    );
    let input = browser
        .document()
        .by_id("text_area")
        // the page literal built above defines the id. lint: allow(no-panic)
        .expect("standard test page defines #text_area");
    human.click_element(&mut browser, input);
    human.type_text(&mut browser, TYPING_TASK_TEXT);
    features.merge(&TraceFeatures::extract(
        &browser.recorder,
        browser.document(),
    ));

    // Task 3: scroll a 30,000 px page top to bottom.
    let mut browser = Browser::open(
        BrowserConfig::regular(),
        standard_test_page("https://tasks.test/scroll", 30_000.0),
    );
    human.scroll_to_bottom(&mut browser);
    features.merge(&TraceFeatures::extract(
        &browser.recorder,
        browser.document(),
    ));

    features
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlisa_stats::Summary;

    #[test]
    fn corpus_is_populated() {
        let r = HumanReference::generate(42, 2);
        assert!(
            r.key_dwell_ms.len() > 100,
            "{} dwells",
            r.key_dwell_ms.len()
        );
        assert!(r.click_dwell_ms.len() >= 20);
        assert!(r.click_offset_frac.len() >= 20);
        assert!(r.straightness.len() >= 10);
        assert!(r.scroll_gap_ms.len() > 200);
    }

    #[test]
    fn human_reference_is_humanly_bounded() {
        let r = HumanReference::generate(7, 1);
        let dwell = Summary::of(&r.key_dwell_ms);
        assert!(dwell.min >= 20.0, "min dwell {}", dwell.min);
        let cd = Summary::of(&r.click_dwell_ms);
        assert!(cd.min >= 20.0);
        // Clicks are never dead-centre.
        assert!(r.click_offset_frac.iter().all(|o| *o > 0.0));
        // Paths curve.
        assert!(r.straightness.iter().all(|s| *s < 1.0));
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(
            HumanReference::generate(9, 1),
            HumanReference::generate(9, 1)
        );
        assert_ne!(
            HumanReference::generate(9, 1),
            HumanReference::generate(10, 1)
        );
    }

    #[test]
    fn target_positions_stay_on_page() {
        for round in 0..50 {
            let (x, y) = click_target_position(3, round);
            assert!((40.0..1_160.0).contains(&x));
            assert!((60.0..640.0).contains(&y));
        }
    }
}
