//! Streaming (live) interaction monitoring over the [`Observer`] protocol.
//!
//! The batch detectors in [`crate::interaction`] judge a finished trace
//! pulled from the recorder. A deployed first-party detector does not get
//! that luxury: it runs *inside* the page, sees each event as it fires,
//! and must keep only running state. [`LiveInteractionMonitor`] models
//! that deployment: it subscribes to the browser's event dispatch via
//! [`hlisa_sim::Observer`] and maintains streaming counters of the
//! level-1 artificiality cues (zero-dwell clicks, teleporting cursors,
//! keyboard input without key events).
//!
//! The monitor is handed to `Browser::attach_observer` by value; a shared
//! [`LiveMonitorHandle`] lets the experiment read the verdict afterwards,
//! and every counter also surfaces through `Browser::metrics()`.
//!
//! Unlike the batch `EventRecorder` analytics (which gained incremental
//! aggregates in the interaction fast-path work — see DESIGN.md), this
//! monitor was incremental by construction: it stores O(1) running state
//! per cue, never the trace, so it needs no rescan/incremental split and
//! its per-event cost is already the floor.

use hlisa_browser::events::{DomEvent, EventKind, EventPayload};
use hlisa_sim::{CounterSet, Observer};
use std::sync::{Arc, Mutex};

/// Running state shared between the attached monitor and its handle.
#[derive(Debug, Clone, Default)]
struct LiveState {
    moves: u64,
    clicks: u64,
    keydowns: u64,
    wheel_ticks: u64,
    zero_dwell_clicks: u64,
    teleport_moves: u64,
    last_pointer: Option<(f64, f64, f64)>,
    pointer_down_at: Option<f64>,
}

/// A pointer jump longer than this with no intermediate samples is not a
/// human movement — even a fast flick produces waypoints at the pointer
/// sampling rate.
const TELEPORT_PX: f64 = 220.0;

/// Button releases within this of the press read as machine clicks;
/// humans dwell tens of milliseconds (§4.1's measured click model).
const MIN_HUMAN_DWELL_MS: f64 = 3.0;

/// Streaming first-party interaction monitor. Attach to a browser with
/// `Browser::attach_observer(Box::new(monitor))`.
#[derive(Debug)]
pub struct LiveInteractionMonitor {
    state: Arc<Mutex<LiveState>>,
}

/// Read-side handle onto an attached [`LiveInteractionMonitor`].
#[derive(Debug, Clone)]
pub struct LiveMonitorHandle {
    state: Arc<Mutex<LiveState>>,
}

impl LiveInteractionMonitor {
    /// Creates a monitor and the handle used to read it after attachment.
    pub fn new() -> (Self, LiveMonitorHandle) {
        let state = Arc::new(Mutex::new(LiveState::default()));
        (
            Self {
                state: Arc::clone(&state),
            },
            LiveMonitorHandle { state },
        )
    }
}

impl Observer<DomEvent> for LiveInteractionMonitor {
    fn on_event(&mut self, t_ms: f64, event: &DomEvent) {
        let mut s = self.state.lock().unwrap_or_else(|p| p.into_inner());
        match event.kind {
            EventKind::MouseMove => {
                s.moves += 1;
                if let EventPayload::Mouse { x, y, .. } = event.payload {
                    if let Some((px, py, _pt)) = s.last_pointer {
                        let d = ((x - px).powi(2) + (y - py).powi(2)).sqrt();
                        if d > TELEPORT_PX {
                            s.teleport_moves += 1;
                        }
                    }
                    s.last_pointer = Some((x, y, t_ms));
                }
            }
            EventKind::MouseDown => {
                s.pointer_down_at = Some(t_ms);
            }
            EventKind::MouseUp => {
                if let Some(down) = s.pointer_down_at.take() {
                    if t_ms - down < MIN_HUMAN_DWELL_MS {
                        s.zero_dwell_clicks += 1;
                    }
                }
            }
            EventKind::Click => {
                s.clicks += 1;
            }
            EventKind::KeyDown => {
                s.keydowns += 1;
            }
            EventKind::Wheel => {
                s.wheel_ticks += 1;
            }
            _ => {}
        }
    }

    fn counters(&self) -> CounterSet {
        self.state
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .counters()
    }
}

impl LiveState {
    fn counters(&self) -> CounterSet {
        let mut c = CounterSet::new();
        c.add("live.moves", self.moves);
        c.add("live.clicks", self.clicks);
        c.add("live.keydowns", self.keydowns);
        c.add("live.wheel_ticks", self.wheel_ticks);
        c.add("live.zero_dwell_clicks", self.zero_dwell_clicks);
        c.add("live.teleport_moves", self.teleport_moves);
        c
    }

    fn is_bot(&self) -> bool {
        self.zero_dwell_clicks > 0
            || self.teleport_moves > 0
            || (self.clicks > 0 && self.moves == 0)
    }
}

impl LiveMonitorHandle {
    /// Streaming verdict so far: true when any artificiality cue fired.
    pub fn is_bot(&self) -> bool {
        self.state
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .is_bot()
    }

    /// Snapshot of the monitor's counters.
    pub fn counters(&self) -> CounterSet {
        self.state
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlisa_browser::events::MouseButton;

    fn mouse(kind: EventKind, t: f64, x: f64, y: f64) -> DomEvent {
        DomEvent {
            kind,
            timestamp_ms: t,
            target: None,
            payload: EventPayload::Mouse {
                x,
                y,
                button: MouseButton::Left,
            },
        }
    }

    #[test]
    fn human_like_stream_stays_clean() {
        let (mut m, h) = LiveInteractionMonitor::new();
        for i in 0..20 {
            let t = f64::from(i) * 16.0;
            m.on_event(
                t,
                &mouse(EventKind::MouseMove, t, f64::from(i) * 12.0, 100.0),
            );
        }
        m.on_event(330.0, &mouse(EventKind::MouseDown, 330.0, 228.0, 100.0));
        m.on_event(395.0, &mouse(EventKind::MouseUp, 395.0, 228.0, 100.0));
        m.on_event(395.0, &mouse(EventKind::Click, 395.0, 228.0, 100.0));
        assert!(!h.is_bot());
        let c = h.counters();
        assert_eq!(c.get("live.moves"), Some(20));
        assert_eq!(c.get("live.clicks"), Some(1));
        assert_eq!(c.get("live.zero_dwell_clicks"), Some(0));
    }

    #[test]
    fn teleporting_cursor_is_flagged() {
        let (mut m, h) = LiveInteractionMonitor::new();
        m.on_event(0.0, &mouse(EventKind::MouseMove, 0.0, 0.0, 0.0));
        m.on_event(1.0, &mouse(EventKind::MouseMove, 1.0, 900.0, 500.0));
        assert!(h.is_bot());
        assert_eq!(h.counters().get("live.teleport_moves"), Some(1));
    }

    #[test]
    fn zero_dwell_click_is_flagged() {
        let (mut m, h) = LiveInteractionMonitor::new();
        m.on_event(10.0, &mouse(EventKind::MouseDown, 10.0, 5.0, 5.0));
        m.on_event(10.0, &mouse(EventKind::MouseUp, 10.0, 5.0, 5.0));
        m.on_event(10.0, &mouse(EventKind::Click, 10.0, 5.0, 5.0));
        assert!(h.is_bot());
    }

    #[test]
    fn click_without_any_movement_is_flagged() {
        let (mut m, h) = LiveInteractionMonitor::new();
        m.on_event(50.0, &mouse(EventKind::MouseDown, 50.0, 5.0, 5.0));
        m.on_event(110.0, &mouse(EventKind::MouseUp, 110.0, 5.0, 5.0));
        m.on_event(110.0, &mouse(EventKind::Click, 110.0, 5.0, 5.0));
        assert!(h.is_bot());
        assert_eq!(h.counters().get("live.clicks"), Some(1));
    }
}
