//! Fingerprint-surface bot detection (Jonker et al., ESORICS'19; Vastel et
//! al., MADWEB'20).
//!
//! "Such unique properties enable distinguishing a web bot from human
//! visitors on the very first page visited, without any interaction" (§2).
//! Vastel et al. found commercial detectors "highly depend on the webdriver
//! attribute"; this scanner reproduces that dependency plus a handful of
//! secondary surface checks.

use hlisa_jsom::{Value, World};

/// Outcome of a fingerprint scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FingerprintVerdict {
    /// True when the page would classify the visitor as a bot.
    pub is_bot: bool,
    /// Which checks fired.
    pub signals: Vec<String>,
}

/// Scans the page world for automation fingerprints.
pub fn scan_fingerprint(world: &mut World) -> FingerprintVerdict {
    let mut signals = Vec::new();
    let nav = world.resolve_navigator();

    // The decisive check: navigator.webdriver.
    match world.realm.get(nav, "webdriver") {
        Ok(Value::Bool(true)) => signals.push("navigator.webdriver === true".to_string()),
        Ok(Value::Undefined) => {
            // Deleting the property is itself anomalous in Firefox, where
            // it always exists (false for humans).
            signals.push("navigator.webdriver missing".to_string());
        }
        _ => {}
    }

    // Secondary surface: suspicious blank/headless markers.
    if let Ok(v) = world.realm.get(nav, "languages") {
        if v.is_undefined() {
            signals.push("navigator.languages missing".to_string());
        }
    }
    if let Ok(Value::Str(ua)) = world.realm.get(nav, "userAgent") {
        if ua.contains("Headless") {
            signals.push("HeadlessChrome-style user agent".to_string());
        }
    }
    // Headless environment leaks (why the paper crawls headful):
    // an empty plugin array on a desktop UA, and a window without
    // browser chrome.
    if let Ok(Value::Object(plugins)) = world.realm.get(nav, "plugins") {
        if let Ok(Value::Number(n)) = world.realm.get(plugins, "length") {
            if n == 0.0 {
                signals.push("navigator.plugins empty (headless)".to_string());
            }
        }
    }
    let window = world.window;
    if let (Ok(Value::Number(inner)), Ok(Value::Number(outer))) = (
        world.realm.get(window, "innerHeight"),
        world.realm.get(window, "outerHeight"),
    ) {
        if outer <= inner {
            signals.push("no window chrome (headless)".to_string());
        }
    }

    FingerprintVerdict {
        is_bot: !signals.is_empty(),
        signals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlisa_jsom::{build_firefox_world, BrowserFlavor};
    use hlisa_spoof::SpoofingExtension;

    #[test]
    fn regular_firefox_passes() {
        let mut w = build_firefox_world(BrowserFlavor::RegularFirefox);
        let v = scan_fingerprint(&mut w);
        assert!(!v.is_bot, "signals: {:?}", v.signals);
    }

    #[test]
    fn webdriver_firefox_is_flagged() {
        let mut w = build_firefox_world(BrowserFlavor::WebDriverFirefox);
        let v = scan_fingerprint(&mut w);
        assert!(v.is_bot);
        assert!(v.signals[0].contains("webdriver"));
    }

    #[test]
    fn headless_firefox_is_flagged_even_when_spoofed() {
        // The reason the paper runs "the Firefox browsers in headful
        // mode": hiding webdriver does nothing about environment leaks.
        let mut w = build_firefox_world(BrowserFlavor::HeadlessFirefox);
        SpoofingExtension::paper_default().inject(&mut w).unwrap();
        let v = scan_fingerprint(&mut w);
        assert!(v.is_bot);
        assert!(
            v.signals.iter().any(|s| s.contains("headless")),
            "{:?}",
            v.signals
        );
    }

    #[test]
    fn spoofed_webdriver_firefox_passes_the_scan() {
        let mut w = build_firefox_world(BrowserFlavor::WebDriverFirefox);
        SpoofingExtension::paper_default().inject(&mut w).unwrap();
        let v = scan_fingerprint(&mut w);
        assert!(!v.is_bot, "spoofing should defeat the webdriver check");
    }
}
