//! Replay detection — "perfect replayability" as a bot signal.
//!
//! §4.2's first simulator escalation is to stay within human limits
//! "including noise instead of perfect replayability": a scripted bot that
//! performs the same task twice produces *identical* interaction traces,
//! which no human ever does. This detector fingerprints each session's
//! trace (quantised, so measurement jitter doesn't hide an exact replay)
//! and flags clients whose sessions collide.

use hlisa_browser::recorder::EventRecorder;
use hlisa_stats::rngutil::splitmix64;

/// A compact fingerprint of one session's interaction trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceFingerprint(u64);

/// Fingerprints a recorded session: event kinds, quantised timestamps and
/// coordinates, hashed order-sensitively.
pub fn fingerprint_trace(recorder: &EventRecorder) -> TraceFingerprint {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        h = splitmix64(h ^ v);
    };
    for e in recorder.events() {
        mix(e.kind.name().len() as u64 ^ (e.kind.name().as_bytes()[0] as u64) << 8);
        // Quantise to 5 ms / 2 px: coarse enough to survive clock rounding,
        // fine enough that genuinely different sessions differ.
        mix((e.timestamp_ms / 5.0).round() as u64);
        if let hlisa_browser::EventPayload::Mouse { x, y, .. } = &e.payload {
            mix(((x / 2.0).round() as i64) as u64);
            mix(((y / 2.0).round() as i64) as u64);
        }
        if let hlisa_browser::EventPayload::Key { key, .. } = &e.payload {
            for b in key.as_bytes() {
                mix(u64::from(*b));
            }
        }
    }
    TraceFingerprint(h)
}

/// Tracks sessions per client and reports replays.
#[derive(Debug, Clone, Default)]
pub struct ReplayDetector {
    seen: Vec<TraceFingerprint>,
}

impl ReplayDetector {
    /// An empty detector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes one session. Returns `true` when the exact trace was seen
    /// before — the replay signal.
    pub fn observe(&mut self, recorder: &EventRecorder) -> bool {
        let fp = fingerprint_trace(recorder);
        if self.seen.contains(&fp) {
            return true;
        }
        self.seen.push(fp);
        false
    }

    /// Number of distinct traces observed.
    pub fn distinct_sessions(&self) -> usize {
        self.seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlisa_browser::dom::standard_test_page;
    use hlisa_browser::{Browser, BrowserConfig, RawInput};
    use hlisa_human::HumanAgent;

    /// A deterministic scripted task: fixed moves and clicks, like a bot
    /// replaying a recorded macro.
    fn scripted_session() -> EventRecorder {
        let mut b = Browser::open(
            BrowserConfig::webdriver(),
            standard_test_page("https://replay.test/", 3_000.0),
        );
        for i in 0..20 {
            b.input_after(
                20.0,
                RawInput::MouseMove {
                    x: 100.0 + f64::from(i) * 10.0,
                    y: 200.0,
                },
            );
        }
        b.input_after(
            10.0,
            RawInput::MouseDown {
                button: hlisa_browser::events::MouseButton::Left,
            },
        );
        b.input_after(
            50.0,
            RawInput::MouseUp {
                button: hlisa_browser::events::MouseButton::Left,
            },
        );
        b.recorder.clone()
    }

    fn human_session(seed: u64) -> EventRecorder {
        let mut b = Browser::open(
            BrowserConfig::regular(),
            standard_test_page("https://replay.test/", 3_000.0),
        );
        let mut h = HumanAgent::baseline(seed);
        let el = b.document().by_id("submit").unwrap();
        h.click_element(&mut b, el);
        b.recorder.clone()
    }

    #[test]
    fn scripted_replays_are_flagged() {
        let mut det = ReplayDetector::new();
        assert!(!det.observe(&scripted_session()), "first run is fresh");
        assert!(det.observe(&scripted_session()), "replay must be flagged");
        assert_eq!(det.distinct_sessions(), 1);
    }

    #[test]
    fn human_sessions_never_collide() {
        let mut det = ReplayDetector::new();
        for seed in 0..12 {
            assert!(
                !det.observe(&human_session(seed)),
                "human session {seed} flagged as replay"
            );
        }
        assert_eq!(det.distinct_sessions(), 12);
    }

    #[test]
    fn hlisa_sessions_never_collide() {
        use hlisa_stats::rngutil::derive_seed;
        // HLISA's whole point at this rung: noise instead of replayability.
        // Distinct seeds give distinct traces even for the same task.
        let mut det = ReplayDetector::new();
        for seed in 0..8 {
            let f = human_session(derive_seed(99, "hlisa-ish", seed));
            assert!(!det.observe(&f));
        }
    }

    #[test]
    fn fingerprint_is_deterministic() {
        assert_eq!(
            fingerprint_trace(&scripted_session()),
            fingerprint_trace(&scripted_session())
        );
        assert_ne!(
            fingerprint_trace(&human_session(1)),
            fingerprint_trace(&human_session(2))
        );
    }
}
