//! The WebDriver command surface (W3C WebDriver, the protocol OpenWPM's
//! Selenium speaks to geckodriver).
//!
//! §4: Selenium "communicates via the WebDriver protocol with Firefox's
//! browser engine (Gecko)". This module models that boundary as a typed
//! command/response dispatch, so higher layers (Selenium chains, HLISA)
//! can be written against the same endpoint set a real remote end offers
//! — and so tests can assert protocol-level behaviour (e.g. that Element
//! Click operates on the in-view centre, per spec §12.4.1).

use crate::actions::Action;
use crate::error::WebDriverError;
use crate::session::{By, ElementHandle, Session};
use hlisa_browser::events::MouseButton;
use hlisa_browser::Rect;
use hlisa_jsom::Value;

/// A WebDriver command (the endpoints the experiments exercise).
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `POST /session/{id}/element` — find an element.
    FindElement(By),
    /// `POST /session/{id}/element/{id}/click` — spec click: scroll into
    /// view, then pointer-move to the in-view centre, down, up.
    ElementClick(ElementHandle),
    /// `POST /session/{id}/element/{id}/value` — focus + type keys.
    ElementSendKeys(ElementHandle, String),
    /// `GET /session/{id}/element/{id}/text`.
    GetElementText(ElementHandle),
    /// `GET /session/{id}/element/{id}/rect`.
    GetElementRect(ElementHandle),
    /// `GET /session/{id}/element/{id}/displayed`.
    IsElementDisplayed(ElementHandle),
    /// `POST /session/{id}/actions` — low-level action dispatch.
    PerformActions(Vec<Action>),
    /// `DELETE /session/{id}/actions` — release all held inputs.
    ReleaseActions,
    /// `POST /session/{id}/execute/sync` — here restricted to property
    /// reads (`return <dotted.path>`), the probe scripts the study runs.
    ExecuteScriptGet(String),
}

/// A WebDriver response value.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// An element reference.
    Element(ElementHandle),
    /// A string value.
    Text(String),
    /// An element rect.
    Rect(Rect),
    /// A boolean.
    Bool(bool),
    /// A JS value (from script execution).
    Script(Value),
    /// `null` (commands with no return value).
    Null,
}

impl Session {
    /// Dispatches one WebDriver command.
    pub fn execute(&mut self, command: Command) -> Result<Response, WebDriverError> {
        match command {
            Command::FindElement(by) => self.find_element(by).map(Response::Element),
            Command::ElementClick(el) => {
                // Spec behaviour: scroll into view, move to in-view
                // centre, click — i.e. exactly Selenium's signature.
                self.ensure_interactable(el)?;
                let c = self.element_center(el);
                self.perform_actions(&[
                    Action::PointerMove {
                        x: c.x,
                        y: c.y,
                        duration_ms: 0.0,
                    },
                    Action::PointerDown(MouseButton::Left),
                    Action::PointerUp(MouseButton::Left),
                ]);
                Ok(Response::Null)
            }
            Command::ElementSendKeys(el, keys) => {
                self.ensure_interactable(el)?;
                let c = self.element_center(el);
                let mut actions = vec![
                    Action::PointerMove {
                        x: c.x,
                        y: c.y,
                        duration_ms: 0.0,
                    },
                    Action::PointerDown(MouseButton::Left),
                    Action::PointerUp(MouseButton::Left),
                ];
                for ch in keys.chars() {
                    actions.push(Action::KeyDown(ch.to_string()));
                    actions.push(Action::KeyUp(ch.to_string()));
                    actions.push(Action::Pause(crate::selenium::SELENIUM_KEY_INTERVAL_MS));
                }
                self.perform_actions(&actions);
                Ok(Response::Null)
            }
            Command::GetElementText(el) => Ok(Response::Text(self.element_text(el))),
            Command::GetElementRect(el) => Ok(Response::Rect(self.element_rect(el))),
            Command::IsElementDisplayed(el) => Ok(Response::Bool(self.is_displayed(el))),
            Command::PerformActions(actions) => {
                self.perform_actions(&actions);
                Ok(Response::Null)
            }
            Command::ReleaseActions => {
                let mut actions = Vec::new();
                for b in self.browser.pressed_buttons() {
                    actions.push(Action::PointerUp(b));
                }
                for k in self.browser.pressed_keys() {
                    actions.push(Action::KeyUp(k));
                }
                self.perform_actions(&actions);
                Ok(Response::Null)
            }
            Command::ExecuteScriptGet(path) => self.execute_script_get(&path).map(Response::Script),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlisa_browser::dom::standard_test_page;
    use hlisa_browser::{Browser, BrowserConfig, EventKind};

    fn session() -> Session {
        Session::new(Browser::open(
            BrowserConfig::webdriver(),
            standard_test_page("https://protocol.test/", 30_000.0),
        ))
    }

    #[test]
    fn find_and_click_via_protocol() {
        let mut s = session();
        let Response::Element(el) = s
            .execute(Command::FindElement(By::Id("submit".into())))
            .unwrap()
        else {
            panic!("expected element response");
        };
        s.execute(Command::ElementClick(el)).unwrap();
        let clicks = s.browser.recorder.clicks();
        assert_eq!(clicks.len(), 1);
        // Spec click lands on the centre with zero dwell — the Selenium
        // signature comes straight from the protocol.
        let c = s.element_center(el);
        assert_eq!((clicks[0].x, clicks[0].y), (c.x, c.y));
        assert!(clicks[0].dwell_ms <= 1.0);
    }

    #[test]
    fn send_keys_via_protocol() {
        let mut s = session();
        let Response::Element(el) = s
            .execute(Command::FindElement(By::Id("text_area".into())))
            .unwrap()
        else {
            panic!("expected element");
        };
        s.execute(Command::ElementSendKeys(el, "Wire".into()))
            .unwrap();
        assert_eq!(
            s.execute(Command::GetElementText(el)).unwrap(),
            Response::Text("Wire".into())
        );
    }

    #[test]
    fn element_introspection_endpoints() {
        let mut s = session();
        let Response::Element(el) = s
            .execute(Command::FindElement(By::Id("honey".into())))
            .unwrap()
        else {
            panic!("expected element");
        };
        assert_eq!(
            s.execute(Command::IsElementDisplayed(el)).unwrap(),
            Response::Bool(false)
        );
        let Response::Rect(r) = s.execute(Command::GetElementRect(el)).unwrap() else {
            panic!("expected rect");
        };
        assert!(r.width > 0.0);
        // Clicking the hidden element errors at the protocol level.
        assert!(matches!(
            s.execute(Command::ElementClick(el)),
            Err(WebDriverError::ElementNotInteractable(_))
        ));
    }

    #[test]
    fn release_actions_lets_go_of_held_input() {
        let mut s = session();
        s.execute(Command::PerformActions(vec![
            Action::PointerMove {
                x: 160.0,
                y: 500.0,
                duration_ms: 0.0,
            },
            Action::PointerDown(MouseButton::Left),
            Action::KeyDown("a".into()),
        ]))
        .unwrap();
        assert_eq!(s.browser.pressed_buttons().len(), 1);
        assert_eq!(s.browser.pressed_keys().len(), 1);
        s.execute(Command::ReleaseActions).unwrap();
        assert!(s.browser.pressed_buttons().is_empty());
        assert!(s.browser.pressed_keys().is_empty());
        assert_eq!(s.browser.recorder.of_kind(EventKind::MouseUp).len(), 1);
    }

    #[test]
    fn script_endpoint_reads_the_world() {
        let mut s = session();
        assert_eq!(
            s.execute(Command::ExecuteScriptGet("navigator.webdriver".into()))
                .unwrap(),
            Response::Script(Value::Bool(true))
        );
    }
}
