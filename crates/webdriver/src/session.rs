//! A WebDriver session over a simulated browser.

use crate::actions::{perform, Action, PointerMoveProfile};
use crate::audit::{ActionAuditor, AuditFinding};
use crate::error::WebDriverError;
use hlisa_browser::dom::NodeId;
use hlisa_browser::viewport::ScrollOrigin;
use hlisa_browser::{Browser, Point};
use hlisa_jsom::Value;

/// Element locator strategies (the ones the experiments use).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum By {
    /// By `id` attribute.
    Id(String),
    /// By tag name.
    Tag(String),
}

/// A remote element reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElementHandle {
    pub(crate) node: NodeId,
}

impl ElementHandle {
    /// The underlying DOM node.
    pub fn node(&self) -> NodeId {
        self.node
    }
}

/// A WebDriver session: owns the browser and mediates all interaction.
#[derive(Debug)]
pub struct Session {
    /// The automated browser.
    pub browser: Browser,
    profile: PointerMoveProfile,
    auditor: Option<Box<dyn ActionAuditor>>,
    findings: Vec<AuditFinding>,
}

impl Session {
    /// Starts a session on a browser (the geckodriver "new session" step).
    pub fn new(browser: Browser) -> Self {
        Self {
            browser,
            profile: PointerMoveProfile::selenium_default(),
            auditor: None,
            findings: Vec::new(),
        }
    }

    /// Installs a strict-mode auditor: every subsequent action batch is
    /// inspected for detectable tells *before* it reaches the browser,
    /// and script-level scrolls/clicks are reported to it as well.
    pub fn install_auditor(&mut self, auditor: Box<dyn ActionAuditor>) {
        self.auditor = Some(auditor);
        self.findings.clear();
    }

    /// Findings accumulated so far (without flushing end-of-session
    /// rules; see [`Session::finish_audit`]).
    pub fn audit_findings(&self) -> &[AuditFinding] {
        &self.findings
    }

    /// Flushes the auditor's end-of-session rules and drains all
    /// accumulated findings. The auditor stays installed.
    pub fn finish_audit(&mut self) -> Vec<AuditFinding> {
        if let Some(a) = self.auditor.as_mut() {
            self.findings.extend(a.finish());
        }
        std::mem::take(&mut self.findings)
    }

    /// Strict-mode verdict: flushes the audit and fails with
    /// [`WebDriverError::DetectableInteraction`] if anything was flagged.
    pub fn assert_undetectable(&mut self) -> Result<(), WebDriverError> {
        let findings = self.finish_audit();
        if findings.is_empty() {
            return Ok(());
        }
        let mut rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
        rules.dedup();
        Err(WebDriverError::DetectableInteraction(format!(
            "{} finding(s): {}",
            findings.len(),
            rules.join(", ")
        )))
    }

    /// The active pointer-move profile.
    pub fn pointer_profile(&self) -> PointerMoveProfile {
        self.profile
    }

    /// HLISA's `create_pointer_move` override: "For Selenium versions <4,
    /// we change this duration to 50 msec" (§4.1). The canonical value is
    /// [`crate::actions::HLISA_MIN_MOVE_MS`]; see [`Session::apply_hlisa_profile`].
    pub fn override_pointer_move_min_duration(&mut self, min_ms: f64) {
        assert!(min_ms >= 0.0 && min_ms.is_finite(), "bad duration {min_ms}");
        self.profile.min_duration_ms = min_ms;
    }

    /// Applies HLISA's patched pointer profile (the 50 ms floor) in one
    /// step, from the single source of truth in this crate.
    pub fn apply_hlisa_profile(&mut self) {
        self.override_pointer_move_min_duration(crate::actions::HLISA_MIN_MOVE_MS);
    }

    /// Binds the session's browser onto the context's clock, so every
    /// event timestamp the page observes comes from the same shared
    /// instant the rest of the simulation reads.
    pub fn bind_context(&mut self, ctx: &hlisa_sim::SimContext) {
        self.browser.bind_clock(ctx.clock());
    }

    /// `find element`.
    pub fn find_element(&self, by: By) -> Result<ElementHandle, WebDriverError> {
        let node = match &by {
            By::Id(id) => self.browser.document().by_id(id),
            By::Tag(tag) => self.browser.document().by_tag(tag).first().copied(),
        };
        node.map(|node| ElementHandle { node })
            .ok_or_else(|| WebDriverError::NoSuchElement(format!("{by:?}")))
    }

    /// Executes primitive actions ("perform actions" endpoint). With an
    /// auditor installed the batch is linted first — the lint judges the
    /// *requested* program, before the profile's duration floor papers
    /// over sub-minimum moves.
    pub fn perform_actions(&mut self, actions: &[Action]) -> f64 {
        if let Some(a) = self.auditor.as_mut() {
            self.findings.extend(a.audit_actions(actions));
        }
        perform(&mut self.browser, self.profile, actions)
    }

    /// The element's centre in page coordinates (WebDriver's "in-view
    /// centre point" modulo scrolling, which callers do first).
    pub fn element_center(&self, el: ElementHandle) -> Point {
        self.browser.element_center(el.node)
    }

    /// The element's box.
    pub fn element_rect(&self, el: ElementHandle) -> hlisa_browser::Rect {
        self.browser.document().element(el.node).rect
    }

    /// Whether the element is rendered.
    pub fn is_displayed(&self, el: ElementHandle) -> bool {
        self.browser.document().element(el.node).visible
    }

    /// Text content of the element.
    pub fn element_text(&self, el: ElementHandle) -> String {
        self.browser.document().element(el.node).text.clone()
    }

    /// Script-level scroll (what Selenium's `scrollIntoView` fallback
    /// does): arbitrary distance in one step, no wheel events (§4.1).
    pub fn scroll_into_view_script(&mut self, el: ElementHandle) {
        let before = self.browser.viewport.scroll_y();
        self.browser
            .scroll_element_into_view(el.node, ScrollOrigin::Script);
        let delta = self.browser.viewport.scroll_y() - before;
        if let Some(a) = self.auditor.as_mut() {
            self.findings.extend(a.note_script_scroll(delta));
        }
    }

    /// Script-level scroll by a relative distance (the
    /// `window.scrollBy()` path): one jump, no wheel events.
    pub fn scroll_by_script(&mut self, delta_px: f64) {
        let before = self.browser.viewport.scroll_y();
        self.browser.input(hlisa_browser::RawInput::ScrollFrom {
            origin: ScrollOrigin::Script,
            amount: (before + delta_px).max(0.0),
        });
        let applied = self.browser.viewport.scroll_y() - before;
        if let Some(a) = self.auditor.as_mut() {
            self.findings.extend(a.note_script_scroll(applied));
        }
    }

    /// Ensures the element can be interacted with, scrolling if needed.
    pub fn ensure_interactable(&mut self, el: ElementHandle) -> Result<(), WebDriverError> {
        if !self.is_displayed(el) {
            return Err(WebDriverError::ElementNotInteractable(format!(
                "element {:?} is hidden",
                el.node
            )));
        }
        let rect = self.element_rect(el);
        if !self.browser.viewport.is_y_visible(rect.center().y) {
            self.scroll_into_view_script(el);
        }
        Ok(())
    }

    /// JS-level `element.click()` — the fallback Selenium uses for
    /// obscured elements. Dispatches a click with no pointer activity and
    /// works on hidden elements; both properties are exactly what
    /// honey-element detectors watch for.
    pub fn script_click(&mut self, el: ElementHandle) {
        self.browser.synthetic_click(el.node);
        if let Some(a) = self.auditor.as_mut() {
            self.findings.extend(a.note_script_click());
        }
    }

    /// `execute script` for the reflective probes the study runs in pages:
    /// reads a dotted path from the page's JS world (e.g.
    /// `"navigator.webdriver"`).
    pub fn execute_script_get(&mut self, path: &str) -> Result<Value, WebDriverError> {
        let mut parts = path.split('.');
        let first = parts
            .next()
            .ok_or_else(|| WebDriverError::InvalidArgument("empty path".into()))?;
        let window = self.browser.world.window;
        let mut current = if first == "window" {
            Value::Object(window)
        } else {
            self.browser
                .world
                .realm
                .get(window, first)
                .map_err(|e| WebDriverError::InvalidArgument(e.to_string()))?
        };
        for part in parts {
            let id = current
                .as_object()
                .ok_or_else(|| WebDriverError::InvalidArgument(format!("{part} on non-object")))?;
            current = self
                .browser
                .world
                .realm
                .get(id, part)
                .map_err(|e| WebDriverError::InvalidArgument(e.to_string()))?;
        }
        Ok(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlisa_browser::dom::standard_test_page;
    use hlisa_browser::BrowserConfig;

    fn session() -> Session {
        Session::new(Browser::open(
            BrowserConfig::webdriver(),
            standard_test_page("https://example.test/", 30_000.0),
        ))
    }

    #[test]
    fn find_element_by_id_and_tag() {
        let s = session();
        assert!(s.find_element(By::Id("submit".into())).is_ok());
        assert!(s.find_element(By::Tag("button".into())).is_ok());
        assert!(matches!(
            s.find_element(By::Id("ghost".into())),
            Err(WebDriverError::NoSuchElement(_))
        ));
    }

    #[test]
    fn ensure_interactable_scrolls_offscreen_elements() {
        let mut s = session();
        let el = s.find_element(By::Id("section-end".into())).unwrap();
        assert!(!s.browser.viewport.is_y_visible(s.element_rect(el).y));
        s.ensure_interactable(el).unwrap();
        assert!(s.browser.viewport.is_y_visible(s.element_rect(el).y));
        // Script scroll leaves no wheel events.
        assert_eq!(s.browser.recorder.wheel_count(), 0);
    }

    #[test]
    fn ensure_interactable_rejects_hidden() {
        let mut s = session();
        let honey = s.find_element(By::Id("honey".into())).unwrap();
        assert!(matches!(
            s.ensure_interactable(honey),
            Err(WebDriverError::ElementNotInteractable(_))
        ));
    }

    #[test]
    fn execute_script_reads_navigator() {
        let mut s = session();
        let v = s.execute_script_get("navigator.webdriver").unwrap();
        assert_eq!(v, Value::Bool(true));
        let v2 = s.execute_script_get("window.navigator.userAgent").unwrap();
        assert!(v2.as_str().unwrap().contains("Firefox"));
    }

    #[test]
    fn script_click_dispatches_without_pointer() {
        let mut s = session();
        let honey = s.find_element(By::Id("honey".into())).unwrap();
        s.browser.advance(10.0);
        s.script_click(honey);
        use hlisa_browser::EventKind;
        assert_eq!(s.browser.recorder.of_kind(EventKind::Click).len(), 1);
        assert!(s.browser.recorder.of_kind(EventKind::MouseDown).is_empty());
    }

    #[test]
    fn pointer_profile_override() {
        let mut s = session();
        assert_eq!(s.pointer_profile().min_duration_ms, 250.0);
        s.override_pointer_move_min_duration(50.0);
        assert_eq!(s.pointer_profile().min_duration_ms, 50.0);
    }

    #[test]
    fn hlisa_profile_comes_from_the_shared_constant() {
        let mut s = session();
        s.apply_hlisa_profile();
        assert_eq!(
            s.pointer_profile().min_duration_ms,
            crate::actions::HLISA_MIN_MOVE_MS
        );
        assert_eq!(
            PointerMoveProfile::hlisa_patched().min_duration_ms,
            crate::actions::HLISA_MIN_MOVE_MS
        );
    }

    #[test]
    fn bind_context_unifies_session_and_context_time() {
        let mut s = session();
        let ctx = hlisa_sim::SimContext::new(1);
        s.bind_context(&ctx);
        ctx.clock().advance(40.0);
        assert_eq!(s.browser.now_ms(), 40.0);
        s.perform_actions(&[Action::Pause(10.0)]);
        assert_eq!(ctx.clock().now_ms(), 50.0);
    }

    #[test]
    #[should_panic(expected = "bad duration")]
    fn pointer_profile_rejects_nan() {
        session().override_pointer_move_min_duration(f64::NAN);
    }

    /// A minimal auditor for hook-wiring tests (the real rules live in
    /// `hlisa-lint`).
    #[derive(Debug, Default)]
    struct CountingAuditor;

    impl ActionAuditor for CountingAuditor {
        fn audit_actions(&mut self, actions: &[Action]) -> Vec<AuditFinding> {
            actions
                .iter()
                .filter(
                    |a| matches!(a, Action::PointerMove { duration_ms, .. } if *duration_ms <= 0.0),
                )
                .map(|_| AuditFinding {
                    rule: "test-zero-move",
                    detail: "zero-duration move requested".into(),
                })
                .collect()
        }

        fn note_script_scroll(&mut self, delta_px: f64) -> Vec<AuditFinding> {
            vec![AuditFinding {
                rule: "test-script-scroll",
                detail: format!("{delta_px:.0} px"),
            }]
        }

        fn note_script_click(&mut self) -> Vec<AuditFinding> {
            vec![AuditFinding {
                rule: "test-script-click",
                detail: "synthetic click".into(),
            }]
        }

        fn finish(&mut self) -> Vec<AuditFinding> {
            Vec::new()
        }
    }

    #[test]
    fn auditor_sees_batches_before_the_duration_floor() {
        let mut s = session();
        s.install_auditor(Box::new(CountingAuditor));
        // The profile floors this to 250 ms at execution time, but the
        // auditor must see the requested zero duration.
        s.perform_actions(&[Action::PointerMove {
            x: 50.0,
            y: 50.0,
            duration_ms: 0.0,
        }]);
        assert_eq!(s.audit_findings().len(), 1);
        assert_eq!(s.audit_findings()[0].rule, "test-zero-move");
        assert!(matches!(
            s.assert_undetectable(),
            Err(WebDriverError::DetectableInteraction(_))
        ));
        // The drain leaves a clean slate.
        assert!(s.assert_undetectable().is_ok());
    }

    #[test]
    fn script_scroll_and_click_reach_the_auditor() {
        let mut s = session();
        s.install_auditor(Box::new(CountingAuditor));
        s.scroll_by_script(1_000.0);
        assert!((s.browser.viewport.scroll_y() - 1_000.0).abs() < 1.0);
        assert_eq!(s.browser.recorder.wheel_count(), 0);
        let el = s.find_element(By::Id("section-end".into())).unwrap();
        s.scroll_into_view_script(el);
        let honey = s.find_element(By::Id("honey".into())).unwrap();
        s.script_click(honey);
        let rules: Vec<&str> = s.finish_audit().iter().map(|f| f.rule).collect();
        assert_eq!(
            rules,
            [
                "test-script-scroll",
                "test-script-scroll",
                "test-script-click"
            ]
        );
    }

    #[test]
    fn sessions_without_an_auditor_never_flag() {
        let mut s = session();
        s.scroll_by_script(2_000.0);
        s.perform_actions(&[Action::Pause(5.0)]);
        assert!(s.audit_findings().is_empty());
        assert!(s.assert_undetectable().is_ok());
    }
}
