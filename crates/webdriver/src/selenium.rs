//! Selenium's `ActionChains`, with its measurable behavioural signature.
//!
//! §4.1 characterises the stock Selenium interaction API:
//!
//! * cursor moves at uniform speed over a straight line,
//! * clicks land *exactly* in the centre of the element,
//! * button dwell time is negligible (press and release in the same
//!   millisecond),
//! * typing runs at 13,333 characters per minute, flawlessly, without
//!   pressing modifier keys for capitals,
//! * there is no scrolling API — the default method scrolls arbitrary
//!   distances in one event with no wheel events.
//!
//! This module reproduces that behaviour so that the same detectors that
//! judge HLISA can judge Selenium (Figures 1–2, the arms-race tournament).

use crate::actions::Action;
use crate::error::WebDriverError;
use crate::session::{ElementHandle, Session};
use hlisa_browser::events::MouseButton;

/// Selenium's typing rate (§4.1): 13,333 characters per minute.
pub const SELENIUM_CHARS_PER_MINUTE: f64 = 13_333.0;

/// Milliseconds per character at the Selenium typing rate (= 4.5 ms).
pub const SELENIUM_KEY_INTERVAL_MS: f64 = 60_000.0 / SELENIUM_CHARS_PER_MINUTE;

/// Queued Selenium-level action.
#[derive(Debug, Clone, PartialEq)]
enum ChainStep {
    MoveToElement(ElementHandle),
    MoveByOffset(f64, f64),
    Click(Option<ElementHandle>),
    ClickAndHold(Option<ElementHandle>),
    Release,
    DoubleClick(Option<ElementHandle>),
    ContextClick(Option<ElementHandle>),
    SendKeys(String),
    SendKeysToElement(ElementHandle, String),
    Pause(f64),
    DragAndDrop(ElementHandle, ElementHandle),
    MoveToElementWithOffset(ElementHandle, f64, f64),
    KeyDown(String),
    KeyUp(String),
}

/// The classic Selenium `ActionChains` builder.
#[derive(Debug, Default)]
pub struct SeleniumActionChains {
    steps: Vec<ChainStep>,
}

impl SeleniumActionChains {
    /// An empty chain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues a move to the element's centre.
    pub fn move_to_element(mut self, el: ElementHandle) -> Self {
        self.steps.push(ChainStep::MoveToElement(el));
        self
    }

    /// Queues a relative move.
    pub fn move_by_offset(mut self, dx: f64, dy: f64) -> Self {
        self.steps.push(ChainStep::MoveByOffset(dx, dy));
        self
    }

    /// Queues a click (optionally moving to an element first).
    pub fn click(mut self, el: Option<ElementHandle>) -> Self {
        self.steps.push(ChainStep::Click(el));
        self
    }

    /// Queues press-without-release.
    pub fn click_and_hold(mut self, el: Option<ElementHandle>) -> Self {
        self.steps.push(ChainStep::ClickAndHold(el));
        self
    }

    /// Queues a button release.
    pub fn release(mut self) -> Self {
        self.steps.push(ChainStep::Release);
        self
    }

    /// Queues a double click.
    pub fn double_click(mut self, el: Option<ElementHandle>) -> Self {
        self.steps.push(ChainStep::DoubleClick(el));
        self
    }

    /// Queues a right-button click.
    pub fn context_click(mut self, el: Option<ElementHandle>) -> Self {
        self.steps.push(ChainStep::ContextClick(el));
        self
    }

    /// Queues typing into the focused element.
    pub fn send_keys(mut self, keys: &str) -> Self {
        self.steps.push(ChainStep::SendKeys(keys.to_string()));
        self
    }

    /// Queues click-then-type on an element.
    pub fn send_keys_to_element(mut self, el: ElementHandle, keys: &str) -> Self {
        self.steps
            .push(ChainStep::SendKeysToElement(el, keys.to_string()));
        self
    }

    /// Queues a pause (seconds, matching the Python API).
    pub fn pause(mut self, seconds: f64) -> Self {
        self.steps.push(ChainStep::Pause(seconds * 1000.0));
        self
    }

    /// Queues a drag-and-drop.
    pub fn drag_and_drop(mut self, source: ElementHandle, target: ElementHandle) -> Self {
        self.steps.push(ChainStep::DragAndDrop(source, target));
        self
    }

    /// Queues a move relative to the element's top-left corner.
    pub fn move_to_element_with_offset(mut self, el: ElementHandle, x: f64, y: f64) -> Self {
        self.steps
            .push(ChainStep::MoveToElementWithOffset(el, x, y));
        self
    }

    /// Queues a bare modifier/key press (held until `key_up`).
    pub fn key_down(mut self, key: &str) -> Self {
        self.steps.push(ChainStep::KeyDown(key.to_string()));
        self
    }

    /// Queues a key release.
    pub fn key_up(mut self, key: &str) -> Self {
        self.steps.push(ChainStep::KeyUp(key.to_string()));
        self
    }

    /// Clears the queue.
    pub fn reset_actions(mut self) -> Self {
        self.steps.clear();
        self
    }

    /// Number of queued steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Executes the chain.
    pub fn perform(self, session: &mut Session) -> Result<(), WebDriverError> {
        for step in &self.steps {
            match step {
                ChainStep::MoveToElement(el) => move_to_element(session, *el)?,
                ChainStep::MoveByOffset(dx, dy) => {
                    let p = session.browser.mouse_position();
                    let actions = [Action::PointerMove {
                        x: p.x + dx,
                        y: p.y + dy,
                        duration_ms: 0.0, // floor applies
                    }];
                    session.perform_actions(&actions);
                }
                ChainStep::Click(el) => {
                    if let Some(el) = el {
                        move_to_element(session, *el)?;
                    }
                    click_actions(session, MouseButton::Left, 1);
                }
                ChainStep::ClickAndHold(el) => {
                    if let Some(el) = el {
                        move_to_element(session, *el)?;
                    }
                    session.perform_actions(&[Action::PointerDown(MouseButton::Left)]);
                }
                ChainStep::Release => {
                    session.perform_actions(&[Action::PointerUp(MouseButton::Left)]);
                }
                ChainStep::DoubleClick(el) => {
                    if let Some(el) = el {
                        move_to_element(session, *el)?;
                    }
                    click_actions(session, MouseButton::Left, 2);
                }
                ChainStep::ContextClick(el) => {
                    if let Some(el) = el {
                        move_to_element(session, *el)?;
                    }
                    click_actions(session, MouseButton::Right, 1);
                }
                ChainStep::SendKeys(keys) => send_keys_actions(session, keys),
                ChainStep::SendKeysToElement(el, keys) => {
                    move_to_element(session, *el)?;
                    click_actions(session, MouseButton::Left, 1);
                    send_keys_actions(session, keys);
                }
                ChainStep::Pause(ms) => {
                    session.perform_actions(&[Action::Pause(*ms)]);
                }
                ChainStep::MoveToElementWithOffset(el, dx, dy) => {
                    session.ensure_interactable(*el)?;
                    let r = session.element_rect(*el);
                    session.perform_actions(&[Action::PointerMove {
                        x: r.x + dx,
                        y: r.y + dy,
                        duration_ms: 0.0,
                    }]);
                }
                ChainStep::KeyDown(k) => {
                    session.perform_actions(&[Action::KeyDown(k.clone())]);
                }
                ChainStep::KeyUp(k) => {
                    session.perform_actions(&[Action::KeyUp(k.clone())]);
                }
                ChainStep::DragAndDrop(src, dst) => {
                    move_to_element(session, *src)?;
                    session.perform_actions(&[Action::PointerDown(MouseButton::Left)]);
                    move_to_element(session, *dst)?;
                    session.perform_actions(&[Action::PointerUp(MouseButton::Left)]);
                }
            }
        }
        Ok(())
    }
}

/// Selenium's move: scroll into view if needed, then one straight
/// uniform-speed move to the *exact centre*.
fn move_to_element(session: &mut Session, el: ElementHandle) -> Result<(), WebDriverError> {
    session.ensure_interactable(el)?;
    let c = session.element_center(el);
    session.perform_actions(&[Action::PointerMove {
        x: c.x,
        y: c.y,
        duration_ms: 0.0, // Selenium requests "as fast as allowed"
    }]);
    Ok(())
}

/// Zero-dwell clicks: down and up in the same simulated instant; repeat
/// clicks are separated by one WebDriver tick (10 ms — far inside any
/// double-click window).
fn click_actions(session: &mut Session, button: MouseButton, count: usize) {
    for i in 0..count {
        if i > 0 {
            session.perform_actions(&[Action::Pause(10.0)]);
        }
        session.perform_actions(&[Action::PointerDown(button), Action::PointerUp(button)]);
    }
}

/// Selenium typing: one character per 4.5 ms, zero dwell, no modifiers —
/// capitals are sent directly as their `key` value.
fn send_keys_actions(session: &mut Session, keys: &str) {
    let mut actions = Vec::with_capacity(keys.chars().count() * 3);
    for ch in keys.chars() {
        actions.push(Action::KeyDown(ch.to_string()));
        actions.push(Action::KeyUp(ch.to_string()));
        actions.push(Action::Pause(SELENIUM_KEY_INTERVAL_MS));
    }
    session.perform_actions(&actions);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::By;
    use hlisa_browser::dom::standard_test_page;
    use hlisa_browser::events::EventKind;
    use hlisa_browser::{Browser, BrowserConfig};

    fn session() -> Session {
        Session::new(Browser::open(
            BrowserConfig::webdriver(),
            standard_test_page("https://example.test/", 30_000.0),
        ))
    }

    #[test]
    fn click_lands_exactly_on_center() {
        let mut s = session();
        let el = s.find_element(By::Id("submit".into())).unwrap();
        let center = s.element_center(el);
        SeleniumActionChains::new()
            .click(Some(el))
            .perform(&mut s)
            .unwrap();
        let clicks = s.browser.recorder.clicks();
        assert_eq!(clicks.len(), 1);
        assert_eq!(clicks[0].x, center.x);
        assert_eq!(clicks[0].y, center.y);
    }

    #[test]
    fn click_dwell_is_negligible() {
        let mut s = session();
        let el = s.find_element(By::Id("submit".into())).unwrap();
        SeleniumActionChains::new()
            .click(Some(el))
            .perform(&mut s)
            .unwrap();
        let clicks = s.browser.recorder.clicks();
        assert!(clicks[0].dwell_ms <= 1.0, "dwell {}", clicks[0].dwell_ms);
    }

    #[test]
    fn typing_rate_matches_13333_cpm() {
        let mut s = session();
        let el = s.find_element(By::Id("text_area".into())).unwrap();
        let text = "The quick brown fox jumps over the lazy dog";
        SeleniumActionChains::new()
            .send_keys_to_element(el, text)
            .perform(&mut s)
            .unwrap();
        assert_eq!(s.browser.document().element(el.node()).text, text);
        let strokes = s.browser.recorder.keystrokes();
        assert_eq!(strokes.len(), text.chars().count());
        // Every dwell is ≤ 1 observable ms.
        assert!(strokes.iter().all(|k| k.dwell_ms <= 1.0));
        // Overall rate ≈ 13,333 cpm (4.5 ms/char).
        let span = strokes.last().unwrap().down_t - strokes[0].down_t;
        let per_char = span / (strokes.len() - 1) as f64;
        assert!((per_char - 4.5).abs() < 1.0, "per_char={per_char}");
    }

    #[test]
    fn capitals_typed_without_shift() {
        let mut s = session();
        let el = s.find_element(By::Id("text_area".into())).unwrap();
        SeleniumActionChains::new()
            .send_keys_to_element(el, "Ab")
            .perform(&mut s)
            .unwrap();
        let shift_downs = s
            .browser
            .recorder
            .events()
            .iter()
            .filter(|e| {
                e.kind == EventKind::KeyDown
                    && matches!(&e.payload,
                        hlisa_browser::EventPayload::Key { key, .. } if key == "Shift")
            })
            .count();
        assert_eq!(shift_downs, 0);
        assert_eq!(s.browser.document().element(el.node()).text, "Ab");
    }

    #[test]
    fn double_click_fires_dblclick() {
        let mut s = session();
        let el = s.find_element(By::Id("submit".into())).unwrap();
        SeleniumActionChains::new()
            .double_click(Some(el))
            .perform(&mut s)
            .unwrap();
        assert_eq!(s.browser.recorder.of_kind(EventKind::DblClick).len(), 1);
    }

    #[test]
    fn context_click_uses_right_button() {
        let mut s = session();
        let el = s.find_element(By::Id("submit".into())).unwrap();
        SeleniumActionChains::new()
            .context_click(Some(el))
            .perform(&mut s)
            .unwrap();
        assert_eq!(s.browser.recorder.of_kind(EventKind::ContextMenu).len(), 1);
    }

    #[test]
    fn drag_and_drop_sequences_press_move_release() {
        let mut s = session();
        let src = s.find_element(By::Id("submit".into())).unwrap();
        let dst = s.find_element(By::Id("jump".into())).unwrap();
        SeleniumActionChains::new()
            .drag_and_drop(src, dst)
            .perform(&mut s)
            .unwrap();
        let evs = s.browser.recorder.events();
        let down = evs
            .iter()
            .position(|e| e.kind == EventKind::MouseDown)
            .unwrap();
        let up = evs
            .iter()
            .position(|e| e.kind == EventKind::MouseUp)
            .unwrap();
        assert!(down < up);
        // Pointer ends at the target centre.
        let c = s.element_center(dst);
        assert_eq!(s.browser.mouse_position(), c);
    }

    #[test]
    fn offset_move_and_modifier_keys() {
        let mut s = session();
        let el = s.find_element(By::Id("submit".into())).unwrap();
        let r = s.element_rect(el);
        SeleniumActionChains::new()
            .move_to_element_with_offset(el, 3.0, 4.0)
            .key_down("Shift")
            .key_up("Shift")
            .perform(&mut s)
            .unwrap();
        let p = s.browser.mouse_position();
        assert_eq!((p.x, p.y), (r.x + 3.0, r.y + 4.0));
        assert!(s.browser.pressed_keys().is_empty());
        let shift_downs = s
            .browser
            .recorder
            .events()
            .iter()
            .filter(|e| e.kind == EventKind::KeyDown)
            .count();
        assert_eq!(shift_downs, 1);
    }

    #[test]
    fn chain_builder_reset() {
        let chain = SeleniumActionChains::new()
            .send_keys("x")
            .pause(1.0)
            .reset_actions();
        assert!(chain.is_empty());
        assert_eq!(chain.len(), 0);
    }

    #[test]
    fn clicking_hidden_element_errors() {
        let mut s = session();
        let honey = s.find_element(By::Id("honey".into())).unwrap();
        let err = SeleniumActionChains::new()
            .click(Some(honey))
            .perform(&mut s)
            .unwrap_err();
        assert!(matches!(err, WebDriverError::ElementNotInteractable(_)));
    }

    #[test]
    fn offscreen_click_scrolls_scriptwise_without_wheel() {
        let mut s = session();
        let el = s.find_element(By::Id("section-end".into())).unwrap();
        SeleniumActionChains::new()
            .click(Some(el))
            .perform(&mut s)
            .unwrap();
        assert_eq!(s.browser.recorder.wheel_count(), 0);
        assert_eq!(s.browser.recorder.clicks().len(), 1);
    }
}
