//! WebDriver layer: protocol-level action primitives plus Selenium's
//! high-level interaction API with its recognisable behavioural signature.
//!
//! OpenWPM "does not offer its own interaction API, but simply exposes the
//! Selenium interaction API, which communicates via the WebDriver protocol
//! with Firefox's browser engine" (§4). This crate reproduces that stack
//! over [`hlisa_browser`]:
//!
//! * [`actions`] — the fine-grained W3C action primitives
//!   (`move_to_offset`-style pointer moves, pointer/key down/up, pauses).
//!   These are the functions HLISA calls, "making HLISA resistant to
//!   changes in the Selenium source code that do not affect the Selenium
//!   API" (§4.1). The primitive pointer move enforces Selenium's minimum
//!   move duration, which [`Session::override_pointer_move_min_duration`]
//!   lowers to 50 ms exactly as HLISA patches `create_pointer_move`.
//! * [`session`] — a WebDriver session: element lookup, script-level
//!   scrolling, and command dispatch.
//! * [`selenium`] — `ActionChains` with Selenium's behavioural signature:
//!   straight uniform-speed cursor moves, clicks dead-centre with no dwell,
//!   13,333 cpm flawless typing without modifier keys, and script scrolling
//!   of arbitrary distance with no wheel events.

pub mod actions;
pub mod audit;
pub mod error;
pub mod protocol;
pub mod selenium;
pub mod session;

pub use actions::{Action, PointerMoveProfile, HLISA_MIN_MOVE_MS};
pub use audit::{ActionAuditor, AuditFinding};
pub use error::WebDriverError;
pub use protocol::{Command, Response};
pub use selenium::SeleniumActionChains;
pub use session::{By, ElementHandle, Session};
