//! Strict-mode auditing hooks.
//!
//! Table 1's lesson is that an interaction program's detectable side
//! effects are knowable *before* the program runs. This module lets a
//! [`crate::Session`] carry an auditor that inspects every action batch
//! on its way to the browser (and is told about script-level scrolls and
//! clicks, which bypass the action pipeline entirely). The auditor
//! implementation lives in `hlisa-lint`; keeping only the trait here
//! avoids a dependency cycle between the driver and the linter.

use crate::actions::Action;
use std::fmt;

/// One detectability finding raised by an auditor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditFinding {
    /// Stable rule id (e.g. `"sub-min-move"`).
    pub rule: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

impl fmt::Display for AuditFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.rule, self.detail)
    }
}

/// Inspects interaction programs for detectable tells before they reach
/// the browser. Stateful: rules that span batches (typing cadence, scroll
/// runs, click approach) accumulate across calls until [`finish`].
///
/// [`finish`]: ActionAuditor::finish
pub trait ActionAuditor: fmt::Debug {
    /// Audits a batch of actions about to be performed. Returns findings
    /// that became decidable with this batch.
    fn audit_actions(&mut self, actions: &[Action]) -> Vec<AuditFinding>;

    /// Notes a script-origin scroll of `delta_px` (positive = down).
    fn note_script_scroll(&mut self, delta_px: f64) -> Vec<AuditFinding>;

    /// Notes a synthetic `element.click()` dispatch.
    fn note_script_click(&mut self) -> Vec<AuditFinding>;

    /// Flushes rules that only resolve at end of session (e.g. a
    /// still-open scroll run) and returns the last findings.
    fn finish(&mut self) -> Vec<AuditFinding>;
}
