//! WebDriver error codes (the subset the experiments can hit).

use std::fmt;

/// A WebDriver-level error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WebDriverError {
    /// `no such element` — locator matched nothing.
    NoSuchElement(String),
    /// `element not interactable` — e.g. hidden element.
    ElementNotInteractable(String),
    /// `invalid argument`.
    InvalidArgument(String),
    /// `move target out of bounds` — pointer moved outside the page.
    MoveTargetOutOfBounds(String),
    /// Strict-mode refusal: the session's auditor flagged the interaction
    /// program as detectable (non-standard; raised only when an
    /// [`crate::audit::ActionAuditor`] is installed).
    DetectableInteraction(String),
}

impl fmt::Display for WebDriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WebDriverError::NoSuchElement(m) => write!(f, "no such element: {m}"),
            WebDriverError::ElementNotInteractable(m) => {
                write!(f, "element not interactable: {m}")
            }
            WebDriverError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            WebDriverError::MoveTargetOutOfBounds(m) => {
                write!(f, "move target out of bounds: {m}")
            }
            WebDriverError::DetectableInteraction(m) => {
                write!(f, "detectable interaction: {m}")
            }
        }
    }
}

impl std::error::Error for WebDriverError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_webdriver_spec_wording() {
        assert!(WebDriverError::NoSuchElement("#x".into())
            .to_string()
            .starts_with("no such element"));
        assert!(WebDriverError::ElementNotInteractable("#x".into())
            .to_string()
            .contains("not interactable"));
    }
}
