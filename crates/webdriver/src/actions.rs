//! Fine-grained W3C action primitives.
//!
//! These correspond to the Selenium internals HLISA builds on:
//! `move_to_offset(x, y)`, `key_down()`, `key_up()`, pointer button
//! actions, and pauses (§4.1 "Implementation and deployment"). A pointer
//! move has a duration and is executed as a straight-line, uniform-speed
//! interpolation — curvature only ever comes from *composing many short
//! moves*, which is precisely how HLISA expresses human-like trajectories.

use hlisa_browser::events::MouseButton;
use hlisa_browser::{Browser, RawInput};

/// HLISA's patched minimum pointer-move duration (ms): "For Selenium
/// versions <4, we change this duration to 50 msec" (§4.1). This constant
/// is the single source of truth — the patched [`PointerMoveProfile`] and
/// the HLISA chain's `create_pointer_move` override both derive from it.
pub const HLISA_MIN_MOVE_MS: f64 = 50.0;

/// How pointer moves are synthesised.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointerMoveProfile {
    /// Minimum duration of any single pointer move. Selenium (<4) enforces
    /// a lower bound "that is too high for simulating human interaction";
    /// HLISA overrides the internal `create_pointer_move()` to 50 ms.
    pub min_duration_ms: f64,
    /// Interval between interpolated raw pointer samples during a move.
    pub sample_interval_ms: f64,
}

impl PointerMoveProfile {
    /// Stock Selenium: 250 ms minimum move duration.
    pub fn selenium_default() -> Self {
        Self {
            min_duration_ms: 250.0,
            sample_interval_ms: 10.0,
        }
    }

    /// HLISA's patched profile: [`HLISA_MIN_MOVE_MS`] minimum move
    /// duration.
    pub fn hlisa_patched() -> Self {
        Self {
            min_duration_ms: HLISA_MIN_MOVE_MS,
            sample_interval_ms: 10.0,
        }
    }
}

/// One primitive action.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Move the pointer to absolute page coordinates over `duration_ms`
    /// (clamped up to the profile's minimum).
    PointerMove {
        /// Target x.
        x: f64,
        /// Target y.
        y: f64,
        /// Requested duration.
        duration_ms: f64,
    },
    /// Press a pointer button.
    PointerDown(MouseButton),
    /// Release a pointer button.
    PointerUp(MouseButton),
    /// Press a key.
    KeyDown(String),
    /// Release a key.
    KeyUp(String),
    /// Do nothing for a duration.
    Pause(f64),
    /// One wheel tick (HLISA's scroll extension reaches the browser
    /// through this; stock Selenium never emits it).
    WheelTick(i32),
}

/// Executes a list of primitive actions against a browser, advancing its
/// simulated clock. Returns the total simulated time consumed.
pub fn perform(browser: &mut Browser, profile: PointerMoveProfile, actions: &[Action]) -> f64 {
    let start = browser.now_ms();
    for action in actions {
        match action {
            Action::PointerMove { x, y, duration_ms } => {
                let duration = duration_ms.max(profile.min_duration_ms);
                let from = browser.mouse_position();
                let steps = (duration / profile.sample_interval_ms).ceil().max(1.0) as usize;
                for i in 1..=steps {
                    let t = i as f64 / steps as f64;
                    // Uniform-speed straight line: position is linear in t.
                    let p = from.lerp(hlisa_browser::Point::new(*x, *y), t);
                    browser.advance(duration / steps as f64);
                    browser.input(RawInput::MouseMove { x: p.x, y: p.y });
                }
            }
            Action::PointerDown(b) => browser.input(RawInput::MouseDown { button: *b }),
            Action::PointerUp(b) => browser.input(RawInput::MouseUp { button: *b }),
            Action::KeyDown(k) => browser.input(RawInput::KeyDown { key: k.clone() }),
            Action::KeyUp(k) => browser.input(RawInput::KeyUp { key: k.clone() }),
            Action::Pause(ms) => browser.advance(*ms),
            Action::WheelTick(dir) => browser.input(RawInput::WheelTick { direction: *dir }),
        }
    }
    browser.now_ms() - start
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlisa_browser::dom::standard_test_page;
    use hlisa_browser::{Browser, BrowserConfig};

    fn browser() -> Browser {
        Browser::open(
            BrowserConfig::webdriver(),
            standard_test_page("https://example.test/", 30_000.0),
        )
    }

    #[test]
    fn pointer_move_is_straight_and_uniform() {
        let mut b = browser();
        perform(
            &mut b,
            PointerMoveProfile::selenium_default(),
            &[Action::PointerMove {
                x: 500.0,
                y: 250.0,
                duration_ms: 250.0,
            }],
        );
        let trace = b.recorder.cursor_trace();
        assert!(trace.len() >= 5, "trace too sparse: {}", trace.len());
        // Collinearity with the straight line y = x/2 from (0, 0).
        for s in trace {
            assert!((s.y - s.x / 2.0).abs() < 1e-6, "not straight at {s:?}");
        }
        // Uniform speed: equal distance per equal time.
        let speeds: Vec<f64> = trace
            .windows(2)
            .map(|w| {
                let d = ((w[1].x - w[0].x).powi(2) + (w[1].y - w[0].y).powi(2)).sqrt();
                d / (w[1].t - w[0].t).max(1.0)
            })
            .collect();
        let mean = speeds.iter().sum::<f64>() / speeds.len() as f64;
        for s in &speeds {
            assert!(
                (s - mean).abs() / mean < 0.25,
                "speed wobble: {s} vs {mean}"
            );
        }
    }

    #[test]
    fn min_duration_is_enforced() {
        let mut b = browser();
        let consumed = perform(
            &mut b,
            PointerMoveProfile::selenium_default(),
            &[Action::PointerMove {
                x: 10.0,
                y: 0.0,
                duration_ms: 1.0, // requested far below the floor
            }],
        );
        assert!(consumed >= 250.0, "consumed {consumed}");
    }

    #[test]
    fn hlisa_profile_lowers_the_floor() {
        let mut b = browser();
        let consumed = perform(
            &mut b,
            PointerMoveProfile::hlisa_patched(),
            &[Action::PointerMove {
                x: 10.0,
                y: 0.0,
                duration_ms: 1.0,
            }],
        );
        assert!((50.0..200.0).contains(&consumed), "consumed {consumed}");
    }

    #[test]
    fn key_actions_reach_the_page() {
        let mut b = browser();
        // Focus the input first.
        let input = b.document().by_id("text_area").unwrap();
        let c = b.element_center(input);
        perform(
            &mut b,
            PointerMoveProfile::selenium_default(),
            &[
                Action::PointerMove {
                    x: c.x,
                    y: c.y,
                    duration_ms: 250.0,
                },
                Action::PointerDown(MouseButton::Left),
                Action::PointerUp(MouseButton::Left),
                Action::KeyDown("a".into()),
                Action::KeyUp("a".into()),
                Action::Pause(20.0),
                Action::KeyDown("b".into()),
                Action::KeyUp("b".into()),
            ],
        );
        assert_eq!(b.document().element(input).text, "ab");
    }

    #[test]
    fn pause_consumes_exact_time() {
        let mut b = browser();
        let consumed = perform(
            &mut b,
            PointerMoveProfile::selenium_default(),
            &[Action::Pause(123.0)],
        );
        assert_eq!(consumed, 123.0);
    }

    #[test]
    fn wheel_tick_action_scrolls() {
        let mut b = browser();
        perform(
            &mut b,
            PointerMoveProfile::hlisa_patched(),
            &[
                Action::WheelTick(1),
                Action::Pause(100.0),
                Action::WheelTick(1),
            ],
        );
        assert_eq!(b.viewport.scroll_y(), 114.0);
    }
}
