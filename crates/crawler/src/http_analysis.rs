//! HTTP status-code analysis — Figure 4 / Appendix B.
//!
//! §3.2: "To identify blocking at HTTP level, we look at status codes in
//! HTTP responses. We separated these by first and third-party responses.
//! We further use Wilcoxon Matched-Pairs signed-Rank Test with a confidence
//! interval of 95% to test for significance." The paper finds a significant
//! decrease in first-party errors with the extension (p = 0.004), driven by
//! 403 and 503.

use crate::campaign::{Campaign, MachineRun};
use hlisa_stats::wilcoxon::{wilcoxon_signed_rank, Alternative};
use hlisa_stats::WilcoxonResult;
use std::collections::BTreeMap;

/// Per-code counts for one traffic class: code → (machine 1, machine 2).
pub type CodeCounts = BTreeMap<u16, (u64, u64)>;

/// The full HTTP report.
#[derive(Debug, Clone, PartialEq)]
pub struct HttpReport {
    /// First-party response counts by status code.
    pub first_party: CodeCounts,
    /// Third-party response counts by status code.
    pub third_party: CodeCounts,
    /// Wilcoxon matched-pairs test on per-site first-party error counts
    /// (machine 1 vs machine 2). `None` when every pair ties.
    pub wilcoxon_first_party: Option<WilcoxonResult>,
    /// Same for third-party errors.
    pub wilcoxon_third_party: Option<WilcoxonResult>,
}

impl HttpReport {
    /// Codes with more than `min` total occurrences (Fig. 4 charts codes
    /// "with more than 100 occurrences"), restricted to errors when
    /// `errors_only`.
    pub fn frequent_codes(&self, counts: &CodeCounts, min: u64, errors_only: bool) -> Vec<u16> {
        counts
            .iter()
            .filter(|(code, (a, b))| a + b > min && (!errors_only || **code >= 400))
            .map(|(code, _)| *code)
            .collect()
    }
}

fn tally(run: &MachineRun, third: bool, into: &mut CodeCounts, slot: usize) {
    for site in &run.sites {
        // Only completed visits are comparable across machines; transient
        // failures are web dynamics, not bot detection.
        for o in site.outcomes.iter().filter(|o| o.successful) {
            let codes = if third {
                &o.third_party
            } else {
                &o.first_party
            };
            for c in codes {
                let entry = into.entry(*c).or_insert((0, 0));
                if slot == 0 {
                    entry.0 += 1;
                } else {
                    entry.1 += 1;
                }
            }
        }
    }
}

/// Mean errors per successful visit, per site. Normalising by completed
/// visits keeps the pairing fair when the two machines completed different
/// numbers of visits to a site (web dynamics, not detection).
fn per_site_error_counts(run: &MachineRun, third: bool) -> Vec<f64> {
    run.sites
        .iter()
        .map(|site| {
            let ok = site.successful_visits();
            if ok == 0 {
                return 0.0;
            }
            let errors = site
                .outcomes
                .iter()
                .filter(|o| o.successful)
                .flat_map(|o| {
                    if third {
                        &o.third_party
                    } else {
                        &o.first_party
                    }
                })
                .filter(|c| **c >= 400)
                .count();
            errors as f64 / ok as f64
        })
        .collect()
}

/// Builds the HTTP report from a campaign.
pub fn analyze_http(campaign: &Campaign) -> HttpReport {
    let mut first_party = CodeCounts::new();
    let mut third_party = CodeCounts::new();
    tally(&campaign.openwpm, false, &mut first_party, 0);
    tally(&campaign.spoofed, false, &mut first_party, 1);
    tally(&campaign.openwpm, true, &mut third_party, 0);
    tally(&campaign.spoofed, true, &mut third_party, 1);

    let fp1 = per_site_error_counts(&campaign.openwpm, false);
    let fp2 = per_site_error_counts(&campaign.spoofed, false);
    let tp1 = per_site_error_counts(&campaign.openwpm, true);
    let tp2 = per_site_error_counts(&campaign.spoofed, true);

    HttpReport {
        first_party,
        third_party,
        wilcoxon_first_party: wilcoxon_signed_rank(&fp1, &fp2, Alternative::TwoSided),
        wilcoxon_third_party: wilcoxon_signed_rank(&tp1, &tp2, Alternative::TwoSided),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, CampaignConfig};
    use hlisa_web::PopulationConfig;

    fn campaign() -> Campaign {
        run_campaign(&CampaignConfig {
            seed: 5,
            population: PopulationConfig {
                n_sites: 200,
                unreachable_sites: 15,
                ..PopulationConfig::default()
            },
            visits_per_site: 8,
            instances: 8,
            world_cache: true,
            plan_interactions: false,
        })
    }

    #[test]
    fn first_party_errors_drop_significantly_with_spoofing() {
        let r = analyze_http(&campaign());
        let w = r.wilcoxon_first_party.expect("differences exist");
        assert!(w.significant_at(0.05), "p = {}", w.p_value);
        // Direction: machine 1 (OpenWPM) has more errors.
        let err1: u64 = r
            .first_party
            .iter()
            .filter(|(c, _)| **c >= 400)
            .map(|(_, (a, _))| *a)
            .sum();
        let err2: u64 = r
            .first_party
            .iter()
            .filter(|(c, _)| **c >= 400)
            .map(|(_, (_, b))| *b)
            .sum();
        assert!(err1 > err2, "errors {err1} vs {err2}");
    }

    #[test]
    fn decrease_is_driven_by_403_and_503() {
        let r = analyze_http(&campaign());
        let (a403, b403) = r.first_party.get(&403).copied().unwrap_or((0, 0));
        let (a503, b503) = r.first_party.get(&503).copied().unwrap_or((0, 0));
        assert!(a403 > b403 * 2, "403: {a403} vs {b403}");
        assert!(a503 > b503 * 2, "503: {a503} vs {b503}");
    }

    #[test]
    fn third_party_shows_no_notable_difference() {
        let r = analyze_http(&campaign());
        if let Some(w) = r.wilcoxon_third_party {
            // Paper: "only a notable difference in first-party errors".
            // (Ad hiding removes *successful* third-party traffic, so
            // error counts stay comparable.)
            assert!(w.p_value > 0.01, "p = {}", w.p_value);
        }
    }

    #[test]
    fn frequent_code_filter_works() {
        let r = analyze_http(&campaign());
        let freq = r.frequent_codes(&r.first_party, 100, false);
        assert!(freq.contains(&200));
        let errors = r.frequent_codes(&r.first_party, 100, true);
        assert!(errors.iter().all(|c| *c >= 400));
        assert!(errors.contains(&404), "{errors:?}");
    }
}
