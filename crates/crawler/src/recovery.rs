//! Recovery policy engine: bounded retries with deterministic jittered
//! exponential backoff, plus a per-site circuit breaker.
//!
//! Krumnow et al. (PAPERS.md) show that unhandled crawl failures silently
//! bias measurement results; Gundelach et al. show that *naive* retry
//! behaviour (fixed delays, hot loops) is itself a detectable tell. The
//! policy here therefore retries with exponential backoff and jitter —
//! but the jitter comes from a [`SimContext`](hlisa_sim::SimContext)
//! stream (conventionally the `"fault"` stream), never `thread_rng`, so
//! a campaign's full recovery behaviour replays bit-identically from its
//! seed. Drawing jitter from the fault stream also keeps the interaction
//! streams (`"visit"`, `"motion"`, ...) unperturbed: a retried visit
//! replays exactly the draws a first-try visit would have made.

use hlisa_sim::Rng;
use hlisa_web::VisitOutcome;

/// Retry policy for transient visit faults.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Retries allowed after the first attempt (0 disables retrying).
    pub max_retries: u32,
    /// Backoff before the first retry, in virtual milliseconds.
    pub base_backoff_ms: f64,
    /// Multiplier applied per further retry.
    pub backoff_factor: f64,
    /// Upper clamp on the un-jittered backoff.
    pub max_backoff_ms: f64,
    /// Symmetric jitter fraction: the delay is scaled by a uniform
    /// factor in `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
    /// Per-attempt visit deadline, in virtual milliseconds.
    pub visit_deadline_ms: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 2,
            base_backoff_ms: 1_000.0,
            backoff_factor: 2.0,
            max_backoff_ms: 30_000.0,
            jitter: 0.5,
            visit_deadline_ms: hlisa_web::DEFAULT_VISIT_DEADLINE_MS,
        }
    }
}

impl RetryPolicy {
    /// Total attempts a visit may take (first try + retries).
    pub fn max_attempts(&self) -> u32 {
        1 + self.max_retries
    }

    /// The jittered backoff before retrying after failed attempt
    /// `attempt` (0-based). Deterministic given the RNG stream position:
    /// `clamp(base · factor^attempt, max) · U[1−j, 1+j]`.
    pub fn backoff_ms<R: Rng + ?Sized>(&self, attempt: u32, rng: &mut R) -> f64 {
        let raw = self.base_backoff_ms * self.backoff_factor.powi(attempt as i32);
        let clamped = raw.min(self.max_backoff_ms);
        if self.jitter <= 0.0 {
            return clamped;
        }
        let u = rng.gen::<f64>();
        clamped * (1.0 - self.jitter + 2.0 * self.jitter * u)
    }
}

/// Circuit-breaker configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive permanent faults after which the site's breaker opens
    /// and remaining visits are skipped (the site lands in Table 2's
    /// unreachable row).
    pub permanent_fault_threshold: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            permanent_fault_threshold: 3,
        }
    }
}

/// Per-site circuit breaker. Each crawl worker owns the breakers for the
/// sites it crawls (a site is never split across workers), so no locking
/// is needed and trip decisions are schedule-independent.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    consecutive_permanent: u32,
    open: bool,
}

impl CircuitBreaker {
    /// A closed breaker.
    pub fn new(config: BreakerConfig) -> Self {
        Self {
            config,
            consecutive_permanent: 0,
            open: false,
        }
    }

    /// Whether the breaker is open (site marked unreachable).
    pub fn is_open(&self) -> bool {
        self.open
    }

    /// Records a permanent fault; returns `true` if this one tripped the
    /// breaker open.
    pub fn record_permanent_fault(&mut self) -> bool {
        if self.open {
            return false;
        }
        self.consecutive_permanent += 1;
        if self.consecutive_permanent >= self.config.permanent_fault_threshold {
            self.open = true;
            return true;
        }
        false
    }

    /// Records a successful (or at least non-permanent) visit, resetting
    /// the consecutive-fault count.
    pub fn record_success(&mut self) {
        if !self.open {
            self.consecutive_permanent = 0;
        }
    }
}

/// Everything the recovery engine learned about one visit: the recorded
/// outcome plus how it got there.
#[derive(Debug, Clone, PartialEq)]
pub struct VisitRecovery {
    /// The outcome recorded into the site result (possibly degraded from
    /// a `VisitError`).
    pub outcome: VisitOutcome,
    /// Attempts made (0 when the breaker skipped the visit outright).
    pub attempts: u32,
    /// Faults observed across the attempts, in order.
    pub faults: Vec<hlisa_sim::FaultKind>,
    /// Total virtual backoff spent between attempts.
    pub backoff_ms: f64,
    /// True when the open breaker skipped this visit without attempting.
    pub skipped_by_breaker: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlisa_sim::SimContext;

    #[test]
    fn backoff_is_deterministic_per_stream_position() {
        let policy = RetryPolicy::default();
        let mut a = SimContext::new(4);
        let mut b = SimContext::new(4);
        for attempt in 0..4 {
            assert_eq!(
                policy.backoff_ms(attempt, a.stream("fault")),
                policy.backoff_ms(attempt, b.stream("fault"))
            );
        }
    }

    #[test]
    fn backoff_grows_exponentially_within_jitter_bounds() {
        let policy = RetryPolicy::default();
        let mut ctx = SimContext::new(9);
        for attempt in 0..6 {
            let raw = (1_000.0 * 2.0f64.powi(attempt as i32)).min(30_000.0);
            let b = policy.backoff_ms(attempt, ctx.stream("fault"));
            assert!(
                b >= raw * 0.5 - 1e-9 && b <= raw * 1.5 + 1e-9,
                "attempt {attempt}: {b}"
            );
        }
    }

    #[test]
    fn zero_jitter_consumes_no_draws() {
        let policy = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let mut a = SimContext::new(2);
        let mut b = SimContext::new(2);
        assert_eq!(policy.backoff_ms(0, a.stream("fault")), 1_000.0);
        assert_eq!(policy.backoff_ms(3, a.stream("fault")), 8_000.0);
        assert_eq!(policy.backoff_ms(9, a.stream("fault")), 30_000.0);
        assert_eq!(
            a.stream("fault").gen::<u64>(),
            b.stream("fault").gen::<u64>()
        );
    }

    #[test]
    fn breaker_trips_after_threshold_consecutive_permanents() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            permanent_fault_threshold: 3,
        });
        assert!(!b.record_permanent_fault());
        assert!(!b.record_permanent_fault());
        assert!(!b.is_open());
        assert!(b.record_permanent_fault(), "third fault trips");
        assert!(b.is_open());
        // Tripping is edge-triggered: further faults don't re-trip.
        assert!(!b.record_permanent_fault());
    }

    #[test]
    fn success_resets_the_consecutive_count() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            permanent_fault_threshold: 2,
        });
        assert!(!b.record_permanent_fault());
        b.record_success();
        assert!(!b.record_permanent_fault());
        assert!(b.record_permanent_fault());
        assert!(b.is_open());
    }

    #[test]
    fn max_attempts_counts_the_first_try() {
        assert_eq!(RetryPolicy::default().max_attempts(), 3);
        let none = RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        };
        assert_eq!(none.max_attempts(), 1);
    }
}
