//! Chaos-mode campaign runner: the legacy two-machine crawl threaded
//! through the fault plane and the recovery policy engine.
//!
//! The runner preserves two invariants the tests pin down:
//!
//! 1. **Rate-0 bit-identity.** With [`ChaosConfig::off`] the embedded
//!    [`Campaign`] is byte-identical to [`run_campaign`]'s output: a
//!    no-op [`FaultPlan`] consumes zero fault-stream draws, and visit
//!    draws flow through the exact same `"visit"` stream forks.
//! 2. **Determinism under faults.** Every fault draw and every backoff
//!    jitter comes from the visit's `"fault"` stream — a pure function of
//!    `(seed, machine, domain, visit index)` — so a faulted campaign
//!    (outcomes *and* `fault.*`/`retry.*`/`breaker.*` counters) replays
//!    identically for a fixed seed, regardless of worker count.
//!
//! Retries re-fork the visit context from scratch, so a retried visit
//! replays exactly the interaction draws a first-try visit would have
//! made — HLISA chains stay lint-clean under retry. Only *injected*
//! faults are retried: site-intrinsic transients (the population's flaky
//! visits) are recorded as-is, matching the paper's non-retrying crawler.

use crate::campaign::{
    machine_context, run_sharded, Campaign, CampaignConfig, MachineRun, SiteResult, SiteSource,
};
use crate::recovery::{BreakerConfig, CircuitBreaker, RetryPolicy, VisitRecovery};
use hlisa_sim::{FaultEvent, FaultMonitor, FaultPlan, Observer, SimContext};
use hlisa_web::visit::DetectorRuntime;
use hlisa_web::{
    generate_population, simulate_visit_attempt, ClientKind, Site, VisitError, DEFAULT_SHARD_SIZE,
};

/// Fault-plane and recovery configuration for a chaos campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Fault injection rates.
    pub plan: FaultPlan,
    /// Retry policy for injected transient faults.
    pub retry: RetryPolicy,
    /// Per-site circuit-breaker policy.
    pub breaker: BreakerConfig,
}

impl ChaosConfig {
    /// The fault plane switched off: no injections, and therefore no
    /// retries and no breaker trips beyond site-intrinsic unreachability.
    pub fn off() -> Self {
        Self {
            plan: FaultPlan::none(),
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
        }
    }

    /// A uniform per-visit fault rate with default recovery policy.
    pub fn uniform(total_rate: f64) -> Self {
        Self {
            plan: FaultPlan::uniform(total_rate),
            ..Self::off()
        }
    }
}

/// Recovery telemetry for every visit of one site by one machine.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteRecovery {
    /// The site's domain.
    pub domain: String,
    /// Per-visit recovery records, in visit order.
    pub visits: Vec<VisitRecovery>,
    /// Whether the site's circuit breaker ended the crawl open.
    pub breaker_open: bool,
}

impl SiteRecovery {
    /// Total attempts across all visits of this site.
    pub fn total_attempts(&self) -> u32 {
        self.visits.iter().map(|v| v.attempts).sum()
    }
}

/// One machine's chaos crawl: results live in the embedded
/// [`MachineRun`]; this carries the recovery telemetry alongside.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineRecovery {
    /// The client flavour this machine ran.
    pub client: ClientKind,
    /// Per-site recovery records, in population order.
    pub sites: Vec<SiteRecovery>,
    /// Aggregated `fault.*` / `retry.*` / `breaker.*` counters, merged
    /// from the per-worker monitors in worker-index order.
    pub counters: hlisa_sim::CounterSet,
}

/// Both machines' chaos crawls over the same population.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosCampaign {
    /// The plain campaign output — at fault rate 0, byte-identical to
    /// [`run_campaign`](crate::run_campaign).
    pub campaign: Campaign,
    /// Machine (1) recovery telemetry.
    pub openwpm_recovery: MachineRecovery,
    /// Machine (2) recovery telemetry.
    pub spoofed_recovery: MachineRecovery,
}

impl ChaosCampaign {
    /// Both machines' fault counters merged (sorted: a name only one
    /// machine observed must not dangle at the end of the set).
    pub fn counters(&self) -> hlisa_sim::CounterSet {
        let mut c = self.openwpm_recovery.counters.clone();
        c.merge(&self.spoofed_recovery.counters);
        c.sorted()
    }
}

/// Runs the full two-machine campaign under a fault plane.
pub fn run_chaos_campaign(config: &CampaignConfig, chaos: &ChaosConfig) -> ChaosCampaign {
    run_chaos_campaign_sharded(config, chaos, DEFAULT_SHARD_SIZE)
}

/// [`run_chaos_campaign`] with an explicit shard size — the knob the
/// determinism property tests sweep to prove the shard-claiming
/// scheduler never affects chaos outcomes or counters.
pub fn run_chaos_campaign_sharded(
    config: &CampaignConfig,
    chaos: &ChaosConfig,
    shard_size: usize,
) -> ChaosCampaign {
    let sites = generate_population(&config.population);
    let runtime = if config.world_cache {
        DetectorRuntime::new()
    } else {
        DetectorRuntime::without_world_cache()
    };
    let (openwpm, openwpm_recovery) = run_chaos_machine(
        config,
        chaos,
        &sites,
        ClientKind::OpenWpm,
        &runtime,
        shard_size,
    );
    let (spoofed, spoofed_recovery) = run_chaos_machine(
        config,
        chaos,
        &sites,
        ClientKind::OpenWpmSpoofed,
        &runtime,
        shard_size,
    );
    ChaosCampaign {
        campaign: Campaign {
            sites,
            openwpm,
            spoofed,
        },
        openwpm_recovery,
        spoofed_recovery,
    }
}

/// One machine's chaos crawl with `config.instances` parallel workers
/// claiming shards off the same atomic-cursor scheduler as the plain
/// runner. A shard's sites are wholly owned by the claiming worker, so
/// per-site breaker state stays unsynchronised; per-worker fault monitors
/// are merged after the join and canonicalised to name order, making the
/// counter set independent of which worker claimed which shard.
fn run_chaos_machine(
    config: &CampaignConfig,
    chaos: &ChaosConfig,
    sites: &[Site],
    client: ClientKind,
    runtime: &DetectorRuntime,
    shard_size: usize,
) -> (MachineRun, MachineRecovery) {
    let machine_ctx = machine_context(config, client);
    let source = SiteSource::Slice { sites, shard_size };
    let (slots, monitors) = run_sharded(
        config.instances,
        &source,
        &FaultMonitor::new,
        &|monitor: &mut FaultMonitor, _k, _base, shard_sites| {
            shard_sites
                .iter()
                .map(|site| crawl_site(config, chaos, site, client, runtime, &machine_ctx, monitor))
                .collect::<Vec<(SiteResult, SiteRecovery)>>()
        },
    );

    // Merge per-worker counters, then canonicalise to name order: totals
    // are partition-independent (every site is crawled exactly once,
    // whichever worker claims its shard), but insertion order is not —
    // sorting makes the whole `MachineRecovery` schedule-independent.
    let mut counters = hlisa_sim::CounterSet::new();
    for monitor in &monitors {
        counters.merge(&monitor.counters());
    }
    let counters = counters.sorted();

    let mut results = Vec::with_capacity(sites.len());
    let mut recoveries = Vec::with_capacity(sites.len());
    for (k, slot) in slots.into_iter().enumerate() {
        match slot {
            Some(crawled) => {
                for (result, recovery) in crawled {
                    results.push(result);
                    recoveries.push(recovery);
                }
            }
            // Graceful degradation mirroring the legacy runner: every
            // site of a shard whose worker died is recorded unvisited,
            // not fatal.
            None => source.with_shard(k, |_, shard_sites| {
                for site in shard_sites {
                    results.push(SiteResult {
                        domain: site.domain.clone(),
                        rank: site.rank,
                        outcomes: Vec::new(),
                    });
                    recoveries.push(SiteRecovery {
                        domain: site.domain.clone(),
                        visits: Vec::new(),
                        breaker_open: false,
                    });
                }
            }),
        }
    }

    (
        MachineRun {
            client,
            sites: results,
        },
        MachineRecovery {
            client,
            sites: recoveries,
            counters,
        },
    )
}

/// Crawls every visit of one site under the recovery policy. The site's
/// circuit breaker lives here: a site is wholly owned by one worker, so
/// breaker state needs no synchronisation and trips deterministically.
fn crawl_site(
    config: &CampaignConfig,
    chaos: &ChaosConfig,
    site: &Site,
    client: ClientKind,
    runtime: &DetectorRuntime,
    machine_ctx: &SimContext,
    monitor: &mut FaultMonitor,
) -> (SiteResult, SiteRecovery) {
    let site_down = chaos.plan.site_is_down(config.seed, &site.domain);
    let mut breaker = CircuitBreaker::new(chaos.breaker.clone());
    let mut outcomes = Vec::with_capacity(config.visits_per_site);
    let mut visits = Vec::with_capacity(config.visits_per_site);

    for v in 0..config.visits_per_site {
        if breaker.is_open() {
            monitor.record(&FaultEvent::BreakerSkippedVisit);
            let outcome = VisitError::Unreachable { site_down: true }.to_outcome();
            outcomes.push(outcome.clone());
            visits.push(VisitRecovery {
                outcome,
                attempts: 0,
                faults: Vec::new(),
                backoff_ms: 0.0,
                skipped_by_breaker: true,
            });
            continue;
        }
        let recovery = visit_with_recovery(
            chaos,
            site,
            site_down,
            client,
            runtime,
            machine_ctx,
            v as u64,
            &mut breaker,
            monitor,
        );
        outcomes.push(recovery.outcome.clone());
        visits.push(recovery);
    }

    (
        SiteResult {
            domain: site.domain.clone(),
            rank: site.rank,
            outcomes,
        },
        SiteRecovery {
            domain: site.domain.clone(),
            visits,
            breaker_open: breaker.is_open(),
        },
    )
}

/// One visit under the retry policy.
///
/// The fault context is forked **once** per visit and held across
/// attempts: successive attempts draw successive values from its
/// `"fault"` stream (fault schedule, then backoff jitter), while each
/// attempt re-forks the *visit* context from scratch so interaction
/// draws are identical across attempts.
#[allow(clippy::too_many_arguments)]
fn visit_with_recovery(
    chaos: &ChaosConfig,
    site: &Site,
    site_down: bool,
    client: ClientKind,
    runtime: &DetectorRuntime,
    machine_ctx: &SimContext,
    visit_idx: u64,
    breaker: &mut CircuitBreaker,
    monitor: &mut FaultMonitor,
) -> VisitRecovery {
    let mut fault_ctx = machine_ctx.fork_visit(&site.domain, visit_idx);
    let mut faults = Vec::new();
    let mut backoff_total = 0.0;
    let mut attempt: u32 = 0;

    loop {
        attempt += 1;
        let injected = if site_down {
            Some(hlisa_sim::InjectedFault::PermanentUnreachable)
        } else {
            chaos.plan.draw(fault_ctx.stream("fault"))
        };
        let mut ctx = machine_ctx.fork_visit(&site.domain, visit_idx);
        let result = simulate_visit_attempt(
            site,
            client,
            runtime,
            &mut ctx,
            injected,
            chaos.retry.visit_deadline_ms,
        );

        match result {
            Ok(outcome) => {
                breaker.record_success();
                if attempt > 1 {
                    monitor.record(&FaultEvent::RecoveredAfterRetry { attempts: attempt });
                }
                return VisitRecovery {
                    outcome,
                    attempts: attempt,
                    faults,
                    backoff_ms: backoff_total,
                    skipped_by_breaker: false,
                };
            }
            Err(e) => {
                let kind = e.fault_kind();
                // An error "is" the injected fault only when the kinds
                // match — an intrinsic flake that preempted the scheduled
                // fault is the population's own behaviour and is recorded
                // as-is, exactly like the legacy (non-retrying) crawler.
                let was_injected = injected.map(|f| f.kind()) == Some(kind);
                if was_injected {
                    monitor.record(&FaultEvent::Injected { kind });
                    faults.push(kind);
                }
                if e.is_permanent() {
                    if breaker.record_permanent_fault() {
                        monitor.record(&FaultEvent::BreakerTripped);
                    }
                    return VisitRecovery {
                        outcome: e.to_outcome(),
                        attempts: attempt,
                        faults,
                        backoff_ms: backoff_total,
                        skipped_by_breaker: false,
                    };
                }
                let can_retry = was_injected && attempt < chaos.retry.max_attempts();
                if can_retry {
                    let backoff = chaos
                        .retry
                        .backoff_ms(attempt - 1, fault_ctx.stream("fault"));
                    monitor.record(&FaultEvent::RetryScheduled {
                        attempt: attempt - 1,
                        backoff_ms: backoff,
                    });
                    backoff_total += backoff;
                    continue;
                }
                if attempt > 1 {
                    monitor.record(&FaultEvent::GaveUp { attempts: attempt });
                }
                // Non-permanent failures never feed the breaker; but a
                // completed (if failed) contact still resets its
                // consecutive-permanent count.
                breaker.record_success();
                return VisitRecovery {
                    outcome: e.to_outcome(),
                    attempts: attempt,
                    faults,
                    backoff_ms: backoff_total,
                    skipped_by_breaker: false,
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign;
    use hlisa_web::PopulationConfig;

    fn small_config() -> CampaignConfig {
        CampaignConfig {
            seed: 7,
            population: PopulationConfig {
                n_sites: 60,
                unreachable_sites: 5,
                webdriver_visible: (2, 1, 1, 1),
                template_visible: (1, 1, 1),
                silent_http: (2, 1),
                breakage_sites: 1,
                ..PopulationConfig::default()
            },
            visits_per_site: 4,
            instances: 4,
            world_cache: true,
            plan_interactions: false,
        }
    }

    #[test]
    fn rate_zero_chaos_is_byte_identical_to_the_legacy_runner() {
        let config = small_config();
        let legacy = run_campaign(&config);
        let chaos = run_chaos_campaign(&config, &ChaosConfig::off());
        assert_eq!(chaos.campaign, legacy);
    }

    #[test]
    fn faulted_campaign_reproduces_exactly_across_runs() {
        let config = small_config();
        let cfg = ChaosConfig::uniform(0.05);
        let a = run_chaos_campaign(&config, &cfg);
        let b = run_chaos_campaign(&config, &cfg);
        assert_eq!(
            a, b,
            "fixed-seed 5%-fault campaign must replay bit-identically"
        );
        assert_eq!(a.counters(), b.counters());
    }

    #[test]
    fn faulted_campaign_is_schedule_independent() {
        let base = small_config();
        let mut serial = base.clone();
        serial.instances = 1;
        let cfg = ChaosConfig::uniform(0.10);
        let a = run_chaos_campaign(&base, &cfg);
        let b = run_chaos_campaign(&serial, &cfg);
        assert_eq!(a, b, "worker count must not affect outcomes or counters");
    }

    #[test]
    fn injections_produce_fault_counters_and_recoveries() {
        let config = small_config();
        let chaos = run_chaos_campaign(&config, &ChaosConfig::uniform(0.20));
        let c = chaos.counters();
        assert!(
            c.get("fault.injected").unwrap_or(0) > 0,
            "no faults at 20%?"
        );
        assert!(c.get("retry.scheduled").unwrap_or(0) > 0);
        assert!(c.get("retry.recovered").unwrap_or(0) > 0);
        // Backoff totals follow the retries.
        assert!(c.get("retry.backoff_ms_total").unwrap_or(0) > 0);
    }

    #[test]
    fn site_outage_feeds_the_unreachable_row_and_the_breaker() {
        let config = small_config();
        let cfg = ChaosConfig {
            plan: FaultPlan {
                site_outage: 0.25,
                ..FaultPlan::none()
            },
            ..ChaosConfig::off()
        };
        let chaos = run_chaos_campaign(&config, &cfg);
        let downed: Vec<&str> = chaos
            .campaign
            .sites
            .iter()
            .filter(|s| !s.unreachable && cfg.plan.site_is_down(config.seed, &s.domain))
            .map(|s| s.domain.as_str())
            .collect();
        assert!(!downed.is_empty(), "25% outage downed nothing");
        for run in [&chaos.campaign.openwpm, &chaos.campaign.spoofed] {
            for site in &run.sites {
                if downed.contains(&site.domain.as_str()) {
                    assert!(!site.reached(), "{} should be down", site.domain);
                }
            }
        }
        assert!(chaos.counters().get("breaker.tripped").unwrap_or(0) >= downed.len() as u64);
        assert!(chaos.counters().get("breaker.skipped_visits").unwrap_or(0) > 0);
    }

    #[test]
    fn successful_chaos_visits_match_their_legacy_counterparts() {
        // Retries re-fork the visit context, so any visit that ends in
        // success (first try or after recovery) must record exactly the
        // outcome the faultless campaign records at the same position.
        let config = small_config();
        let legacy = run_campaign(&config);
        let chaos = run_chaos_campaign(&config, &ChaosConfig::uniform(0.15));
        for (chaos_run, legacy_run) in [
            (&chaos.campaign.openwpm, &legacy.openwpm),
            (&chaos.campaign.spoofed, &legacy.spoofed),
        ] {
            for (cs, ls) in chaos_run.sites.iter().zip(&legacy_run.sites) {
                for (co, lo) in cs.outcomes.iter().zip(&ls.outcomes) {
                    if co.successful {
                        assert_eq!(co, lo, "{}: successful visit diverged", cs.domain);
                    }
                }
            }
        }
    }

    /// A population with no intrinsic pathology, so injected faults are
    /// the only failure source and the retry arithmetic is exact.
    fn clean_config() -> CampaignConfig {
        CampaignConfig {
            seed: 11,
            population: PopulationConfig {
                n_sites: 12,
                unreachable_sites: 0,
                webdriver_visible: (0, 0, 0, 0),
                template_visible: (0, 0, 0),
                silent_http: (0, 0),
                breakage_sites: 0,
                mean_flakiness: 0.0,
                ..PopulationConfig::default()
            },
            visits_per_site: 4,
            instances: 2,
            world_cache: true,
            plan_interactions: false,
        }
    }

    #[test]
    fn transient_exhaustion_spends_the_whole_retry_budget_once_per_attempt() {
        let config = clean_config();
        let cfg = ChaosConfig {
            plan: FaultPlan {
                transient_network: 1.0,
                ..FaultPlan::none()
            },
            ..ChaosConfig::off()
        };
        let max_attempts = cfg.retry.max_attempts();
        let chaos = run_chaos_campaign(&config, &cfg);

        let mut visits = 0u64;
        for rec in [&chaos.openwpm_recovery, &chaos.spoofed_recovery] {
            for site in &rec.sites {
                assert!(
                    !site.breaker_open,
                    "{}: transients must never trip the breaker",
                    site.domain
                );
                for v in &site.visits {
                    visits += 1;
                    assert!(!v.skipped_by_breaker);
                    assert_eq!(
                        v.attempts, max_attempts,
                        "{}: the full retry budget is spent",
                        site.domain
                    );
                    assert_eq!(
                        v.faults,
                        vec![hlisa_sim::FaultKind::TransientNetwork; max_attempts as usize]
                    );
                    assert!(!v.outcome.successful);
                    assert!(v.backoff_ms > 0.0, "retries must back off");
                }
            }
        }
        let expected = (config.population.n_sites * config.visits_per_site * 2) as u64;
        assert_eq!(visits, expected);

        // Each attempt is counted exactly once: injections track attempts,
        // scheduled retries are attempts minus the first try, and every
        // visit gives up exactly once.
        let c = chaos.counters();
        assert_eq!(
            c.get("fault.injected"),
            Some(u64::from(max_attempts) * visits)
        );
        assert_eq!(
            c.get("fault.injected.transient_network"),
            Some(u64::from(max_attempts) * visits)
        );
        assert_eq!(
            c.get("retry.scheduled"),
            Some(u64::from(max_attempts - 1) * visits)
        );
        assert_eq!(c.get("retry.gave_up"), Some(visits));
        assert_eq!(c.get("retry.recovered"), None);
        assert_eq!(c.get("breaker.tripped"), None);
        assert_eq!(c.get("breaker.skipped_visits"), None);
    }

    #[test]
    fn permanent_exhaustion_trips_the_breaker_and_empties_the_total_row() {
        let config = clean_config();
        let cfg = ChaosConfig {
            plan: FaultPlan {
                permanent_unreachable: 1.0,
                ..FaultPlan::none()
            },
            ..ChaosConfig::off()
        };
        let threshold = cfg.breaker.permanent_fault_threshold;
        assert!(
            (config.visits_per_site as u32) > threshold,
            "config must leave visits for the open breaker to skip"
        );
        let chaos = run_chaos_campaign(&config, &cfg);

        for rec in [&chaos.openwpm_recovery, &chaos.spoofed_recovery] {
            for site in &rec.sites {
                assert!(
                    site.breaker_open,
                    "{}: breaker should end open",
                    site.domain
                );
                for (i, v) in site.visits.iter().enumerate() {
                    if (i as u32) < threshold {
                        assert_eq!(v.attempts, 1, "permanent faults never retry");
                        assert_eq!(v.faults, vec![hlisa_sim::FaultKind::PermanentUnreachable]);
                        assert_eq!(v.backoff_ms, 0.0);
                        assert!(!v.skipped_by_breaker);
                    } else {
                        assert!(v.skipped_by_breaker, "visit {i} should be skipped");
                        assert_eq!(v.attempts, 0);
                    }
                    assert!(!v.outcome.reached);
                }
            }
        }

        // Every site drops out of Table 2's "total" (reached) row — the
        // campaign-level signature of an unreachable site.
        let table = crate::screenshot::screenshot_table(&chaos.campaign);
        let total = table.row("total").unwrap_or_else(|| {
            panic!("table 2 must keep its total row");
        });
        assert_eq!(total.sites, (0, 0));
        assert_eq!(total.visits, (0, 0));
        for run in [&chaos.campaign.openwpm, &chaos.campaign.spoofed] {
            for site in &run.sites {
                assert!(!site.reached(), "{} should be unreachable", site.domain);
            }
        }

        let c = chaos.counters();
        let sites = (config.population.n_sites * 2) as u64;
        assert_eq!(
            c.get("fault.injected.permanent_unreachable"),
            Some(u64::from(threshold) * sites)
        );
        assert_eq!(c.get("breaker.tripped"), Some(sites));
        assert_eq!(
            c.get("breaker.skipped_visits"),
            Some((config.visits_per_site as u64 - u64::from(threshold)) * sites)
        );
        assert_eq!(c.get("retry.scheduled"), None);
        assert_eq!(c.get("retry.gave_up"), None);
        assert_eq!(c.get("retry.recovered"), None);
    }

    #[test]
    fn breaker_skips_remaining_visits_of_permanently_dead_sites() {
        let config = small_config();
        let chaos = run_chaos_campaign(&config, &ChaosConfig::off());
        let threshold = ChaosConfig::off().breaker.permanent_fault_threshold as usize;
        for (site, rec) in chaos
            .campaign
            .sites
            .iter()
            .zip(&chaos.openwpm_recovery.sites)
        {
            if site.unreachable {
                assert!(rec.breaker_open, "{} breaker should open", site.domain);
                let skipped = rec.visits.iter().filter(|v| v.skipped_by_breaker).count();
                assert_eq!(skipped, config.visits_per_site - threshold);
            }
        }
    }
}
