//! OpenWPM-style crawl harness for the §3.2 field evaluation.
//!
//! The paper runs two machines simultaneously — stock OpenWPM and
//! OpenWPM+extension — each with 8 parallel browser instances over the same
//! 1,000-site sample, then compares screenshots (Table 2) and HTTP status
//! codes (Figure 4 / Appendix B, with a Wilcoxon matched-pairs signed-rank
//! test on first-party errors).
//!
//! [`campaign`] reproduces the harness (real parallelism across worker
//! threads, deterministic per-visit seeding so results are
//! schedule-independent), [`screenshot`] the Table 2 aggregation, and
//! [`http_analysis`] the Figure 4 aggregation and significance test.

pub mod campaign;
pub mod chaos;
pub mod http_analysis;
pub mod recovery;
pub mod reliability;
pub mod report;
pub mod scenario;
pub mod screenshot;
pub mod sink;

pub use campaign::{
    run_campaign, run_machine, run_machine_lazy, run_machine_planned, run_machine_shard_summaries,
    run_machine_shard_summaries_persistent, run_machine_sharded, Campaign, CampaignConfig,
    MachineRun, SiteResult,
};
pub use chaos::{
    run_chaos_campaign, run_chaos_campaign_sharded, ChaosCampaign, ChaosConfig, MachineRecovery,
    SiteRecovery,
};
pub use http_analysis::{analyze_http, HttpReport};
pub use recovery::{BreakerConfig, CircuitBreaker, RetryPolicy, VisitRecovery};
pub use reliability::{
    drift_report, run_captured_campaign, run_reliability_study, CaptureMode, CapturedCampaign,
    DriftReport, MetricDrift, ReliabilityStudy,
};
pub use report::{recovery_csv, status_codes_csv, table2_csv, visits_csv};
pub use scenario::ScenarioScratch;
pub use screenshot::{screenshot_table, Table2, Table2Row};
pub use sink::{ShardRecord, ShardSummarySink};
