//! Screenshot evaluation — Table 2.
//!
//! §3.2: "we review screenshots and count the occurrence of blocking pages,
//! CAPTCHAs, visible error messages ... In addition, we evaluate if there
//! is missing content (such as ads)." Counts are reported separately for
//! *sites* (a site counts once if any visit shows the outcome) and
//! *visits*, per machine.

use crate::campaign::{Campaign, MachineRun};
use hlisa_web::VisualOutcome;

/// One Table 2 row: (sites machine 1, sites machine 2, visits machine 1,
/// visits machine 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table2Row {
    /// Row label as in the paper.
    pub label: String,
    /// Sites with the outcome, per machine.
    pub sites: (usize, usize),
    /// Visits with the outcome, per machine.
    pub visits: (usize, usize),
}

/// The full screenshot-evaluation table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table2 {
    /// Rows in the paper's order.
    pub rows: Vec<Table2Row>,
}

impl Table2 {
    /// Looks a row up by label.
    pub fn row(&self, label: &str) -> Option<&Table2Row> {
        self.rows.iter().find(|r| r.label == label)
    }
}

fn count(run: &MachineRun, pred: impl Fn(VisualOutcome) -> bool) -> (usize, usize) {
    let mut sites = 0;
    let mut visits = 0;
    for s in &run.sites {
        let matching = s
            .outcomes
            .iter()
            .filter(|o| o.successful && pred(o.visual))
            .count();
        if matching > 0 {
            sites += 1;
        }
        visits += matching;
    }
    (sites, visits)
}

/// Builds Table 2 from a campaign.
pub fn screenshot_table(campaign: &Campaign) -> Table2 {
    let machines = [&campaign.openwpm, &campaign.spoofed];

    let totals: Vec<(usize, usize)> = machines
        .iter()
        .map(|m| {
            let sites = m.sites.iter().filter(|s| s.reached()).count();
            let visits = m.sites.iter().map(|s| s.successful_visits()).sum();
            (sites, visits)
        })
        .collect();

    let pair = |pred: &dyn Fn(VisualOutcome) -> bool| -> ((usize, usize), (usize, usize)) {
        (count(machines[0], pred), count(machines[1], pred))
    };

    let missing_ads = pair(&|v| matches!(v, VisualOutcome::NoAds | VisualOutcome::FewerAds));
    let no_ads = pair(&|v| v == VisualOutcome::NoAds);
    let less_ads = pair(&|v| v == VisualOutcome::FewerAds);
    let blocking = pair(&|v| matches!(v, VisualOutcome::BlockPage | VisualOutcome::Captcha));
    let frozen = pair(&|v| v == VisualOutcome::FrozenVideo);
    let overlay = pair(&|v| v == VisualOutcome::StuckOnOverlay);
    let lazy = pair(&|v| v == VisualOutcome::MissingLazyContent);
    let stale = pair(&|v| v == VisualOutcome::StaleElement);

    let row = |label: &str, ((s1, v1), (s2, v2)): ((usize, usize), (usize, usize))| Table2Row {
        label: label.to_string(),
        sites: (s1, s2),
        visits: (v1, v2),
    };

    Table2 {
        rows: vec![
            Table2Row {
                label: "total".to_string(),
                sites: (totals[0].0, totals[1].0),
                visits: (totals[0].1, totals[1].1),
            },
            row("missing ads", missing_ads),
            row("- no ads", no_ads),
            row("- less ads", less_ads),
            row("blocking/CAPTCHAs", blocking),
            row("frozen video element(s)", frozen),
            // Dynamic-page rows: interaction failures a screenshot review
            // attributes to the drive, not the site's detector.
            row("stuck on consent overlay", overlay),
            row("missing lazy-loaded content", lazy),
            row("stale-element interaction", stale),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, CampaignConfig};
    use hlisa_web::PopulationConfig;

    fn campaign() -> Campaign {
        run_campaign(&CampaignConfig {
            seed: 99,
            population: PopulationConfig {
                n_sites: 120,
                unreachable_sites: 10,
                ..PopulationConfig::default()
            },
            visits_per_site: 6,
            instances: 4,
            world_cache: true,
            plan_interactions: false,
        })
    }

    #[test]
    fn table_has_paper_rows() {
        let t = screenshot_table(&campaign());
        for label in [
            "total",
            "missing ads",
            "- no ads",
            "- less ads",
            "blocking/CAPTCHAs",
            "frozen video element(s)",
        ] {
            assert!(t.row(label).is_some(), "missing row {label}");
        }
    }

    #[test]
    fn totals_exclude_unreachable() {
        let t = screenshot_table(&campaign());
        let total = t.row("total").unwrap();
        assert_eq!(total.sites.0, 110);
        assert_eq!(total.sites.1, 110);
        assert!(total.visits.0 <= 110 * 6);
        assert!(total.visits.0 > 100 * 6, "too many failed visits");
    }

    #[test]
    fn spoofing_reduces_visible_detection() {
        let t = screenshot_table(&campaign());
        let blocking = t.row("blocking/CAPTCHAs").unwrap();
        assert!(
            blocking.sites.0 > blocking.sites.1,
            "blocking sites {} -> {}",
            blocking.sites.0,
            blocking.sites.1
        );
        let ads = t.row("missing ads").unwrap();
        assert!(ads.sites.0 >= ads.sites.1);
    }

    #[test]
    fn scenario_rows_split_by_drive() {
        use hlisa_web::ScenarioMix;
        let c = run_campaign(&CampaignConfig {
            seed: 99,
            population: PopulationConfig {
                n_sites: 120,
                unreachable_sites: 10,
                scenarios: ScenarioMix {
                    cookie_banner: 3,
                    lazy_content: 3,
                    spa_mutation: 3,
                },
                ..PopulationConfig::default()
            },
            visits_per_site: 6,
            instances: 4,
            world_cache: true,
            plan_interactions: false,
        });
        let t = screenshot_table(&c);
        // Each scenario class fills its own row on machine (1): every
        // assigned site fails there on (almost) every successful visit,
        // while the HLISA-style drive on machine (2) recovers all of them.
        for label in [
            "stuck on consent overlay",
            "missing lazy-loaded content",
            "stale-element interaction",
        ] {
            let row = t.row(label).unwrap();
            assert!(row.sites.0 >= 2, "{label}: only {} sites", row.sites.0);
            assert!(row.visits.0 > row.sites.0, "{label}: visits too few");
            assert_eq!(row.sites.1, 0, "{label} leaked onto the HLISA machine");
            assert_eq!(row.visits.1, 0, "{label} leaked onto the HLISA machine");
        }
        // A scenario-free campaign reports empty rows (and is otherwise
        // untouched by the feature — the golden test pins that bitwise).
        let t0 = screenshot_table(&campaign());
        for label in [
            "stuck on consent overlay",
            "missing lazy-loaded content",
            "stale-element interaction",
        ] {
            let row = t0.row(label).unwrap();
            assert_eq!((row.sites, row.visits), ((0, 0), (0, 0)), "{label}");
        }
    }

    #[test]
    fn subtotals_add_up() {
        let t = screenshot_table(&campaign());
        let all = t.row("missing ads").unwrap();
        let none = t.row("- no ads").unwrap();
        let less = t.row("- less ads").unwrap();
        assert_eq!(all.visits.0, none.visits.0 + less.visits.0);
        assert_eq!(all.visits.1, none.visits.1 + less.visits.1);
    }
}
