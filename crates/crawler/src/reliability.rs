//! The reliability study: paired campaigns with pristine, lossy, and
//! strengthened capture — the Krumnow et al. reproduction.
//!
//! Krumnow et al. ("Analysing and strengthening OpenWPM's reliability",
//! PAPERS.md) show that real crawls silently lose data: instrumentation
//! attaches late, observers drop events, and partial captures masquerade
//! as clean records. This module reproduces that study on our own stack:
//! [`run_captured_campaign`] executes the standard two-machine campaign
//! but routes every visit's ground truth through an explicit capture
//! pipeline (`hlisa_web::capture`), degraded per visit by a
//! `hlisa_sim::LossSchedule` drawn from the `"fault"` stream family; and
//! [`run_reliability_study`] runs the same seeded campaign under all
//! three [`CaptureMode`]s and diffs the resulting Table 2 rows and
//! recorder analytics into a [`DriftReport`] (per-metric relative error
//! and conclusion flips).
//!
//! Invariants pinned by `tests/reliability_loss.rs`:
//!
//! * a **pristine** captured campaign is bit-identical to
//!   [`run_campaign`](crate::campaign::run_campaign) — capture emission
//!   and reconstruction are draw-free and exactly inverse;
//! * a **rate-0** lossy campaign is bit-identical too — a no-op
//!   [`LossPlan`] consumes zero RNG draws;
//! * a **strengthened** campaign (write-ahead capture + attach barrier)
//!   is bit-identical to pristine *for any seed and loss rate*, while
//!   naive-lossy campaigns drift at any positive rate.

use crate::campaign::{
    collect_results, machine_context, new_runtime, run_campaign, run_sharded, Campaign,
    CampaignConfig, MachineRun, SiteResult, SiteSource,
};
use crate::screenshot::screenshot_table;
use hlisa_sim::{
    CounterSet, LossPlan, LossSchedule, LossyObserver, Observer, SimContext, WriteAheadObserver,
};
use hlisa_web::visit::DetectorRuntime;
use hlisa_web::{
    emit_capture_events, generate_population, CaptureRecorder, ClientKind, Site, VisitOutcome,
    DEFAULT_SHARD_SIZE, DEFAULT_VISIT_DEADLINE_MS,
};

/// How a campaign's capture pipeline handles the loss plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaptureMode {
    /// Perfect instrumentation: every emitted event is recorded. The
    /// reference the other modes are diffed against.
    Pristine,
    /// The naive pipeline: the observer channel silently loses whatever
    /// the per-visit [`LossSchedule`] says — late attach, dropout
    /// windows, partial capture — and the record looks clean anyway.
    NaiveLossy,
    /// The strengthened pipeline: write-ahead event capture (events
    /// buffered at emission, upstream of the lossy channel) plus an
    /// attach barrier (buffered events replayed into the observer when
    /// instrumentation acks). Provably recovers the pristine record.
    Strengthened,
}

impl CaptureMode {
    /// Stable snake_case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            CaptureMode::Pristine => "pristine",
            CaptureMode::NaiveLossy => "naive_lossy",
            CaptureMode::Strengthened => "strengthened",
        }
    }
}

/// A campaign as its instrument recorded it, plus the capture pipeline's
/// own telemetry (`loss.*` / `capture.*` / `recorder.*` counters, merged
/// over every visit of both machines, in canonical sorted order).
#[derive(Debug, Clone, PartialEq)]
pub struct CapturedCampaign {
    /// The mode the pipeline ran in.
    pub mode: CaptureMode,
    /// The campaign as recorded — ground truth only under
    /// [`CaptureMode::Pristine`] (or a no-op plan).
    pub campaign: Campaign,
    /// Merged capture-pipeline counters.
    pub analytics: CounterSet,
}

/// One visit's trip through the capture pipeline: ground truth in,
/// recorded outcome out, pipeline counters merged into `acc`.
fn captured_visit(
    site: &Site,
    truth: &VisitOutcome,
    schedule: LossSchedule,
    mode: CaptureMode,
    acc: &mut CounterSet,
) -> VisitOutcome {
    let events = emit_capture_events(site, truth, DEFAULT_VISIT_DEADLINE_MS);
    match mode {
        CaptureMode::Pristine => {
            let mut recorder = CaptureRecorder::new();
            for (t, e) in &events {
                recorder.on_event(*t, e);
            }
            acc.merge(&recorder.counters());
            recorder.outcome()
        }
        CaptureMode::NaiveLossy => {
            let mut lossy =
                LossyObserver::new(CaptureRecorder::new(), schedule, DEFAULT_VISIT_DEADLINE_MS);
            for (t, e) in &events {
                lossy.on_event(*t, e);
            }
            acc.merge(&lossy.counters());
            lossy.inner().outcome()
        }
        CaptureMode::Strengthened => {
            // Write-ahead capture sits at the emission site, upstream of
            // the lossy channel, so dropout and partial capture cannot
            // touch what it buffers. The attach barrier acks when the
            // schedule says instrumentation is wired; everything emitted
            // before that replays from the buffer.
            let mut wal = WriteAheadObserver::detached(CaptureRecorder::new());
            let attach_at_ms = schedule.attach_at * DEFAULT_VISIT_DEADLINE_MS;
            // The attach barrier acks at the first event on or after the
            // schedule's attach point; everything before it buffers.
            let split = events
                .iter()
                .position(|(t, _)| *t >= attach_at_ms)
                .unwrap_or(events.len());
            wal.reserve(split);
            for (t, e) in &events[..split] {
                wal.on_event(*t, e);
            }
            wal.attach();
            for (t, e) in &events[split..] {
                wal.on_event(*t, e);
            }
            acc.merge(&wal.counters());
            wal.inner().outcome()
        }
    }
}

/// All visits of one site through the capture pipeline. Ground truth is
/// produced exactly as `campaign::visit_site` produces it — same fork,
/// same draw sequence — and the loss schedule is drawn *afterwards* from
/// the visit context's `"fault"` stream, which the plain runner never
/// touches; a no-op plan draws nothing at all. Both facts together make
/// rate-0 captured campaigns bit-identical to `run_campaign`.
#[allow(clippy::too_many_arguments)]
fn captured_site(
    config: &CampaignConfig,
    site: &Site,
    client: ClientKind,
    runtime: &DetectorRuntime,
    machine_ctx: &SimContext,
    plan: &LossPlan,
    mode: CaptureMode,
    acc: &mut CounterSet,
) -> SiteResult {
    let outcomes: Vec<VisitOutcome> = (0..config.visits_per_site)
        .map(|v| {
            let mut ctx = machine_ctx.fork_visit(&site.domain, v as u64);
            let mut truth = hlisa_web::simulate_visit(site, client, runtime, &mut ctx);
            if let Some(kind) = site.scenario {
                crate::scenario::apply_scenario_drive(
                    config.seed,
                    site,
                    kind,
                    client,
                    &mut truth,
                    &mut ctx,
                );
            }
            let schedule = plan.draw(ctx.stream("fault"));
            captured_visit(site, &truth, schedule, mode, acc)
        })
        .collect();
    SiteResult {
        domain: site.domain.clone(),
        rank: site.rank,
        outcomes,
    }
}

fn run_captured_machine(
    config: &CampaignConfig,
    sites: &[Site],
    client: ClientKind,
    runtime: &DetectorRuntime,
    plan: &LossPlan,
    mode: CaptureMode,
) -> (MachineRun, CounterSet) {
    let machine_ctx = machine_context(config, client);
    let source = SiteSource::Slice {
        sites,
        shard_size: DEFAULT_SHARD_SIZE,
    };
    let (slots, states) = run_sharded(
        config.instances,
        &source,
        &CounterSet::new,
        &|acc: &mut CounterSet, _k, _base, shard_sites| {
            shard_sites
                .iter()
                .map(|site| {
                    captured_site(config, site, client, runtime, &machine_ctx, plan, mode, acc)
                })
                .collect::<Vec<SiteResult>>()
        },
    );
    // Worker-state totals are partition-independent; sorting makes the
    // merged set canonical whatever the claiming order was.
    let mut analytics = CounterSet::new();
    for state in &states {
        analytics.merge(state);
    }
    (
        MachineRun {
            client,
            sites: collect_results(slots, &source),
        },
        analytics.sorted(),
    )
}

/// Runs the standard two-machine campaign through the capture pipeline.
pub fn run_captured_campaign(
    config: &CampaignConfig,
    plan: &LossPlan,
    mode: CaptureMode,
) -> CapturedCampaign {
    let sites = generate_population(&config.population);
    let runtime = new_runtime(config);
    let (openwpm, a1) =
        run_captured_machine(config, &sites, ClientKind::OpenWpm, &runtime, plan, mode);
    let (spoofed, a2) = run_captured_machine(
        config,
        &sites,
        ClientKind::OpenWpmSpoofed,
        &runtime,
        plan,
        mode,
    );
    let mut analytics = a1;
    analytics.merge(&a2);
    CapturedCampaign {
        mode,
        campaign: Campaign {
            sites,
            openwpm,
            spoofed,
        },
        analytics: analytics.sorted(),
    }
}

/// One metric's drift between the pristine and an observed campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDrift {
    /// Metric name, e.g. `"blocking/CAPTCHAs sites m1"`.
    pub metric: String,
    /// The metric under pristine capture.
    pub pristine: f64,
    /// The metric as the degraded instrument recorded it.
    pub observed: f64,
    /// `|observed - pristine| / pristine` (1.0 when pristine is zero and
    /// the observed value is not).
    pub rel_error: f64,
}

/// How far an observed campaign's conclusions drifted from pristine.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftReport {
    /// Per-metric drift over every Table 2 cell and every comparable
    /// `recorder.*` analytic.
    pub metrics: Vec<MetricDrift>,
    /// Table 2 comparisons whose machine-1-vs-machine-2 ordering
    /// *changed sign* under loss — the conclusion-corrupting failure
    /// mode, not just noisy magnitudes.
    pub conclusion_flips: Vec<String>,
}

impl DriftReport {
    /// The largest per-metric relative error.
    pub fn max_rel_error(&self) -> f64 {
        self.metrics.iter().map(|m| m.rel_error).fold(0.0, f64::max)
    }

    /// The mean per-metric relative error.
    pub fn mean_rel_error(&self) -> f64 {
        if self.metrics.is_empty() {
            return 0.0;
        }
        self.metrics.iter().map(|m| m.rel_error).sum::<f64>() / self.metrics.len() as f64
    }

    /// True when nothing drifted: every metric exact, no flips.
    pub fn is_zero(&self) -> bool {
        self.conclusion_flips.is_empty() && self.metrics.iter().all(|m| m.rel_error == 0.0)
    }
}

fn rel_error(pristine: f64, observed: f64) -> f64 {
    if pristine == 0.0 {
        if observed == 0.0 {
            0.0
        } else {
            1.0
        }
    } else {
        (observed - pristine).abs() / pristine
    }
}

/// Diffs an observed campaign against the pristine reference: every
/// Table 2 cell, the sign of every machine-1-vs-machine-2 comparison,
/// and the comparable `recorder.*` analytics.
pub fn drift_report(pristine: &CapturedCampaign, observed: &CapturedCampaign) -> DriftReport {
    let table_p = screenshot_table(&pristine.campaign);
    let table_o = screenshot_table(&observed.campaign);
    let mut metrics = Vec::new();
    let mut conclusion_flips = Vec::new();

    for row_p in &table_p.rows {
        let Some(row_o) = table_o.row(&row_p.label) else {
            continue;
        };
        let cells = [
            ("sites m1", row_p.sites.0, row_o.sites.0),
            ("sites m2", row_p.sites.1, row_o.sites.1),
            ("visits m1", row_p.visits.0, row_o.visits.0),
            ("visits m2", row_p.visits.1, row_o.visits.1),
        ];
        for (cell, p, o) in cells {
            metrics.push(MetricDrift {
                metric: format!("{} {}", row_p.label, cell),
                pristine: p as f64,
                observed: o as f64,
                rel_error: rel_error(p as f64, o as f64),
            });
        }
        // The study's conclusions are *comparative*: machine 1 shows
        // more blocking than machine 2, etc. A flip is a sign change of
        // that difference under loss.
        let flips = |p1: usize, p2: usize, o1: usize, o2: usize| {
            (p1 as i64 - p2 as i64).signum() != (o1 as i64 - o2 as i64).signum()
        };
        if flips(row_p.sites.0, row_p.sites.1, row_o.sites.0, row_o.sites.1) {
            conclusion_flips.push(format!("{} (sites)", row_p.label));
        }
        if flips(
            row_p.visits.0,
            row_p.visits.1,
            row_o.visits.0,
            row_o.visits.1,
        ) {
            conclusion_flips.push(format!("{} (visits)", row_p.label));
        }
    }

    // Recorder analytics present under pristine capture are comparable
    // across modes (loss.* / capture.* telemetry is mode-specific and
    // excluded by the prefix filter).
    for (name, p) in pristine.analytics.entries() {
        if !name.starts_with("recorder.") {
            continue;
        }
        let o = observed.analytics.get(name).unwrap_or(0);
        metrics.push(MetricDrift {
            metric: name.clone(),
            pristine: *p as f64,
            observed: o as f64,
            rel_error: rel_error(*p as f64, o as f64),
        });
    }

    DriftReport {
        metrics,
        conclusion_flips,
    }
}

/// The full paired-campaign reliability study over one loss plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ReliabilityStudy {
    /// The campaign under perfect instrumentation.
    pub pristine: CapturedCampaign,
    /// The same seeded campaign under naive lossy capture.
    pub naive: CapturedCampaign,
    /// The same seeded campaign under strengthened capture.
    pub strengthened: CapturedCampaign,
    /// Naive-vs-pristine drift.
    pub naive_drift: DriftReport,
    /// Strengthened-vs-pristine drift (all-zero by construction; the
    /// proptest pins the stronger bit-identity claim).
    pub strengthened_drift: DriftReport,
}

/// Runs the same seeded campaign under all three capture modes and
/// diffs the results — the Krumnow-style reliability comparison.
pub fn run_reliability_study(config: &CampaignConfig, plan: &LossPlan) -> ReliabilityStudy {
    let pristine = run_captured_campaign(config, plan, CaptureMode::Pristine);
    let naive = run_captured_campaign(config, plan, CaptureMode::NaiveLossy);
    let strengthened = run_captured_campaign(config, plan, CaptureMode::Strengthened);
    let naive_drift = drift_report(&pristine, &naive);
    let strengthened_drift = drift_report(&pristine, &strengthened);
    ReliabilityStudy {
        pristine,
        naive,
        strengthened,
        naive_drift,
        strengthened_drift,
    }
}

/// Convenience used by tests and the bench: the ground-truth campaign
/// produced by the legacy runner, for diffing captured runs against.
pub fn ground_truth_campaign(config: &CampaignConfig) -> Campaign {
    run_campaign(config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlisa_web::PopulationConfig;

    fn study_config() -> CampaignConfig {
        CampaignConfig {
            seed: 41,
            population: PopulationConfig {
                n_sites: 50,
                unreachable_sites: 4,
                webdriver_visible: (2, 1, 1, 1),
                template_visible: (1, 1, 1),
                silent_http: (2, 1),
                breakage_sites: 1,
                ..PopulationConfig::default()
            },
            visits_per_site: 3,
            instances: 4,
            world_cache: true,
            plan_interactions: false,
        }
    }

    #[test]
    fn pristine_capture_records_the_ground_truth() {
        let config = study_config();
        let truth = ground_truth_campaign(&config);
        let captured = run_captured_campaign(&config, &LossPlan::none(), CaptureMode::Pristine);
        assert_eq!(captured.campaign, truth);
    }

    #[test]
    fn naive_lossy_campaigns_drift_and_account_for_the_loss() {
        let config = study_config();
        let study = run_reliability_study(&config, &LossPlan::uniform(0.4));
        let dropped = study.naive.analytics.get("loss.dropped").unwrap_or(0);
        assert!(dropped > 0, "a 40% loss plan must drop events");
        assert!(
            study.naive_drift.max_rel_error() > 0.0,
            "naive capture at 40% loss must drift"
        );
        assert_ne!(study.naive.campaign, study.pristine.campaign);
    }

    #[test]
    fn strengthened_capture_is_bit_identical_to_pristine() {
        let config = study_config();
        let study = run_reliability_study(&config, &LossPlan::uniform(0.5));
        assert_eq!(study.strengthened.campaign, study.pristine.campaign);
        assert!(study.strengthened_drift.is_zero());
        // The write-ahead buffer actually did work: late-attach visits
        // replayed their buffered prefixes.
        assert!(
            study
                .strengthened
                .analytics
                .get("capture.replayed")
                .unwrap_or(0)
                > 0
        );
    }

    #[test]
    fn drift_report_flags_conclusion_flips() {
        // Construct a synthetic flip: pristine says m1 > m2, observed
        // says m1 < m2 on the blocking row.
        let config = study_config();
        let pristine = run_captured_campaign(&config, &LossPlan::none(), CaptureMode::Pristine);
        let mut observed = pristine.clone();
        // Swap the two machines' records wholesale: every comparative
        // conclusion with a nonzero pristine difference must flip.
        std::mem::swap(
            &mut observed.campaign.openwpm.sites,
            &mut observed.campaign.spoofed.sites,
        );
        let report = drift_report(&pristine, &observed);
        assert!(
            !report.conclusion_flips.is_empty(),
            "swapped machines must flip at least one comparison"
        );
        assert!(!report.is_zero());
    }

    #[test]
    fn self_drift_is_zero() {
        let config = study_config();
        let pristine = run_captured_campaign(&config, &LossPlan::none(), CaptureMode::Pristine);
        let report = drift_report(&pristine, &pristine);
        assert!(report.is_zero());
        assert_eq!(report.max_rel_error(), 0.0);
        assert_eq!(report.mean_rel_error(), 0.0);
    }
}
