//! Crawl campaign execution.

use hlisa_sim::SimContext;
use hlisa_web::visit::DetectorRuntime;
use hlisa_web::{
    generate_population, simulate_visit, ClientKind, PopulationConfig, Site, VisitOutcome,
};
use std::sync::OnceLock;

/// Campaign configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// Master seed (covers visit-level randomness).
    pub seed: u64,
    /// Site population.
    pub population: PopulationConfig,
    /// Visits per site per machine (the paper's 8 simultaneous instances
    /// provide "a baseline to average out variations").
    pub visits_per_site: usize,
    /// Parallel browser instances per machine.
    pub instances: usize,
    /// Stamp per-visit JS worlds from per-worker snapshots (`true`, the
    /// fast path) or rebuild them from scratch every visit (`false`, the
    /// original cost model). Campaign output is bit-identical either way —
    /// world construction consumes no RNG — so this only trades speed.
    pub world_cache: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            seed: 0x6372_6177, // "craw"
            population: PopulationConfig::default(),
            visits_per_site: 8,
            instances: 8,
            world_cache: true,
        }
    }
}

/// All visits of one site by one machine.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteResult {
    /// The site's domain.
    pub domain: String,
    /// Tranco-style rank.
    pub rank: u32,
    /// One outcome per visit.
    pub outcomes: Vec<VisitOutcome>,
}

impl SiteResult {
    /// Whether any visit reached the site.
    pub fn reached(&self) -> bool {
        self.outcomes.iter().any(|o| o.reached)
    }

    /// Number of successful visits.
    pub fn successful_visits(&self) -> usize {
        self.outcomes.iter().filter(|o| o.successful).count()
    }
}

/// One machine's full crawl.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineRun {
    /// The client flavour this machine ran.
    pub client: ClientKind,
    /// Per-site results, in population order.
    pub sites: Vec<SiteResult>,
}

/// Both machines' crawls over the same population.
#[derive(Debug, Clone, PartialEq)]
pub struct Campaign {
    /// The site population visited.
    pub sites: Vec<Site>,
    /// Machine (1): stock OpenWPM.
    pub openwpm: MachineRun,
    /// Machine (2): OpenWPM + spoofing extension.
    pub spoofed: MachineRun,
}

/// Runs the full two-machine campaign.
pub fn run_campaign(config: &CampaignConfig) -> Campaign {
    let sites = generate_population(&config.population);
    // One runtime for the whole campaign: the template reference is
    // captured once and the snapshot cache keeps a slot per flavour, so
    // both machines (and all their workers) share the same pristine
    // worlds. Sharing changes no output — stamps are value clones.
    let runtime = new_runtime(config);
    let openwpm = run_machine_with(config, &sites, ClientKind::OpenWpm, &runtime);
    let spoofed = run_machine_with(config, &sites, ClientKind::OpenWpmSpoofed, &runtime);
    Campaign {
        sites,
        openwpm,
        spoofed,
    }
}

fn new_runtime(config: &CampaignConfig) -> DetectorRuntime {
    if config.world_cache {
        DetectorRuntime::new()
    } else {
        DetectorRuntime::without_world_cache()
    }
}

/// Runs one machine's crawl with `config.instances` parallel workers.
///
/// Work is partitioned deterministically — worker `w` takes exactly the
/// sites whose population index satisfies `i % instances == w` — and every
/// visit runs in its own [`SimContext`] forked from the machine context by
/// `(domain, visit index)`. Neither the schedule nor the thread count can
/// therefore affect any draw: the run is bit-identical for any `instances`.
pub fn run_machine(config: &CampaignConfig, sites: &[Site], client: ClientKind) -> MachineRun {
    run_machine_with(config, sites, client, &new_runtime(config))
}

/// [`run_machine`] with an explicit (shareable) detector runtime. The
/// runtime is shared by reference across the workers: the template
/// reference is captured once, and on the fast path the
/// `OnceLock`-guarded snapshot cache builds each pristine world once.
fn run_machine_with(
    config: &CampaignConfig,
    sites: &[Site],
    client: ClientKind,
    runtime: &DetectorRuntime,
) -> MachineRun {
    let instances = config.instances.max(1);
    let label = match client {
        ClientKind::OpenWpm => "m1",
        ClientKind::OpenWpmSpoofed => "m2",
    };
    let machine_ctx = SimContext::new(config.seed).fork(label, 0);
    // Write-once result slots: each population index is written by exactly
    // one worker, and reads happen only after the scope joins.
    let results: Vec<OnceLock<SiteResult>> = (0..sites.len()).map(|_| OnceLock::new()).collect();

    std::thread::scope(|scope| {
        for w in 0..instances {
            let machine_ctx = &machine_ctx;
            let results = &results;
            scope.spawn(move || {
                for (i, site) in sites.iter().enumerate().skip(w).step_by(instances) {
                    let outcomes: Vec<VisitOutcome> = (0..config.visits_per_site)
                        .map(|v| {
                            let mut ctx = machine_ctx.fork_visit(&site.domain, v as u64);
                            let mut outcome = simulate_visit(site, client, runtime, &mut ctx);
                            // Dynamic-page sites additionally run the
                            // scenario drive; it draws only from its own
                            // forked streams, so populations without
                            // scenarios stay bit-identical.
                            if let Some(kind) = site.scenario {
                                crate::scenario::apply_scenario_drive(
                                    config.seed,
                                    site,
                                    kind,
                                    client,
                                    &mut outcome,
                                    &mut ctx,
                                );
                            }
                            outcome
                        })
                        .collect();
                    // Each index is owned by exactly one worker, so the
                    // set can only succeed; if the partition invariant
                    // ever broke, the first write wins and the campaign
                    // still completes.
                    let _ = results[i].set(SiteResult {
                        domain: site.domain.clone(),
                        rank: site.rank,
                        outcomes,
                    });
                }
            });
        }
    });

    MachineRun {
        client,
        sites: collect_results(results, sites),
    }
}

/// Collects the workers' write-once slots back into population order,
/// degrading any slot whose worker died before writing it.
fn collect_results(results: Vec<OnceLock<SiteResult>>, sites: &[Site]) -> Vec<SiteResult> {
    results
        .into_iter()
        .zip(sites)
        .map(|(slot, site)| slot.into_inner().unwrap_or_else(|| degraded_result(site)))
        .collect()
}

/// Graceful degradation for a site whose worker died before writing its
/// slot: record the site as unvisited (zero outcomes) rather than
/// aborting the whole machine, mirroring how the paper's crawl keeps its
/// Table 2 denominators when individual browser instances wedge.
fn degraded_result(site: &Site) -> SiteResult {
    SiteResult {
        domain: site.domain.clone(),
        rank: site.rank,
        outcomes: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> CampaignConfig {
        CampaignConfig {
            seed: 7,
            population: PopulationConfig {
                n_sites: 60,
                unreachable_sites: 5,
                webdriver_visible: (2, 1, 1, 1),
                template_visible: (1, 1, 1),
                silent_http: (2, 1),
                breakage_sites: 1,
                ..PopulationConfig::default()
            },
            visits_per_site: 4,
            instances: 4,
            world_cache: true,
        }
    }

    #[test]
    fn campaign_covers_all_sites_for_both_machines() {
        let c = run_campaign(&small_config());
        assert_eq!(c.openwpm.sites.len(), 60);
        assert_eq!(c.spoofed.sites.len(), 60);
        assert!(c.openwpm.sites.iter().all(|s| s.outcomes.len() == 4));
        // Result order matches population order despite parallelism.
        for (site, result) in c.sites.iter().zip(&c.openwpm.sites) {
            assert_eq!(site.domain, result.domain);
        }
    }

    #[test]
    fn campaign_is_deterministic_across_runs_and_thread_counts() {
        let base = small_config();
        let mut serial = base.clone();
        serial.instances = 1;
        let a = run_campaign(&base);
        let b = run_campaign(&serial);
        assert_eq!(a, b, "parallel schedule must not affect results");
    }

    #[test]
    fn snapshot_stamped_campaign_is_bit_identical_to_fresh_built() {
        let cached = small_config();
        let mut fresh = cached.clone();
        fresh.world_cache = false;
        let a = run_campaign(&cached);
        let b = run_campaign(&fresh);
        assert_eq!(a, b, "world snapshot cache must not change any outcome");
    }

    #[test]
    fn unreachable_sites_never_reached() {
        let c = run_campaign(&small_config());
        for (site, result) in c.sites.iter().zip(&c.openwpm.sites) {
            if site.unreachable {
                assert!(!result.reached());
                assert_eq!(result.successful_visits(), 0);
            }
        }
    }

    #[test]
    fn poisoned_slot_degrades_to_zero_outcome_row_instead_of_aborting() {
        let sites = generate_population(&small_config().population);
        // Simulate a worker that wedged mid-site: its slot never gets
        // written. Every other slot is filled normally.
        let results: Vec<OnceLock<SiteResult>> = sites
            .iter()
            .enumerate()
            .map(|(i, site)| {
                let slot = OnceLock::new();
                if i != 3 {
                    let _ = slot.set(SiteResult {
                        domain: site.domain.clone(),
                        rank: site.rank,
                        outcomes: vec![],
                    });
                }
                slot
            })
            .collect();
        let collected = collect_results(results, &sites);
        // The machine run still covers the full population, in order…
        assert_eq!(collected.len(), sites.len());
        for (site, result) in sites.iter().zip(&collected) {
            assert_eq!(site.domain, result.domain);
            assert_eq!(site.rank, result.rank);
        }
        // …and the poisoned site reads as unvisited, keeping Table 2's
        // denominators intact rather than crashing the campaign.
        assert!(collected[3].outcomes.is_empty());
        assert!(!collected[3].reached());
        assert_eq!(collected[3].successful_visits(), 0);
    }

    #[test]
    fn openwpm_gets_detected_more_than_spoofed() {
        let c = run_campaign(&small_config());
        let detections = |run: &MachineRun| -> usize {
            run.sites
                .iter()
                .flat_map(|s| &s.outcomes)
                .filter(|o| o.detected)
                .count()
        };
        let d1 = detections(&c.openwpm);
        let d2 = detections(&c.spoofed);
        assert!(d1 > d2 * 2, "openwpm {d1} vs spoofed {d2}");
        assert!(d1 > 0);
    }
}
