//! Crawl campaign execution.
//!
//! The machine runner distributes work at *shard* granularity: workers
//! claim consecutive shard indices off one atomic cursor instead of being
//! statically striped over sites (`i % instances == w`). Claiming order is
//! scheduling-dependent, but no draw is: every visit runs in a
//! [`SimContext`] forked purely from `(machine seed, domain, visit
//! index)`, and results land in per-shard write-once slots reassembled in
//! shard order. The run is therefore bit-identical for any `instances`
//! and any claiming order — property-tested, including under the lazy
//! [`PopulationShards`] source where a shard's sites are materialised
//! only while a worker holds them.

use crate::scenario::ScenarioScratch;
use hlisa_human::{HumanParams, VisitPlanner};
use hlisa_sim::SimContext;
use hlisa_web::visit::DetectorRuntime;
use hlisa_web::{
    generate_population, simulate_visit, simulate_visit_planned, ClientKind, PlanStats,
    PopulationConfig, PopulationShards, Site, VisitOutcome, DEFAULT_SHARD_SIZE,
};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Campaign configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// Master seed (covers visit-level randomness).
    pub seed: u64,
    /// Site population.
    pub population: PopulationConfig,
    /// Visits per site per machine (the paper's 8 simultaneous instances
    /// provide "a baseline to average out variations").
    pub visits_per_site: usize,
    /// Parallel browser instances per machine.
    pub instances: usize,
    /// Stamp per-visit JS worlds from per-worker snapshots (`true`, the
    /// fast path) or rebuild them from scratch every visit (`false`, the
    /// original cost model). Campaign output is bit-identical either way —
    /// world construction consumes no RNG — so this only trades speed.
    pub world_cache: bool,
    /// Drive every successful visit off a batch [`VisitPlanner`] (one
    /// reusable arena per worker). The plan draws only from a `"plan"`
    /// fork of each visit context, so campaign outcomes are bit-identical
    /// with the mode on or off; planning adds per-visit interaction
    /// synthesis and per-worker [`PlanStats`] totals.
    pub plan_interactions: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            seed: 0x6372_6177, // "craw"
            population: PopulationConfig::default(),
            visits_per_site: 8,
            instances: 8,
            world_cache: true,
            plan_interactions: false,
        }
    }
}

/// Worker-local visit state: the scenario drive's persistent agent plus,
/// in planner mode, the batch interaction planner and its running totals.
/// One lives per worker thread for the worker's whole shard stream, so
/// every scratch buffer reaches its high-water capacity once and is then
/// reused visit after visit.
pub(crate) struct VisitWorker {
    scenario: ScenarioScratch,
    planner: Option<(HumanParams, VisitPlanner)>,
    plan_totals: PlanStats,
}

impl VisitWorker {
    pub(crate) fn new(plan_interactions: bool) -> Self {
        Self {
            scenario: ScenarioScratch::new(),
            planner: plan_interactions
                .then(|| (HumanParams::paper_baseline(), VisitPlanner::new())),
            plan_totals: PlanStats::default(),
        }
    }
}

/// All visits of one site by one machine.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteResult {
    /// The site's domain.
    pub domain: String,
    /// Tranco-style rank.
    pub rank: u32,
    /// One outcome per visit.
    pub outcomes: Vec<VisitOutcome>,
}

impl SiteResult {
    /// Whether any visit reached the site.
    pub fn reached(&self) -> bool {
        self.outcomes.iter().any(|o| o.reached)
    }

    /// Number of successful visits.
    pub fn successful_visits(&self) -> usize {
        self.outcomes.iter().filter(|o| o.successful).count()
    }
}

/// One machine's full crawl.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineRun {
    /// The client flavour this machine ran.
    pub client: ClientKind,
    /// Per-site results, in population order.
    pub sites: Vec<SiteResult>,
}

/// Both machines' crawls over the same population.
#[derive(Debug, Clone, PartialEq)]
pub struct Campaign {
    /// The site population visited.
    pub sites: Vec<Site>,
    /// Machine (1): stock OpenWPM.
    pub openwpm: MachineRun,
    /// Machine (2): OpenWPM + spoofing extension.
    pub spoofed: MachineRun,
}

/// Runs the full two-machine campaign.
pub fn run_campaign(config: &CampaignConfig) -> Campaign {
    let sites = generate_population(&config.population);
    // One runtime for the whole campaign: the template reference is
    // captured once and the snapshot cache keeps a slot per flavour, so
    // both machines (and all their workers) share the same pristine
    // worlds. Sharing changes no output — stamps are value clones.
    let runtime = new_runtime(config);
    let openwpm = run_machine_with(config, &sites, ClientKind::OpenWpm, &runtime);
    let spoofed = run_machine_with(config, &sites, ClientKind::OpenWpmSpoofed, &runtime);
    Campaign {
        sites,
        openwpm,
        spoofed,
    }
}

pub(crate) fn new_runtime(config: &CampaignConfig) -> DetectorRuntime {
    if config.world_cache {
        DetectorRuntime::new()
    } else {
        DetectorRuntime::without_world_cache()
    }
}

/// Where a machine's sites come from: a materialised slice viewed in
/// shard-size windows (no per-shard allocation), or the lazy shard layer
/// (sites materialised only while a worker holds the shard).
pub(crate) enum SiteSource<'a> {
    /// A pre-generated population, windowed into logical shards.
    Slice {
        sites: &'a [Site],
        shard_size: usize,
    },
    /// The lazy shard layer — each shard generated on claim, dropped
    /// when the worker finishes it.
    Lazy(&'a PopulationShards),
}

impl SiteSource<'_> {
    pub(crate) fn n_sites(&self) -> usize {
        match self {
            SiteSource::Slice { sites, .. } => sites.len(),
            SiteSource::Lazy(shards) => shards.n_sites(),
        }
    }

    pub(crate) fn shard_size(&self) -> usize {
        match self {
            SiteSource::Slice { shard_size, .. } => (*shard_size).max(1),
            SiteSource::Lazy(shards) => shards.shard_size(),
        }
    }

    pub(crate) fn n_shards(&self) -> usize {
        self.n_sites().div_ceil(self.shard_size())
    }

    pub(crate) fn shard_range(&self, k: usize) -> Range<usize> {
        let lo = k * self.shard_size();
        let hi = (lo + self.shard_size()).min(self.n_sites());
        lo..hi
    }

    /// Runs `f` over shard `k`'s sites (`f(first site index, sites)`). A
    /// slice source borrows its window; the lazy source materialises the
    /// shard for exactly the duration of the call.
    pub(crate) fn with_shard<T>(&self, k: usize, f: impl FnOnce(usize, &[Site]) -> T) -> T {
        match self {
            SiteSource::Slice { sites, .. } => {
                let range = self.shard_range(k);
                f(range.start, &sites[range])
            }
            SiteSource::Lazy(shards) => shards.with_shard(k, f),
        }
    }
}

/// The shard-claiming worker engine shared by the plain and chaos
/// runners. Spawns `min(instances, shards)` workers which repeatedly
/// claim the next shard index off one atomic cursor and run `process`
/// over its sites with a worker-local state (`init` per worker), writing
/// each shard's product into a write-once slot.
///
/// Returns the per-shard products in shard order (`None` for a shard
/// whose worker died before writing — callers degrade those) and the
/// worker states in worker-index order. The claiming order is
/// scheduling-dependent; nothing processed is: `process` receives only
/// the shard's identity and sites, so any claim order yields the same
/// slot contents, and worker-state *totals* are partition-independent.
pub(crate) fn run_sharded<S, W>(
    instances: usize,
    source: &SiteSource<'_>,
    init: &(impl Fn() -> W + Sync),
    process: &(impl Fn(&mut W, usize, usize, &[Site]) -> S + Sync),
) -> (Vec<Option<S>>, Vec<W>)
where
    S: Send + Sync,
    W: Send,
{
    let n_shards = source.n_shards();
    let workers = instances.max(1).min(n_shards.max(1));
    let slots: Vec<OnceLock<S>> = (0..n_shards).map(|_| OnceLock::new()).collect();
    let cursor = AtomicUsize::new(0);

    let states = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let slots = &slots;
                let cursor = &cursor;
                scope.spawn(move || {
                    let mut state = init();
                    loop {
                        let k = cursor.fetch_add(1, Ordering::Relaxed);
                        if k >= n_shards {
                            break;
                        }
                        let product =
                            source.with_shard(k, |base, sites| process(&mut state, k, base, sites));
                        // Each shard index is claimed by exactly one
                        // worker, so the set can only succeed; if the
                        // cursor invariant ever broke, the first write
                        // wins and the campaign still completes.
                        let _ = slots[k].set(product);
                    }
                    state
                })
            })
            .collect();
        // Join in worker-index order so the returned states are
        // positionally stable; a worker that died yields a fresh state.
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| init()))
            .collect::<Vec<_>>()
    });

    (
        slots.into_iter().map(OnceLock::into_inner).collect(),
        states,
    )
}

/// Runs one machine's crawl with `config.instances` parallel workers.
///
/// Workers claim shards of [`DEFAULT_SHARD_SIZE`] sites off an atomic
/// cursor; every visit runs in its own [`SimContext`] forked from the
/// machine context by `(domain, visit index)`. Neither the schedule nor
/// the thread count can therefore affect any draw: the run is
/// bit-identical for any `instances` and any claiming order.
pub fn run_machine(config: &CampaignConfig, sites: &[Site], client: ClientKind) -> MachineRun {
    run_machine_with(config, sites, client, &new_runtime(config))
}

/// [`run_machine`] with an explicit shard size — the knob property tests
/// sweep to prove shard granularity never affects output.
pub fn run_machine_sharded(
    config: &CampaignConfig,
    sites: &[Site],
    client: ClientKind,
    shard_size: usize,
) -> MachineRun {
    run_machine_source(
        config,
        &SiteSource::Slice { sites, shard_size },
        client,
        &new_runtime(config),
    )
}

/// [`run_machine`] over a lazy sharded population: at most one shard per
/// worker is materialised at any moment (the shard layer's residency
/// gauges prove it), and the output is bit-identical to running over the
/// eager population.
pub fn run_machine_lazy(
    config: &CampaignConfig,
    shards: &PopulationShards,
    client: ClientKind,
) -> MachineRun {
    run_machine_source(
        config,
        &SiteSource::Lazy(shards),
        client,
        &new_runtime(config),
    )
}

/// Streaming variant for populations too large to hold a [`SiteResult`]
/// per site: each shard's results are folded into a summary by
/// `summarise(shard index, results)` *inside the worker* and dropped, so
/// the standing footprint is one summary per shard plus one materialised
/// shard per worker. Summaries return in shard order; a shard whose
/// worker died is summarised from degraded (zero-outcome) rows.
pub fn run_machine_shard_summaries<S: Send + Sync>(
    config: &CampaignConfig,
    shards: &PopulationShards,
    client: ClientKind,
    summarise: &(impl Fn(usize, Vec<SiteResult>) -> S + Sync),
) -> Vec<S> {
    run_shard_summaries_with(config, shards, client, summarise, &|_, _| {})
}

/// [`run_machine_shard_summaries`] with a crash-safe on-disk journal:
/// each shard's summary is rendered by `to_json` and appended to `sink`
/// **as the shard completes**, fsync'd per append, so a harness crash
/// loses at most the shard it was mid-write on.
/// [`ShardSummarySink::replay`](crate::sink::ShardSummarySink::replay)
/// recovers every durable line afterwards.
///
/// Returns the in-memory summaries (shard order) once every append is
/// durably on disk; the first sink I/O error fails the run instead of
/// silently dropping shards.
pub fn run_machine_shard_summaries_persistent<S: Send + Sync>(
    config: &CampaignConfig,
    shards: &PopulationShards,
    client: ClientKind,
    summarise: &(impl Fn(usize, Vec<SiteResult>) -> S + Sync),
    to_json: &(impl Fn(&S) -> String + Sync),
    sink: &crate::sink::ShardSummarySink,
) -> std::io::Result<Vec<S>> {
    let summaries = run_shard_summaries_with(config, shards, client, summarise, &|k, s| {
        sink.record(k, &to_json(s));
    });
    sink.finish()?;
    Ok(summaries)
}

/// Shared engine behind the shard-summary runners: `record(k, &summary)`
/// fires once per shard — inside the worker for shards that complete,
/// during the sequential collection pass for shards whose worker died.
fn run_shard_summaries_with<S: Send + Sync>(
    config: &CampaignConfig,
    shards: &PopulationShards,
    client: ClientKind,
    summarise: &(impl Fn(usize, Vec<SiteResult>) -> S + Sync),
    record: &(impl Fn(usize, &S) + Sync),
) -> Vec<S> {
    let runtime = new_runtime(config);
    let machine_ctx = machine_context(config, client);
    let source = SiteSource::Lazy(shards);
    let (slots, _) = run_sharded(
        config.instances,
        &source,
        &|| VisitWorker::new(config.plan_interactions),
        &|worker: &mut VisitWorker, k, _base, sites| {
            let results: Vec<SiteResult> = sites
                .iter()
                .map(|site| visit_site(config, site, client, &runtime, &machine_ctx, worker))
                .collect();
            let summary = summarise(k, results);
            record(k, &summary);
            summary
        },
    );
    slots
        .into_iter()
        .enumerate()
        .map(|(k, slot)| {
            slot.unwrap_or_else(|| {
                source.with_shard(k, |_, sites| {
                    let summary = summarise(k, sites.iter().map(degraded_result).collect());
                    record(k, &summary);
                    summary
                })
            })
        })
        .collect()
}

/// [`run_machine`] with an explicit (shareable) detector runtime. The
/// runtime is shared by reference across the workers: the template
/// reference is captured once, and on the fast path the
/// `OnceLock`-guarded snapshot cache builds each pristine world once.
fn run_machine_with(
    config: &CampaignConfig,
    sites: &[Site],
    client: ClientKind,
    runtime: &DetectorRuntime,
) -> MachineRun {
    run_machine_source(
        config,
        &SiteSource::Slice {
            sites,
            shard_size: DEFAULT_SHARD_SIZE,
        },
        client,
        runtime,
    )
}

/// The machine context every visit fork derives from: a pure function of
/// `(campaign seed, machine label)`.
pub(crate) fn machine_context(config: &CampaignConfig, client: ClientKind) -> SimContext {
    let label = match client {
        ClientKind::OpenWpm => "m1",
        ClientKind::OpenWpmSpoofed => "m2",
    };
    SimContext::new(config.seed).fork(label, 0)
}

/// All visits of one site by one machine — the per-site unit of work,
/// identical whichever worker claims it and whenever it runs. The worker
/// state carries only reusable scratch (and planner totals): nothing in
/// it can influence a draw, so any worker produces the same result.
fn visit_site(
    config: &CampaignConfig,
    site: &Site,
    client: ClientKind,
    runtime: &DetectorRuntime,
    machine_ctx: &SimContext,
    worker: &mut VisitWorker,
) -> SiteResult {
    let outcomes: Vec<VisitOutcome> = (0..config.visits_per_site)
        .map(|v| {
            let mut ctx = machine_ctx.fork_visit(&site.domain, v as u64);
            let mut outcome = match &mut worker.planner {
                // Planner mode: the same visit attempt, plus the batch
                // interaction plan laid into the worker's arena from the
                // visit's "plan" fork — the "visit" stream (and so the
                // outcome) is untouched.
                Some((params, planner)) => {
                    let (outcome, stats) =
                        simulate_visit_planned(site, client, runtime, &mut ctx, params, planner);
                    worker.plan_totals.absorb(stats);
                    outcome
                }
                None => simulate_visit(site, client, runtime, &mut ctx),
            };
            // Dynamic-page sites additionally run the scenario drive; it
            // draws only from its own forked streams, so populations
            // without scenarios stay bit-identical.
            if let Some(kind) = site.scenario {
                crate::scenario::apply_scenario_drive_with(
                    config.seed,
                    site,
                    kind,
                    client,
                    &mut outcome,
                    &mut ctx,
                    &mut worker.scenario,
                );
            }
            outcome
        })
        .collect();
    SiteResult {
        domain: site.domain.clone(),
        rank: site.rank,
        outcomes,
    }
}

fn run_machine_source(
    config: &CampaignConfig,
    source: &SiteSource<'_>,
    client: ClientKind,
    runtime: &DetectorRuntime,
) -> MachineRun {
    run_machine_source_totals(config, source, client, runtime).0
}

/// The engine behind every plain machine run: shard-claiming workers,
/// each holding one [`VisitWorker`] for its whole shard stream. Returns
/// the machine run plus the summed per-worker [`PlanStats`] (all zero
/// unless `config.plan_interactions`); the totals are sums over visits,
/// so they are identical for any worker count and claiming order.
fn run_machine_source_totals(
    config: &CampaignConfig,
    source: &SiteSource<'_>,
    client: ClientKind,
    runtime: &DetectorRuntime,
) -> (MachineRun, PlanStats) {
    let machine_ctx = machine_context(config, client);
    let (slots, workers) = run_sharded(
        config.instances,
        source,
        &|| VisitWorker::new(config.plan_interactions),
        &|worker: &mut VisitWorker, _k, _base, sites| {
            sites
                .iter()
                .map(|site| visit_site(config, site, client, runtime, &machine_ctx, worker))
                .collect::<Vec<SiteResult>>()
        },
    );
    let mut totals = PlanStats::default();
    for w in &workers {
        totals.absorb(w.plan_totals);
    }
    (
        MachineRun {
            client,
            sites: collect_results(slots, source),
        },
        totals,
    )
}

/// [`run_machine`] in batch-planner mode: every successful visit is
/// driven off the worker's reusable [`VisitPlanner`] arena, and the
/// summed plan totals come back alongside the (bit-identical) run.
pub fn run_machine_planned(
    config: &CampaignConfig,
    sites: &[Site],
    client: ClientKind,
) -> (MachineRun, PlanStats) {
    let mut planned = config.clone();
    planned.plan_interactions = true;
    run_machine_source_totals(
        &planned,
        &SiteSource::Slice {
            sites,
            shard_size: DEFAULT_SHARD_SIZE,
        },
        client,
        &new_runtime(&planned),
    )
}

/// Reassembles the per-shard write-once slots into population order,
/// degrading every site of any shard whose worker died before writing it.
pub(crate) fn collect_results(
    slots: Vec<Option<Vec<SiteResult>>>,
    source: &SiteSource<'_>,
) -> Vec<SiteResult> {
    let mut out = Vec::with_capacity(source.n_sites());
    for (k, slot) in slots.into_iter().enumerate() {
        match slot {
            Some(results) => out.extend(results),
            None => source.with_shard(k, |_, sites| {
                out.extend(sites.iter().map(degraded_result));
            }),
        }
    }
    out
}

/// Graceful degradation for a site whose worker died before writing its
/// slot: record the site as unvisited (zero outcomes) rather than
/// aborting the whole machine, mirroring how the paper's crawl keeps its
/// Table 2 denominators when individual browser instances wedge.
fn degraded_result(site: &Site) -> SiteResult {
    SiteResult {
        domain: site.domain.clone(),
        rank: site.rank,
        outcomes: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> CampaignConfig {
        CampaignConfig {
            seed: 7,
            population: PopulationConfig {
                n_sites: 60,
                unreachable_sites: 5,
                webdriver_visible: (2, 1, 1, 1),
                template_visible: (1, 1, 1),
                silent_http: (2, 1),
                breakage_sites: 1,
                ..PopulationConfig::default()
            },
            visits_per_site: 4,
            instances: 4,
            world_cache: true,
            plan_interactions: false,
        }
    }

    #[test]
    fn campaign_covers_all_sites_for_both_machines() {
        let c = run_campaign(&small_config());
        assert_eq!(c.openwpm.sites.len(), 60);
        assert_eq!(c.spoofed.sites.len(), 60);
        assert!(c.openwpm.sites.iter().all(|s| s.outcomes.len() == 4));
        // Result order matches population order despite parallelism.
        for (site, result) in c.sites.iter().zip(&c.openwpm.sites) {
            assert_eq!(site.domain, result.domain);
        }
    }

    #[test]
    fn campaign_is_deterministic_across_runs_and_thread_counts() {
        let base = small_config();
        let mut serial = base.clone();
        serial.instances = 1;
        let a = run_campaign(&base);
        let b = run_campaign(&serial);
        assert_eq!(a, b, "parallel schedule must not affect results");
    }

    #[test]
    fn snapshot_stamped_campaign_is_bit_identical_to_fresh_built() {
        let cached = small_config();
        let mut fresh = cached.clone();
        fresh.world_cache = false;
        let a = run_campaign(&cached);
        let b = run_campaign(&fresh);
        assert_eq!(a, b, "world snapshot cache must not change any outcome");
    }

    /// The batch planner drives real campaign visits without changing a
    /// single outcome, and its totals are invariant to worker count and
    /// claiming order.
    #[test]
    fn planned_campaign_is_bit_identical_with_thread_invariant_totals() {
        let config = small_config();
        let sites = generate_population(&config.population);
        for client in [ClientKind::OpenWpm, ClientKind::OpenWpmSpoofed] {
            let baseline = run_machine(&config, &sites, client);
            let (planned, totals) = run_machine_planned(&config, &sites, client);
            assert_eq!(planned, baseline, "{client:?}: planning changed outcomes");
            assert!(totals.actions > 0, "{client:?}: planner saw no visits");
            assert!(totals.samples > totals.actions, "{client:?}: empty plans");
            // Totals are sums over visits: any partition of the shard
            // stream over workers lands on the same numbers.
            for instances in [1usize, 3, 8] {
                let mut cfg = config.clone();
                cfg.instances = instances;
                let (run, t) = run_machine_planned(&cfg, &sites, client);
                assert_eq!(run, baseline, "{client:?}/{instances} workers diverged");
                assert_eq!(t, totals, "{client:?}/{instances} totals diverged");
            }
        }
    }

    #[test]
    fn unreachable_sites_never_reached() {
        let c = run_campaign(&small_config());
        for (site, result) in c.sites.iter().zip(&c.openwpm.sites) {
            if site.unreachable {
                assert!(!result.reached());
                assert_eq!(result.successful_visits(), 0);
            }
        }
    }

    #[test]
    fn poisoned_shard_degrades_to_zero_outcome_rows_instead_of_aborting() {
        let sites = generate_population(&small_config().population);
        let source = SiteSource::Slice {
            sites: &sites,
            shard_size: 10,
        };
        // Simulate a worker that wedged mid-shard: shard 1's slot never
        // gets written. Every other shard is filled normally.
        let slots: Vec<Option<Vec<SiteResult>>> = (0..source.n_shards())
            .map(|k| {
                if k == 1 {
                    return None;
                }
                Some(source.with_shard(k, |_, shard_sites| {
                    shard_sites
                        .iter()
                        .map(|site| SiteResult {
                            domain: site.domain.clone(),
                            rank: site.rank,
                            outcomes: vec![],
                        })
                        .collect()
                }))
            })
            .collect();
        let collected = collect_results(slots, &source);
        // The machine run still covers the full population, in order…
        assert_eq!(collected.len(), sites.len());
        for (site, result) in sites.iter().zip(&collected) {
            assert_eq!(site.domain, result.domain);
            assert_eq!(site.rank, result.rank);
        }
        // …and the poisoned shard's sites read as unvisited, keeping
        // Table 2's denominators intact rather than crashing the campaign.
        for i in 10..20 {
            assert!(collected[i].outcomes.is_empty());
            assert!(!collected[i].reached());
            assert_eq!(collected[i].successful_visits(), 0);
        }
    }

    #[test]
    fn sharded_and_lazy_runs_match_the_default_engine_bit_for_bit() {
        let config = small_config();
        let sites = generate_population(&config.population);
        let baseline = run_machine(&config, &sites, ClientKind::OpenWpm);
        // Any explicit shard size — including one that leaves a ragged
        // tail or degenerates to one site per shard — yields the same run.
        for shard_size in [1usize, 7, 10, 60, 1_000] {
            let sharded = run_machine_sharded(&config, &sites, ClientKind::OpenWpm, shard_size);
            assert_eq!(sharded, baseline, "shard_size {shard_size}");
        }
        // The lazy source materialises shards on claim and still matches.
        let shards = hlisa_web::PopulationShards::with_shard_size(&config.population, 13);
        let lazy = run_machine_lazy(&config, &shards, ClientKind::OpenWpm);
        assert_eq!(lazy, baseline);
        // Laziness held: never more shards live than workers.
        assert!(shards.peak_resident_shards() <= config.instances.max(1));
        assert!(shards.peak_resident_shards() >= 1);
        assert_eq!(shards.resident_shards(), 0);
    }

    #[test]
    fn persistent_shard_summaries_journal_every_shard_and_replay_after_a_crash() {
        let config = small_config();
        let shards = hlisa_web::PopulationShards::with_shard_size(&config.population, 9);
        let summarise = |k: usize, results: Vec<SiteResult>| {
            let successes: usize = results.iter().map(SiteResult::successful_visits).sum();
            (k, successes)
        };
        let to_json = |(k, successes): &(usize, usize)| {
            format!("{{\"shard\": {k}, \"successes\": {successes}}}")
        };

        let in_memory =
            run_machine_shard_summaries(&config, &shards, ClientKind::OpenWpm, &summarise);
        let path = crate::sink::scratch_path("campaign");
        let sink = crate::sink::ShardSummarySink::create(&path).unwrap();
        let persisted = run_machine_shard_summaries_persistent(
            &config,
            &shards,
            ClientKind::OpenWpm,
            &summarise,
            &to_json,
            &sink,
        )
        .unwrap();
        assert_eq!(persisted, in_memory, "the journal must not change results");

        // Every shard is durably on disk, replayable in shard order with
        // the exact rendered payloads.
        let records = crate::sink::ShardSummarySink::replay(&path).unwrap();
        assert_eq!(records.len(), shards.n_shards());
        for (record, summary) in records.iter().zip(&in_memory) {
            assert_eq!(record.shard, summary.0);
            assert_eq!(record.summary, to_json(summary));
        }

        // Crash replay: a torn trailing append does not poison the
        // durable prefix.
        use std::io::Write as _;
        std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap()
            .write_all(b"{\"shard\": 999, \"su")
            .unwrap();
        let after_crash = crate::sink::ShardSummarySink::replay(&path).unwrap();
        assert_eq!(after_crash, records);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn shard_summaries_stream_in_shard_order_with_identical_contents() {
        let config = small_config();
        let shards = hlisa_web::PopulationShards::with_shard_size(&config.population, 9);
        let baseline = run_machine(
            &config,
            &generate_population(&config.population),
            ClientKind::OpenWpmSpoofed,
        );
        let summaries = run_machine_shard_summaries(
            &config,
            &shards,
            ClientKind::OpenWpmSpoofed,
            &|k, results| {
                let successes: usize = results.iter().map(SiteResult::successful_visits).sum();
                (k, results.len(), successes)
            },
        );
        assert_eq!(summaries.len(), shards.n_shards());
        for (pos, (k, len, successes)) in summaries.iter().enumerate() {
            assert_eq!(pos, *k, "summaries must arrive in shard order");
            let range = shards.shard_range(*k);
            assert_eq!(*len, range.len());
            let expect: usize = baseline.sites[range]
                .iter()
                .map(SiteResult::successful_visits)
                .sum();
            assert_eq!(*successes, expect, "shard {k} summary diverged");
        }
    }

    #[test]
    fn openwpm_gets_detected_more_than_spoofed() {
        let c = run_campaign(&small_config());
        let detections = |run: &MachineRun| -> usize {
            run.sites
                .iter()
                .flat_map(|s| &s.outcomes)
                .filter(|o| o.detected)
                .count()
        };
        let d1 = detections(&c.openwpm);
        let d2 = detections(&c.spoofed);
        assert!(d1 > d2 * 2, "openwpm {d1} vs spoofed {d2}");
        assert!(d1 > 0);
    }
}
