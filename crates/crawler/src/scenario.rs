//! Dynamic-page scenario drives: §4.1's interaction failure modes run
//! differentially.
//!
//! Sites assigned a [`ScenarioKind`] render a page that changes *during*
//! the visit — a consent overlay occludes the target, content lays out
//! only after scrolling, or an SPA re-render swaps the node a handle
//! points at. Machine (1) drives them the way stock OpenWPM does
//! (Selenium action chains, script scrolls, cached element handles);
//! machine (2) drives them the way HLISA does (raw OS input from the
//! human models, wheel scrolling, re-querying after mutations). The two
//! drives land in different [`VisualOutcome`] rows of Table 2, which is
//! exactly the differential the paper's screenshot review reads off.
//!
//! The drives consume only forked streams (`"scenario"`) and the page is
//! keyed on `(campaign seed, domain)` alone, so machines see the same
//! page and campaigns without scenario sites are bit-identical to the
//! pre-scenario model.

use hlisa_browser::events::EventKind;
use hlisa_browser::viewport::WHEEL_TICK_PX;
use hlisa_browser::{Browser, BrowserConfig, NodeId};
use hlisa_human::{HumanAgent, HumanParams};
use hlisa_sim::SimContext;
use hlisa_stats::rngutil::derive_seed;
use hlisa_web::dynamics::{
    self, lazy_reveal_threshold, ScenarioKind, ACCEPT_ID, CONFIRM_ID, LAZY_TARGET_ID,
};
use hlisa_web::page::TARGET_ID;
use hlisa_web::{apply_scenario, generate_page, GeneratedPage, PageStructure};
use hlisa_web::{ClientKind, Site, VisitOutcome, VisualOutcome};
use hlisa_webdriver::{By, SeleniumActionChains, Session};

/// Renders the site's scenario page. Structure is keyed on the campaign
/// seed and the site's identity only — never the machine or visit — so
/// both machines drive byte-identical documents and the differential in
/// Table 2 is attributable to the drive alone.
pub fn scenario_page(site: &Site, kind: ScenarioKind, campaign_seed: u64) -> GeneratedPage {
    let mut page_ctx = SimContext::new(derive_seed(
        campaign_seed,
        &site.domain,
        u64::from(site.rank),
    ));
    let mut page = generate_page(site, &PageStructure::default(), &mut page_ctx);
    apply_scenario(&mut page, kind);
    page
}

/// Worker-retained scratch for the HLISA scenario drives: one persistent
/// [`HumanAgent`] rebound to each visit's forked context instead of built
/// fresh per drive, so recovery steps (banner dismiss, re-locate,
/// re-click) reuse the agent's trajectory and typing buffers. Rebinding
/// changes no draw — the agent's streams come wholly from the fork — so
/// drives through a reused scratch are bit-identical to fresh-agent
/// drives (pinned by a regression test).
#[derive(Debug, Clone)]
pub struct ScenarioScratch {
    human: HumanAgent,
}

impl ScenarioScratch {
    /// A fresh scratch with cold buffers.
    pub fn new() -> Self {
        Self {
            human: HumanAgent::with_context(HumanParams::paper_baseline(), SimContext::new(0)),
        }
    }

    /// The retained agent's scratch capacities (see
    /// [`HumanAgent::scratch_capacities`]) — frozen capacities across
    /// drives prove the recovery hot path allocates nothing.
    pub fn capacities(&self) -> [usize; 4] {
        self.human.scratch_capacities()
    }
}

impl Default for ScenarioScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Runs the scenario drive for one visit and overrides the screenshot
/// verdict when the drive fails. Visits that never rendered normally
/// (blocked, CAPTCHA'd, flaky, …) keep their original outcome: the
/// scenario layer only refines *successful-looking* visits, so campaigns
/// whose population assigns no scenarios are bit-identical.
pub fn apply_scenario_drive(
    campaign_seed: u64,
    site: &Site,
    kind: ScenarioKind,
    client: ClientKind,
    outcome: &mut VisitOutcome,
    ctx: &mut SimContext,
) {
    let mut scratch = ScenarioScratch::new();
    apply_scenario_drive_with(
        campaign_seed,
        site,
        kind,
        client,
        outcome,
        ctx,
        &mut scratch,
    );
}

/// Like [`apply_scenario_drive`], reusing a worker-retained
/// [`ScenarioScratch`] — the campaign engine's per-worker form.
#[allow(clippy::too_many_arguments)]
pub fn apply_scenario_drive_with(
    campaign_seed: u64,
    site: &Site,
    kind: ScenarioKind,
    client: ClientKind,
    outcome: &mut VisitOutcome,
    ctx: &mut SimContext,
    scratch: &mut ScenarioScratch,
) {
    if !outcome.successful || outcome.visual != VisualOutcome::Normal {
        return;
    }
    if !drive_scenario_with(site, kind, client, campaign_seed, ctx, scratch) {
        outcome.visual = kind.failure_outcome();
    }
}

/// Drives one scenario visit to completion. Returns whether the primary
/// interaction actually landed on its intended element.
pub fn drive_scenario(
    site: &Site,
    kind: ScenarioKind,
    client: ClientKind,
    campaign_seed: u64,
    ctx: &mut SimContext,
) -> bool {
    let mut scratch = ScenarioScratch::new();
    drive_scenario_with(site, kind, client, campaign_seed, ctx, &mut scratch)
}

/// Like [`drive_scenario`], reusing a worker-retained scratch.
pub fn drive_scenario_with(
    site: &Site,
    kind: ScenarioKind,
    client: ClientKind,
    campaign_seed: u64,
    ctx: &mut SimContext,
    scratch: &mut ScenarioScratch,
) -> bool {
    let page = scenario_page(site, kind, campaign_seed);
    match client {
        ClientKind::OpenWpm => drive_selenium(page, kind, ctx),
        ClientKind::OpenWpmSpoofed => drive_hlisa(page, kind, ctx, scratch),
    }
}

/// Whether the most recent `click` event was delivered to `id` — the
/// ground truth a screenshot review infers from whatever the click
/// actually triggered.
fn last_click_hit(browser: &Browser, id: NodeId) -> bool {
    browser
        .recorder
        .of_kind(EventKind::Click)
        .last()
        .map(|e| e.target == Some(id))
        .unwrap_or(false)
}

/// The page's lazy loader: it subscribes to *scroll events* and attaches
/// the deferred section once the viewport has passed the reveal
/// threshold. A script jump (`window.scrollBy`) moves the viewport
/// without firing any wheel event, so the loader never runs — the §4.1
/// failure Selenium-style scrolling triggers.
fn maybe_reveal_lazy(browser: &mut Browser) -> bool {
    let threshold = lazy_reveal_threshold(browser.document().page_height, browser.viewport.height);
    if browser.recorder.wheel_count() == 0 || browser.viewport.scroll_y() < threshold {
        return false;
    }
    browser.mutate_document(dynamics::reveal_lazy)
}

/// Machine (1): the stock OpenWPM drive. Selenium action chains move the
/// pointer straight to the element centre, scrolling is a one-jump
/// script call, and element handles are cached across DOM mutations —
/// each scenario defeats one of those habits.
fn drive_selenium(page: GeneratedPage, kind: ScenarioKind, ctx: &SimContext) -> bool {
    let mut session = Session::new(Browser::open(BrowserConfig::webdriver(), page.doc));
    session.bind_context(ctx);
    match kind {
        ScenarioKind::CookieBanner => {
            // The locator sees the target fine (the overlay occludes, it
            // does not detach), so the drive marches straight into the
            // banner: the click dispatches to the overlay, not the CTA.
            let Ok(target) = session.find_element(By::Id(TARGET_ID.into())) else {
                return false;
            };
            if session.ensure_interactable(target).is_err() {
                return false;
            }
            let _ = SeleniumActionChains::new()
                .move_to_element(target)
                .click(Some(target))
                .perform(&mut session);
            last_click_hit(&session.browser, target.node())
        }
        ScenarioKind::LazyContent => {
            // One script jump to the bottom: the viewport moves but no
            // scroll events fire, so the deferred section never attaches
            // and the locator comes back empty-handed.
            let bottom = session.browser.viewport.max_scroll_y();
            session.scroll_by_script(bottom);
            maybe_reveal_lazy(&mut session.browser);
            let Ok(el) = session.find_element(By::Id(LAZY_TARGET_ID.into())) else {
                return false;
            };
            if session.ensure_interactable(el).is_err() {
                return false;
            }
            let _ = SeleniumActionChains::new()
                .move_to_element(el)
                .click(Some(el))
                .perform(&mut session);
            last_click_hit(&session.browser, el.node())
        }
        ScenarioKind::SpaMutation => {
            // Locate, then the app re-renders, then interact through the
            // cached handle: the classic stale-element window. The old
            // node is detached, so the click at its remembered geometry
            // cannot reach the fresh button.
            let Ok(confirm) = session.find_element(By::Id(CONFIRM_ID.into())) else {
                return false;
            };
            if session.ensure_interactable(confirm).is_err() {
                return false;
            }
            let Some(fresh) = session.browser.mutate_document(dynamics::spa_rerender) else {
                return false;
            };
            let _ = SeleniumActionChains::new()
                .move_to_element(confirm)
                .click(Some(confirm))
                .perform(&mut session);
            last_click_hit(&session.browser, fresh)
        }
    }
}

/// Machine (2): the HLISA drive. Raw OS input from the human models —
/// the agent notices the overlay and dismisses it first, scrolls with
/// real wheel ticks, and re-queries the DOM after the app re-renders.
/// The scratch's persistent agent is rebound to this visit's fork, so
/// recovery steps run through warm buffers instead of re-planning from a
/// fresh agent.
fn drive_hlisa(
    page: GeneratedPage,
    kind: ScenarioKind,
    ctx: &mut SimContext,
    scratch: &mut ScenarioScratch,
) -> bool {
    let mut browser = Browser::open(BrowserConfig::webdriver(), page.doc);
    scratch.human.rebind(ctx.fork("scenario", 0));
    let human = &mut scratch.human;
    human.bind_browser(&browser);
    match kind {
        ScenarioKind::CookieBanner => {
            let accept = browser.document().by_id(ACCEPT_ID);
            let target = browser.document().by_id(TARGET_ID);
            let (Some(accept), Some(target)) = (accept, target) else {
                return false;
            };
            // Dismiss-then-interact: click the consent button, let the
            // page's handler remove the overlay, then go for the CTA.
            human.click_element(&mut browser, accept);
            if !last_click_hit(&browser, accept) {
                return false;
            }
            browser.mutate_document(dynamics::dismiss_banner);
            human.settle(&mut browser, 150.0, 600.0);
            human.click_element(&mut browser, target);
            last_click_hit(&browser, target)
        }
        ScenarioKind::LazyContent => {
            // Wheel-scroll past the reveal threshold (with a couple of
            // ticks of slack for wheel quantisation): the loader sees
            // real scroll events and attaches the section.
            let threshold =
                lazy_reveal_threshold(browser.document().page_height, browser.viewport.height);
            human.scroll_by(&mut browser, threshold + 3.0 * WHEEL_TICK_PX);
            if !maybe_reveal_lazy(&mut browser) {
                return false;
            }
            let Some(lazy) = browser.document().by_id(LAZY_TARGET_ID) else {
                return false;
            };
            human.click_element(&mut browser, lazy);
            last_click_hit(&browser, lazy)
        }
        ScenarioKind::SpaMutation => {
            // The app re-renders mid-visit; HLISA's recovery is to
            // re-locate by id instead of trusting the stale handle.
            if browser.document().by_id(CONFIRM_ID).is_none() {
                return false;
            }
            if browser.mutate_document(dynamics::spa_rerender).is_none() {
                return false;
            }
            human.settle(&mut browser, 150.0, 600.0);
            let Some(confirm) = browser.document().by_id(CONFIRM_ID) else {
                return false;
            };
            human.click_element(&mut browser, confirm);
            last_click_hit(&browser, confirm)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlisa_web::dynamics::BANNER_ID;

    fn scenario_site(kind: ScenarioKind) -> Site {
        Site {
            rank: 120,
            domain: "dynamic.example".into(),
            detector: None,
            ad_slots: 2,
            has_video: false,
            breaks_under_spoofing: false,
            unreachable: false,
            flaky_visit_prob: 0.0,
            first_party_requests: 8,
            third_party_requests: 12,
            scenario: Some(kind),
        }
    }

    #[test]
    fn both_machines_see_the_same_scenario_page() {
        let site = scenario_site(ScenarioKind::CookieBanner);
        let a = scenario_page(&site, ScenarioKind::CookieBanner, 42);
        let b = scenario_page(&site, ScenarioKind::CookieBanner, 42);
        assert_eq!(a.doc, b.doc);
        assert!(a.doc.by_id(BANNER_ID).is_some());
    }

    #[test]
    fn selenium_fails_every_scenario() {
        for kind in ScenarioKind::ALL {
            let site = scenario_site(kind);
            let mut ctx = SimContext::new(9).fork_visit(&site.domain, 0);
            assert!(
                !drive_scenario(&site, kind, ClientKind::OpenWpm, 42, &mut ctx),
                "selenium drive unexpectedly survived {kind:?}"
            );
        }
    }

    #[test]
    fn hlisa_recovers_every_scenario() {
        for kind in ScenarioKind::ALL {
            let site = scenario_site(kind);
            let mut ctx = SimContext::new(9).fork_visit(&site.domain, 0);
            assert!(
                drive_scenario(&site, kind, ClientKind::OpenWpmSpoofed, 42, &mut ctx),
                "hlisa drive failed {kind:?}"
            );
        }
    }

    #[test]
    fn drives_are_deterministic() {
        let site = scenario_site(ScenarioKind::LazyContent);
        let run = |seed: u64| {
            let mut ctx = SimContext::new(seed).fork_visit(&site.domain, 3);
            drive_scenario(
                &site,
                ScenarioKind::LazyContent,
                ClientKind::OpenWpmSpoofed,
                42,
                &mut ctx,
            )
        };
        assert_eq!(run(5), run(5));
    }

    /// Satellite regression: the banner-dismiss + re-click recovery drive
    /// through a reused scratch (a) matches the fresh-agent drive exactly
    /// and (b) allocates no new plan buffers once warm — capacities are
    /// frozen across repeat drives.
    #[test]
    fn reused_scenario_scratch_is_warm_and_bit_identical() {
        let site = scenario_site(ScenarioKind::CookieBanner);
        let mut scratch = ScenarioScratch::new();
        // Warm-up: one drive of each scenario shape grows every buffer to
        // its high-water mark.
        for kind in ScenarioKind::ALL {
            let mut ctx = SimContext::new(31).fork_visit(&site.domain, 0);
            drive_scenario_with(
                &site,
                kind,
                ClientKind::OpenWpmSpoofed,
                42,
                &mut ctx,
                &mut scratch,
            );
        }
        let warm = scratch.capacities();
        for visit in 0..6u64 {
            let mut reused_ctx = SimContext::new(31).fork_visit(&site.domain, visit);
            let reused = drive_scenario_with(
                &site,
                ScenarioKind::CookieBanner,
                ClientKind::OpenWpmSpoofed,
                42,
                &mut reused_ctx,
                &mut scratch,
            );
            let mut fresh_ctx = SimContext::new(31).fork_visit(&site.domain, visit);
            let fresh = drive_scenario(
                &site,
                ScenarioKind::CookieBanner,
                ClientKind::OpenWpmSpoofed,
                42,
                &mut fresh_ctx,
            );
            assert_eq!(reused, fresh, "visit {visit}: reuse changed the verdict");
            assert!(reused, "banner recovery must succeed");
            assert_eq!(
                scratch.capacities(),
                warm,
                "visit {visit}: recovery re-allocated plan buffers"
            );
        }
    }

    #[test]
    fn drive_overrides_only_normal_successful_visits() {
        let site = scenario_site(ScenarioKind::CookieBanner);
        let mut ctx = SimContext::new(1).fork_visit(&site.domain, 0);
        let runtime = hlisa_web::visit::DetectorRuntime::new();
        let mut outcome = hlisa_web::simulate_visit(&site, ClientKind::OpenWpm, &runtime, &mut ctx);
        assert!(outcome.successful);
        apply_scenario_drive(
            42,
            &site,
            ScenarioKind::CookieBanner,
            ClientKind::OpenWpm,
            &mut outcome,
            &mut ctx,
        );
        assert_eq!(outcome.visual, VisualOutcome::StuckOnOverlay);

        // A visit that already failed keeps its verdict untouched.
        let mut blocked = outcome.clone();
        blocked.visual = VisualOutcome::BlockPage;
        let before = blocked.clone();
        apply_scenario_drive(
            42,
            &site,
            ScenarioKind::CookieBanner,
            ClientKind::OpenWpm,
            &mut blocked,
            &mut ctx,
        );
        assert_eq!(blocked, before);
    }
}
