//! Persistent shard-summary sink: crash-safe JSONL output for the
//! streaming campaign runner.
//!
//! [`run_machine_shard_summaries`](crate::campaign::run_machine_shard_summaries)
//! holds one summary per shard in memory; for campaigns that must
//! survive a harness crash, its persistent variant appends each shard's
//! summary to a [`ShardSummarySink`] *as the shard completes*, fsync'd
//! per append, so every line on disk is a durably finished shard. A
//! crashed run leaves at worst one torn trailing line (a write the
//! crash interrupted), which [`ShardSummarySink::replay`] detects and
//! drops; every intact line is replayable.
//!
//! Line format, one shard per line:
//!
//! ```text
//! {"shard": 17, "summary": <caller-rendered JSON>}
//! ```
//!
//! Workers append in completion order, which is nondeterministic under
//! parallel claiming — [`replay`](ShardSummarySink::replay) returns
//! records sorted by shard index so consumers see the canonical order.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Append-only JSONL sink for shard summaries, fsync'd per record.
///
/// Sharable across worker threads; the first I/O error is latched and
/// reported by [`finish`](Self::finish) (later appends are skipped, so
/// a dying disk fails the run instead of silently dropping shards).
#[derive(Debug)]
pub struct ShardSummarySink {
    state: Mutex<SinkState>,
    path: PathBuf,
}

#[derive(Debug)]
struct SinkState {
    file: File,
    error: Option<io::Error>,
}

/// One replayed sink line: a shard that durably completed before the
/// crash (or clean shutdown).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRecord {
    /// The shard the summary covers.
    pub shard: usize,
    /// The caller-rendered summary JSON, exactly as recorded.
    pub summary: String,
}

impl ShardSummarySink {
    /// Creates (or truncates) the sink file for a fresh run.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        Ok(Self {
            state: Mutex::new(SinkState { file, error: None }),
            path,
        })
    }

    /// Opens the sink file for appending — resuming a prior run's file
    /// without disturbing its durable lines.
    pub fn append(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Self {
            state: Mutex::new(SinkState { file, error: None }),
            path,
        })
    }

    /// The file this sink writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one shard's summary line and fsyncs it. Called from
    /// worker threads; a poisoned lock (a worker that panicked while
    /// appending) is recovered — the latched-error protocol already
    /// covers partial writes.
    pub(crate) fn record(&self, shard: usize, summary_json: &str) {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if state.error.is_some() {
            return;
        }
        let line = format!("{{\"shard\": {shard}, \"summary\": {summary_json}}}\n");
        let attempt = state
            .file
            .write_all(line.as_bytes())
            .and_then(|()| state.file.sync_data());
        if let Err(e) = attempt {
            state.error = Some(e);
        }
    }

    /// Surfaces the first append error, if any. Call once after the run;
    /// `Ok` means every recorded line is durably on disk.
    pub fn finish(&self) -> io::Result<()> {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        match state.error.take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Reads a sink file back, dropping at most one torn trailing line
    /// (a crash-interrupted append never ends in a newline). Records
    /// return sorted by shard index, whatever the completion order was;
    /// a malformed *interior* line is an error — torn tails are the only
    /// corruption an append-fsync crash can produce.
    pub fn replay(path: impl AsRef<Path>) -> io::Result<Vec<ShardRecord>> {
        let mut text = String::new();
        File::open(path)?.read_to_string(&mut text)?;
        let mut records = Vec::new();
        let mut rest = text.as_str();
        while let Some(nl) = rest.find('\n') {
            let line = &rest[..nl];
            rest = &rest[nl + 1..];
            records.push(parse_line(line)?);
        }
        // `rest` is now the unterminated tail: empty on clean shutdown,
        // a torn write after a crash. Either way it is not a record.
        records.sort_by_key(|r| r.shard);
        Ok(records)
    }
}

fn parse_line(line: &str) -> io::Result<ShardRecord> {
    let malformed = || {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("malformed sink line: {line:?}"),
        )
    };
    let body = line
        .strip_prefix("{\"shard\": ")
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(malformed)?;
    let (shard, summary) = body.split_once(", \"summary\": ").ok_or_else(malformed)?;
    Ok(ShardRecord {
        shard: shard.parse().map_err(|_| malformed())?,
        summary: summary.to_string(),
    })
}

/// Collision-free scratch path for tests, without wall-clock or RNG.
#[cfg(test)]
pub(crate) fn scratch_path(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("hlisa_sink_{}_{tag}_{n}.jsonl", std::process::id()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_fsync_and_replay_in_shard_order() {
        let path = scratch_path("order");
        let sink = ShardSummarySink::create(&path).unwrap();
        // Completion order is whatever the scheduler made of it.
        for (shard, payload) in [
            (2usize, "{\"ok\": 2}"),
            (0, "{\"ok\": 0}"),
            (1, "{\"ok\": 1}"),
        ] {
            sink.record(shard, payload);
        }
        sink.finish().unwrap();
        let records = ShardSummarySink::replay(&path).unwrap();
        assert_eq!(
            records,
            vec![
                ShardRecord {
                    shard: 0,
                    summary: "{\"ok\": 0}".into()
                },
                ShardRecord {
                    shard: 1,
                    summary: "{\"ok\": 1}".into()
                },
                ShardRecord {
                    shard: 2,
                    summary: "{\"ok\": 2}".into()
                },
            ]
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn replay_drops_a_torn_tail_but_keeps_durable_lines() {
        let path = scratch_path("torn");
        let sink = ShardSummarySink::create(&path).unwrap();
        sink.record(0, "{\"visits\": 9}");
        sink.record(1, "{\"visits\": 7}");
        sink.finish().unwrap();
        // Simulate a crash mid-append: a partial line, no newline.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"shard\": 2, \"summ").unwrap();
        }
        let records = ShardSummarySink::replay(&path).unwrap();
        assert_eq!(records.len(), 2, "torn tail must not become a record");
        assert_eq!(records[0].shard, 0);
        assert_eq!(records[1].shard, 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn replay_rejects_interior_corruption() {
        let path = scratch_path("corrupt");
        std::fs::write(&path, "not json at all\n{\"shard\": 0, \"summary\": {}}\n").unwrap();
        assert!(ShardSummarySink::replay(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_resumes_without_truncating() {
        let path = scratch_path("resume");
        let first = ShardSummarySink::create(&path).unwrap();
        first.record(0, "{}");
        first.finish().unwrap();
        let resumed = ShardSummarySink::append(&path).unwrap();
        resumed.record(1, "{}");
        resumed.finish().unwrap();
        assert_eq!(ShardSummarySink::replay(&path).unwrap().len(), 2);
        std::fs::remove_file(&path).unwrap();
    }
}
