//! CSV exports of campaign results.
//!
//! OpenWPM studies end in dataframes; this module renders the campaign's
//! three analysis surfaces — per-visit outcomes, the Table 2 aggregation,
//! and the Figure 4 status-code counts — as RFC-4180-style CSV strings a
//! downstream analysis (pandas, R) can ingest directly.

use crate::campaign::Campaign;
use crate::http_analysis::analyze_http;
use crate::screenshot::screenshot_table;
use hlisa_web::{ClientKind, VisualOutcome};

/// Escapes one CSV field.
fn field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn client_name(c: ClientKind) -> &'static str {
    match c {
        ClientKind::OpenWpm => "openwpm",
        ClientKind::OpenWpmSpoofed => "openwpm_spoofed",
    }
}

fn visual_name(v: VisualOutcome) -> &'static str {
    match v {
        VisualOutcome::Normal => "normal",
        VisualOutcome::BlockPage => "block_page",
        VisualOutcome::Captcha => "captcha",
        VisualOutcome::NoAds => "no_ads",
        VisualOutcome::FewerAds => "fewer_ads",
        VisualOutcome::FrozenVideo => "frozen_video",
        VisualOutcome::DeformedLayout => "deformed_layout",
        VisualOutcome::Unreachable => "unreachable",
        VisualOutcome::TransientError => "transient_error",
        VisualOutcome::Timeout => "timeout",
        VisualOutcome::Stalled => "stalled",
        VisualOutcome::Crashed => "crashed",
        VisualOutcome::StuckOnOverlay => "stuck_on_overlay",
        VisualOutcome::MissingLazyContent => "missing_lazy_content",
        VisualOutcome::StaleElement => "stale_element",
    }
}

/// One row per visit: machine, domain, rank, visit index, outcome flags,
/// and per-visit HTTP error counts.
pub fn visits_csv(campaign: &Campaign) -> String {
    let mut out = String::from(
        "machine,domain,rank,visit,reached,successful,visual,detected,\
         fp_requests,fp_errors,tp_requests,tp_errors\n",
    );
    for run in [&campaign.openwpm, &campaign.spoofed] {
        for site in &run.sites {
            for (i, o) in site.outcomes.iter().enumerate() {
                let fp_err = o.first_party.iter().filter(|c| **c >= 400).count();
                let tp_err = o.third_party.iter().filter(|c| **c >= 400).count();
                out.push_str(&format!(
                    "{},{},{},{},{},{},{},{},{},{},{},{}\n",
                    client_name(run.client),
                    field(&site.domain),
                    site.rank,
                    i,
                    o.reached,
                    o.successful,
                    visual_name(o.visual),
                    o.detected,
                    o.first_party.len(),
                    fp_err,
                    o.third_party.len(),
                    tp_err,
                ));
            }
        }
    }
    out
}

/// Table 2 as CSV.
pub fn table2_csv(campaign: &Campaign) -> String {
    let t = screenshot_table(campaign);
    let mut out =
        String::from("response,sites_openwpm,sites_spoofed,visits_openwpm,visits_spoofed\n");
    for r in &t.rows {
        out.push_str(&format!(
            "{},{},{},{},{}\n",
            field(&r.label),
            r.sites.0,
            r.sites.1,
            r.visits.0,
            r.visits.1
        ));
    }
    out
}

/// Chaos-campaign recovery telemetry as CSV: one row per (machine, site)
/// with attempt/fault/breaker columns, followed by the merged counter
/// family as `counter,<name>,<value>,` rows (same column count so the
/// file stays rectangular).
pub fn recovery_csv(chaos: &crate::chaos::ChaosCampaign) -> String {
    let mut out = String::from("machine,domain,visits,attempts,faults,backoff_ms,breaker_open\n");
    for rec in [&chaos.openwpm_recovery, &chaos.spoofed_recovery] {
        for site in &rec.sites {
            let faults: usize = site.visits.iter().map(|v| v.faults.len()).sum();
            let backoff: f64 = site.visits.iter().map(|v| v.backoff_ms).sum();
            out.push_str(&format!(
                "{},{},{},{},{},{:.0},{}\n",
                client_name(rec.client),
                field(&site.domain),
                site.visits.len(),
                site.total_attempts(),
                faults,
                backoff,
                site.breaker_open,
            ));
        }
    }
    for (name, value) in chaos.counters().entries() {
        out.push_str(&format!("counter,{},{},,,,\n", field(name), value));
    }
    out
}

/// Figure 4 series as CSV: one row per (traffic class, status code).
pub fn status_codes_csv(campaign: &Campaign) -> String {
    let r = analyze_http(campaign);
    let mut out = String::from("party,status,openwpm,spoofed\n");
    for (name, counts) in [("first", &r.first_party), ("third", &r.third_party)] {
        for (code, (a, b)) in counts {
            out.push_str(&format!("{name},{code},{a},{b}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, CampaignConfig};
    use hlisa_web::PopulationConfig;

    fn campaign() -> Campaign {
        run_campaign(&CampaignConfig {
            seed: 12,
            population: PopulationConfig {
                n_sites: 40,
                unreachable_sites: 3,
                ..PopulationConfig::default()
            },
            visits_per_site: 3,
            instances: 4,
            world_cache: true,
            plan_interactions: false,
        })
    }

    #[test]
    fn visits_csv_has_one_row_per_visit_plus_header() {
        let c = campaign();
        let csv = visits_csv(&c);
        let rows = csv.lines().count();
        assert_eq!(rows, 1 + 2 * 40 * 3);
        assert!(csv.starts_with("machine,domain"));
        assert!(csv.contains("openwpm_spoofed"));
    }

    #[test]
    fn csv_fields_are_consistent_width() {
        let csv = visits_csv(&campaign());
        let cols = csv.lines().next().unwrap().split(',').count();
        for line in csv.lines() {
            assert_eq!(line.split(',').count(), cols, "ragged row: {line}");
        }
    }

    #[test]
    fn table2_csv_round_trips_labels() {
        let csv = table2_csv(&campaign());
        assert!(csv.contains("blocking/CAPTCHAs"));
        assert!(csv.contains("stuck on consent overlay"));
        assert_eq!(csv.lines().count(), 10);
    }

    #[test]
    fn status_codes_csv_covers_both_parties() {
        let csv = status_codes_csv(&campaign());
        assert!(csv.lines().any(|l| l.starts_with("first,200")));
        assert!(csv.lines().any(|l| l.starts_with("third,200")));
    }

    #[test]
    fn field_escaping() {
        assert_eq!(field("plain"), "plain");
        assert_eq!(field("a,b"), "\"a,b\"");
        assert_eq!(field("q\"q"), "\"q\"\"q\"");
    }
}
