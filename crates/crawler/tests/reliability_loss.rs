//! Differential property tests for the measurement-loss fault plane —
//! the acceptance invariants of the reliability study:
//!
//! * **strengthened == pristine** for arbitrary seeds and loss rates:
//!   write-ahead capture plus the attach barrier recovers the exact
//!   pristine record, bit for bit;
//! * **pristine == legacy**: the capture pipeline itself (emission →
//!   channel → reconstruction) is draw-free and exactly inverse, so a
//!   perfectly instrumented captured campaign equals `run_campaign`;
//! * **rate-0 == legacy with zero extra draws**: a no-op `LossPlan`
//!   consumes nothing from the `"fault"` stream, so even the *naive*
//!   pipeline at rate 0 is bit-identical to today's runner;
//! * **naive lossy drifts**: at any substantial loss rate the naively
//!   captured campaign differs from ground truth while its records
//!   still look like clean data.

use hlisa_crawler::campaign::{run_campaign, CampaignConfig};
use hlisa_crawler::reliability::{run_captured_campaign, run_reliability_study, CaptureMode};
use hlisa_sim::{LossPlan, Rng, SimContext};
use hlisa_web::PopulationConfig;
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = CampaignConfig> {
    (
        0u64..10_000,
        20usize..60,
        0usize..5,
        1usize..4,
        1usize..5,
        (0usize..3, 0usize..3, 0usize..3),
    )
        .prop_map(
            |(seed, n_sites, unreachable, visits, instances, mix)| CampaignConfig {
                seed,
                population: PopulationConfig {
                    n_sites,
                    unreachable_sites: unreachable,
                    scenarios: hlisa_web::ScenarioMix {
                        cookie_banner: mix.0,
                        lazy_content: mix.1,
                        spa_mutation: mix.2,
                    },
                    ..PopulationConfig::default()
                },
                visits_per_site: visits,
                instances,
                world_cache: true,
                plan_interactions: false,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Strengthened-mode lossy campaigns are bit-identical to pristine
    /// capture for any seed and any loss rate.
    #[test]
    fn strengthened_equals_pristine_for_any_seed_and_rate(
        config in arb_config(),
        rate in 0.0f64..1.0,
    ) {
        let plan = LossPlan::uniform(rate);
        let pristine = run_captured_campaign(&config, &plan, CaptureMode::Pristine);
        let strengthened = run_captured_campaign(&config, &plan, CaptureMode::Strengthened);
        prop_assert_eq!(strengthened.campaign, pristine.campaign);
    }

    /// A pristine captured campaign equals the legacy runner: capture
    /// emission and reconstruction are exactly inverse and draw-free.
    #[test]
    fn pristine_capture_equals_the_legacy_runner(config in arb_config()) {
        let truth = run_campaign(&config);
        let pristine = run_captured_campaign(
            &config,
            &LossPlan::none(),
            CaptureMode::Pristine,
        );
        prop_assert_eq!(pristine.campaign, truth);
    }

    /// Even the naive lossy pipeline at rate 0 is bit-identical to the
    /// legacy runner — the no-op plan draws nothing.
    #[test]
    fn rate_zero_naive_capture_equals_the_legacy_runner(config in arb_config()) {
        let truth = run_campaign(&config);
        let naive = run_captured_campaign(
            &config,
            &LossPlan::none(),
            CaptureMode::NaiveLossy,
        );
        prop_assert_eq!(naive.campaign, truth);
        prop_assert_eq!(naive.analytics.get("loss.dropped"), None);
    }

    /// A no-op loss plan consumes zero draws from the `"fault"` stream,
    /// whatever context it runs in and however often it is consulted —
    /// the property that keeps every existing golden bit-identical.
    #[test]
    fn noop_plan_leaves_the_fault_stream_untouched(
        seed in 0u64..100_000,
        domain_idx in 0u64..1_000,
        visits in 1usize..12,
    ) {
        let domain = format!("site{domain_idx:04}.example");
        let parent = SimContext::new(seed);
        let mut with_plan = parent.fork_visit(&domain, 0);
        let mut without = parent.fork_visit(&domain, 0);
        let plan = LossPlan::none();
        for _ in 0..visits {
            let schedule = plan.draw(with_plan.stream("fault"));
            prop_assert!(schedule.is_pristine());
        }
        prop_assert_eq!(
            with_plan.stream("fault").gen::<u64>(),
            without.stream("fault").gen::<u64>()
        );
    }

    /// At substantial loss rates the naive pipeline's record differs
    /// from ground truth (while the strengthened one, above, does not).
    #[test]
    fn naive_capture_drifts_at_positive_rates(
        config in arb_config(),
        rate in 0.15f64..0.7,
    ) {
        let study = run_reliability_study(&config, &LossPlan::uniform(rate));
        prop_assert!(
            study.naive.analytics.get("loss.dropped").unwrap_or(0) > 0,
            "a {rate:.2} loss plan must drop events"
        );
        prop_assert_ne!(&study.naive.campaign, &study.pristine.campaign);
        prop_assert!(study.strengthened_drift.is_zero());
    }
}
