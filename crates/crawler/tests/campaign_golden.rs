//! Fixed-seed golden test over a full campaign run.
//!
//! The hash below was captured from the pre-fast-path implementation.
//! `run_campaign` must stay bit-identical across the interaction fast
//! path (spatial hit-test index, streamed trajectories, incremental
//! recorder analytics): the site table, every visit outcome, and both
//! machines' result tables feed the hash.

use hlisa_crawler::campaign::{run_campaign, CampaignConfig, MachineRun};
use hlisa_web::PopulationConfig;

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn render_machine(m: &MachineRun, out: &mut String) {
    out.push_str(&format!("client {:?}\n", m.client));
    for site in &m.sites {
        out.push_str(&format!(
            "{} rank {} outcomes {:?}\n",
            site.domain, site.rank, site.outcomes
        ));
    }
}

const CAMPAIGN_TABLE_HASH: u64 = 14_186_439_771_593_208_468;

#[test]
fn campaign_tables_are_bit_identical_to_the_pre_fast_path_capture() {
    let config = CampaignConfig {
        population: PopulationConfig {
            n_sites: 30,
            ..PopulationConfig::default()
        },
        visits_per_site: 2,
        instances: 4,
        ..CampaignConfig::default()
    };
    let campaign = run_campaign(&config);
    let mut canon = String::new();
    for site in &campaign.sites {
        canon.push_str(&format!("site {} rank {}\n", site.domain, site.rank));
    }
    render_machine(&campaign.openwpm, &mut canon);
    render_machine(&campaign.spoofed, &mut canon);
    assert_eq!(
        fnv1a(&canon),
        CAMPAIGN_TABLE_HASH,
        "campaign tables drifted ({} sites)",
        campaign.sites.len()
    );
}
