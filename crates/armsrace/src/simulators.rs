//! Simulator rungs of the Fig. 3 ladder, each driving the same three
//! Appendix E tasks through its own interaction API.

use hlisa::{HlisaActionChains, NaiveActionChains};
use hlisa_browser::dom::standard_test_page;
use hlisa_browser::viewport::ScrollOrigin;
use hlisa_browser::{Browser, BrowserConfig, Rect};
use hlisa_detect::interaction::TraceFeatures;
use hlisa_detect::reference::{
    click_target_position, click_task_page, run_human_session_with, TYPING_TASK_TEXT,
};
use hlisa_human::HumanParams;
use hlisa_stats::rngutil::derive_seed;
use hlisa_webdriver::{By, SeleniumActionChains, Session};

/// A rung of the simulator ladder (Fig. 3, left column), plus human
/// references for calibration rows.
#[derive(Debug, Clone, PartialEq)]
pub enum Simulator {
    /// Stock Selenium — "no limits on behaviour".
    Selenium,
    /// The §4.1 naive improvements — "limit behaviour to humanly possible".
    Naive,
    /// HLISA — "use distribution of human behaviour".
    Hlisa,
    /// HLISA with tempo-drift consistency — "use consistent behaviour".
    ConsistentHlisa,
    /// HLISA fitted to a specific enrolled individual's parameters —
    /// "use specific user profile".
    ProfileFitted(HumanParams),
    /// A real human visitor (an arbitrary individual from the population).
    Human,
    /// The specific human whose profile the level-4 detector enrolled.
    EnrolledHuman(HumanParams),
}

impl Simulator {
    /// Fig. 3 label (or a descriptive one for the reference rows).
    pub fn label(&self) -> &'static str {
        match self {
            Simulator::Selenium => "No limits on behaviour (Selenium)",
            Simulator::Naive => "Limit behaviour to humanly possible (naive)",
            Simulator::Hlisa => "Use distribution of human behaviour (HLISA)",
            Simulator::ConsistentHlisa => "Use consistent behaviour (HLISA+drift)",
            Simulator::ProfileFitted(_) => "Use specific user profile (HLISA fitted)",
            Simulator::Human => "Human visitor (random individual)",
            Simulator::EnrolledHuman(_) => "Human visitor (the enrolled user)",
        }
    }

    /// Runs one session of the three tasks, returning extracted features.
    pub fn run_session(&self, seed: u64) -> TraceFeatures {
        match self {
            Simulator::Human => {
                let subject = HumanParams::individual(derive_seed(seed, "visitor", 0));
                run_human_session_with(subject, seed)
            }
            Simulator::EnrolledHuman(params) => run_human_session_with(params.clone(), seed),
            Simulator::Selenium => run_selenium_session(seed),
            Simulator::Naive => run_naive_session(seed),
            Simulator::Hlisa => run_hlisa_session(HumanParams::paper_baseline(), false, seed),
            Simulator::ConsistentHlisa => {
                run_hlisa_session(HumanParams::paper_baseline(), true, seed)
            }
            Simulator::ProfileFitted(params) => run_hlisa_session(params.clone(), true, seed),
        }
    }
}

// Every session below drives the in-crate standard test page, whose
// literal defines each looked-up id, and the simulated webdriver cannot
// fail a perform; the `expect`s are fail-fast fixture assertions and
// each carries a per-line no-panic allow directive.
fn click_session() -> Session {
    Session::new(Browser::open(BrowserConfig::webdriver(), click_task_page()))
}

fn typing_session() -> Session {
    Session::new(Browser::open(
        BrowserConfig::webdriver(),
        standard_test_page("https://tasks.test/type", 2_000.0),
    ))
}

fn scroll_session() -> Session {
    Session::new(Browser::open(
        BrowserConfig::webdriver(),
        standard_test_page("https://tasks.test/scroll", 30_000.0),
    ))
}

fn relocate_target(s: &mut Session, seed: u64, round: usize) {
    let target = s
        .browser
        .document()
        .by_id("target")
        .expect("standard test page defines #target"); // lint: allow(no-panic)
    let (x, y) = click_target_position(seed, round);
    s.browser.document_mut().element_mut(target).rect = Rect::new(x, y, 120.0, 40.0);
}

/// Selenium runs the tasks the way an OpenWPM study would: `ActionChains`
/// clicks and typing, plus script scrolling (it has no scroll API).
fn run_selenium_session(seed: u64) -> TraceFeatures {
    // Task 1: click the relocating target.
    let mut s = click_session();
    let target = s
        .find_element(By::Id("target".into()))
        .expect("standard test page defines #target"); // lint: allow(no-panic)
    for round in 0..12 {
        relocate_target(&mut s, seed, round);
        SeleniumActionChains::new()
            .click(Some(target))
            .pause(0.3)
            .perform(&mut s)
            .expect("selenium click"); // lint: allow(no-panic)
    }
    let mut features = TraceFeatures::extract(&s.browser.recorder, s.browser.document());

    // Task 2: typing.
    let mut s = typing_session();
    let input = s
        .find_element(By::Id("text_area".into()))
        .expect("standard test page defines #text_area"); // lint: allow(no-panic)
    SeleniumActionChains::new()
        .send_keys_to_element(input, TYPING_TASK_TEXT)
        .perform(&mut s)
        .expect("selenium typing"); // lint: allow(no-panic)
    features.merge(&TraceFeatures::extract(
        &s.browser.recorder,
        s.browser.document(),
    ));

    // Task 3: "scrolling" — arbitrary-distance script jumps, no wheel.
    let mut s = scroll_session();
    let max = s.browser.viewport.max_scroll_y();
    for i in 1..=4 {
        s.browser.input(hlisa_browser::RawInput::ScrollFrom {
            origin: ScrollOrigin::Script,
            amount: max * f64::from(i) / 4.0,
        });
        s.browser.advance(120.0);
    }
    features.merge(&TraceFeatures::extract(
        &s.browser.recorder,
        s.browser.document(),
    ));
    features
}

fn run_naive_session(seed: u64) -> TraceFeatures {
    let mut s = click_session();
    let target = s
        .find_element(By::Id("target".into()))
        .expect("standard test page defines #target"); // lint: allow(no-panic)
    for round in 0..12 {
        relocate_target(&mut s, seed, round);
        NaiveActionChains::new(derive_seed(seed, "naive-click", round as u64))
            .click(Some(target))
            .pause(0.3)
            .perform(&mut s)
            .expect("naive click"); // lint: allow(no-panic)
    }
    let mut features = TraceFeatures::extract(&s.browser.recorder, s.browser.document());

    let mut s = typing_session();
    let input = s
        .find_element(By::Id("text_area".into()))
        .expect("standard test page defines #text_area"); // lint: allow(no-panic)
    NaiveActionChains::new(derive_seed(seed, "naive-type", 0))
        .send_keys_to_element(input, TYPING_TASK_TEXT)
        .perform(&mut s)
        .expect("naive typing"); // lint: allow(no-panic)
    features.merge(&TraceFeatures::extract(
        &s.browser.recorder,
        s.browser.document(),
    ));

    let mut s = scroll_session();
    let max = s.browser.viewport.max_scroll_y();
    NaiveActionChains::new(derive_seed(seed, "naive-scroll", 0))
        .scroll_by(max)
        .perform(&mut s)
        .expect("naive scroll"); // lint: allow(no-panic)
    features.merge(&TraceFeatures::extract(
        &s.browser.recorder,
        s.browser.document(),
    ));
    features
}

fn run_hlisa_session(params: HumanParams, consistent: bool, seed: u64) -> TraceFeatures {
    let chain = |label: &str, idx: u64| {
        HlisaActionChains::with_params(params.clone(), derive_seed(seed, label, idx))
            .with_consistency(consistent)
    };

    let mut s = click_session();
    let target = s
        .find_element(By::Id("target".into()))
        .expect("standard test page defines #target"); // lint: allow(no-panic)
    for round in 0..12 {
        relocate_target(&mut s, seed, round);
        chain("hlisa-click", round as u64)
            .click(Some(target))
            .pause(0.3)
            .perform(&mut s)
            .expect("hlisa click"); // lint: allow(no-panic)
    }
    let mut features = TraceFeatures::extract(&s.browser.recorder, s.browser.document());

    let mut s = typing_session();
    let input = s
        .find_element(By::Id("text_area".into()))
        .expect("standard test page defines #text_area"); // lint: allow(no-panic)
    chain("hlisa-type", 0)
        .send_keys_to_element(input, TYPING_TASK_TEXT)
        .perform(&mut s)
        .expect("hlisa typing"); // lint: allow(no-panic)
    features.merge(&TraceFeatures::extract(
        &s.browser.recorder,
        s.browser.document(),
    ));

    let mut s = scroll_session();
    let max = s.browser.viewport.max_scroll_y();
    chain("hlisa-scroll", 0)
        .scroll_by(0.0, max)
        .perform(&mut s)
        .expect("hlisa scroll"); // lint: allow(no-panic)
    features.merge(&TraceFeatures::extract(
        &s.browser.recorder,
        s.browser.document(),
    ));
    features
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selenium_session_has_the_signature_features() {
        let f = Simulator::Selenium.run_session(1);
        // 12 target clicks + 1 focus click in the typing task.
        assert_eq!(f.click_dwells_ms.len(), 13);
        assert!(f.click_dwells_ms.iter().all(|d| *d <= 1.0));
        assert!(f.typing_cpm > 10_000.0, "cpm {}", f.typing_cpm);
        assert!(f.capitals_without_shift > 0);
        assert_eq!(f.wheel_events, 0);
    }

    #[test]
    fn hlisa_session_is_within_human_limits() {
        let f = Simulator::Hlisa.run_session(2);
        assert_eq!(f.click_dwells_ms.len(), 13);
        assert!(f.click_dwells_ms.iter().all(|d| *d >= 20.0));
        assert!(f.typing_cpm < 1_000.0, "cpm {}", f.typing_cpm);
        assert_eq!(f.capitals_without_shift, 0);
        assert!(f.wheel_events > 400);
    }

    #[test]
    fn naive_session_sits_between() {
        let f = Simulator::Naive.run_session(3);
        assert!(f.click_dwells_ms.iter().all(|d| *d >= 20.0));
        assert_eq!(f.capitals_without_shift, 0);
        assert!(f.wheel_events > 400);
    }

    #[test]
    fn sessions_are_deterministic() {
        assert_eq!(
            Simulator::Hlisa.run_session(7),
            Simulator::Hlisa.run_session(7)
        );
    }
}
