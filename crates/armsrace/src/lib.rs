//! The simulation/detection arms race of §4.2 (Fig. 3), made executable.
//!
//! The paper models detectors and simulators as rungs of two ladders and
//! argues about which rung beats which. This crate runs the actual
//! tournament: every simulator rung plays standardised interaction sessions
//! (the three Appendix E tasks) against every detector rung, producing the
//! detection-rate matrix that Fig. 3's narrative predicts:
//!
//! * Selenium ("no limits on behaviour") is caught from level 1 up;
//! * the naive improver ("limit behaviour to humanly possible") evades
//!   level 1 but falls to the level-2 distribution tests;
//! * HLISA ("use distribution of human behaviour") evades level 2 and is
//!   first caught by level-3 consistency tracking — "to detect HLISA, an
//!   interaction-based detector needs to compare the observed interaction
//!   to a model of human behaviour" (§5);
//! * a consistency-enabled HLISA evades level 3 and only falls to an
//!   enrolled per-user profile;
//! * a profile-fitted simulator ("use specific user profile") evades even
//!   that — and, as the paper notes, such profiling detectors may already
//!   conflict with the GDPR.

pub mod escalation;
pub mod lintgate;
pub mod simulators;
pub mod tournament;

pub use escalation::{run_escalation, Round};
pub use lintgate::lint_simulator;
pub use simulators::Simulator;
pub use tournament::{run_tournament, MatrixCell, TournamentConfig, TournamentResult};
