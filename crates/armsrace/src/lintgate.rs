//! Static detectability per simulator rung: the arms-race ladder seen
//! through the `hlisa-lint` chain linter instead of the trace detectors.
//!
//! Each rung drives the same three Appendix E tasks as
//! [`crate::simulators`], but through a [`Session`] carrying a
//! [`ChainLinter`] auditor, so every tell is caught *before* dispatch —
//! the Fig. 3 ladder judged statically. Human rungs return `None`: real
//! visitors produce traces, not action programs, so there is nothing for
//! a static linter to read.

use crate::simulators::Simulator;
use hlisa::{HlisaActionChains, NaiveActionChains};
use hlisa_browser::dom::standard_test_page;
use hlisa_browser::{Browser, BrowserConfig, Rect};
use hlisa_detect::reference::{click_target_position, click_task_page, TYPING_TASK_TEXT};
use hlisa_human::HumanParams;
use hlisa_lint::{ChainLinter, Report};
use hlisa_stats::rngutil::derive_seed;
use hlisa_webdriver::{By, SeleniumActionChains, Session};

// Every session below drives the in-crate standard test page, whose
// literal defines each looked-up id, and the simulated webdriver cannot
// fail a perform; the `expect`s are fail-fast fixture assertions and
// each carries a per-line no-panic allow directive.
fn audited(browser: Browser) -> Session {
    let mut s = Session::new(browser);
    s.install_auditor(Box::new(ChainLinter::new()));
    s
}

fn click_session() -> Session {
    audited(Browser::open(BrowserConfig::webdriver(), click_task_page()))
}

fn typing_session() -> Session {
    audited(Browser::open(
        BrowserConfig::webdriver(),
        standard_test_page("https://tasks.test/type", 2_000.0),
    ))
}

fn scroll_session() -> Session {
    audited(Browser::open(
        BrowserConfig::webdriver(),
        standard_test_page("https://tasks.test/scroll", 30_000.0),
    ))
}

fn relocate_target(s: &mut Session, seed: u64, round: usize) {
    let target = s
        .browser
        .document()
        .by_id("target")
        .expect("standard test page defines #target"); // lint: allow(no-panic)
    let (x, y) = click_target_position(seed, round);
    s.browser.document_mut().element_mut(target).rect = Rect::new(x, y, 120.0, 40.0);
}

fn drain(s: &mut Session, into: &mut Report) {
    into.merge(Report::from_findings(&s.finish_audit()));
}

/// Lints one rung's session: the three tasks through an audited session.
/// `None` for the human reference rows.
pub fn lint_simulator(sim: &Simulator, seed: u64) -> Option<Report> {
    match sim {
        Simulator::Human | Simulator::EnrolledHuman(_) => None,
        Simulator::Selenium => Some(lint_selenium(seed)),
        Simulator::Naive => Some(lint_naive(seed)),
        Simulator::Hlisa => Some(lint_hlisa(HumanParams::paper_baseline(), false, seed)),
        Simulator::ConsistentHlisa => Some(lint_hlisa(HumanParams::paper_baseline(), true, seed)),
        Simulator::ProfileFitted(params) => Some(lint_hlisa(params.clone(), true, seed)),
    }
}

fn lint_selenium(seed: u64) -> Report {
    let mut report = Report::new();

    let mut s = click_session();
    let target = s
        .find_element(By::Id("target".into()))
        .expect("standard test page defines #target"); // lint: allow(no-panic)
    for round in 0..12 {
        relocate_target(&mut s, seed, round);
        SeleniumActionChains::new()
            .click(Some(target))
            .pause(0.3)
            .perform(&mut s)
            .expect("selenium click"); // lint: allow(no-panic)
    }
    drain(&mut s, &mut report);

    let mut s = typing_session();
    let input = s
        .find_element(By::Id("text_area".into()))
        .expect("standard test page defines #text_area"); // lint: allow(no-panic)
    SeleniumActionChains::new()
        .send_keys_to_element(input, TYPING_TASK_TEXT)
        .perform(&mut s)
        .expect("selenium typing"); // lint: allow(no-panic)
    drain(&mut s, &mut report);

    // Script "scrolling" routed through the session (not raw browser
    // input) so the auditor sees what a page-world observer would.
    let mut s = scroll_session();
    let max = s.browser.viewport.max_scroll_y();
    for _ in 0..4 {
        s.scroll_by_script(max / 4.0);
        s.browser.advance(120.0);
    }
    drain(&mut s, &mut report);
    report
}

fn lint_naive(seed: u64) -> Report {
    let mut report = Report::new();

    let mut s = click_session();
    let target = s
        .find_element(By::Id("target".into()))
        .expect("standard test page defines #target"); // lint: allow(no-panic)
    for round in 0..12 {
        relocate_target(&mut s, seed, round);
        NaiveActionChains::new(derive_seed(seed, "naive-click", round as u64))
            .click(Some(target))
            .pause(0.3)
            .perform(&mut s)
            .expect("naive click"); // lint: allow(no-panic)
    }
    drain(&mut s, &mut report);

    let mut s = typing_session();
    let input = s
        .find_element(By::Id("text_area".into()))
        .expect("standard test page defines #text_area"); // lint: allow(no-panic)
    NaiveActionChains::new(derive_seed(seed, "naive-type", 0))
        .send_keys_to_element(input, TYPING_TASK_TEXT)
        .perform(&mut s)
        .expect("naive typing"); // lint: allow(no-panic)
    drain(&mut s, &mut report);

    let mut s = scroll_session();
    let max = s.browser.viewport.max_scroll_y();
    NaiveActionChains::new(derive_seed(seed, "naive-scroll", 0))
        .scroll_by(max)
        .perform(&mut s)
        .expect("naive scroll"); // lint: allow(no-panic)
    drain(&mut s, &mut report);
    report
}

fn lint_hlisa(params: HumanParams, consistent: bool, seed: u64) -> Report {
    let chain = |label: &str, idx: u64| {
        HlisaActionChains::with_params(params.clone(), derive_seed(seed, label, idx))
            .with_consistency(consistent)
    };
    let mut report = Report::new();

    let mut s = click_session();
    let target = s
        .find_element(By::Id("target".into()))
        .expect("standard test page defines #target"); // lint: allow(no-panic)
    for round in 0..12 {
        relocate_target(&mut s, seed, round);
        chain("hlisa-click", round as u64)
            .click(Some(target))
            .pause(0.3)
            .perform(&mut s)
            .expect("hlisa click"); // lint: allow(no-panic)
    }
    drain(&mut s, &mut report);

    let mut s = typing_session();
    let input = s
        .find_element(By::Id("text_area".into()))
        .expect("standard test page defines #text_area"); // lint: allow(no-panic)
    chain("hlisa-type", 0)
        .send_keys_to_element(input, TYPING_TASK_TEXT)
        .perform(&mut s)
        .expect("hlisa typing"); // lint: allow(no-panic)
    drain(&mut s, &mut report);

    let mut s = scroll_session();
    let max = s.browser.viewport.max_scroll_y();
    chain("hlisa-scroll", 0)
        .scroll_by(0.0, max)
        .perform(&mut s)
        .expect("hlisa scroll"); // lint: allow(no-panic)
    drain(&mut s, &mut report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_static_ladder_matches_fig3() {
        let selenium = lint_simulator(&Simulator::Selenium, 11).unwrap();
        assert!(selenium.rule_ids().len() >= 3, "{:?}", selenium.rule_ids());

        let naive = lint_simulator(&Simulator::Naive, 11).unwrap();
        assert!(naive.rule_ids().len() >= 3, "{:?}", naive.rule_ids());

        for sim in [Simulator::Hlisa, Simulator::ConsistentHlisa] {
            let r = lint_simulator(&sim, 11).unwrap();
            assert!(
                r.is_clean(),
                "{} flagged:\n{}",
                sim.label(),
                r.render_human()
            );
        }
    }

    #[test]
    fn human_rungs_have_no_action_program_to_lint() {
        assert!(lint_simulator(&Simulator::Human, 1).is_none());
    }
}
