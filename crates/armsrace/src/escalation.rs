//! The arms race *as a process*: Fig. 3's escalation arrows, executed.
//!
//! The matrix ([`crate::run_tournament`]) shows who beats whom at fixed
//! capability levels; this module plays out the *sequence* §4.2 narrates:
//! a site deploys a detector, the measurement platform's sessions start
//! getting flagged, the platform upgrades its simulator, detection drops,
//! the site escalates its detector, and so on — until the simulator
//! impersonates the enrolled user and "ultimately defeat[s] detection
//! based exclusively on interaction".

use crate::simulators::Simulator;
use crate::tournament::{pick_identifiable_individual, TournamentConfig};
use hlisa_detect::interaction::UserProfile;
use hlisa_detect::reference::run_human_session_with;
use hlisa_detect::{DetectorLevel, HumanReference, InteractionDetector};
use hlisa_stats::rngutil::derive_seed;

/// One round of the escalation.
#[derive(Debug, Clone, PartialEq)]
pub struct Round {
    /// Round number (1-based).
    pub round: usize,
    /// Detector level deployed this round.
    pub detector: DetectorLevel,
    /// Simulator rung fielded this round.
    pub simulator: String,
    /// Fraction of the platform's sessions flagged.
    pub detection_rate: f64,
    /// Who escalates next (None when the race has converged).
    pub escalation: Option<&'static str>,
}

/// Runs the escalation loop: each side upgrades whenever it is losing.
pub fn run_escalation(config: &TournamentConfig) -> Vec<Round> {
    // Shared infrastructure, as in the tournament.
    let reference = HumanReference::generate(
        derive_seed(config.seed, "esc-reference", 0),
        config.reference_sessions,
    );
    let enrolled = pick_identifiable_individual(config.seed);
    let mut corpus = HumanReference::default();
    for i in 0..config.enrollment_sessions {
        let f = run_human_session_with(
            enrolled.clone(),
            derive_seed(config.seed, "esc-enroll", i as u64),
        );
        corpus.key_dwell_ms.extend(f.key_dwells_ms.clone());
        corpus.click_dwell_ms.extend(f.click_dwells_ms.clone());
        corpus
            .click_offset_frac
            .extend(f.click_offsets_frac.clone());
        corpus.scroll_gap_ms.extend(f.scroll_gaps_ms.clone());
    }
    let profile = UserProfile::enroll(&corpus);

    let detector_for = |level: DetectorLevel| -> InteractionDetector {
        match level {
            DetectorLevel::L1Artificial => InteractionDetector::level1(),
            DetectorLevel::L2Deviation => InteractionDetector::level2(reference.clone()),
            DetectorLevel::L3Consistency => InteractionDetector::level3(reference.clone()),
            DetectorLevel::L4Profile => {
                InteractionDetector::level4(reference.clone(), profile.clone())
            }
        }
    };

    let simulators: Vec<Simulator> = vec![
        Simulator::Selenium,
        Simulator::Naive,
        Simulator::Hlisa,
        Simulator::ConsistentHlisa,
        Simulator::ProfileFitted(enrolled),
    ];

    let mut rounds = Vec::new();
    let mut det_idx = 0usize;
    let mut sim_idx = 0usize;
    let mut round_no = 1usize;
    loop {
        let detector = detector_for(DetectorLevel::ALL[det_idx]);
        let sim = &simulators[sim_idx];
        let flagged = (0..config.sessions_per_agent)
            .filter(|i| {
                let f = sim.run_session(derive_seed(
                    config.seed,
                    &format!("esc-{round_no}-{}", sim.label()),
                    *i as u64,
                ));
                detector.judge_features(&f).is_bot
            })
            .count();
        let rate = flagged as f64 / config.sessions_per_agent as f64;

        // Whoever is losing escalates; the race converges when the
        // simulator wins with nothing left for the detector to deploy.
        let escalation = if rate > 0.5 {
            if sim_idx + 1 < simulators.len() {
                Some("simulator upgrades")
            } else {
                Some("simulator out of upgrades — detection holds")
            }
        } else if det_idx + 1 < DetectorLevel::ALL.len() {
            Some("detector escalates")
        } else {
            None
        };

        rounds.push(Round {
            round: round_no,
            detector: DetectorLevel::ALL[det_idx],
            simulator: sim.label().to_string(),
            detection_rate: rate,
            escalation,
        });

        match escalation {
            Some("simulator upgrades") => sim_idx += 1,
            Some("detector escalates") => det_idx += 1,
            _ => break,
        }
        round_no += 1;
        if round_no > 24 {
            break; // defensive bound; the ladder is finite
        }
    }
    rounds
}

/// Formats the escalation as the paper's narrative.
pub fn report(rounds: &[Round]) -> String {
    let mut out = String::from("The interaction arms race, played out:\n\n");
    for r in rounds {
        out.push_str(&format!(
            "round {:>2}: detector \"{}\" vs simulator \"{}\"\n          -> {:.0}% of sessions flagged{}\n",
            r.round,
            r.detector.label(),
            r.simulator,
            r.detection_rate * 100.0,
            match r.escalation {
                Some(e) => format!("; {e}"),
                None => "; race converged — interaction-only detection is defeated".to_string(),
            }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> TournamentConfig {
        TournamentConfig {
            seed: 11,
            sessions_per_agent: 2,
            reference_sessions: 2,
            enrollment_sessions: 2,
        }
    }

    #[test]
    fn escalation_walks_the_full_ladder() {
        let rounds = run_escalation(&quick());
        // The race must reach the profile-fitted simulator and converge.
        let last = rounds.last().unwrap();
        assert!(last.simulator.contains("specific user profile"), "{last:?}");
        assert_eq!(last.detection_rate, 0.0);
        assert!(last.escalation.is_none());
        // Every detector level was deployed on the way.
        for level in DetectorLevel::ALL {
            assert!(
                rounds.iter().any(|r| r.detector == level),
                "{level:?} never deployed"
            );
        }
    }

    #[test]
    fn each_upgrade_is_a_response_to_losing() {
        let rounds = run_escalation(&quick());
        for w in rounds.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            if a.detection_rate > 0.5 {
                assert_ne!(a.simulator, b.simulator, "losing simulator must upgrade");
            } else {
                assert_ne!(a.detector, b.detector, "losing detector must escalate");
            }
        }
    }

    #[test]
    fn report_tells_the_story() {
        let s = report(&run_escalation(&quick()));
        assert!(s.contains("race converged"));
        assert!(s.contains("Selenium"));
        assert!(s.contains("HLISA"));
    }
}
