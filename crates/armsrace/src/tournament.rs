//! The simulator × detector tournament that regenerates Fig. 3's
//! narrative as a detection-rate matrix.

use crate::simulators::Simulator;
use hlisa_detect::interaction::UserProfile;
use hlisa_detect::reference::run_human_session_with;
use hlisa_detect::{DetectorLevel, HumanReference, InteractionDetector};
use hlisa_human::HumanParams;
use hlisa_stats::rngutil::derive_seed;

/// Tournament configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TournamentConfig {
    /// Master seed.
    pub seed: u64,
    /// Sessions per simulator.
    pub sessions_per_agent: usize,
    /// Human sessions in the level-2 reference corpus.
    pub reference_sessions: usize,
    /// Enrolment sessions for the level-4 profile.
    pub enrollment_sessions: usize,
}

impl Default for TournamentConfig {
    fn default() -> Self {
        Self {
            seed: 0x41_52_4d_53, // "ARMS"
            sessions_per_agent: 8,
            reference_sessions: 6,
            enrollment_sessions: 4,
        }
    }
}

/// One cell of the matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixCell {
    /// Simulator row label.
    pub simulator: String,
    /// Detector level.
    pub level: DetectorLevel,
    /// Fraction of sessions flagged.
    pub detection_rate: f64,
    /// Most frequent signal name among flagged sessions.
    pub dominant_signal: Option<String>,
}

/// Full tournament output.
#[derive(Debug, Clone, PartialEq)]
pub struct TournamentResult {
    /// Row labels in ladder order.
    pub simulators: Vec<String>,
    /// All cells (row-major over simulators × levels).
    pub cells: Vec<MatrixCell>,
}

impl TournamentResult {
    /// Detection rate for (simulator label, level).
    pub fn rate(&self, simulator: &str, level: DetectorLevel) -> Option<f64> {
        self.cells
            .iter()
            .find(|c| c.simulator == simulator && c.level == level)
            .map(|c| c.detection_rate)
    }
}

/// Runs the tournament.
pub fn run_tournament(config: &TournamentConfig) -> TournamentResult {
    // The enrolled individual the level-4 detector protects. A seed is
    // chosen whose tempo offset is large enough to be identifiable.
    let enrolled_params = pick_identifiable_individual(config.seed);

    // Level-2/3 reference corpus: the human population.
    let reference = HumanReference::generate(
        derive_seed(config.seed, "reference", 0),
        config.reference_sessions,
    );

    // Level-4 enrolment: sessions of the enrolled individual only.
    let mut enrolled_corpus = HumanReference::default();
    for i in 0..config.enrollment_sessions {
        let f = run_human_session_with(
            enrolled_params.clone(),
            derive_seed(config.seed, "enroll", i as u64),
        );
        enrolled_corpus.key_dwell_ms.extend(f.key_dwells_ms.clone());
        enrolled_corpus
            .click_dwell_ms
            .extend(f.click_dwells_ms.clone());
        enrolled_corpus
            .click_offset_frac
            .extend(f.click_offsets_frac.clone());
        enrolled_corpus
            .scroll_gap_ms
            .extend(f.scroll_gaps_ms.clone());
    }
    let profile = UserProfile::enroll(&enrolled_corpus);

    let detectors = [
        InteractionDetector::level1(),
        InteractionDetector::level2(reference.clone()),
        InteractionDetector::level3(reference.clone()),
        InteractionDetector::level4(reference, profile),
    ];

    let simulators = vec![
        Simulator::Selenium,
        Simulator::Naive,
        Simulator::Hlisa,
        Simulator::ConsistentHlisa,
        Simulator::ProfileFitted(enrolled_params.clone()),
        Simulator::Human,
        Simulator::EnrolledHuman(enrolled_params),
    ];

    let mut cells = Vec::new();
    for sim in &simulators {
        // Pre-run the sessions once; every detector judges the same traces.
        let features: Vec<_> = (0..config.sessions_per_agent)
            .map(|i| sim.run_session(derive_seed(config.seed, sim.label(), i as u64)))
            .collect();
        for det in &detectors {
            let mut flagged = 0usize;
            let mut signal_counts: Vec<(String, usize)> = Vec::new();
            for f in &features {
                let v = det.judge_features(f);
                if v.is_bot {
                    flagged += 1;
                    for s in v.signals {
                        match signal_counts.iter_mut().find(|(n, _)| *n == s.name) {
                            Some((_, c)) => *c += 1,
                            None => signal_counts.push((s.name.to_string(), 1)),
                        }
                    }
                }
            }
            signal_counts.sort_by_key(|c| std::cmp::Reverse(c.1));
            cells.push(MatrixCell {
                simulator: sim.label().to_string(),
                level: det.level(),
                detection_rate: flagged as f64 / features.len() as f64,
                dominant_signal: signal_counts.first().map(|(n, _)| n.clone()),
            });
        }
    }

    TournamentResult {
        simulators: simulators.iter().map(|s| s.label().to_string()).collect(),
        cells,
    }
}

/// Picks an individual whose tempo offset is clearly identifiable (so the
/// enrolment story of Fig. 3's top rung is meaningful) yet still well
/// inside the population envelope (so the level-2 detector, which must
/// tolerate individual variation, does not flag them). Shared with the
/// escalation loop so both experiments enrol the same user.
pub fn pick_identifiable_individual(seed: u64) -> HumanParams {
    let baseline = HumanParams::paper_baseline().key_dwell.mean();
    const TARGET_GAP_MS: f64 = 13.0;
    // Seeding with candidate 0 (at infinite miss, so it still competes on
    // equal terms) keeps the pool structurally non-empty.
    let mut best = (
        f64::INFINITY,
        HumanParams::individual(derive_seed(seed, "enrolled-individual", 0)),
    );
    for i in 0..32 {
        let p = HumanParams::individual(derive_seed(seed, "enrolled-individual", i));
        let miss = ((p.key_dwell.mean() - baseline).abs() - TARGET_GAP_MS).abs();
        if miss < best.0 {
            best = (miss, p);
        }
    }
    best.1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> TournamentConfig {
        TournamentConfig {
            seed: 4,
            sessions_per_agent: 3,
            reference_sessions: 3,
            enrollment_sessions: 2,
        }
    }

    #[test]
    fn matrix_has_all_cells() {
        let r = run_tournament(&quick_config());
        assert_eq!(r.simulators.len(), 7);
        assert_eq!(r.cells.len(), 7 * 4);
    }

    #[test]
    fn ladder_shape_holds() {
        let r = run_tournament(&quick_config());
        let sel = Simulator::Selenium.label();
        let naive = Simulator::Naive.label();
        let hlisa = Simulator::Hlisa.label();
        let human = Simulator::Human.label();

        // Selenium is caught at every level.
        for l in DetectorLevel::ALL {
            assert_eq!(r.rate(sel, l), Some(1.0), "selenium at {l:?}");
        }
        // Naive evades L1, is caught by L2.
        assert_eq!(r.rate(naive, DetectorLevel::L1Artificial), Some(0.0));
        assert_eq!(r.rate(naive, DetectorLevel::L2Deviation), Some(1.0));
        // HLISA evades L1 and L2, is caught by L3.
        assert_eq!(r.rate(hlisa, DetectorLevel::L1Artificial), Some(0.0));
        assert_eq!(r.rate(hlisa, DetectorLevel::L2Deviation), Some(0.0));
        assert!(r.rate(hlisa, DetectorLevel::L3Consistency).unwrap() >= 0.9);
        // Humans pass L1–L3.
        for l in [
            DetectorLevel::L1Artificial,
            DetectorLevel::L2Deviation,
            DetectorLevel::L3Consistency,
        ] {
            assert_eq!(r.rate(human, l), Some(0.0), "human at {l:?}");
        }
    }

    #[test]
    fn profile_rungs_behave() {
        let r = run_tournament(&quick_config());
        let consistent = Simulator::ConsistentHlisa.label();
        let fitted = "Use specific user profile (HLISA fitted)";
        let enrolled = "Human visitor (the enrolled user)";

        // Consistent HLISA evades L3 but not L4.
        assert_eq!(r.rate(consistent, DetectorLevel::L3Consistency), Some(0.0));
        assert!(r.rate(consistent, DetectorLevel::L4Profile).unwrap() >= 0.9);
        // Fitted simulator and the enrolled user both pass L4 — "the only
        // way to defeat such detection mechanisms is to move ... to
        // simulating the specific interaction profile of a specific
        // individual" (§4.2).
        assert_eq!(r.rate(fitted, DetectorLevel::L4Profile), Some(0.0));
        assert_eq!(r.rate(enrolled, DetectorLevel::L4Profile), Some(0.0));
        // *Different* humans are (sometimes) flagged by the profile
        // detector — the over-focus that the paper argues may conflict
        // with the GDPR. How often depends on how far each random
        // individual's tempo sits from the enrolled one.
        let other_human = Simulator::Human.label();
        assert!(r.rate(other_human, DetectorLevel::L4Profile).unwrap() >= 0.3);
    }
}
