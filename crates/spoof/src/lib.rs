//! JavaScript-level fingerprint spoofing (§3 of the paper).
//!
//! Four methods of making `navigator.webdriver` read `false` inside an
//! automated Firefox, exactly as enumerated in §3.1:
//!
//! 1. [`methods::define_property`] — `Object.defineProperty`.
//! 2. [`methods::define_getter`] — legacy `__defineGetter__`.
//! 3. [`methods::set_prototype_of`] — interposing a prototype.
//! 4. [`methods::proxy_wrap`] — wrapping `navigator` in a `Proxy`.
//!
//! [`extension`] packages method 4 into an OpenWPM-style page-load hook —
//! the spoofing extension whose field evaluation produces Table 2 and
//! Figure 4. [`browser_patch`] models the alternative §3 weighs against
//! JS-level spoofing: patching the browser source, which is side-effect
//! free but carries per-release, per-platform maintenance overhead.

pub mod browser_patch;
pub mod extension;
pub mod methods;

pub use browser_patch::BrowserPatch;
pub use extension::SpoofingExtension;
pub use methods::SpoofMethod;
