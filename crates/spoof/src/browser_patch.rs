//! Browser-level patching — the alternative §3 contrasts with JS spoofing.
//!
//! "In contrast, browser level patches of properties avoid the
//! introduction of such side effects. However, adjusting the browser
//! source code adds considerable overhead" (§3). A browser-level patch
//! changes what the engine itself reports, so the resulting object graph
//! is *bit-for-bit* the regular browser's: no own properties, no order
//! changes, native accessors, named functions.
//!
//! The module models both the capability and its costs:
//! [`BrowserPatch::apply`] rewrites the native getter behind a property
//! (the engine-source change), and [`MaintenanceModel`] quantifies the
//! overhead trade-off the paper describes (per-release maintenance,
//! per-platform builds) against the JS extension's deploy-anywhere model.

use hlisa_jsom::object::{NativeBehavior, PropertyKind};
use hlisa_jsom::{JsError, Value, World};

/// A browser-source-level property patch.
#[derive(Debug, Clone, PartialEq)]
pub struct BrowserPatch {
    /// Property → value the engine should report.
    pub overrides: Vec<(String, Value)>,
}

impl BrowserPatch {
    /// The paper's running example: make the engine report
    /// `navigator.webdriver === false`.
    pub fn hide_webdriver() -> Self {
        Self {
            overrides: vec![("webdriver".to_string(), Value::Bool(false))],
        }
    }

    /// Applies the patch: replaces the *native getter's* return value on
    /// the prototype, exactly as a rebuilt Gecko would. No new objects,
    /// no descriptor changes, no renames — the operation a content script
    /// cannot perform.
    pub fn apply(&self, world: &mut World) -> Result<(), JsError> {
        for (property, value) in &self.overrides {
            let proto = world.navigator_prototype;
            let desc = world
                .realm
                .get_own_descriptor(proto, property)
                .ok_or_else(|| {
                    JsError::TypeError(format!("no native property {property} to patch"))
                })?;
            let PropertyKind::Accessor {
                getter: Some(getter),
                ..
            } = desc.kind
            else {
                return Err(JsError::TypeError(format!(
                    "{property} is not a native accessor"
                )));
            };
            let info = world
                .realm
                .obj_mut(getter)
                .function
                .as_mut()
                .ok_or_else(|| JsError::Internal("getter is not callable".into()))?;
            // The engine change: same function object, same name, same
            // [native code] body — different compiled behaviour.
            info.behavior = NativeBehavior::Return(value.clone());
        }
        Ok(())
    }
}

/// The overhead model of §3's trade-off discussion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaintenanceModel {
    /// Engineer-hours to re-validate a patch per browser release.
    pub hours_per_release: f64,
    /// Browser releases per year (Firefox ships every 4 weeks).
    pub releases_per_year: f64,
    /// Platforms that each need their own build.
    pub platforms: u32,
    /// One-off hours to stand up the browser build infrastructure.
    pub build_setup_hours: f64,
}

impl MaintenanceModel {
    /// A defensible default for a research group maintaining a patched
    /// Firefox.
    pub fn browser_level_default() -> Self {
        Self {
            hours_per_release: 6.0,
            releases_per_year: 13.0,
            platforms: 3,
            build_setup_hours: 40.0,
        }
    }

    /// The JS-extension alternative: no builds, no per-release source
    /// rebase; occasional API breakage to chase.
    pub fn js_extension_default() -> Self {
        Self {
            hours_per_release: 0.5,
            releases_per_year: 13.0,
            platforms: 1,
            build_setup_hours: 2.0,
        }
    }

    /// Total engineer-hours over the first `years` years.
    pub fn total_hours(&self, years: f64) -> f64 {
        self.build_setup_hours
            + self.hours_per_release * self.releases_per_year * f64::from(self.platforms) * years
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlisa_jsom::{build_firefox_world, BrowserFlavor, Template};

    #[test]
    fn patch_hides_webdriver() {
        let mut w = build_firefox_world(BrowserFlavor::WebDriverFirefox);
        BrowserPatch::hide_webdriver().apply(&mut w).unwrap();
        let nav = w.resolve_navigator();
        assert_eq!(w.realm.get(nav, "webdriver").unwrap(), Value::Bool(false));
    }

    #[test]
    fn patch_is_side_effect_free() {
        // The whole point of browser-level patching: the patched bot world
        // is template-identical to a regular Firefox.
        let mut patched = build_firefox_world(BrowserFlavor::WebDriverFirefox);
        BrowserPatch::hide_webdriver().apply(&mut patched).unwrap();
        let mut regular = build_firefox_world(BrowserFlavor::RegularFirefox);
        let tp = Template::capture(&mut patched.realm, patched.window, "window", 3);
        let tr = Template::capture(&mut regular.realm, regular.window, "window", 3);
        assert!(tr.diff(&tp).is_empty(), "diffs: {:?}", tr.diff(&tp));
    }

    #[test]
    fn patch_preserves_function_names() {
        let mut w = build_firefox_world(BrowserFlavor::WebDriverFirefox);
        BrowserPatch::hide_webdriver().apply(&mut w).unwrap();
        let nav = w.resolve_navigator();
        let f = w
            .realm
            .get(nav, "javaEnabled")
            .unwrap()
            .as_object()
            .unwrap();
        assert!(w
            .realm
            .function_to_string(f)
            .unwrap()
            .contains("javaEnabled"));
    }

    #[test]
    fn patch_rejects_unknown_properties() {
        let mut w = build_firefox_world(BrowserFlavor::WebDriverFirefox);
        let patch = BrowserPatch {
            overrides: vec![("noSuchThing".to_string(), Value::Null)],
        };
        assert!(patch.apply(&mut w).is_err());
    }

    #[test]
    fn maintenance_model_shows_the_overhead_gap() {
        let browser = MaintenanceModel::browser_level_default();
        let js = MaintenanceModel::js_extension_default();
        // §3: browser-level patching "adds considerable overhead".
        assert!(browser.total_hours(2.0) > js.total_hours(2.0) * 5.0);
    }
}
