//! The four spoofing methods of §3.1.
//!
//! Each method takes a [`World`] whose `navigator.webdriver` currently reads
//! `true` (a WebDriver-automated Firefox) and alters the object graph so the
//! property reads `false` — using only operations a content script could
//! perform. The *way* each method alters the graph is what leaves the
//! side effects catalogued in Table 1.

use hlisa_jsom::object::{
    JsObject, NativeBehavior, PropertyDescriptor, PropertyKind, ProxyHandler,
};
use hlisa_jsom::{JsError, Value, World};

/// The spoofing method to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpoofMethod {
    /// Method 1: `Object.defineProperty(navigator, "webdriver", ...)`.
    DefineProperty,
    /// Method 2: `navigator.__defineGetter__("webdriver", () => false)`.
    DefineGetter,
    /// Method 3: `Object.setPrototypeOf(navigator, fakeProto)`.
    SetPrototypeOf,
    /// Method 4: `window.navigator = new Proxy(navigator, handler)`.
    ProxyObjects,
}

impl SpoofMethod {
    /// All four methods, in the paper's numbering order.
    pub const ALL: [SpoofMethod; 4] = [
        SpoofMethod::DefineProperty,
        SpoofMethod::DefineGetter,
        SpoofMethod::SetPrototypeOf,
        SpoofMethod::ProxyObjects,
    ];

    /// The paper's index (1-based) for this method.
    pub fn index(self) -> usize {
        match self {
            SpoofMethod::DefineProperty => 1,
            SpoofMethod::DefineGetter => 2,
            SpoofMethod::SetPrototypeOf => 3,
            SpoofMethod::ProxyObjects => 4,
        }
    }

    /// Human-readable name matching §3.1.
    pub fn name(self) -> &'static str {
        match self {
            SpoofMethod::DefineProperty => "defineProperty",
            SpoofMethod::DefineGetter => "__defineGetter__",
            SpoofMethod::SetPrototypeOf => "setPrototypeOf",
            SpoofMethod::ProxyObjects => "Proxy objects",
        }
    }

    /// Applies this method to spoof `property` to `value` on
    /// `window.navigator` in `world`.
    pub fn apply(self, world: &mut World, property: &str, value: Value) -> Result<(), JsError> {
        match self {
            SpoofMethod::DefineProperty => define_property(world, property, value),
            SpoofMethod::DefineGetter => define_getter(world, property, value),
            SpoofMethod::SetPrototypeOf => set_prototype_of(world, property, value),
            SpoofMethod::ProxyObjects => proxy_wrap(world, &[(property.to_string(), value)]),
        }
    }
}

/// Method 1 — `Object.defineProperty` directly on the `navigator` instance.
///
/// Creates an *own* data property that shadows the prototype accessor. The
/// paper notes that with default attributes the key vanishes from
/// enumeration, which is itself detectable, and that this "is possible to
/// remedy by setting the enumerable property to true" — so, like the paper's
/// final variant, we define it enumerable. The original accessor stays on
/// `Navigator.prototype` ("its original value remains in the prototype
/// chain"), own-key count grows, and for-in order shifts.
pub fn define_property(world: &mut World, property: &str, value: Value) -> Result<(), JsError> {
    let nav = world.resolve_navigator();
    world.realm.define_property(
        nav,
        property,
        PropertyDescriptor {
            kind: PropertyKind::Data {
                value,
                writable: false,
            },
            enumerable: true,
            configurable: true,
        },
    )
}

/// Method 2 — legacy `__defineGetter__`.
///
/// Installs an own enumerable *accessor* returning the spoofed value. Same
/// structural side effects as method 1 (own shadow, order change, own-count
/// change); the getter function is a page-created anonymous function rather
/// than engine native code, visible through `toString`.
pub fn define_getter(world: &mut World, property: &str, value: Value) -> Result<(), JsError> {
    let nav = world.resolve_navigator();
    let getter = world.realm.make_anonymous_fn(NativeBehavior::Return(value));
    // The getter is page script, not native code. `make_anonymous_fn`
    // always populates `function`, so the `if let` never skips.
    if let Some(f) = world.realm.obj_mut(getter).function.as_mut() {
        f.native = false;
    }
    world.realm.define_getter(nav, property, getter)
}

/// Method 3 — `Object.setPrototypeOf`.
///
/// Replaces `navigator`'s prototype with a page-built clone of
/// `Navigator.prototype` — every property copied in original order, except
/// the spoofed one, which becomes a plain data property. The clone keeps
/// methods 1–2's side effects away (own keys, counts and for-in order all
/// stay pristine), but it is "inherently detectable": regular Firefox
/// resolves `webdriver` as a native *accessor* on the prototype, whereas
/// after this method the first `__proto__` hop carries a *defined* data
/// property — the "Defined navigator.__proto__.webdriver" side effect.
pub fn set_prototype_of(world: &mut World, property: &str, value: Value) -> Result<(), JsError> {
    let nav = world.resolve_navigator();
    let original_proto = world
        .realm
        .get_prototype_of(nav)
        .ok_or_else(|| JsError::TypeError("navigator has no prototype".into()))?;
    let grandparent = world.realm.get_prototype_of(original_proto);
    let props = world.realm.own_properties(original_proto);
    let fake = world.realm.alloc(JsObject::plain("Object", grandparent));
    for (k, d) in props {
        if k == property {
            world
                .realm
                .set_own(fake, &k, PropertyDescriptor::plain(value.clone()));
        } else {
            world.realm.set_own(fake, &k, d);
        }
    }
    world.realm.set_prototype_of(nav, Some(fake));
    Ok(())
}

/// Method 4 — Proxy objects.
///
/// Replaces the `window.navigator` binding with a `Proxy` whose `get` trap
/// returns spoofed values for the selected properties and forwards
/// everything else. Own keys, prototype chain, and enumeration order all
/// forward to the pristine target, so methods 1–3's side effects are absent;
/// the cost is that every method handed out through the proxy is re-bound as
/// an anonymous function (Listing 1), and identical techniques are used by
/// benign privacy extensions.
pub fn proxy_wrap(world: &mut World, overrides: &[(String, Value)]) -> Result<(), JsError> {
    let nav = world.resolve_navigator();
    let handler = ProxyHandler {
        get_overrides: overrides.to_vec(),
    };
    let proxy = world.realm.wrap_in_proxy(nav, handler);
    world.rebind_navigator(proxy);
    Ok(())
}

/// The classic `delete navigator.webdriver` trick from early stealth
/// scripts. It worked on old Chrome versions where the property lived on
/// the `navigator` instance; in (modelled) Firefox the property is an
/// accessor on `Navigator.prototype`, which `delete` on the instance
/// cannot reach — so the flag keeps reading `true`. Kept as a regression
/// reference, not as a working method.
pub fn delete_webdriver(world: &mut World) -> bool {
    let nav = world.resolve_navigator();
    world.realm.delete_property(nav, "webdriver")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlisa_jsom::{build_firefox_world, BrowserFlavor};

    fn bot_world() -> World {
        build_firefox_world(BrowserFlavor::WebDriverFirefox)
    }

    #[test]
    fn every_method_spoofs_webdriver_to_false() {
        for m in SpoofMethod::ALL {
            let mut w = bot_world();
            m.apply(&mut w, "webdriver", Value::Bool(false)).unwrap();
            let nav = w.resolve_navigator();
            assert_eq!(
                w.realm.get(nav, "webdriver").unwrap(),
                Value::Bool(false),
                "method {} failed to spoof",
                m.name()
            );
        }
    }

    #[test]
    fn method_indices_match_paper() {
        assert_eq!(SpoofMethod::DefineProperty.index(), 1);
        assert_eq!(SpoofMethod::DefineGetter.index(), 2);
        assert_eq!(SpoofMethod::SetPrototypeOf.index(), 3);
        assert_eq!(SpoofMethod::ProxyObjects.index(), 4);
    }

    #[test]
    fn define_property_creates_own_shadow() {
        let mut w = bot_world();
        define_property(&mut w, "webdriver", Value::Bool(false)).unwrap();
        let nav = w.resolve_navigator();
        assert_eq!(w.realm.own_len(nav), 1);
        assert_eq!(w.realm.object_keys(nav), vec!["webdriver"]);
        // Original remains in the prototype chain.
        let proto = w.realm.get_prototype_of(nav).unwrap();
        assert!(w.realm.has_own(proto, "webdriver"));
    }

    #[test]
    fn define_getter_installs_accessor() {
        let mut w = bot_world();
        define_getter(&mut w, "webdriver", Value::Bool(false)).unwrap();
        let nav = w.resolve_navigator();
        let d = w.realm.get_own_descriptor(nav, "webdriver").unwrap();
        assert!(d.is_accessor());
        assert!(d.enumerable);
    }

    #[test]
    fn set_prototype_keeps_navigator_own_clean() {
        let mut w = bot_world();
        let pristine_order = w.realm.for_in_keys(w.navigator);
        set_prototype_of(&mut w, "webdriver", Value::Bool(false)).unwrap();
        let nav = w.resolve_navigator();
        assert_eq!(w.realm.own_len(nav), 0);
        // Enumeration order is preserved by the full clone.
        assert_eq!(w.realm.for_in_keys(nav), pristine_order);
        // But the first proto hop owns a data-property webdriver.
        let hop = w.realm.get_prototype_of(nav).unwrap();
        let d = w.realm.get_own_descriptor(hop, "webdriver").unwrap();
        assert!(!d.is_accessor());
        // Chain length stays two (the clone replaces, not interposes).
        assert_eq!(w.realm.proto_chain(nav).len(), 2);
    }

    #[test]
    fn proxy_keeps_structure_but_unnames_methods() {
        let mut w = bot_world();
        proxy_wrap(&mut w, &[("webdriver".to_string(), Value::Bool(false))]).unwrap();
        let nav = w.resolve_navigator();
        assert!(w.realm.is_proxy(nav));
        assert_eq!(w.realm.own_len(nav), 0);
        assert!(w.realm.object_keys(nav).is_empty());
        // Methods come out anonymous.
        let f = w
            .realm
            .get(nav, "javaEnabled")
            .unwrap()
            .as_object()
            .unwrap();
        let src = w.realm.function_to_string(f).unwrap();
        assert!(src.starts_with("function ()"), "src={src}");
    }

    #[test]
    fn proxy_forwards_untouched_properties() {
        let mut w = bot_world();
        proxy_wrap(&mut w, &[("webdriver".to_string(), Value::Bool(false))]).unwrap();
        let nav = w.resolve_navigator();
        let ua = w.realm.get(nav, "userAgent").unwrap();
        assert!(ua.as_str().unwrap().contains("Firefox"));
    }

    #[test]
    fn delete_trick_is_futile_on_firefox() {
        let mut w = bot_world();
        assert!(delete_webdriver(&mut w), "delete itself reports success");
        let nav = w.resolve_navigator();
        // ... but the flag is still there, resolved from the prototype.
        assert_eq!(w.realm.get(nav, "webdriver").unwrap(), Value::Bool(true));
    }

    #[test]
    fn methods_spoof_arbitrary_properties() {
        let mut w = bot_world();
        SpoofMethod::DefineProperty
            .apply(&mut w, "platform", Value::Str("Win32".into()))
            .unwrap();
        let nav = w.resolve_navigator();
        assert_eq!(
            w.realm.get(nav, "platform").unwrap(),
            Value::Str("Win32".into())
        );
    }
}
