//! The OpenWPM spoofing extension (§3.2).
//!
//! The paper packages the Proxy-based spoofing method as a browser extension
//! for OpenWPM clients and submits it upstream (mozilla/OpenWPM PR #526).
//! This module models the extension as a page-load hook: given a freshly
//! built page world, it applies the configured spoofs before any page script
//! runs — matching the content-script-at-document-start injection the real
//! extension uses.

use crate::methods::{proxy_wrap, SpoofMethod};
use hlisa_jsom::{JsError, Value, World};

/// A spoofing extension configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SpoofingExtension {
    method: SpoofMethod,
    overrides: Vec<(String, Value)>,
}

impl SpoofingExtension {
    /// The configuration evaluated in the paper: the Proxy method hiding
    /// `navigator.webdriver`.
    pub fn paper_default() -> Self {
        Self {
            method: SpoofMethod::ProxyObjects,
            overrides: vec![("webdriver".to_string(), Value::Bool(false))],
        }
    }

    /// A custom extension using the given method for a set of property
    /// overrides.
    pub fn new(method: SpoofMethod, overrides: Vec<(String, Value)>) -> Self {
        Self { method, overrides }
    }

    /// The spoofing method this extension applies.
    pub fn method(&self) -> SpoofMethod {
        self.method
    }

    /// The property overrides.
    pub fn overrides(&self) -> &[(String, Value)] {
        &self.overrides
    }

    /// Injects the extension into a page world (run at document start).
    ///
    /// For the Proxy method all overrides install atomically behind a single
    /// wrapper; for the own-property methods each override is applied in
    /// sequence, mirroring how a real injected script would loop.
    pub fn inject(&self, world: &mut World) -> Result<(), JsError> {
        match self.method {
            SpoofMethod::ProxyObjects => proxy_wrap(world, &self.overrides),
            m => {
                for (k, v) in &self.overrides {
                    m.apply(world, k, v.clone())?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlisa_jsom::{build_firefox_world, BrowserFlavor};

    #[test]
    fn paper_default_hides_webdriver() {
        let mut w = build_firefox_world(BrowserFlavor::WebDriverFirefox);
        SpoofingExtension::paper_default().inject(&mut w).unwrap();
        let nav = w.resolve_navigator();
        assert_eq!(w.realm.get(nav, "webdriver").unwrap(), Value::Bool(false));
        assert!(w.realm.is_proxy(nav));
    }

    #[test]
    fn multi_override_proxy_is_single_wrapper() {
        let mut w = build_firefox_world(BrowserFlavor::WebDriverFirefox);
        let ext = SpoofingExtension::new(
            SpoofMethod::ProxyObjects,
            vec![
                ("webdriver".to_string(), Value::Bool(false)),
                ("platform".to_string(), Value::Str("Win32".into())),
            ],
        );
        ext.inject(&mut w).unwrap();
        let nav = w.resolve_navigator();
        assert_eq!(w.realm.get(nav, "webdriver").unwrap(), Value::Bool(false));
        assert_eq!(
            w.realm.get(nav, "platform").unwrap(),
            Value::Str("Win32".into())
        );
        // "an adversarial website ... does not know what property was
        // changed when applying this approach to multiple properties":
        // the structural views stay pristine regardless of override count.
        assert!(w.realm.object_keys(nav).is_empty());
    }

    #[test]
    fn own_property_extension_applies_each_override() {
        let mut w = build_firefox_world(BrowserFlavor::WebDriverFirefox);
        let ext = SpoofingExtension::new(
            SpoofMethod::DefineProperty,
            vec![
                ("webdriver".to_string(), Value::Bool(false)),
                ("doNotTrack".to_string(), Value::Str("1".into())),
            ],
        );
        ext.inject(&mut w).unwrap();
        let nav = w.resolve_navigator();
        assert_eq!(w.realm.own_len(nav), 2);
    }

    #[test]
    fn accessors_expose_config() {
        let ext = SpoofingExtension::paper_default();
        assert_eq!(ext.method(), SpoofMethod::ProxyObjects);
        assert_eq!(ext.overrides().len(), 1);
    }
}
