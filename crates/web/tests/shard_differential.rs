//! Differential property tests: lazy shard-generated populations must be
//! bit-identical to the eager `generate_population` reference across
//! arbitrary shard sizes, site counts, and scenario mixes — including the
//! role shuffle, deploy side effects, and the zero-extra-draws property
//! of an all-zero scenario mix.

use hlisa_web::dynamics::ScenarioMix;
use hlisa_web::{generate_population, PopulationConfig, PopulationShards};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = PopulationConfig> {
    (
        0u64..1_000,
        20usize..220,
        0usize..10,
        (0usize..3, 0usize..3, 0usize..3, 0usize..3),
        (0usize..3, 0usize..3, 0usize..3),
        (0usize..4, 0usize..3),
        0usize..3,
        (0usize..4, 0usize..4, 0usize..4),
    )
        .prop_map(
            |(seed, n_sites, unreachable, wd, ta, http, breakage, mix)| PopulationConfig {
                seed,
                n_sites,
                unreachable_sites: unreachable,
                webdriver_visible: wd,
                template_visible: ta,
                silent_http: http,
                breakage_sites: breakage,
                scenarios: ScenarioMix {
                    cookie_banner: mix.0,
                    lazy_content: mix.1,
                    spa_mutation: mix.2,
                },
                ..PopulationConfig::default()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Concatenating every lazily generated shard reproduces the eager
    /// population byte for byte, whatever the shard size.
    #[test]
    fn lazy_shards_equal_eager_population(
        config in arb_config(),
        shard_size in 1usize..300,
    ) {
        let eager = generate_population(&config);
        let shards = PopulationShards::with_shard_size(&config, shard_size);
        prop_assert_eq!(
            shards.n_shards(),
            config.n_sites.div_ceil(shard_size.max(1))
        );
        let lazy: Vec<_> = (0..shards.n_shards())
            .flat_map(|k| shards.generate_shard(k))
            .collect();
        prop_assert_eq!(lazy, eager);
    }

    /// A single shard materialised in isolation — no other shard ever
    /// generated — still equals its slice of the eager output: shards
    /// are independent, not merely order-insensitive.
    #[test]
    fn any_single_shard_matches_its_eager_slice(
        config in arb_config(),
        shard_size in 1usize..300,
        pick in 0usize..64,
    ) {
        let eager = generate_population(&config);
        let shards = PopulationShards::with_shard_size(&config, shard_size);
        let k = pick % shards.n_shards();
        let range = shards.shard_range(k);
        prop_assert_eq!(shards.generate_shard(k), &eager[range]);
    }
}
