//! Pristine-world snapshots: build each browser flavour's JS world once,
//! stamp per-visit copies by cheap clone.
//!
//! A campaign at the paper's scale (1,000 sites × 8 visits × 2 machines)
//! re-ran `build_firefox_world` ~16,000 times, reconstructing every
//! prototype chain and descriptor from scratch. World construction is
//! fully deterministic and consumes **no RNG**, so a clone of a built
//! world is observably identical to a fresh build (proved by the
//! differential proptest in `hlisa-jsom`), and the realm's atom/shape
//! tables are `Arc`-shared copy-on-write — a stamp is little more than a
//! vector clone. This module caches one pristine [`World`] per flavour
//! (plus the spoofed-extension variant) behind [`OnceLock`]s.

use hlisa_jsom::{build_firefox_world, BrowserFlavor, World};
use hlisa_spoof::SpoofingExtension;
use std::sync::OnceLock;

/// One immutable pristine world, stamped out per visit.
#[derive(Debug, Clone)]
pub struct WorldSnapshot {
    pristine: World,
}

impl WorldSnapshot {
    /// Builds the snapshot for a flavour.
    pub fn build(flavor: BrowserFlavor) -> Self {
        Self {
            pristine: build_firefox_world(flavor),
        }
    }

    /// Builds the snapshot for a flavour, then applies a one-time setup
    /// step (e.g. injecting the spoofing extension) before freezing it.
    pub fn build_with(flavor: BrowserFlavor, setup: impl FnOnce(&mut World)) -> Self {
        let mut pristine = build_firefox_world(flavor);
        setup(&mut pristine);
        Self { pristine }
    }

    /// Borrows the pristine world (read-only uses need no stamp).
    pub fn world(&self) -> &World {
        &self.pristine
    }

    /// Stamps a fresh, independently mutable copy of the pristine world.
    pub fn stamp(&self) -> World {
        self.pristine.clone()
    }
}

/// Lazily-built snapshots for every flavour a crawl can need. Each slot is
/// built at most once per cache (i.e. once per `DetectorRuntime`, once per
/// crawl worker) on first use.
#[derive(Debug, Clone, Default)]
pub struct WorldSnapshotCache {
    regular: OnceLock<WorldSnapshot>,
    webdriver: OnceLock<WorldSnapshot>,
    headless: OnceLock<WorldSnapshot>,
    /// WebDriver Firefox with the OpenWPM spoofing extension already
    /// injected — injection is deterministic, so stamping the injected
    /// world is identical to injecting into a fresh stamp.
    spoofed_webdriver: OnceLock<WorldSnapshot>,
}

impl WorldSnapshotCache {
    /// An empty cache; worlds are built on first request.
    pub fn new() -> Self {
        Self::default()
    }

    /// The snapshot for a plain (un-spoofed) flavour.
    pub fn snapshot(&self, flavor: BrowserFlavor) -> &WorldSnapshot {
        let slot = match flavor {
            BrowserFlavor::RegularFirefox => &self.regular,
            BrowserFlavor::WebDriverFirefox => &self.webdriver,
            BrowserFlavor::HeadlessFirefox => &self.headless,
        };
        slot.get_or_init(|| WorldSnapshot::build(flavor))
    }

    /// The snapshot for WebDriver Firefox with the paper's spoofing
    /// extension injected.
    pub fn spoofed_webdriver(&self) -> &WorldSnapshot {
        self.spoofed_webdriver.get_or_init(|| {
            WorldSnapshot::build_with(BrowserFlavor::WebDriverFirefox, |world| {
                // A failed injection degrades to the un-injected world:
                // spoofing is simply absent, so detection fires and the
                // gap is visible in campaign results instead of panicking
                // every crawl worker sharing this cache.
                let _ = SpoofingExtension::paper_default().inject(world);
            })
        })
    }

    /// Stamps a per-visit world for a plain flavour.
    pub fn stamp(&self, flavor: BrowserFlavor) -> World {
        self.snapshot(flavor).stamp()
    }

    /// Stamps a per-visit world with the spoofing extension in place.
    pub fn stamp_spoofed_webdriver(&self) -> World {
        self.spoofed_webdriver().stamp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlisa_jsom::Template;

    #[test]
    fn stamp_is_template_identical_to_fresh_build() {
        let cache = WorldSnapshotCache::new();
        for flavor in [
            BrowserFlavor::RegularFirefox,
            BrowserFlavor::WebDriverFirefox,
            BrowserFlavor::HeadlessFirefox,
        ] {
            let mut stamped = cache.stamp(flavor);
            let mut fresh = build_firefox_world(flavor);
            let ta = Template::capture(&mut stamped.realm, stamped.window, "window", 3);
            let tb = Template::capture(&mut fresh.realm, fresh.window, "window", 3);
            assert!(ta.diff(&tb).is_empty(), "{flavor:?} stamp diverged");
        }
    }

    #[test]
    fn spoofed_stamp_matches_inject_after_build() {
        let cache = WorldSnapshotCache::new();
        let mut stamped = cache.stamp_spoofed_webdriver();
        let mut fresh = build_firefox_world(BrowserFlavor::WebDriverFirefox);
        SpoofingExtension::paper_default()
            .inject(&mut fresh)
            .expect("extension injects");
        let ta = Template::capture(&mut stamped.realm, stamped.window, "window", 3);
        let tb = Template::capture(&mut fresh.realm, fresh.window, "window", 3);
        assert!(ta.diff(&tb).is_empty());
    }

    #[test]
    fn stamps_are_independent() {
        let cache = WorldSnapshotCache::new();
        let mut a = cache.stamp(BrowserFlavor::WebDriverFirefox);
        let b = cache.stamp(BrowserFlavor::WebDriverFirefox);
        // Mutating one stamp must not leak into another.
        let nav = a.navigator;
        a.realm.set_own(
            nav,
            "tampered",
            hlisa_jsom::PropertyDescriptor::plain(hlisa_jsom::Value::Bool(true)),
        );
        assert!(a.realm.has_own(a.navigator, "tampered"));
        assert!(!b.realm.has_own(b.navigator, "tampered"));
        assert!(!cache
            .snapshot(BrowserFlavor::WebDriverFirefox)
            .world()
            .realm
            .has_own(b.navigator, "tampered"));
    }
}
