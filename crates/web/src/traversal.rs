//! Site traversal — the third web-bot detection vector (§1).
//!
//! "Crucially, mitigating site traversal — the path an automated browser
//! takes over a website — cannot be solved generically, as such paths
//! depend on the study being executed." This module demonstrates why: it
//! models per-site page graphs, three traversal strategies (the
//! exhaustive sweep measurement studies need, a depth-limited variant,
//! and an interest-driven human random walk), and a navigational-pattern
//! detector in the style of Tan & Kumar (2002).
//!
//! The takeaway reproduced in the tests: HLISA-grade *interaction* does
//! nothing for a crawler whose *itinerary* is exhaustive — the traversal
//! detector flags it anyway, which is exactly why the paper scopes HLISA
//! to fingerprint and interaction only.

use hlisa_sim::SimContext;
use hlisa_stats::descriptive::{coefficient_of_variation, mean};
use hlisa_stats::LogNormal;
use rand::Rng;

/// A page in a site graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Page {
    /// Page index within the site.
    pub id: usize,
    /// Outgoing links (page indices), in on-page order.
    pub links: Vec<usize>,
    /// Relative "interestingness" weight for human browsing.
    pub appeal: f64,
}

/// A site's internal link graph.
#[derive(Debug, Clone, PartialEq)]
pub struct PageGraph {
    /// Pages; index 0 is the landing page.
    pub pages: Vec<Page>,
}

impl PageGraph {
    /// Generates a deterministic site graph with `n` pages: a home page
    /// linking broadly, interior pages linking sparsely.
    pub fn generate(seed: u64, n: usize) -> Self {
        assert!(n >= 1, "a site has at least a landing page");
        let mut ctx = SimContext::new(seed).fork("page-graph", n as u64);
        let rng = ctx.stream("graph");
        let mut pages = Vec::with_capacity(n);
        for id in 0..n {
            let fanout = if id == 0 {
                ((n - 1) * 3 / 4).max(1).min(n.saturating_sub(1))
            } else {
                rng.gen_range(1..=4.min(n))
            };
            let mut links = Vec::new();
            let mut guard = 0;
            while links.len() < fanout && guard < 100 {
                let t = rng.gen_range(0..n);
                if t != id && !links.contains(&t) {
                    links.push(t);
                }
                guard += 1;
            }
            pages.push(Page {
                id,
                links,
                appeal: rng.gen_range(0.2..1.0),
            });
        }
        PageGraph { pages }
    }

    /// Number of pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True when the graph has no pages (never for generated graphs).
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }
}

/// One visited page in a traversal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraversalStep {
    /// Page visited.
    pub page: usize,
    /// Arrival time (ms since session start).
    pub arrival_ms: f64,
    /// Dwell time on the page (ms).
    pub dwell_ms: f64,
}

/// A full traversal trace.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraversalTrace {
    /// Steps in visit order.
    pub steps: Vec<TraversalStep>,
}

impl TraversalTrace {
    /// Fraction of the site's pages visited.
    pub fn coverage(&self, graph: &PageGraph) -> f64 {
        let mut seen: Vec<usize> = self.steps.iter().map(|s| s.page).collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len() as f64 / graph.len() as f64
    }

    /// Dwell times (ms).
    pub fn dwells(&self) -> Vec<f64> {
        self.steps.iter().map(|s| s.dwell_ms).collect()
    }
}

/// How a client walks a site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraversalStrategy {
    /// Visit every page breadth-first in link order with a fixed dwell —
    /// what a measurement crawler needs to do.
    ExhaustiveBfs {
        /// Constant per-page dwell (ms).
        dwell_ms: f64,
    },
    /// Breadth-first but stopping after `max_pages` pages.
    DepthLimited {
        /// Constant per-page dwell (ms).
        dwell_ms: f64,
        /// Page budget.
        max_pages: usize,
    },
    /// An interest-driven random walk with heavy-tailed dwell times and
    /// early abandonment — how people actually browse.
    HumanBrowse,
}

/// Runs a traversal over a graph.
pub fn traverse(graph: &PageGraph, strategy: TraversalStrategy, seed: u64) -> TraversalTrace {
    let mut ctx = SimContext::new(seed).fork("traverse", 0);
    let rng = ctx.stream("traverse");
    let mut trace = TraversalTrace::default();
    let mut t = 0.0f64;
    match strategy {
        TraversalStrategy::ExhaustiveBfs { dwell_ms }
        | TraversalStrategy::DepthLimited { dwell_ms, .. } => {
            let budget = match strategy {
                TraversalStrategy::DepthLimited { max_pages, .. } => max_pages,
                _ => graph.len(),
            };
            let mut queue = vec![0usize];
            let mut seen = vec![false; graph.len()];
            seen[0] = true;
            while let Some(page) = queue.pop() {
                trace.steps.push(TraversalStep {
                    page,
                    arrival_ms: t,
                    dwell_ms,
                });
                t += dwell_ms;
                if trace.steps.len() >= budget {
                    break;
                }
                // Enqueue links in on-page order (front of a FIFO).
                for &l in &graph.pages[page].links {
                    if !seen[l] {
                        seen[l] = true;
                        queue.insert(0, l);
                    }
                }
            }
        }
        TraversalStrategy::HumanBrowse => {
            let dwell_dist = LogNormal::from_mean_std(14_000.0, 16_000.0);
            let mut page = 0usize;
            loop {
                let dwell = dwell_dist.sample(rng).max(800.0);
                trace.steps.push(TraversalStep {
                    page,
                    arrival_ms: t,
                    dwell_ms: dwell,
                });
                t += dwell + rng.gen_range(300.0..1_500.0);
                // People leave early and rarely sweep a whole site.
                if rng.gen_bool(0.22) || trace.steps.len() >= graph.len() {
                    break;
                }
                let links = &graph.pages[page].links;
                if links.is_empty() {
                    break;
                }
                // Interest-weighted choice among the links.
                let weights: Vec<f64> = links.iter().map(|l| graph.pages[*l].appeal).collect();
                let total: f64 = weights.iter().sum();
                let mut pick = rng.gen_range(0.0..total);
                let mut chosen = links[0];
                for (l, w) in links.iter().zip(&weights) {
                    if pick < *w {
                        chosen = *l;
                        break;
                    }
                    pick -= w;
                }
                page = chosen;
            }
        }
    }
    trace
}

/// Navigational-pattern bot verdict (Tan & Kumar style features).
#[derive(Debug, Clone, PartialEq)]
pub struct TraversalVerdict {
    /// True when the itinerary looks automated.
    pub is_bot: bool,
    /// Which features fired.
    pub signals: Vec<String>,
}

/// Judges a traversal trace against human navigational patterns.
pub fn judge_traversal(graph: &PageGraph, trace: &TraversalTrace) -> TraversalVerdict {
    let mut signals = Vec::new();
    if trace.steps.len() >= 4 {
        let dwells = trace.dwells();
        // Metronomic dwell: humans' page dwell is heavy-tailed (CV ≈ 1).
        if coefficient_of_variation(&dwells) < 0.15 {
            signals.push(format!(
                "constant dwell times (cv {:.2})",
                coefficient_of_variation(&dwells)
            ));
        }
        // Inhumanly brief average reading time.
        if mean(&dwells) < 2_500.0 {
            signals.push(format!("mean dwell {:.0} ms", mean(&dwells)));
        }
    }
    // Exhaustive coverage of a non-trivial site.
    if graph.len() >= 8 && trace.coverage(graph) > 0.9 {
        signals.push(format!(
            "visited {:.0}% of the site",
            trace.coverage(graph) * 100.0
        ));
    }
    TraversalVerdict {
        is_bot: !signals.is_empty(),
        signals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> PageGraph {
        PageGraph::generate(7, 24)
    }

    #[test]
    fn graph_generation_is_deterministic_and_connected_enough() {
        let a = PageGraph::generate(1, 16);
        let b = PageGraph::generate(1, 16);
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        assert!(a.pages[0].links.len() >= 8, "home page links broadly");
    }

    #[test]
    fn exhaustive_bfs_covers_reachable_pages() {
        let g = graph();
        let t = traverse(
            &g,
            TraversalStrategy::ExhaustiveBfs { dwell_ms: 1_200.0 },
            1,
        );
        assert!(t.coverage(&g) > 0.8, "coverage {}", t.coverage(&g));
        // Constant dwell by construction.
        assert!(coefficient_of_variation(&t.dwells()) < 1e-9);
    }

    #[test]
    fn human_browse_is_partial_and_heavy_tailed() {
        let g = graph();
        // Aggregate across sessions for stable statistics.
        let mut all_dwells = Vec::new();
        let mut coverages = Vec::new();
        for seed in 0..24 {
            let t = traverse(&g, TraversalStrategy::HumanBrowse, seed);
            coverages.push(t.coverage(&g));
            all_dwells.extend(t.dwells());
        }
        assert!(mean(&coverages) < 0.6, "humans rarely sweep a site");
        assert!(coefficient_of_variation(&all_dwells) > 0.5);
        assert!(mean(&all_dwells) > 4_000.0);
    }

    #[test]
    fn detector_flags_crawlers_not_humans() {
        let g = graph();
        let bot = traverse(
            &g,
            TraversalStrategy::ExhaustiveBfs { dwell_ms: 1_200.0 },
            2,
        );
        let v = judge_traversal(&g, &bot);
        assert!(v.is_bot, "exhaustive sweep must be flagged");

        let mut human_flags = 0;
        for seed in 0..20 {
            let h = traverse(&g, TraversalStrategy::HumanBrowse, seed);
            if judge_traversal(&g, &h).is_bot {
                human_flags += 1;
            }
        }
        assert!(human_flags <= 2, "{human_flags}/20 humans flagged");
    }

    #[test]
    fn depth_limit_trades_coverage_for_stealth() {
        let g = graph();
        let limited = traverse(
            &g,
            TraversalStrategy::DepthLimited {
                dwell_ms: 9_000.0,
                max_pages: 4,
            },
            3,
        );
        assert!(limited.coverage(&g) < 0.3);
        // Still catchable on dwell uniformity, but not on coverage.
        let v = judge_traversal(&g, &limited);
        assert!(v.signals.iter().all(|s| !s.contains('%')));
        let _ = v;
    }

    #[test]
    fn interaction_quality_cannot_fix_an_exhaustive_itinerary() {
        // The §1 point: traversal is orthogonal to interaction. Even a
        // crawler with perfect (human) dwell-time *statistics* is flagged
        // when it sweeps the whole site.
        let g = graph();
        let mut ctx = SimContext::new(9);
        let rng = ctx.stream("traverse");
        let dwell = hlisa_stats::LogNormal::from_mean_std(14_000.0, 16_000.0);
        let mut trace = TraversalTrace::default();
        let mut t = 0.0;
        for page in 0..g.len() {
            let d = dwell.sample(rng).max(800.0);
            trace.steps.push(TraversalStep {
                page,
                arrival_ms: t,
                dwell_ms: d,
            });
            t += d;
        }
        let v = judge_traversal(&g, &trace);
        assert!(v.is_bot);
        assert!(v.signals.iter().any(|s| s.contains('%')), "{:?}", v.signals);
    }
}
