//! Lazy sharded population generation.
//!
//! `generate_population` materialises the whole `Vec<Site>` before any
//! visit happens — fine at the paper's 1,000 sites, prohibitive at the
//! 100K–1M scale the campaign engine targets. [`PopulationShards`] splits
//! the population into fixed-size shards any of which can be materialised
//! independently, holding only bookkeeping (one RNG snapshot and a role
//! list per shard) between materialisations.
//!
//! **Why snapshots, not re-seeded forks.** The obvious sharding — fork the
//! seed tree per shard (`derive_seed(seed, "shard", k)`) — would mint a
//! fresh bitstream per shard and change every site byte relative to the
//! eager path, breaking the campaign golden hashes and every
//! population-sensitive statistical test. Instead the constructor runs a
//! cheap *skeleton pass* over the one canonical `"population"` stream:
//! it performs exactly the draws the eager generator performs (via the
//! same shared helpers), discards the values, and clones the 32-byte RNG
//! state at each shard boundary. Materialising shard `k` then replays the
//! eager generator's own draws from that snapshot — bit-identical by
//! construction, zero extra draws, no new stream name to register.
//!
//! The role deal (shuffle + cursor) is inherently global — it permutes all
//! site indices — so the constructor buckets each dealt `(index, role)`
//! pair into its shard once, up front. Roles are `Copy` and rare
//! (config-bounded counts), so the buckets stay tiny.

use crate::population::{
    apply_role, deal_roles, draw_site_attrs, materialise_site, PopulationConfig, SiteRole,
};
use crate::site::Site;
use hlisa_sim::SimContext;
use rand::rngs::SmallRng;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default shard size: big enough to amortise per-shard overhead, small
/// enough that a worker's resident set stays a few hundred sites.
pub const DEFAULT_SHARD_SIZE: usize = 256;

/// Estimated heap bytes of a materialised site slice (struct + domain
/// string) — the peak-RSS proxy the scaling benchmark reports.
pub fn sites_bytes(sites: &[Site]) -> usize {
    sites
        .iter()
        .map(|s| std::mem::size_of::<Site>() + s.domain.len())
        .sum()
}

/// A lazily materialisable sharding of one population.
///
/// Shard-generated sites are bit-identical to the corresponding slice of
/// [`crate::generate_population`]'s output, including role assignment and
/// scenario deals (differential-tested, plus a proptest over arbitrary
/// shard sizes, site counts, and scenario mixes).
#[derive(Debug)]
pub struct PopulationShards {
    config: PopulationConfig,
    shard_size: usize,
    /// `"population"` stream state at the first draw of each shard.
    entry_rngs: Vec<SmallRng>,
    /// Per-shard dealt roles as `(offset within shard, role)`.
    roles: Vec<Vec<(u32, SiteRole)>>,
    /// Shards currently materialised through [`Self::with_shard`].
    resident: AtomicUsize,
    /// High-water mark of `resident` — proves laziness under parallelism.
    peak_resident: AtomicUsize,
}

impl PopulationShards {
    /// Shards `config`'s population at [`DEFAULT_SHARD_SIZE`].
    pub fn new(config: &PopulationConfig) -> Self {
        Self::with_shard_size(config, DEFAULT_SHARD_SIZE)
    }

    /// Shards `config`'s population into shards of `shard_size` sites
    /// (clamped to ≥ 1; the last shard may be shorter).
    pub fn with_shard_size(config: &PopulationConfig, shard_size: usize) -> Self {
        let shard_size = shard_size.max(1);
        let mut ctx = SimContext::new(config.seed);
        let rng = ctx.stream("population");

        // Skeleton pass: the eager generator's exact draws, values
        // discarded, RNG state snapshotted at each shard boundary. No
        // `Site` (and in particular no domain `String`) is built here.
        let n_shards = config.n_sites.div_ceil(shard_size);
        let mut entry_rngs = Vec::with_capacity(n_shards);
        for i in 0..config.n_sites {
            if i % shard_size == 0 {
                entry_rngs.push(rng.clone());
            }
            let _ = draw_site_attrs(config, rng);
        }

        // The global shuffle + deal, bucketed per shard.
        let mut roles: Vec<Vec<(u32, SiteRole)>> = vec![Vec::new(); n_shards];
        deal_roles(config, rng, |i, role| {
            roles[i / shard_size].push(((i % shard_size) as u32, role));
        });

        PopulationShards {
            config: config.clone(),
            shard_size,
            entry_rngs,
            roles,
            resident: AtomicUsize::new(0),
            peak_resident: AtomicUsize::new(0),
        }
    }

    /// The sharded config.
    pub fn config(&self) -> &PopulationConfig {
        &self.config
    }

    /// Total sites across all shards.
    pub fn n_sites(&self) -> usize {
        self.config.n_sites
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.entry_rngs.len()
    }

    /// Sites per shard (the last shard may hold fewer).
    pub fn shard_size(&self) -> usize {
        self.shard_size
    }

    /// The site-index range shard `k` covers.
    pub fn shard_range(&self, k: usize) -> Range<usize> {
        let lo = k * self.shard_size;
        let hi = (lo + self.shard_size).min(self.config.n_sites);
        lo..hi
    }

    /// Materialises shard `k`: bit-identical to
    /// `generate_population(config)[shard_range(k)]`.
    pub fn generate_shard(&self, k: usize) -> Vec<Site> {
        let range = self.shard_range(k);
        let mut rng = self.entry_rngs[k].clone();
        let config = &self.config;
        let mut sites: Vec<Site> = range
            .map(|i| {
                let attrs = draw_site_attrs(config, &mut rng);
                materialise_site(config, i, attrs)
            })
            .collect();
        for &(offset, role) in &self.roles[k] {
            apply_role(&mut sites[offset as usize], role);
        }
        sites
    }

    /// Runs `f` over shard `k`'s sites (`f(first site index, sites)`),
    /// materialising them only for the duration of the call. Maintains the
    /// residency gauges so callers can *prove* at most one shard per
    /// worker is live at a time.
    pub fn with_shard<T>(&self, k: usize, f: impl FnOnce(usize, &[Site]) -> T) -> T {
        let live = self.resident.fetch_add(1, Ordering::SeqCst) + 1;
        self.peak_resident.fetch_max(live, Ordering::SeqCst);
        let sites = self.generate_shard(k);
        let out = f(self.shard_range(k).start, &sites);
        drop(sites);
        self.resident.fetch_sub(1, Ordering::SeqCst);
        out
    }

    /// Shards currently materialised via [`Self::with_shard`].
    pub fn resident_shards(&self) -> usize {
        self.resident.load(Ordering::SeqCst)
    }

    /// High-water mark of concurrently materialised shards.
    pub fn peak_resident_shards(&self) -> usize {
        self.peak_resident.load(Ordering::SeqCst)
    }

    /// Bytes of standing bookkeeping (RNG snapshots + role buckets) — what
    /// the lazy layer holds *instead of* the full population.
    pub fn bookkeeping_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.entry_rngs.len() * std::mem::size_of::<SmallRng>()
            + self
                .roles
                .iter()
                .map(|bucket| bucket.len() * std::mem::size_of::<(u32, SiteRole)>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::ScenarioMix;
    use crate::population::generate_population;

    fn scenario_config() -> PopulationConfig {
        PopulationConfig {
            n_sites: 333,
            scenarios: ScenarioMix {
                cookie_banner: 5,
                lazy_content: 4,
                spa_mutation: 3,
            },
            ..PopulationConfig::default()
        }
    }

    #[test]
    fn shards_reassemble_eager_population_bit_for_bit() {
        for cfg in [PopulationConfig::default(), scenario_config()] {
            let eager = generate_population(&cfg);
            for shard_size in [1usize, 7, 64, 256, 1_000, 5_000] {
                let shards = PopulationShards::with_shard_size(&cfg, shard_size);
                let lazy: Vec<_> = (0..shards.n_shards())
                    .flat_map(|k| shards.generate_shard(k))
                    .collect();
                assert_eq!(lazy, eager, "shard_size {shard_size}");
            }
        }
    }

    #[test]
    fn shards_generate_out_of_order_and_independently() {
        let cfg = scenario_config();
        let eager = generate_population(&cfg);
        let shards = PopulationShards::with_shard_size(&cfg, 50);
        // Walk shards back to front; each must still match its slice.
        for k in (0..shards.n_shards()).rev() {
            let range = shards.shard_range(k);
            assert_eq!(shards.generate_shard(k), eager[range], "shard {k}");
        }
        // Re-generating a shard is idempotent (entry state is cloned).
        assert_eq!(shards.generate_shard(2), shards.generate_shard(2));
    }

    #[test]
    fn shard_ranges_partition_the_population() {
        let cfg = PopulationConfig {
            n_sites: 1_001,
            ..PopulationConfig::default()
        };
        let shards = PopulationShards::with_shard_size(&cfg, 100);
        assert_eq!(shards.n_shards(), 11);
        let mut next = 0;
        for k in 0..shards.n_shards() {
            let r = shards.shard_range(k);
            assert_eq!(r.start, next);
            next = r.end;
        }
        assert_eq!(next, 1_001);
        assert_eq!(shards.shard_range(10).len(), 1);
    }

    #[test]
    fn residency_gauges_track_materialised_shards() {
        let shards = PopulationShards::with_shard_size(&PopulationConfig::default(), 100);
        assert_eq!(shards.peak_resident_shards(), 0);
        shards.with_shard(3, |base, sites| {
            assert_eq!(base, 300);
            assert_eq!(sites.len(), 100);
            assert_eq!(shards.resident_shards(), 1);
            // Nesting (never done by the engine, but legal) peaks at 2.
            shards.with_shard(4, |_, _| {
                assert_eq!(shards.resident_shards(), 2);
            });
        });
        assert_eq!(shards.resident_shards(), 0);
        assert_eq!(shards.peak_resident_shards(), 2);
    }

    #[test]
    fn bookkeeping_is_small_relative_to_the_population() {
        let cfg = PopulationConfig {
            n_sites: 10_000,
            ..PopulationConfig::default()
        };
        let shards = PopulationShards::new(&cfg);
        let eager = generate_population(&cfg);
        let full = sites_bytes(&eager);
        let standing = shards.bookkeeping_bytes();
        assert!(
            standing * 10 < full,
            "bookkeeping {standing}B not small vs population {full}B"
        );
    }

    #[test]
    fn degenerate_shard_sizes_are_clamped() {
        let cfg = PopulationConfig {
            n_sites: 5,
            ..PopulationConfig::default()
        };
        let shards = PopulationShards::with_shard_size(&cfg, 0);
        assert_eq!(shards.shard_size(), 1);
        assert_eq!(shards.n_shards(), 5);
        let lazy: Vec<_> = (0..5).flat_map(|k| shards.generate_shard(k)).collect();
        assert_eq!(lazy, generate_population(&cfg));
    }
}
