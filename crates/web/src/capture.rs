//! The capture plane: what a visit *emits* versus what the instrument
//! *records*.
//!
//! The legacy pipeline hands [`VisitOutcome`]s to the crawler directly —
//! implicitly assuming a perfect instrument. Krumnow et al. (PAPERS.md)
//! show that assumption is the weak point of real crawls: OpenWPM's
//! instrumentation attaches late, drops events, and partially captures
//! visits, and the resulting records *look* clean. This module makes the
//! instrument explicit: a visit's ground-truth outcome is flattened into
//! a stream of timestamped [`CaptureEvent`]s ([`emit_capture_events`]),
//! the stream crosses an observer channel (possibly degraded by an
//! `hlisa_sim::LossSchedule`), and a [`CaptureRecorder`] on the far side
//! reconstructs the outcome from whatever arrived.
//!
//! Two properties are load-bearing and pinned by tests:
//!
//! 1. **Emission is RNG-free.** Events are a pure function of the final
//!    outcome and the site's [`VisitTimeline`], so wiring capture into a
//!    campaign cannot perturb any draw sequence — rate-0 captured runs
//!    stay bit-identical to the legacy runners.
//! 2. **Reconstruction inverts emission.** For every outcome shape a
//!    visit can produce, `reconstruct(emit(outcome)) == outcome`; a
//!    pristine channel therefore records exactly the ground truth, and
//!    any drift in a lossy campaign is attributable to the loss plane
//!    alone.

use crate::site::Site;
use crate::visit::{VisitOutcome, VisitTimeline, VisualOutcome};
use hlisa_sim::{CounterSet, Observer};

/// One timestamped observation the instrumentation can record about a
/// visit. The stream a visit emits is ordered; HTTP responses partition
/// by party on reconstruction, so interleaving across parties does not
/// carry information.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CaptureEvent {
    /// Navigation committed: the site answered and the document loaded.
    Committed,
    /// One HTTP response observed.
    Http {
        /// Whether the response came from a third-party origin.
        third_party: bool,
        /// The response status code.
        status: u16,
    },
    /// One interaction-chain step completed.
    Step {
        /// 0-based index of the completed step.
        index: u32,
    },
    /// The validation oracle's verdict (ground truth the study keeps
    /// alongside the crawl record).
    Detected {
        /// Whether the site's detector fired on this visit.
        by_detector: bool,
    },
    /// The screenshot-review verdict for the visit.
    Visual {
        /// What the screenshot showed.
        outcome: VisualOutcome,
    },
    /// The visit ran to completion (counted as successful).
    Completed,
}

/// Flattens a visit's final ground-truth `outcome` into the event stream
/// its instrumentation would observe, with timestamps anchored to the
/// site's deterministic [`VisitTimeline`] (fractions of `deadline_ms`
/// are what a `LossSchedule` operates on).
///
/// A never-reached visit emits nothing — there was no connection for an
/// instrument to observe. HTTP responses trickle evenly through the
/// interaction window; step events land at their timeline positions; the
/// terminal verdicts (`Detected`, `Visual`, `Completed`) land at the
/// visit's end — the deadline for visits that ran into it, the end of
/// the planned chain otherwise.
pub fn emit_capture_events(
    site: &Site,
    outcome: &VisitOutcome,
    deadline_ms: f64,
) -> Vec<(f64, CaptureEvent)> {
    if !outcome.reached {
        return Vec::new();
    }
    let tl = VisitTimeline::for_site(site);
    let committed = (tl.connect_ms + tl.load_ms).min(deadline_ms);
    let chain_end = (committed + f64::from(tl.steps_planned) * tl.step_ms).min(deadline_ms);
    let tail = match outcome.visual {
        // Timeouts and stalls hold the visit until the deadline fires.
        VisualOutcome::Timeout | VisualOutcome::Stalled => deadline_ms,
        _ => chain_end,
    };

    let n_http = outcome.first_party.len() + outcome.third_party.len();
    let mut events = Vec::with_capacity(n_http + tl.steps_planned as usize + 4);
    events.push((committed, CaptureEvent::Committed));

    // Responses arrive spread evenly across the observable window.
    let http_at = |i: usize| committed + (tail - committed) * (i + 1) as f64 / (n_http + 1) as f64;
    let mut slot = 0;
    for &status in &outcome.first_party {
        events.push((
            http_at(slot),
            CaptureEvent::Http {
                third_party: false,
                status,
            },
        ));
        slot += 1;
    }
    for &status in &outcome.third_party {
        events.push((
            http_at(slot),
            CaptureEvent::Http {
                third_party: true,
                status,
            },
        ));
        slot += 1;
    }

    if outcome.successful {
        for index in 0..tl.steps_planned {
            let at = (committed + f64::from(index + 1) * tl.step_ms).min(deadline_ms);
            events.push((at, CaptureEvent::Step { index }));
        }
    }

    events.push((
        tail,
        CaptureEvent::Detected {
            by_detector: outcome.detected,
        },
    ));
    events.push((
        tail,
        CaptureEvent::Visual {
            outcome: outcome.visual,
        },
    ));
    if outcome.successful {
        events.push((tail, CaptureEvent::Completed));
    }
    events
}

/// Streaming [`Observer`] that rebuilds a [`VisitOutcome`] from whatever
/// [`CaptureEvent`]s survive the observer channel.
///
/// Fed a pristine stream it reproduces the ground truth exactly (the
/// round-trip invariant). Fed a degraded stream it records what a real
/// harness would have written down: a visit whose every event vanished
/// is indistinguishable from an unreachable site, a visit whose
/// `Completed` marker was lost looks failed, and a visit whose `Visual`
/// verdict was lost but whose completion survived looks *normal* — the
/// silently-clean corruption mode the reliability study quantifies.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CaptureRecorder {
    saw_any: bool,
    completed: bool,
    detected: bool,
    visual: Option<VisualOutcome>,
    first_party: Vec<u16>,
    third_party: Vec<u16>,
    // Per-kind tallies, materialized as `recorder.*` counters on demand:
    // the recorder runs once per emitted event of every captured visit,
    // so a name-keyed `CounterSet::add` per event is measurable campaign
    // overhead (see `WriteAheadObserver` for the same trade).
    committed: u64,
    http: u64,
    steps: u64,
    detections: u64,
    visuals: u64,
    completions: u64,
}

impl CaptureRecorder {
    /// A recorder that has seen nothing yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// The visit outcome this recorder would write to the crawl record.
    pub fn outcome(&self) -> VisitOutcome {
        if !self.saw_any {
            return VisitOutcome::unreached();
        }
        let visual = self.visual.unwrap_or(if self.completed {
            VisualOutcome::Normal
        } else {
            VisualOutcome::Timeout
        });
        VisitOutcome {
            reached: true,
            successful: self.completed,
            visual,
            first_party: self.first_party.clone(),
            third_party: self.third_party.clone(),
            detected: self.detected,
        }
    }
}

impl Observer<CaptureEvent> for CaptureRecorder {
    fn on_event(&mut self, _t_ms: f64, event: &CaptureEvent) {
        self.saw_any = true;
        match event {
            CaptureEvent::Committed => {
                self.committed += 1;
            }
            CaptureEvent::Http {
                third_party,
                status,
            } => {
                self.http += 1;
                if *third_party {
                    self.third_party.push(*status);
                } else {
                    self.first_party.push(*status);
                }
            }
            CaptureEvent::Step { .. } => {
                self.steps += 1;
            }
            CaptureEvent::Detected { by_detector } => {
                self.detections += 1;
                self.detected |= *by_detector;
            }
            CaptureEvent::Visual { outcome } => {
                self.visuals += 1;
                self.visual = Some(*outcome);
            }
            CaptureEvent::Completed => {
                self.completions += 1;
                self.completed = true;
            }
        }
    }

    fn counters(&self) -> CounterSet {
        let mut c = CounterSet::new();
        let total = self.committed
            + self.http
            + self.steps
            + self.detections
            + self.visuals
            + self.completions;
        for (name, n) in [
            ("recorder.events", total),
            ("recorder.committed", self.committed),
            ("recorder.http", self.http),
            ("recorder.steps", self.steps),
            ("recorder.detected", self.detections),
            ("recorder.visual", self.visuals),
            ("recorder.completed", self.completions),
        ] {
            if n > 0 {
                c.add(name, n);
            }
        }
        c
    }
}

/// Convenience: reconstructs the outcome a recorder fed `events` would
/// report.
pub fn reconstruct_outcome(events: &[(f64, CaptureEvent)]) -> VisitOutcome {
    let mut recorder = CaptureRecorder::new();
    for (t_ms, event) in events {
        recorder.on_event(*t_ms, event);
    }
    recorder.outcome()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::VisitError;
    use crate::population::{generate_population, PopulationConfig};
    use crate::visit::{simulate_visit, ClientKind, DetectorRuntime, DEFAULT_VISIT_DEADLINE_MS};
    use hlisa_sim::{LossSchedule, LossyObserver, SimContext, WriteAheadObserver};

    fn some_site() -> Site {
        generate_population(&PopulationConfig {
            n_sites: 1,
            ..PopulationConfig::default()
        })
        .remove(0)
    }

    #[test]
    fn every_error_shape_round_trips() {
        let site = some_site();
        let errors = [
            VisitError::Unreachable { site_down: true },
            VisitError::Unreachable { site_down: false },
            VisitError::PageLoadTimeout {
                deadline_ms: DEFAULT_VISIT_DEADLINE_MS,
            },
            VisitError::TransientNetwork { status: None },
            VisitError::TransientNetwork { status: Some(504) },
        ];
        for error in errors {
            let truth = error.to_outcome();
            let events = emit_capture_events(&site, &truth, DEFAULT_VISIT_DEADLINE_MS);
            assert_eq!(
                reconstruct_outcome(&events),
                truth,
                "{error:?} did not round-trip"
            );
        }
    }

    #[test]
    fn scenario_visuals_round_trip() {
        let site = some_site();
        for visual in [
            VisualOutcome::StuckOnOverlay,
            VisualOutcome::MissingLazyContent,
            VisualOutcome::StaleElement,
            VisualOutcome::BlockPage,
            VisualOutcome::NoAds,
        ] {
            let truth = VisitOutcome {
                reached: true,
                successful: true,
                visual,
                first_party: vec![200, 404, 200],
                third_party: vec![200, 302],
                detected: visual == VisualOutcome::BlockPage,
            };
            let events = emit_capture_events(&site, &truth, DEFAULT_VISIT_DEADLINE_MS);
            assert_eq!(reconstruct_outcome(&events), truth);
        }
    }

    #[test]
    fn simulated_population_round_trips() {
        let sites = generate_population(&PopulationConfig {
            n_sites: 60,
            unreachable_sites: 5,
            ..PopulationConfig::default()
        });
        let rt = DetectorRuntime::new();
        for client in [ClientKind::OpenWpm, ClientKind::OpenWpmSpoofed] {
            let mut ctx = SimContext::new(21);
            for site in &sites {
                let truth = simulate_visit(site, client, &rt, &mut ctx);
                let events = emit_capture_events(site, &truth, DEFAULT_VISIT_DEADLINE_MS);
                assert_eq!(
                    reconstruct_outcome(&events),
                    truth,
                    "{client:?} {} did not round-trip",
                    site.domain
                );
            }
        }
    }

    #[test]
    fn unreached_visits_emit_nothing_and_reconstruct_to_unreached() {
        let site = some_site();
        let truth = VisitOutcome::unreached();
        let events = emit_capture_events(&site, &truth, DEFAULT_VISIT_DEADLINE_MS);
        assert!(events.is_empty());
        assert_eq!(reconstruct_outcome(&events), truth);
    }

    #[test]
    fn event_times_stay_inside_the_deadline() {
        let site = some_site();
        let truth = VisitOutcome {
            reached: true,
            successful: true,
            visual: VisualOutcome::Normal,
            first_party: vec![200; 10],
            third_party: vec![200; 20],
            detected: false,
        };
        let events = emit_capture_events(&site, &truth, DEFAULT_VISIT_DEADLINE_MS);
        for (t, _) in &events {
            assert!((0.0..=DEFAULT_VISIT_DEADLINE_MS).contains(t));
        }
    }

    #[test]
    fn total_loss_is_indistinguishable_from_an_unreachable_site() {
        let site = some_site();
        let truth = VisitOutcome {
            reached: true,
            successful: true,
            visual: VisualOutcome::Normal,
            first_party: vec![200],
            third_party: vec![],
            detected: false,
        };
        let events = emit_capture_events(&site, &truth, DEFAULT_VISIT_DEADLINE_MS);
        // A channel that never attaches delivers nothing.
        let schedule = LossSchedule {
            attach_at: 1.1,
            ..LossSchedule::pristine()
        };
        let mut lossy =
            LossyObserver::new(CaptureRecorder::new(), schedule, DEFAULT_VISIT_DEADLINE_MS);
        for (t, e) in &events {
            lossy.on_event(*t, e);
        }
        assert_eq!(lossy.inner().outcome(), VisitOutcome::unreached());
    }

    #[test]
    fn losing_the_completed_marker_makes_a_clean_visit_look_failed() {
        let site = some_site();
        let truth = VisitOutcome {
            reached: true,
            successful: true,
            visual: VisualOutcome::Normal,
            first_party: vec![200, 200],
            third_party: vec![200],
            detected: false,
        };
        let events = emit_capture_events(&site, &truth, DEFAULT_VISIT_DEADLINE_MS);
        let mut recorder = CaptureRecorder::new();
        for (t, e) in &events {
            if !matches!(e, CaptureEvent::Completed) {
                recorder.on_event(*t, e);
            }
        }
        let observed = recorder.outcome();
        assert!(observed.reached && !observed.successful);
    }

    #[test]
    fn write_ahead_capture_recovers_the_pristine_record() {
        let sites = generate_population(&PopulationConfig {
            n_sites: 20,
            ..PopulationConfig::default()
        });
        let rt = DetectorRuntime::new();
        let mut ctx = SimContext::new(33);
        for site in &sites {
            let truth = simulate_visit(site, ClientKind::OpenWpm, &rt, &mut ctx);
            let events = emit_capture_events(site, &truth, DEFAULT_VISIT_DEADLINE_MS);
            // The instrument attaches only after the whole visit — the
            // worst late-attach case — yet write-ahead capture replays
            // the buffered stream and the record matches ground truth.
            let mut wal = WriteAheadObserver::detached(CaptureRecorder::new());
            for (t, e) in &events {
                wal.on_event(*t, e);
            }
            assert_eq!(wal.into_inner().outcome(), truth, "{}", site.domain);
        }
    }
}
