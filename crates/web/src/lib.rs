//! Synthetic web population for the §3.2 field evaluation.
//!
//! The paper crawls a random 1,000-site sample of the Tranco top-10K with
//! and without the spoofing extension and compares outcomes (Table 2,
//! Figure 4 / Appendix B). The live web is not available offline, so this
//! crate synthesises a site population whose *detector prevalence* matches
//! what the paper (and Jonker et al.) measured: bot detection with visible
//! reactions is rare (≈1.7 % of reached sites), mostly keyed on
//! `navigator.webdriver`, with occasional CAPTCHAs, hidden ad slots,
//! 403/503 responses, and the odd site that breaks under JS-level spoofing.
//!
//! Crucially, a visit does not *roll dice* to decide whether the client is
//! detected: it builds the client's real [`hlisa_jsom`] page world
//! (optionally injecting the real [`hlisa_spoof::SpoofingExtension`]) and
//! runs the site's actual detector ([`hlisa_detect::scan_fingerprint`] or
//! the template attack) against it. The crawl experiment therefore
//! exercises the same spoofing/detection code paths as §3.1.

pub mod capture;
pub mod dynamics;
pub mod outcome;
pub mod page;
pub mod population;
pub mod shards;
pub mod site;
pub mod snapshot;
pub mod traversal;
pub mod visit;

pub use capture::{emit_capture_events, reconstruct_outcome, CaptureEvent, CaptureRecorder};
pub use dynamics::{apply_scenario, ScenarioKind, ScenarioMix};
pub use outcome::{VisitError, VisitPhase, VisitProgress};
pub use page::{generate_page, GeneratedPage, PageStructure};
pub use population::{generate_population, PopulationConfig};
pub use shards::{sites_bytes, PopulationShards, DEFAULT_SHARD_SIZE};
pub use site::{DetectionMethod, Reaction, Site, SiteDetector};
pub use snapshot::{WorldSnapshot, WorldSnapshotCache};
pub use traversal::{judge_traversal, traverse, PageGraph, TraversalStrategy};
pub use visit::{
    simulate_visit, simulate_visit_attempt, simulate_visit_planned, ClientKind, PlanStats,
    VisitOutcome, VisitTimeline, VisualOutcome, DEFAULT_VISIT_DEADLINE_MS,
};
