//! Visit simulation: one browser instance loading one site once.
//!
//! Detection is *computed*, not sampled: the client's JS world is built
//! with [`hlisa_jsom`], the spoofing extension is (optionally) injected
//! with [`hlisa_spoof`], and the site's detector runs the real
//! [`hlisa_detect`] checks against that world.

use crate::site::{DetectionMethod, Reaction, Site};
use crate::snapshot::WorldSnapshotCache;
use hlisa_detect::{scan_fingerprint, TemplateAttackDetector};
use hlisa_jsom::{build_firefox_world, BrowserFlavor, World};
use hlisa_sim::SimContext;
use hlisa_spoof::SpoofingExtension;
use rand::Rng;

/// The crawling client flavour (the paper's two machines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClientKind {
    /// Stock OpenWPM: Selenium-automated Firefox, headful.
    OpenWpm,
    /// OpenWPM with the Proxy-based spoofing extension.
    OpenWpmSpoofed,
}

/// What the screenshot review of one visit would show.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VisualOutcome {
    /// Page rendered as for a regular visitor.
    Normal,
    /// A block page.
    BlockPage,
    /// A CAPTCHA interstitial.
    Captcha,
    /// All ad slots empty.
    NoAds,
    /// Some ad slots empty.
    FewerAds,
    /// Video player never starts.
    FrozenVideo,
    /// Page layout deformed (spoofing side-effect breakage).
    DeformedLayout,
    /// Site did not answer at all.
    Unreachable,
    /// Transient failure (timeout / flaky 5xx) — visit not counted as
    /// successful.
    TransientError,
}

/// Outcome of one visit.
#[derive(Debug, Clone, PartialEq)]
pub struct VisitOutcome {
    /// Whether the site answered.
    pub reached: bool,
    /// Whether the visit completed (reached and not transient-failed).
    pub successful: bool,
    /// Screenshot-level outcome.
    pub visual: VisualOutcome,
    /// First-party response status codes.
    pub first_party: Vec<u16>,
    /// Third-party response status codes.
    pub third_party: Vec<u16>,
    /// Ground truth: did the site's detector fire? (Not observable by the
    /// crawler; used for validation.)
    pub detected: bool,
}

/// Shared per-campaign detector state (the template reference is captured
/// once, like a deployed detector shipping a baseline) plus the pristine
/// world snapshots per-visit realms are stamped from.
#[derive(Debug, Clone)]
pub struct DetectorRuntime {
    template: TemplateAttackDetector,
    /// `Some` = stamp per-visit worlds from cached snapshots (the fast
    /// path); `None` = rebuild the world from scratch on every visit (the
    /// pre-snapshot behaviour, kept as the benchmark baseline and for the
    /// bit-identity test).
    worlds: Option<WorldSnapshotCache>,
}

impl DetectorRuntime {
    /// Builds the shared runtime with the world-snapshot cache enabled.
    pub fn new() -> Self {
        Self {
            template: TemplateAttackDetector::new(),
            worlds: Some(WorldSnapshotCache::new()),
        }
    }

    /// Builds a runtime that re-runs the world builders for every visit —
    /// the original per-visit cost model. Campaign output is bit-identical
    /// either way (world construction consumes no RNG); only throughput
    /// differs.
    pub fn without_world_cache() -> Self {
        Self {
            template: TemplateAttackDetector::new(),
            worlds: None,
        }
    }

    /// The client's page world for one visit: stamped from the snapshot
    /// cache when enabled, freshly built otherwise.
    fn visit_world(&self, client: ClientKind) -> World {
        match &self.worlds {
            Some(cache) => match client {
                ClientKind::OpenWpm => cache.stamp(BrowserFlavor::WebDriverFirefox),
                ClientKind::OpenWpmSpoofed => cache.stamp_spoofed_webdriver(),
            },
            None => fresh_client_world(client),
        }
    }
}

/// Builds a client world from scratch (the uncached path).
fn fresh_client_world(client: ClientKind) -> World {
    let mut world = build_firefox_world(BrowserFlavor::WebDriverFirefox);
    if client == ClientKind::OpenWpmSpoofed {
        SpoofingExtension::paper_default()
            .inject(&mut world)
            .expect("extension injects");
    }
    world
}

impl Default for DetectorRuntime {
    fn default() -> Self {
        Self::new()
    }
}

/// Simulates one visit of `client` to `site`, drawing from the context's
/// `"visit"` stream.
pub fn simulate_visit(
    site: &Site,
    client: ClientKind,
    runtime: &DetectorRuntime,
    ctx: &mut SimContext,
) -> VisitOutcome {
    simulate_visit_with(site, client, runtime, ctx.stream("visit"))
}

/// Like [`simulate_visit`], drawing from an explicit RNG stream.
pub fn simulate_visit_with<R: Rng + ?Sized>(
    site: &Site,
    client: ClientKind,
    runtime: &DetectorRuntime,
    rng: &mut R,
) -> VisitOutcome {
    if site.unreachable {
        return VisitOutcome {
            reached: false,
            successful: false,
            visual: VisualOutcome::Unreachable,
            first_party: Vec::new(),
            third_party: Vec::new(),
            detected: false,
        };
    }
    if rng.gen_bool(site.flaky_visit_prob) {
        return VisitOutcome {
            reached: true,
            successful: false,
            visual: VisualOutcome::TransientError,
            first_party: vec![if rng.gen_bool(0.5) { 500 } else { 504 }],
            third_party: Vec::new(),
            detected: false,
        };
    }

    // The client's real page world. The uncached runtime rebuilds it for
    // every visit (the original cost model); the cached runtime stamps it
    // from a snapshot, and only when a detector will actually run it —
    // both safe, because world acquisition consumes no RNG.
    let mut eager_world = if runtime.worlds.is_none() {
        Some(fresh_client_world(client))
    } else {
        None
    };
    let detected = match site.detector.map(|d| d.method) {
        None => false,
        Some(method) => {
            let mut world = eager_world
                .take()
                .unwrap_or_else(|| runtime.visit_world(client));
            match method {
                DetectionMethod::WebdriverFlag => scan_fingerprint(&mut world).is_bot,
                DetectionMethod::TemplateAttack => {
                    // Deep checks are rate-limited: the paper saw its
                    // surviving blocker fire "for a smaller subset of
                    // visits".
                    let runs_deep_check = rng.gen_bool(0.45);
                    let shallow = scan_fingerprint(&mut world).is_bot;
                    shallow || (runs_deep_check && runtime.template.is_tampered(&mut world))
                }
            }
        }
    };

    // Visual outcome.
    let mut visual = VisualOutcome::Normal;
    if detected {
        visual = match site.detector.expect("detected implies detector").reaction {
            Reaction::BlockPage => VisualOutcome::BlockPage,
            Reaction::Captcha => VisualOutcome::Captcha,
            Reaction::HideAllAds => VisualOutcome::NoAds,
            Reaction::ReduceAds => VisualOutcome::FewerAds,
            Reaction::FreezeVideo => VisualOutcome::FrozenVideo,
            Reaction::Http403 | Reaction::Http503 => VisualOutcome::Normal,
        };
    }
    // Spoofing-compatibility breakage is independent of detection.
    if client == ClientKind::OpenWpmSpoofed && site.breaks_under_spoofing {
        visual = if site.has_video {
            VisualOutcome::FrozenVideo
        } else {
            VisualOutcome::DeformedLayout
        };
    }

    // HTTP responses.
    let (first_party, third_party) = synthesize_http(site, detected, visual, rng);

    VisitOutcome {
        reached: true,
        successful: true,
        visual,
        first_party,
        third_party,
        detected,
    }
}

fn synthesize_http<R: Rng + ?Sized>(
    site: &Site,
    detected: bool,
    visual: VisualOutcome,
    rng: &mut R,
) -> (Vec<u16>, Vec<u16>) {
    let mut first = Vec::with_capacity(site.first_party_requests as usize);
    let mut third = Vec::with_capacity(site.third_party_requests as usize);

    let blockish = matches!(visual, VisualOutcome::BlockPage | VisualOutcome::Captcha);
    let reaction = site.detector.map(|d| d.reaction);
    // The per-site content hash feeding every slot's background code is
    // the same for all slots; hash the domain once per visit, not per
    // request.
    let site_hash = site_content_hash(site);

    for i in 0..site.first_party_requests {
        let code = if detected && blockish {
            // The main document always answers 403; of the subresources
            // the block page still references, most never load.
            if i == 0 || rng.gen_bool(0.6) {
                403
            } else {
                200
            }
        } else if detected && reaction == Some(Reaction::Http403) && rng.gen_bool(0.55) {
            403
        } else if detected && reaction == Some(Reaction::Http503) && rng.gen_bool(0.55) {
            503
        } else {
            background_code(site_hash, false, i, rng)
        };
        first.push(code);
    }

    let ad_suppression = matches!(visual, VisualOutcome::NoAds) || blockish;
    let partial_suppression = matches!(visual, VisualOutcome::FewerAds);
    for i in 0..site.third_party_requests {
        if ad_suppression {
            // Ad/tracker requests simply never happen.
            continue;
        }
        if partial_suppression && rng.gen_bool(0.5) {
            continue;
        }
        third.push(background_code(site_hash, true, i, rng));
    }
    (first, third)
}

/// Hash of the site's fixed content, shared by every request slot.
///
/// The bulk of a site's response mix is a property of its *content* (a
/// missing image 404s for every visitor alike), so the per-slot code is
/// deterministic in (site, slot); both crawl machines therefore observe
/// nearly identical background errors — exactly why the paper's paired
/// Wilcoxon test isolates the detection-induced differences. A small
/// per-visit chance of a transient 5xx models live-web dynamics (Fig. 4
/// only charts codes with more than 100 occurrences campaign-wide).
fn site_content_hash(site: &Site) -> u64 {
    let mut h = hlisa_stats::rngutil::splitmix64(u64::from(site.rank) ^ 0xace1);
    for b in site.domain.as_bytes() {
        h = hlisa_stats::rngutil::splitmix64(h ^ u64::from(*b));
    }
    h
}

/// Status code for request slot `i`, derived from the site's content hash.
fn background_code<R: Rng + ?Sized>(site_hash: u64, third_party: bool, i: u8, rng: &mut R) -> u16 {
    if rng.gen_bool(0.001) {
        return if rng.gen_bool(0.6) { 500 } else { 502 };
    }
    let h = hlisa_stats::rngutil::derive_seed(
        site_hash,
        if third_party { "tp" } else { "fp" },
        u64::from(i),
    );
    let x = (h % 1_000_000) as f64 / 1_000_000.0;
    match x {
        x if x < 0.915 => 200,
        x if x < 0.945 => 302,
        x if x < 0.950 => 204,
        x if x < 0.976 => 404,
        x if x < 0.984 => 400,
        x if x < 0.990 => 410,
        x if x < 0.996 => 500,
        _ => 502,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::{generate_population, PopulationConfig};
    use crate::site::SiteDetector;

    fn plain_site() -> Site {
        Site {
            rank: 1,
            domain: "plain.test".into(),
            detector: None,
            ad_slots: 3,
            has_video: false,
            breaks_under_spoofing: false,
            unreachable: false,
            flaky_visit_prob: 0.0,
            first_party_requests: 10,
            third_party_requests: 20,
        }
    }

    #[test]
    fn plain_site_renders_normally_for_both_clients() {
        let rt = DetectorRuntime::new();
        let mut ctx = SimContext::new(1);
        for client in [ClientKind::OpenWpm, ClientKind::OpenWpmSpoofed] {
            let v = simulate_visit(&plain_site(), client, &rt, &mut ctx);
            assert!(v.successful);
            assert_eq!(v.visual, VisualOutcome::Normal);
            assert!(!v.detected);
            assert_eq!(v.first_party.len(), 10);
        }
    }

    #[test]
    fn webdriver_blocker_blocks_openwpm_not_spoofed() {
        let mut site = plain_site();
        site.detector = Some(SiteDetector {
            method: DetectionMethod::WebdriverFlag,
            reaction: Reaction::BlockPage,
        });
        let rt = DetectorRuntime::new();
        let mut ctx = SimContext::new(2);
        let v1 = simulate_visit(&site, ClientKind::OpenWpm, &rt, &mut ctx);
        assert_eq!(v1.visual, VisualOutcome::BlockPage);
        assert!(v1.first_party.contains(&403));
        let v2 = simulate_visit(&site, ClientKind::OpenWpmSpoofed, &rt, &mut ctx);
        assert_eq!(v2.visual, VisualOutcome::Normal);
        assert!(!v2.detected);
    }

    #[test]
    fn template_blocker_sometimes_catches_spoofed_client() {
        let mut site = plain_site();
        site.detector = Some(SiteDetector {
            method: DetectionMethod::TemplateAttack,
            reaction: Reaction::BlockPage,
        });
        let rt = DetectorRuntime::new();
        let mut ctx = SimContext::new(3);
        let mut caught = 0;
        for _ in 0..40 {
            let v = simulate_visit(&site, ClientKind::OpenWpmSpoofed, &rt, &mut ctx);
            if v.detected {
                caught += 1;
            }
        }
        assert!(caught > 5 && caught < 35, "caught {caught}/40");
        // And it always catches the unspoofed client (webdriver flag).
        let v = simulate_visit(&site, ClientKind::OpenWpm, &rt, &mut ctx);
        assert!(v.detected);
    }

    #[test]
    fn breakage_only_affects_spoofed_client() {
        let mut site = plain_site();
        site.breaks_under_spoofing = true;
        let rt = DetectorRuntime::new();
        let mut ctx = SimContext::new(4);
        let v1 = simulate_visit(&site, ClientKind::OpenWpm, &rt, &mut ctx);
        assert_eq!(v1.visual, VisualOutcome::Normal);
        let v2 = simulate_visit(&site, ClientKind::OpenWpmSpoofed, &rt, &mut ctx);
        assert_eq!(v2.visual, VisualOutcome::DeformedLayout);
    }

    #[test]
    fn ad_hiding_removes_third_party_traffic() {
        let mut site = plain_site();
        site.detector = Some(SiteDetector {
            method: DetectionMethod::WebdriverFlag,
            reaction: Reaction::HideAllAds,
        });
        let rt = DetectorRuntime::new();
        let mut ctx = SimContext::new(5);
        let bot = simulate_visit(&site, ClientKind::OpenWpm, &rt, &mut ctx);
        assert_eq!(bot.visual, VisualOutcome::NoAds);
        assert!(bot.third_party.is_empty());
        let ok = simulate_visit(&site, ClientKind::OpenWpmSpoofed, &rt, &mut ctx);
        assert!(!ok.third_party.is_empty());
    }

    #[test]
    fn unreachable_and_flaky_sites() {
        let rt = DetectorRuntime::new();
        let mut ctx = SimContext::new(6);
        let mut down = plain_site();
        down.unreachable = true;
        let v = simulate_visit(&down, ClientKind::OpenWpm, &rt, &mut ctx);
        assert!(!v.reached && !v.successful);

        let mut flaky = plain_site();
        flaky.flaky_visit_prob = 1.0;
        let v = simulate_visit(&flaky, ClientKind::OpenWpm, &rt, &mut ctx);
        assert!(v.reached && !v.successful);
        assert_eq!(v.visual, VisualOutcome::TransientError);
    }

    #[test]
    fn cached_and_uncached_runtimes_agree_visit_by_visit() {
        let cfg = PopulationConfig {
            n_sites: 40,
            unreachable_sites: 3,
            ..PopulationConfig::default()
        };
        let sites = generate_population(&cfg);
        let cached = DetectorRuntime::new();
        let fresh = DetectorRuntime::without_world_cache();
        for client in [ClientKind::OpenWpm, ClientKind::OpenWpmSpoofed] {
            let mut ctx_a = SimContext::new(11);
            let mut ctx_b = SimContext::new(11);
            for site in &sites {
                let a = simulate_visit(site, client, &cached, &mut ctx_a);
                let b = simulate_visit(site, client, &fresh, &mut ctx_b);
                assert_eq!(a, b, "{client:?} diverged on {}", site.domain);
            }
        }
    }

    #[test]
    fn population_visit_smoke() {
        let cfg = PopulationConfig {
            n_sites: 50,
            unreachable_sites: 4,
            ..PopulationConfig::default()
        };
        let sites = generate_population(&cfg);
        let rt = DetectorRuntime::new();
        let mut ctx = SimContext::new(7);
        let mut ok = 0;
        for site in &sites {
            let v = simulate_visit(site, ClientKind::OpenWpm, &rt, &mut ctx);
            if v.successful {
                ok += 1;
            }
        }
        assert!(ok >= 40, "{ok}/50 successful");
    }
}
