//! Visit simulation: one browser instance loading one site once.
//!
//! Detection is *computed*, not sampled: the client's JS world is built
//! with [`hlisa_jsom`], the spoofing extension is (optionally) injected
//! with [`hlisa_spoof`], and the site's detector runs the real
//! [`hlisa_detect`] checks against that world.

use crate::outcome::{VisitError, VisitPhase, VisitProgress};
use crate::site::{DetectionMethod, Reaction, Site};
use crate::snapshot::WorldSnapshotCache;
use hlisa_detect::{scan_fingerprint, TemplateAttackDetector};
use hlisa_human::{HumanParams, VisitPlanner};
use hlisa_jsom::{build_firefox_world, BrowserFlavor, World};
use hlisa_sim::{InjectedFault, SimContext, VirtualClock};
use hlisa_spoof::SpoofingExtension;
use rand::Rng;

/// Default visit deadline (virtual ms) — mirrors OpenWPM's page-load
/// timeout budget. A stalled or never-loading visit is cut here.
pub const DEFAULT_VISIT_DEADLINE_MS: f64 = 30_000.0;

/// The crawling client flavour (the paper's two machines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClientKind {
    /// Stock OpenWPM: Selenium-automated Firefox, headful.
    OpenWpm,
    /// OpenWPM with the Proxy-based spoofing extension.
    OpenWpmSpoofed,
}

/// What the screenshot review of one visit would show.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VisualOutcome {
    /// Page rendered as for a regular visitor.
    Normal,
    /// A block page.
    BlockPage,
    /// A CAPTCHA interstitial.
    Captcha,
    /// All ad slots empty.
    NoAds,
    /// Some ad slots empty.
    FewerAds,
    /// Video player never starts.
    FrozenVideo,
    /// Page layout deformed (spoofing side-effect breakage).
    DeformedLayout,
    /// Site did not answer at all.
    Unreachable,
    /// Transient failure (timeout / flaky 5xx) — visit not counted as
    /// successful.
    TransientError,
    /// Page never finished loading inside the visit deadline.
    Timeout,
    /// Page froze mid-interaction until the deadline fired.
    Stalled,
    /// The browser's JS realm crashed mid-visit.
    Crashed,
    /// A consent overlay was never dismissed; the measured content
    /// behind the wall was never reached (cookie-banner scenario).
    StuckOnOverlay,
    /// Scroll-gated content never lay out, so the screenshot misses it
    /// (lazy-content scenario).
    MissingLazyContent,
    /// A mid-visit re-render invalidated cached element geometry and the
    /// follow-up interaction missed (SPA-mutation scenario).
    StaleElement,
}

/// Outcome of one visit.
#[derive(Debug, Clone, PartialEq)]
pub struct VisitOutcome {
    /// Whether the site answered.
    pub reached: bool,
    /// Whether the visit completed (reached and not transient-failed).
    pub successful: bool,
    /// Screenshot-level outcome.
    pub visual: VisualOutcome,
    /// First-party response status codes.
    pub first_party: Vec<u16>,
    /// Third-party response status codes.
    pub third_party: Vec<u16>,
    /// Ground truth: did the site's detector fire? (Not observable by the
    /// crawler; used for validation.)
    pub detected: bool,
}

/// Shared per-campaign detector state (the template reference is captured
/// once, like a deployed detector shipping a baseline) plus the pristine
/// world snapshots per-visit realms are stamped from.
#[derive(Debug, Clone)]
pub struct DetectorRuntime {
    template: TemplateAttackDetector,
    /// `Some` = stamp per-visit worlds from cached snapshots (the fast
    /// path); `None` = rebuild the world from scratch on every visit (the
    /// pre-snapshot behaviour, kept as the benchmark baseline and for the
    /// bit-identity test).
    worlds: Option<WorldSnapshotCache>,
}

impl DetectorRuntime {
    /// Builds the shared runtime with the world-snapshot cache enabled.
    pub fn new() -> Self {
        Self {
            template: TemplateAttackDetector::new(),
            worlds: Some(WorldSnapshotCache::new()),
        }
    }

    /// Builds a runtime that re-runs the world builders for every visit —
    /// the original per-visit cost model. Campaign output is bit-identical
    /// either way (world construction consumes no RNG); only throughput
    /// differs.
    pub fn without_world_cache() -> Self {
        Self {
            template: TemplateAttackDetector::new(),
            worlds: None,
        }
    }

    /// The client's page world for one visit: stamped from the snapshot
    /// cache when enabled, freshly built otherwise.
    fn visit_world(&self, client: ClientKind) -> Result<World, VisitError> {
        match &self.worlds {
            Some(cache) => Ok(match client {
                ClientKind::OpenWpm => cache.stamp(BrowserFlavor::WebDriverFirefox),
                ClientKind::OpenWpmSpoofed => cache.stamp_spoofed_webdriver(),
            }),
            None => fresh_client_world(client),
        }
    }
}

/// Builds a client world from scratch (the uncached path). A failed
/// extension injection surfaces as a typed world-build crash instead of
/// panicking the worker thread.
fn fresh_client_world(client: ClientKind) -> Result<World, VisitError> {
    let mut world = build_firefox_world(BrowserFlavor::WebDriverFirefox);
    if client == ClientKind::OpenWpmSpoofed
        && SpoofingExtension::paper_default()
            .inject(&mut world)
            .is_err()
    {
        return Err(VisitError::RealmCrashed {
            progress: VisitProgress::at_phase(VisitPhase::WorldBuild, 0.0),
        });
    }
    Ok(world)
}

impl Default for DetectorRuntime {
    fn default() -> Self {
        Self::new()
    }
}

/// Simulates one visit of `client` to `site`, drawing from the context's
/// `"visit"` stream. Failures degrade into recordable outcomes
/// ([`VisitError::to_outcome`]); callers that need the typed error — the
/// crawler's recovery engine — use [`simulate_visit_attempt`] instead.
pub fn simulate_visit(
    site: &Site,
    client: ClientKind,
    runtime: &DetectorRuntime,
    ctx: &mut SimContext,
) -> VisitOutcome {
    simulate_visit_attempt(site, client, runtime, ctx, None, DEFAULT_VISIT_DEADLINE_MS)
        .unwrap_or_else(|e| e.to_outcome())
}

/// Like [`simulate_visit`], drawing from an explicit RNG stream (no
/// clock: timing phases are skipped, outcomes are identical — visit
/// outcomes never depend on the clock).
pub fn simulate_visit_with<R: Rng + ?Sized>(
    site: &Site,
    client: ClientKind,
    runtime: &DetectorRuntime,
    rng: &mut R,
) -> VisitOutcome {
    attempt_core(
        site,
        client,
        runtime,
        rng,
        None,
        None,
        DEFAULT_VISIT_DEADLINE_MS,
    )
    .unwrap_or_else(|e| e.to_outcome())
}

/// One fault-aware visit attempt: the chaos-mode entry point.
///
/// Interaction draws come from the context's `"visit"` stream exactly as
/// in [`simulate_visit`] — with `injected: None` the draw sequence (and
/// therefore the outcome) is bit-identical to the legacy path. The
/// scheduled fault, if any, is decided *by the caller* from the dedicated
/// fault stream (see `hlisa_sim::FaultPlan`), so injection and retry
/// never perturb the interaction streams. The context's [`VirtualClock`]
/// drives the visit deadline and the elapsed-time fields of any
/// partial-progress capture.
pub fn simulate_visit_attempt(
    site: &Site,
    client: ClientKind,
    runtime: &DetectorRuntime,
    ctx: &mut SimContext,
    injected: Option<InjectedFault>,
    deadline_ms: f64,
) -> Result<VisitOutcome, VisitError> {
    let clock = ctx.clock();
    attempt_core(
        site,
        client,
        runtime,
        ctx.stream("visit"),
        Some(&clock),
        injected,
        deadline_ms,
    )
}

/// Summary of one visit's batch-planned interaction chain.
///
/// The counters are sums over the visit's [`hlisa_human::InteractionPlan`]
/// arenas, so two planners that plan the same visit — fresh or reused,
/// on any thread — report identical stats.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PlanStats {
    /// Interaction steps the plan covers (0 for unsuccessful visits).
    pub actions: u64,
    /// Trajectory samples laid into the plan arena.
    pub samples: u64,
    /// Key strokes laid into the plan arena.
    pub keys: u64,
    /// Wheel ticks laid into the plan arena.
    pub ticks: u64,
}

impl PlanStats {
    /// Accumulates another visit's stats (for per-worker campaign totals).
    pub fn absorb(&mut self, other: PlanStats) {
        self.actions += other.actions;
        self.samples += other.samples;
        self.keys += other.keys;
        self.ticks += other.ticks;
    }
}

/// Like [`simulate_visit`], additionally synthesising the visit's full
/// interaction chain through a reusable batch [`VisitPlanner`] — the
/// planner-driven campaign mode.
///
/// The attempt itself runs the exact [`simulate_visit_attempt`] path; the
/// interaction plan draws from a `"plan"` fork of the visit context, so
/// the `"visit"` stream — and therefore every outcome — is bit-identical
/// to the unplanned mode. Successful visits plan the same number of
/// interaction steps the visit timeline executes
/// ([`VisitTimeline::steps_planned`]), scripted from the site's content
/// hash; failed visits plan nothing.
pub fn simulate_visit_planned(
    site: &Site,
    client: ClientKind,
    runtime: &DetectorRuntime,
    ctx: &mut SimContext,
    params: &HumanParams,
    planner: &mut VisitPlanner,
) -> (VisitOutcome, PlanStats) {
    let outcome =
        simulate_visit_attempt(site, client, runtime, ctx, None, DEFAULT_VISIT_DEADLINE_MS)
            .unwrap_or_else(|e| e.to_outcome());
    let mut stats = PlanStats::default();
    if outcome.successful {
        let steps = VisitTimeline::for_site(site).steps_planned as usize;
        let mut plan_ctx = ctx.fork("plan", 0);
        let plan = planner.plan_site_visit(params, &mut plan_ctx, site_content_hash(site), steps);
        stats = PlanStats {
            actions: plan.actions().len() as u64,
            samples: plan.samples().len() as u64,
            keys: plan.keys().len() as u64,
            ticks: plan.ticks().len() as u64,
        };
    }
    (outcome, stats)
}

/// Deterministic phase timeline for one visit, derived from the site's
/// content hash — **never** from an RNG stream, so adding time accounting
/// cannot perturb any draw sequence.
///
/// Public because the capture layer (`crate::capture`) anchors its
/// emitted event timestamps to the same timeline the visit core advances
/// its clock by: the instrument observes the visit at the moments things
/// actually happened.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VisitTimeline {
    /// DNS / TCP / TLS establishment time (virtual ms).
    pub connect_ms: f64,
    /// Main-document load time after connect (virtual ms).
    pub load_ms: f64,
    /// Interaction-chain steps the visit plans.
    pub steps_planned: u32,
    /// Virtual ms per interaction step.
    pub step_ms: f64,
}

impl VisitTimeline {
    /// The timeline for one site — a pure function of its content hash.
    pub fn for_site(site: &Site) -> Self {
        let h = site_content_hash(site);
        Self {
            connect_ms: 40.0 + (h % 160) as f64,
            load_ms: 250.0 + ((h >> 8) % 2_000) as f64,
            steps_planned: 3 + ((h >> 16) % 6) as u32,
            step_ms: 350.0 + ((h >> 24) % 900) as f64,
        }
    }
}

/// The shared visit core. `clock` is optional so the rng-only legacy
/// entry point keeps working; when present it is advanced through the
/// visit's phases and consulted for deadlines and progress capture.
fn attempt_core<R: Rng + ?Sized>(
    site: &Site,
    client: ClientKind,
    runtime: &DetectorRuntime,
    rng: &mut R,
    clock: Option<&VirtualClock>,
    injected: Option<InjectedFault>,
    deadline_ms: f64,
) -> Result<VisitOutcome, VisitError> {
    let timeline = VisitTimeline::for_site(site);
    let start_ms = clock.map(VirtualClock::now_ms).unwrap_or(0.0);
    let elapsed =
        |clock: Option<&VirtualClock>| clock.map(VirtualClock::now_ms).unwrap_or(0.0) - start_ms;
    let advance = |ms: f64| {
        if let Some(c) = clock {
            c.advance(ms);
        }
    };

    // Connect phase.
    advance(timeline.connect_ms.min(deadline_ms));
    if site.unreachable {
        return Err(VisitError::Unreachable { site_down: true });
    }
    match injected {
        Some(InjectedFault::PermanentUnreachable) => {
            return Err(VisitError::Unreachable { site_down: false });
        }
        Some(InjectedFault::TransientNetwork) => {
            return Err(VisitError::TransientNetwork { status: None });
        }
        _ => {}
    }

    // Page load. The flaky draw replicates the legacy model's "web
    // dynamics" — a site-intrinsic transient the paper averages out over
    // 8 instances (and that the recovery engine deliberately does not
    // retry; only *injected* faults are).
    if rng.gen_bool(site.flaky_visit_prob) {
        return Err(VisitError::TransientNetwork {
            status: Some(if rng.gen_bool(0.5) { 500 } else { 504 }),
        });
    }
    if matches!(injected, Some(InjectedFault::PageLoadTimeout)) {
        advance((deadline_ms - elapsed(clock)).max(0.0));
        return Err(VisitError::PageLoadTimeout { deadline_ms });
    }
    advance(timeline.load_ms);

    // World build + detector scan. The uncached runtime rebuilds the
    // world for every visit (the original cost model); the cached runtime
    // stamps it from a snapshot, and only when a detector will actually
    // run it — both safe, because world acquisition consumes no RNG.
    let mut eager_world = if runtime.worlds.is_none() {
        Some(fresh_client_world(client)?)
    } else {
        None
    };
    let detected = match site.detector.map(|d| d.method) {
        None => false,
        Some(method) => {
            let mut world = match eager_world.take() {
                Some(w) => w,
                None => runtime.visit_world(client)?,
            };
            match method {
                DetectionMethod::WebdriverFlag => scan_fingerprint(&mut world).is_bot,
                DetectionMethod::TemplateAttack => {
                    // Deep checks are rate-limited: the paper saw its
                    // surviving blocker fire "for a smaller subset of
                    // visits".
                    let runs_deep_check = rng.gen_bool(0.45);
                    let shallow = scan_fingerprint(&mut world).is_bot;
                    shallow || (runs_deep_check && runtime.template.is_tampered(&mut world))
                }
            }
        }
    };

    // Interaction chain, with mid-chain stall/crash injection. Progress
    // capture records how far the chain got before the fault.
    let chain_fault = match injected {
        Some(InjectedFault::MidVisitStall { at_fraction }) => Some((at_fraction, true)),
        Some(InjectedFault::RealmCrash { at_fraction }) => Some((at_fraction, false)),
        _ => None,
    };
    if let Some((at_fraction, is_stall)) = chain_fault {
        let steps_done =
            ((at_fraction * f64::from(timeline.steps_planned)) as u32).min(timeline.steps_planned);
        advance(f64::from(steps_done) * timeline.step_ms);
        let progress = VisitProgress {
            phase: VisitPhase::Interaction,
            steps_done,
            steps_planned: timeline.steps_planned,
            elapsed_ms: elapsed(clock),
        };
        if is_stall {
            // The stall holds the visit until the deadline fires.
            advance((deadline_ms - elapsed(clock)).max(0.0));
            return Err(VisitError::Stalled {
                progress,
                deadline_ms,
            });
        }
        return Err(VisitError::RealmCrashed { progress });
    }
    advance(f64::from(timeline.steps_planned) * timeline.step_ms);

    // Visual outcome (capture phase).
    let mut visual = VisualOutcome::Normal;
    if detected {
        // `detected` implies a deployed detector; a missing one simply
        // renders normally instead of panicking the worker.
        if let Some(detector) = site.detector {
            visual = match detector.reaction {
                Reaction::BlockPage => VisualOutcome::BlockPage,
                Reaction::Captcha => VisualOutcome::Captcha,
                Reaction::HideAllAds => VisualOutcome::NoAds,
                Reaction::ReduceAds => VisualOutcome::FewerAds,
                Reaction::FreezeVideo => VisualOutcome::FrozenVideo,
                Reaction::Http403 | Reaction::Http503 => VisualOutcome::Normal,
            };
        }
    }
    // Spoofing-compatibility breakage is independent of detection.
    if client == ClientKind::OpenWpmSpoofed && site.breaks_under_spoofing {
        visual = if site.has_video {
            VisualOutcome::FrozenVideo
        } else {
            VisualOutcome::DeformedLayout
        };
    }

    // HTTP responses.
    let (first_party, third_party) = synthesize_http(site, detected, visual, rng);

    Ok(VisitOutcome {
        reached: true,
        successful: true,
        visual,
        first_party,
        third_party,
        detected,
    })
}

fn synthesize_http<R: Rng + ?Sized>(
    site: &Site,
    detected: bool,
    visual: VisualOutcome,
    rng: &mut R,
) -> (Vec<u16>, Vec<u16>) {
    let mut first = Vec::with_capacity(site.first_party_requests as usize);
    let mut third = Vec::with_capacity(site.third_party_requests as usize);

    let blockish = matches!(visual, VisualOutcome::BlockPage | VisualOutcome::Captcha);
    let reaction = site.detector.map(|d| d.reaction);
    // The per-site content hash feeding every slot's background code is
    // the same for all slots; hash the domain once per visit, not per
    // request.
    let site_hash = site_content_hash(site);

    for i in 0..site.first_party_requests {
        let code = if detected && blockish {
            // The main document always answers 403; of the subresources
            // the block page still references, most never load.
            if i == 0 || rng.gen_bool(0.6) {
                403
            } else {
                200
            }
        } else if detected && reaction == Some(Reaction::Http403) && rng.gen_bool(0.55) {
            403
        } else if detected && reaction == Some(Reaction::Http503) && rng.gen_bool(0.55) {
            503
        } else {
            background_code(site_hash, false, i, rng)
        };
        first.push(code);
    }

    let ad_suppression = matches!(visual, VisualOutcome::NoAds) || blockish;
    let partial_suppression = matches!(visual, VisualOutcome::FewerAds);
    for i in 0..site.third_party_requests {
        if ad_suppression {
            // Ad/tracker requests simply never happen.
            continue;
        }
        if partial_suppression && rng.gen_bool(0.5) {
            continue;
        }
        third.push(background_code(site_hash, true, i, rng));
    }
    (first, third)
}

/// Hash of the site's fixed content, shared by every request slot.
///
/// The bulk of a site's response mix is a property of its *content* (a
/// missing image 404s for every visitor alike), so the per-slot code is
/// deterministic in (site, slot); both crawl machines therefore observe
/// nearly identical background errors — exactly why the paper's paired
/// Wilcoxon test isolates the detection-induced differences. A small
/// per-visit chance of a transient 5xx models live-web dynamics (Fig. 4
/// only charts codes with more than 100 occurrences campaign-wide).
pub fn site_content_hash(site: &Site) -> u64 {
    let mut h = hlisa_stats::rngutil::splitmix64(u64::from(site.rank) ^ 0xace1);
    for b in site.domain.as_bytes() {
        h = hlisa_stats::rngutil::splitmix64(h ^ u64::from(*b));
    }
    h
}

/// Status code for request slot `i`, derived from the site's content hash.
fn background_code<R: Rng + ?Sized>(site_hash: u64, third_party: bool, i: u8, rng: &mut R) -> u16 {
    if rng.gen_bool(0.001) {
        return if rng.gen_bool(0.6) { 500 } else { 502 };
    }
    let h = hlisa_stats::rngutil::derive_seed(
        site_hash,
        if third_party { "tp" } else { "fp" },
        u64::from(i),
    );
    let x = (h % 1_000_000) as f64 / 1_000_000.0;
    match x {
        x if x < 0.915 => 200,
        x if x < 0.945 => 302,
        x if x < 0.950 => 204,
        x if x < 0.976 => 404,
        x if x < 0.984 => 400,
        x if x < 0.990 => 410,
        x if x < 0.996 => 500,
        _ => 502,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::{generate_population, PopulationConfig};
    use crate::site::SiteDetector;

    fn plain_site() -> Site {
        Site {
            rank: 1,
            domain: "plain.test".into(),
            detector: None,
            ad_slots: 3,
            has_video: false,
            breaks_under_spoofing: false,
            unreachable: false,
            flaky_visit_prob: 0.0,
            first_party_requests: 10,
            third_party_requests: 20,
            scenario: None,
        }
    }

    #[test]
    fn plain_site_renders_normally_for_both_clients() {
        let rt = DetectorRuntime::new();
        let mut ctx = SimContext::new(1);
        for client in [ClientKind::OpenWpm, ClientKind::OpenWpmSpoofed] {
            let v = simulate_visit(&plain_site(), client, &rt, &mut ctx);
            assert!(v.successful);
            assert_eq!(v.visual, VisualOutcome::Normal);
            assert!(!v.detected);
            assert_eq!(v.first_party.len(), 10);
        }
    }

    #[test]
    fn attempt_without_fault_matches_simulate_visit() {
        let rt = DetectorRuntime::new();
        let sites = generate_population(&PopulationConfig {
            n_sites: 30,
            ..PopulationConfig::default()
        });
        for (i, site) in sites.iter().enumerate() {
            for client in [ClientKind::OpenWpm, ClientKind::OpenWpmSpoofed] {
                let mut a = SimContext::new(40 + i as u64);
                let mut b = SimContext::new(40 + i as u64);
                let legacy = simulate_visit(site, client, &rt, &mut a);
                let attempt = simulate_visit_attempt(
                    site,
                    client,
                    &rt,
                    &mut b,
                    None,
                    DEFAULT_VISIT_DEADLINE_MS,
                )
                .unwrap_or_else(|e| e.to_outcome());
                assert_eq!(
                    legacy, attempt,
                    "{}: fault-free attempt diverged",
                    site.domain
                );
            }
        }
    }

    #[test]
    fn injected_faults_map_to_their_visit_errors() {
        let rt = DetectorRuntime::new();
        let site = plain_site();
        let cases: [(InjectedFault, fn(&VisitError) -> bool); 5] = [
            (InjectedFault::PageLoadTimeout, |e| {
                matches!(e, VisitError::PageLoadTimeout { .. })
            }),
            (InjectedFault::MidVisitStall { at_fraction: 0.5 }, |e| {
                matches!(e, VisitError::Stalled { .. })
            }),
            (InjectedFault::RealmCrash { at_fraction: 0.5 }, |e| {
                matches!(e, VisitError::RealmCrashed { .. })
            }),
            (InjectedFault::TransientNetwork, |e| {
                matches!(e, VisitError::TransientNetwork { status: None })
            }),
            (InjectedFault::PermanentUnreachable, |e| {
                matches!(e, VisitError::Unreachable { site_down: false })
            }),
        ];
        for (fault, matches_err) in cases {
            let mut ctx = SimContext::new(9);
            let err = simulate_visit_attempt(
                &site,
                ClientKind::OpenWpm,
                &rt,
                &mut ctx,
                Some(fault),
                DEFAULT_VISIT_DEADLINE_MS,
            )
            .expect_err("fault must fail the attempt");
            assert!(matches_err(&err), "{fault:?} produced {err:?}");
        }
    }

    #[test]
    fn mid_chain_faults_capture_partial_progress() {
        let rt = DetectorRuntime::new();
        let site = plain_site();
        let mut ctx = SimContext::new(11);
        let err = simulate_visit_attempt(
            &site,
            ClientKind::OpenWpm,
            &rt,
            &mut ctx,
            Some(InjectedFault::RealmCrash { at_fraction: 0.6 }),
            DEFAULT_VISIT_DEADLINE_MS,
        )
        .expect_err("crash must fail the attempt");
        let progress = err.progress().expect("mid-chain faults carry progress");
        assert_eq!(progress.phase, VisitPhase::Interaction);
        assert!(progress.steps_planned >= 3);
        assert!(progress.steps_done < progress.steps_planned);
        assert!((progress.chain_fraction() - 0.6).abs() < 0.4);
        assert!(progress.elapsed_ms > 0.0);
    }

    #[test]
    fn stall_and_timeout_run_the_clock_to_the_deadline() {
        let rt = DetectorRuntime::new();
        let site = plain_site();
        for fault in [
            InjectedFault::PageLoadTimeout,
            InjectedFault::MidVisitStall { at_fraction: 0.2 },
        ] {
            let mut ctx = SimContext::new(13);
            let clock = ctx.clock();
            let before = clock.now_ms();
            simulate_visit_attempt(
                &site,
                ClientKind::OpenWpm,
                &rt,
                &mut ctx,
                Some(fault),
                5_000.0,
            )
            .expect_err("fault must fail the attempt");
            assert!(
                clock.now_ms() - before >= 5_000.0,
                "{fault:?} should hold the visit until its deadline"
            );
        }
    }

    #[test]
    fn webdriver_blocker_blocks_openwpm_not_spoofed() {
        let mut site = plain_site();
        site.detector = Some(SiteDetector {
            method: DetectionMethod::WebdriverFlag,
            reaction: Reaction::BlockPage,
        });
        let rt = DetectorRuntime::new();
        let mut ctx = SimContext::new(2);
        let v1 = simulate_visit(&site, ClientKind::OpenWpm, &rt, &mut ctx);
        assert_eq!(v1.visual, VisualOutcome::BlockPage);
        assert!(v1.first_party.contains(&403));
        let v2 = simulate_visit(&site, ClientKind::OpenWpmSpoofed, &rt, &mut ctx);
        assert_eq!(v2.visual, VisualOutcome::Normal);
        assert!(!v2.detected);
    }

    #[test]
    fn template_blocker_sometimes_catches_spoofed_client() {
        let mut site = plain_site();
        site.detector = Some(SiteDetector {
            method: DetectionMethod::TemplateAttack,
            reaction: Reaction::BlockPage,
        });
        let rt = DetectorRuntime::new();
        let mut ctx = SimContext::new(3);
        let mut caught = 0;
        for _ in 0..40 {
            let v = simulate_visit(&site, ClientKind::OpenWpmSpoofed, &rt, &mut ctx);
            if v.detected {
                caught += 1;
            }
        }
        assert!(caught > 5 && caught < 35, "caught {caught}/40");
        // And it always catches the unspoofed client (webdriver flag).
        let v = simulate_visit(&site, ClientKind::OpenWpm, &rt, &mut ctx);
        assert!(v.detected);
    }

    #[test]
    fn breakage_only_affects_spoofed_client() {
        let mut site = plain_site();
        site.breaks_under_spoofing = true;
        let rt = DetectorRuntime::new();
        let mut ctx = SimContext::new(4);
        let v1 = simulate_visit(&site, ClientKind::OpenWpm, &rt, &mut ctx);
        assert_eq!(v1.visual, VisualOutcome::Normal);
        let v2 = simulate_visit(&site, ClientKind::OpenWpmSpoofed, &rt, &mut ctx);
        assert_eq!(v2.visual, VisualOutcome::DeformedLayout);
    }

    #[test]
    fn ad_hiding_removes_third_party_traffic() {
        let mut site = plain_site();
        site.detector = Some(SiteDetector {
            method: DetectionMethod::WebdriverFlag,
            reaction: Reaction::HideAllAds,
        });
        let rt = DetectorRuntime::new();
        let mut ctx = SimContext::new(5);
        let bot = simulate_visit(&site, ClientKind::OpenWpm, &rt, &mut ctx);
        assert_eq!(bot.visual, VisualOutcome::NoAds);
        assert!(bot.third_party.is_empty());
        let ok = simulate_visit(&site, ClientKind::OpenWpmSpoofed, &rt, &mut ctx);
        assert!(!ok.third_party.is_empty());
    }

    #[test]
    fn unreachable_and_flaky_sites() {
        let rt = DetectorRuntime::new();
        let mut ctx = SimContext::new(6);
        let mut down = plain_site();
        down.unreachable = true;
        let v = simulate_visit(&down, ClientKind::OpenWpm, &rt, &mut ctx);
        assert!(!v.reached && !v.successful);

        let mut flaky = plain_site();
        flaky.flaky_visit_prob = 1.0;
        let v = simulate_visit(&flaky, ClientKind::OpenWpm, &rt, &mut ctx);
        assert!(v.reached && !v.successful);
        assert_eq!(v.visual, VisualOutcome::TransientError);
    }

    #[test]
    fn cached_and_uncached_runtimes_agree_visit_by_visit() {
        let cfg = PopulationConfig {
            n_sites: 40,
            unreachable_sites: 3,
            ..PopulationConfig::default()
        };
        let sites = generate_population(&cfg);
        let cached = DetectorRuntime::new();
        let fresh = DetectorRuntime::without_world_cache();
        for client in [ClientKind::OpenWpm, ClientKind::OpenWpmSpoofed] {
            let mut ctx_a = SimContext::new(11);
            let mut ctx_b = SimContext::new(11);
            for site in &sites {
                let a = simulate_visit(site, client, &cached, &mut ctx_a);
                let b = simulate_visit(site, client, &fresh, &mut ctx_b);
                assert_eq!(a, b, "{client:?} diverged on {}", site.domain);
            }
        }
    }

    /// The planner-driven entry leaves every outcome bit-identical to the
    /// legacy path (the plan draws only from the `"plan"` fork), reports
    /// non-trivial stats for successful visits, and reaches steady-state
    /// arena capacities when one planner serves a whole population.
    #[test]
    fn planned_visits_match_unplanned_outcomes_bit_for_bit() {
        let cfg = PopulationConfig {
            n_sites: 40,
            unreachable_sites: 3,
            ..PopulationConfig::default()
        };
        let sites = generate_population(&cfg);
        let rt = DetectorRuntime::new();
        let params = hlisa_human::HumanParams::paper_baseline();
        let mut planner = hlisa_human::VisitPlanner::new();
        let mut planned_any = false;
        for client in [ClientKind::OpenWpm, ClientKind::OpenWpmSpoofed] {
            for (i, site) in sites.iter().enumerate() {
                let mut ctx_a = SimContext::new(70 + i as u64);
                let mut ctx_b = SimContext::new(70 + i as u64);
                let legacy = simulate_visit(site, client, &rt, &mut ctx_a);
                let (planned, stats) =
                    simulate_visit_planned(site, client, &rt, &mut ctx_b, &params, &mut planner);
                assert_eq!(legacy, planned, "{}: planned outcome diverged", site.domain);
                // The "visit" stream is untouched by planning.
                assert_eq!(
                    ctx_a.stream("visit").gen::<u64>(),
                    ctx_b.stream("visit").gen::<u64>(),
                    "{}: visit stream perturbed by planning",
                    site.domain
                );
                if planned.successful {
                    let timeline = VisitTimeline::for_site(site);
                    assert_eq!(stats.actions, u64::from(timeline.steps_planned));
                    assert!(stats.samples > 0, "{}: no samples planned", site.domain);
                    planned_any = true;
                } else {
                    assert_eq!(stats, PlanStats::default());
                }
            }
        }
        assert!(planned_any);
    }

    #[test]
    fn population_visit_smoke() {
        let cfg = PopulationConfig {
            n_sites: 50,
            unreachable_sites: 4,
            ..PopulationConfig::default()
        };
        let sites = generate_population(&cfg);
        let rt = DetectorRuntime::new();
        let mut ctx = SimContext::new(7);
        let mut ok = 0;
        for site in &sites {
            let v = simulate_visit(site, ClientKind::OpenWpm, &rt, &mut ctx);
            if v.successful {
                ok += 1;
            }
        }
        assert!(ok >= 40, "{ok}/50 successful");
    }
}
