//! Visit-level failure semantics: the typed error taxonomy a fault-aware
//! visit returns instead of an always-success [`VisitOutcome`].
//!
//! Krumnow et al. (PAPERS.md) show that hangs, crashes, and partial page
//! loads silently bias crawl results when the harness flattens them into
//! "visit failed". This module keeps the failure *shape*: what kind of
//! fault hit, how far the visit got before it ([`VisitProgress`]), and
//! whether retrying can possibly help ([`VisitError::is_permanent`]).
//! Every error still degrades gracefully into a recordable
//! [`VisitOutcome`] via [`VisitError::to_outcome`], so a faulted campaign
//! produces partial site results instead of aborting the machine.

use crate::visit::{VisitOutcome, VisualOutcome};
use hlisa_sim::FaultKind;

/// The phase a visit was in when a fault hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VisitPhase {
    /// DNS / TCP / TLS establishment.
    Connect,
    /// Main-document load.
    PageLoad,
    /// Building (or stamping) the client's JS world.
    WorldBuild,
    /// The site's detector running against the world.
    DetectorScan,
    /// Driving the interaction chain over the page.
    Interaction,
    /// Collecting HTTP responses / screenshot.
    Capture,
}

impl VisitPhase {
    /// Stable snake_case name for reports and counters.
    pub fn name(self) -> &'static str {
        match self {
            VisitPhase::Connect => "connect",
            VisitPhase::PageLoad => "page_load",
            VisitPhase::WorldBuild => "world_build",
            VisitPhase::DetectorScan => "detector_scan",
            VisitPhase::Interaction => "interaction",
            VisitPhase::Capture => "capture",
        }
    }
}

/// Partial-progress capture: how far a visit got before its fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VisitProgress {
    /// Phase the visit was in when it failed.
    pub phase: VisitPhase,
    /// Interaction-chain steps completed before the fault.
    pub steps_done: u32,
    /// Interaction-chain steps the visit had planned.
    pub steps_planned: u32,
    /// Virtual milliseconds elapsed since the attempt began.
    pub elapsed_ms: f64,
}

impl VisitProgress {
    /// Progress pinned at the start of `phase` (no chain steps yet).
    pub fn at_phase(phase: VisitPhase, elapsed_ms: f64) -> Self {
        Self {
            phase,
            steps_done: 0,
            steps_planned: 0,
            elapsed_ms,
        }
    }

    /// Fraction of the planned interaction chain completed, in [0, 1].
    pub fn chain_fraction(&self) -> f64 {
        if self.steps_planned == 0 {
            0.0
        } else {
            f64::from(self.steps_done) / f64::from(self.steps_planned)
        }
    }
}

/// Typed failure taxonomy for one visit attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum VisitError {
    /// The host never answered: the site is down (population property or
    /// whole-campaign outage) or this attempt's connect was refused.
    Unreachable {
        /// True when no retry within this campaign can succeed (dead
        /// host) as opposed to a one-off connect refusal.
        site_down: bool,
    },
    /// The main document did not finish loading inside the deadline.
    PageLoadTimeout {
        /// The deadline that fired (virtual ms).
        deadline_ms: f64,
    },
    /// The visit froze mid-chain and sat there until the deadline.
    Stalled {
        /// Where the freeze hit.
        progress: VisitProgress,
        /// The deadline that eventually fired (virtual ms).
        deadline_ms: f64,
    },
    /// The page's JS realm died mid-visit.
    RealmCrashed {
        /// Where the crash hit.
        progress: VisitProgress,
    },
    /// Transient network failure. `status` is the HTTP status observed
    /// (`None` when the connection reset before any response).
    TransientNetwork {
        /// Observed status code, if any response arrived.
        status: Option<u16>,
    },
}

impl VisitError {
    /// Whether retrying this visit within the campaign is pointless.
    /// Unreachability is permanent either way — a dead host stays dead
    /// and a refused connect refuses again; the distinction `site_down`
    /// draws only matters to reports. Permanent faults feed the
    /// crawler's circuit breaker, not its retry loop.
    pub fn is_permanent(&self) -> bool {
        matches!(self, VisitError::Unreachable { .. })
    }

    /// The fault-taxonomy bucket, for `fault.*` counters and reports.
    pub fn fault_kind(&self) -> FaultKind {
        match self {
            VisitError::Unreachable { .. } => FaultKind::PermanentUnreachable,
            VisitError::PageLoadTimeout { .. } => FaultKind::PageLoadTimeout,
            VisitError::Stalled { .. } => FaultKind::MidVisitStall,
            VisitError::RealmCrashed { .. } => FaultKind::RealmCrash,
            VisitError::TransientNetwork { .. } => FaultKind::TransientNetwork,
        }
    }

    /// Partial-progress capture, when the fault hit mid-visit.
    pub fn progress(&self) -> Option<&VisitProgress> {
        match self {
            VisitError::Stalled { progress, .. } | VisitError::RealmCrashed { progress } => {
                Some(progress)
            }
            _ => None,
        }
    }

    /// Degrades the error into a recordable [`VisitOutcome`] — the
    /// graceful-degradation path: a faulted visit still yields a row the
    /// Table 2 / Figure 4 aggregations can count, instead of aborting
    /// the machine.
    ///
    /// The mapping is pinned by the legacy outcome model: a down site
    /// records exactly the outcome the pre-fault-plane `simulate_visit`
    /// produced (`reached: false`, [`VisualOutcome::Unreachable`]), and a
    /// transient HTTP flake records its status as the sole first-party
    /// response — bit-compatibility the rate-0 chaos invariant relies on.
    pub fn to_outcome(&self) -> VisitOutcome {
        let (reached, visual, first_party) = match self {
            VisitError::Unreachable { .. } => return VisitOutcome::unreached(),
            VisitError::PageLoadTimeout { .. } => (true, VisualOutcome::Timeout, Vec::new()),
            VisitError::Stalled { .. } => (true, VisualOutcome::Stalled, Vec::new()),
            VisitError::RealmCrashed { .. } => (true, VisualOutcome::Crashed, Vec::new()),
            VisitError::TransientNetwork { status } => (
                true,
                VisualOutcome::TransientError,
                status.map(|s| vec![s]).unwrap_or_default(),
            ),
        };
        VisitOutcome {
            reached,
            successful: false,
            visual,
            first_party,
            third_party: Vec::new(),
            detected: false,
        }
    }
}

impl VisitOutcome {
    /// The canonical not-reached outcome: the site never answered, so
    /// nothing downstream of the connect exists. This is both what
    /// [`VisitError::Unreachable`] degrades to and what capture
    /// reconstruction (`crate::capture`) infers when *no* event of a
    /// visit survived the observer channel — an instrument that saw
    /// nothing cannot tell a dead host from total measurement loss,
    /// which is exactly the silent-corruption mode Krumnow et al. warn
    /// about.
    pub fn unreached() -> VisitOutcome {
        VisitOutcome {
            reached: false,
            successful: false,
            visual: VisualOutcome::Unreachable,
            first_party: Vec::new(),
            third_party: Vec::new(),
            detected: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permanence_partitions_the_taxonomy() {
        assert!(VisitError::Unreachable { site_down: true }.is_permanent());
        assert!(VisitError::Unreachable { site_down: false }.is_permanent());
        assert!(!VisitError::PageLoadTimeout { deadline_ms: 1.0 }.is_permanent());
        assert!(!VisitError::Stalled {
            progress: VisitProgress::at_phase(VisitPhase::Interaction, 5.0),
            deadline_ms: 1.0
        }
        .is_permanent());
        assert!(!VisitError::TransientNetwork { status: None }.is_permanent());
    }

    #[test]
    fn unreachable_outcome_matches_the_legacy_shape() {
        let o = VisitError::Unreachable { site_down: true }.to_outcome();
        assert!(!o.reached && !o.successful);
        assert_eq!(o.visual, VisualOutcome::Unreachable);
        assert!(o.first_party.is_empty() && o.third_party.is_empty());
        assert!(!o.detected);
    }

    #[test]
    fn transient_outcome_carries_its_status() {
        let o = VisitError::TransientNetwork { status: Some(504) }.to_outcome();
        assert!(o.reached && !o.successful);
        assert_eq!(o.visual, VisualOutcome::TransientError);
        assert_eq!(o.first_party, vec![504]);
        let reset = VisitError::TransientNetwork { status: None }.to_outcome();
        assert!(reset.first_party.is_empty());
    }

    #[test]
    fn progress_is_captured_for_mid_visit_faults() {
        let p = VisitProgress {
            phase: VisitPhase::Interaction,
            steps_done: 3,
            steps_planned: 6,
            elapsed_ms: 1_200.0,
        };
        let e = VisitError::Stalled {
            progress: p,
            deadline_ms: 30_000.0,
        };
        assert_eq!(e.progress().map(|p| p.steps_done), Some(3));
        assert!((e.progress().map(|p| p.chain_fraction()).unwrap_or(0.0) - 0.5).abs() < 1e-12);
        assert_eq!(e.fault_kind(), FaultKind::MidVisitStall);
        assert!(e.to_outcome().reached);
        assert_eq!(e.to_outcome().visual, VisualOutcome::Stalled);
    }

    #[test]
    fn phase_names_are_stable() {
        assert_eq!(VisitPhase::Connect.name(), "connect");
        assert_eq!(VisitPhase::Interaction.name(), "interaction");
        assert_eq!(
            VisitProgress::at_phase(VisitPhase::DetectorScan, 10.0).chain_fraction(),
            0.0
        );
    }
}
