//! Synthetic page structure: nested DOM trees for the site population.
//!
//! The flat box-soup pages of the early model could not express the
//! breakage classes the paper's Table 2 attributes to page *structure* —
//! overlays occluding targets, content that only exists after layout,
//! deep containers. This module grows a site's page as a real tree:
//! containers nest to a configurable depth with a configurable branching
//! factor, leaves are content elements, and geometry comes exclusively
//! from the browser's deterministic flow layout (never authored).
//!
//! All randomness is drawn from the `"site"` stream of the provided
//! [`SimContext`], so a page is a pure function of (context seed,
//! structure config, site) — two machines generating the same site get
//! bit-identical trees, and the layout pass adds no randomness on top.

use crate::site::Site;
use hlisa_browser::{Display, Document, ElementBuilder, NodeId};
use hlisa_sim::SimContext;
use rand::Rng;

/// Shape parameters for generated page trees.
#[derive(Debug, Clone, PartialEq)]
pub struct PageStructure {
    /// Maximum container nesting depth below the body.
    pub max_depth: usize,
    /// Inclusive range of children per container.
    pub branching: (usize, usize),
    /// Page width (px).
    pub page_width: f64,
    /// Minimum page height (px); flow content can grow past it.
    pub min_page_height: f64,
}

impl Default for PageStructure {
    fn default() -> Self {
        Self {
            max_depth: 4,
            branching: (2, 4),
            page_width: 1280.0,
            min_page_height: 2_000.0,
        }
    }
}

/// The `id` attribute of the page's primary interaction target.
pub const TARGET_ID: &str = "cta";

/// A generated page plus the handles drives care about.
#[derive(Debug, Clone)]
pub struct GeneratedPage {
    /// The laid-out document.
    pub doc: Document,
    /// The primary interaction target (`#cta`).
    pub target: NodeId,
    /// The body element every section nests under.
    pub body: NodeId,
}

/// Generates the site's page as a nested DOM tree, drawing structure
/// from the context's `"site"` stream and letting the browser's flow
/// layout compute all geometry.
pub fn generate_page(
    site: &Site,
    structure: &PageStructure,
    ctx: &mut SimContext,
) -> GeneratedPage {
    let url = format!("https://{}/", site.domain);
    let mut doc = Document::new(&url, structure.page_width, structure.min_page_height);
    let body = ElementBuilder::flow(
        "body",
        Display::Block {
            height: 10.0,
            width_frac: 1.0,
            margin: 0.0,
            padding: 16.0,
        },
    )
    .insert(&mut doc);

    // Header with a wrapping nav row.
    let header = section(&mut doc, body, 60.0, 0.0);
    {
        let rng = ctx.stream("site");
        let links = rng.gen_range(3..8);
        for i in 0..links {
            let w = 60.0 + rng.gen_range(0.0..80.0);
            ElementBuilder::flow(
                "a",
                Display::Inline {
                    width: w,
                    height: 20.0,
                    margin: 4.0,
                },
            )
            .id(&format!("nav-{i}"))
            .insert_under(&mut doc, header);
        }
    }

    // The main content column: nested containers down to max_depth.
    let main = section(&mut doc, body, 40.0, 8.0);
    grow_containers(&mut doc, main, structure, 1, ctx);

    // The primary interaction target, always present and in flow.
    let target = ElementBuilder::flow(
        "button",
        Display::Block {
            height: 44.0,
            width_frac: 0.25,
            margin: 10.0,
            padding: 0.0,
        },
    )
    .id(TARGET_ID)
    .text("Continue")
    .insert_under(&mut doc, main);

    // Ad slots and the optional video player, as the visit model expects.
    for slot in 0..site.ad_slots {
        ElementBuilder::flow(
            "div",
            Display::Block {
                height: 90.0,
                width_frac: 0.75,
                margin: 6.0,
                padding: 0.0,
            },
        )
        .id(&format!("ad-{slot}"))
        .insert_under(&mut doc, body);
    }
    if site.has_video {
        ElementBuilder::flow(
            "video",
            Display::Block {
                height: 360.0,
                width_frac: 0.66,
                margin: 8.0,
                padding: 0.0,
            },
        )
        .id("player")
        .insert_under(&mut doc, body);
    }

    // The classic honey element: hidden, tiny, absolute.
    ElementBuilder::new("div", hlisa_browser::Rect::new(10.0, 10.0, 8.0, 8.0))
        .id("honey")
        .hidden()
        .insert(&mut doc);

    GeneratedPage { doc, target, body }
}

/// Appends one full-width block section under `parent`.
fn section(doc: &mut Document, parent: NodeId, height: f64, padding: f64) -> NodeId {
    ElementBuilder::flow(
        "section",
        Display::Block {
            height,
            width_frac: 1.0,
            margin: 4.0,
            padding,
        },
    )
    .insert_under(doc, parent)
}

/// Recursively grows containers under `parent` until `max_depth`,
/// drawing the branching factor and leaf mix from the `"site"` stream.
fn grow_containers(
    doc: &mut Document,
    parent: NodeId,
    structure: &PageStructure,
    depth: usize,
    ctx: &mut SimContext,
) {
    let (lo, hi) = structure.branching;
    let n = {
        let rng = ctx.stream("site");
        rng.gen_range(lo..hi + 1)
    };
    for i in 0..n {
        let (nest, leaf_h, wide) = {
            let rng = ctx.stream("site");
            (
                depth < structure.max_depth && rng.gen_bool(0.5),
                18.0 + rng.gen_range(0.0..40.0),
                rng.gen_bool(0.3),
            )
        };
        if nest {
            let child = ElementBuilder::flow(
                "div",
                Display::Block {
                    height: 10.0,
                    width_frac: if wide { 1.0 } else { 0.8 },
                    margin: 4.0,
                    padding: 6.0,
                },
            )
            .insert_under(doc, parent);
            grow_containers(doc, child, structure, depth + 1, ctx);
        } else {
            ElementBuilder::flow(
                "p",
                Display::Block {
                    height: leaf_h,
                    width_frac: 1.0,
                    margin: 2.0,
                    padding: 0.0,
                },
            )
            .id(&format!("d{depth}-p{i}"))
            .insert_under(doc, parent);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::{generate_population, PopulationConfig};

    fn small_site() -> Site {
        let cfg = PopulationConfig {
            n_sites: 3,
            unreachable_sites: 0,
            webdriver_visible: (0, 0, 0, 0),
            template_visible: (0, 0, 0),
            silent_http: (0, 0),
            breakage_sites: 0,
            ..PopulationConfig::default()
        };
        generate_population(&cfg).remove(0)
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let site = small_site();
        let s = PageStructure::default();
        let a = generate_page(&site, &s, &mut SimContext::new(42));
        let b = generate_page(&site, &s, &mut SimContext::new(42));
        assert_eq!(a.doc, b.doc);
        assert_eq!(a.target, b.target);
        let c = generate_page(&site, &s, &mut SimContext::new(43));
        assert_ne!(a.doc, c.doc, "different seeds must differ");
    }

    #[test]
    fn pages_are_trees_with_depth_and_branching() {
        let site = small_site();
        let s = PageStructure::default();
        let page = generate_page(&site, &s, &mut SimContext::new(7));
        let max_depth = page.doc.ids().map(|i| page.doc.depth(i)).max().unwrap();
        // body(0) → section(1) → containers… capped at max_depth below
        // the main section, plus leaves one deeper.
        assert!(max_depth >= 3, "page too flat: depth {max_depth}");
        assert!(
            max_depth <= s.max_depth + 2,
            "depth cap violated: {max_depth}"
        );
        // The tree is connected: every non-root has a parent.
        let roots = page
            .doc
            .ids()
            .filter(|&i| page.doc.parent(i).is_none())
            .count();
        assert!(roots <= 2, "body + honey only, got {roots} roots");
    }

    #[test]
    fn layout_places_the_target_in_flow() {
        let site = small_site();
        let page = generate_page(&site, &PageStructure::default(), &mut SimContext::new(7));
        let r = page.doc.element(page.target).rect;
        assert!(r.width > 0.0 && r.height > 0.0, "target has no box: {r:?}");
        // The target is hit-testable at its center (nothing occludes it
        // on a scenario-free page).
        assert_eq!(page.doc.hit_test(r.center()), Some(page.target));
        assert_eq!(page.doc.by_id(TARGET_ID), Some(page.target));
    }

    #[test]
    fn ad_slots_and_video_follow_the_site_model() {
        let mut site = small_site();
        site.ad_slots = 3;
        site.has_video = true;
        let page = generate_page(&site, &PageStructure::default(), &mut SimContext::new(9));
        for slot in 0..3 {
            assert!(page.doc.by_id(&format!("ad-{slot}")).is_some());
        }
        assert!(page.doc.by_id("player").is_some());
    }
}
