//! Population generator: a 1,000-site random sample of a Tranco-style
//! top-10K list, with detector prevalence calibrated to §3.2's findings.

use crate::dynamics::{ScenarioKind, ScenarioMix};
use crate::site::{DetectionMethod, Reaction, Site, SiteDetector};
use hlisa_sim::SimContext;
use hlisa_stats::rngutil::derive_seed;
use rand::seq::SliceRandom;
use rand::Rng;

/// Calibration knobs (defaults reproduce the paper's environment).
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationConfig {
    /// Seed for the whole population.
    pub seed: u64,
    /// Sample size (paper: 1,000 of the top 10K).
    pub n_sites: usize,
    /// Sites that never answer (paper reached 921/1,000).
    pub unreachable_sites: usize,
    /// Visible detectors keyed on `navigator.webdriver`:
    /// (block pages, CAPTCHAs, hide-all-ads, freeze-video).
    pub webdriver_visible: (usize, usize, usize, usize),
    /// Spoof-resistant template-attack detectors:
    /// (block pages, hide-all-ads, reduce-ads).
    pub template_visible: (usize, usize, usize),
    /// Silent HTTP-level reactions keyed on `navigator.webdriver`:
    /// (403 responders, 503 responders).
    pub silent_http: (usize, usize),
    /// Sites that break under JS-level spoofing (paper: one deformed
    /// layout + one ever-loading video).
    pub breakage_sites: usize,
    /// Mean per-visit transient failure probability.
    pub mean_flakiness: f64,
    /// How many sites exhibit each dynamic-page scenario (cookie
    /// banners, lazy content, SPA re-renders). All-zero by default:
    /// assignment then touches no site and draws nothing, so default
    /// populations are bit-identical to the pre-scenario model.
    pub scenarios: ScenarioMix,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        Self {
            seed: 0x7261_6e63, // "ranc"
            n_sites: 1_000,
            unreachable_sites: 79,
            // 8 blocking/CAPTCHA sites in col (1): 5 blocks + 2 captchas
            // keyed on webdriver, +1 spoof-resistant template blocker.
            webdriver_visible: (5, 2, 4, 1),
            // Col (2) keeps 1 no-ads and 2 less-ads sites + 1 blocker:
            // these survive spoofing because they template-attack.
            template_visible: (1, 1, 2),
            silent_http: (9, 4),
            breakage_sites: 2,
            mean_flakiness: 0.019,
            scenarios: ScenarioMix::default(),
        }
    }
}

/// The per-site drawn attributes, in exact draw order. Factored out so the
/// eager generator and the lazy shard layer (`shards.rs`) perform the one
/// canonical draw schedule — any divergence would split the `"population"`
/// stream's bitstream between the two paths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct SiteAttrs {
    pub(crate) ad_slots: u8,
    pub(crate) has_video: bool,
    pub(crate) flaky_visit_prob: f64,
    pub(crate) first_party_requests: u8,
    pub(crate) third_party_requests: u8,
}

/// Draws one site's attributes off `rng` — five draws, fixed order.
pub(crate) fn draw_site_attrs<R: Rng + ?Sized>(
    config: &PopulationConfig,
    rng: &mut R,
) -> SiteAttrs {
    SiteAttrs {
        ad_slots: rng.gen_range(0..6),
        has_video: rng.gen_bool(0.18),
        flaky_visit_prob: (rng.gen_range(0.0..2.0) * config.mean_flakiness).clamp(0.0, 0.5),
        first_party_requests: rng.gen_range(6..18),
        third_party_requests: rng.gen_range(10..45),
    }
}

/// Builds site `i` from its drawn attributes. Consumes no randomness: rank
/// is hash-derived from `(seed, i)` and the domain is positional, so a
/// shard can materialise its sites knowing only its RNG entry state.
pub(crate) fn materialise_site(config: &PopulationConfig, i: usize, attrs: SiteAttrs) -> Site {
    let rank_seed = derive_seed(config.seed, "rank", i as u64);
    Site {
        rank: (rank_seed % 10_000) as u32 + 1,
        domain: format!("site{:04}.example", i),
        detector: None,
        ad_slots: attrs.ad_slots,
        has_video: attrs.has_video,
        breaks_under_spoofing: false,
        unreachable: false,
        flaky_visit_prob: attrs.flaky_visit_prob,
        first_party_requests: attrs.first_party_requests,
        third_party_requests: attrs.third_party_requests,
        scenario: None,
    }
}

/// One special role dealt to a site off the shuffled cursor. `Copy` so the
/// shard layer can bucket assignments per shard without cloning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum SiteRole {
    Unreachable,
    Detector(SiteDetector),
    Breakage { has_video: bool },
    Scenario(ScenarioKind),
}

/// Applies a dealt role to a site — the single place the deploy side
/// effects (minimum ad slots for ad reactions, forced video for freeze)
/// live, shared by the eager and shard paths.
pub(crate) fn apply_role(site: &mut Site, role: SiteRole) {
    match role {
        SiteRole::Unreachable => site.unreachable = true,
        SiteRole::Detector(d) => {
            site.detector = Some(d);
            if d.reaction == Reaction::HideAllAds || d.reaction == Reaction::ReduceAds {
                site.ad_slots = site.ad_slots.max(2);
            }
            if d.reaction == Reaction::FreezeVideo {
                site.has_video = true;
            }
        }
        SiteRole::Breakage { has_video } => {
            site.breaks_under_spoofing = true;
            site.has_video = has_video;
        }
        SiteRole::Scenario(kind) => site.scenario = Some(kind),
    }
}

/// Shuffles the site indices and deals the special roles in the canonical
/// order, reporting each `(site index, role)` pair to `assign`. All
/// randomness is the one Fisher–Yates shuffle; the deals themselves draw
/// nothing, so an all-zero scenario mix still changes no draw.
pub(crate) fn deal_roles<R: Rng + ?Sized>(
    config: &PopulationConfig,
    rng: &mut R,
    mut assign: impl FnMut(usize, SiteRole),
) {
    let mut idx: Vec<usize> = (0..config.n_sites).collect();
    idx.shuffle(rng);
    let mut cursor = idx.into_iter();

    for i in cursor.by_ref().take(config.unreachable_sites) {
        assign(i, SiteRole::Unreachable);
    }

    let detector = |method, reaction| SiteRole::Detector(SiteDetector { method, reaction });
    let (wd_block, wd_captcha, wd_noads, wd_video) = config.webdriver_visible;
    let (ta_block, ta_noads, ta_lessads) = config.template_visible;
    let (h403, h503) = config.silent_http;
    let detector_deals = [
        (
            wd_block,
            DetectionMethod::WebdriverFlag,
            Reaction::BlockPage,
        ),
        (
            wd_captcha,
            DetectionMethod::WebdriverFlag,
            Reaction::Captcha,
        ),
        (
            wd_noads,
            DetectionMethod::WebdriverFlag,
            Reaction::HideAllAds,
        ),
        (
            wd_video,
            DetectionMethod::WebdriverFlag,
            Reaction::FreezeVideo,
        ),
        (
            ta_block,
            DetectionMethod::TemplateAttack,
            Reaction::BlockPage,
        ),
        (
            ta_noads,
            DetectionMethod::TemplateAttack,
            Reaction::HideAllAds,
        ),
        (
            ta_lessads,
            DetectionMethod::TemplateAttack,
            Reaction::ReduceAds,
        ),
        (h403, DetectionMethod::WebdriverFlag, Reaction::Http403),
        (h503, DetectionMethod::WebdriverFlag, Reaction::Http503),
    ];
    for (n, method, reaction) in detector_deals {
        for i in cursor.by_ref().take(n) {
            assign(i, detector(method, reaction));
        }
    }

    // The paper saw one deformed layout and one ever-loading video, so the
    // breakage sites alternate video/no-video rather than drawing it.
    for (k, i) in cursor.by_ref().take(config.breakage_sites).enumerate() {
        assign(
            i,
            SiteRole::Breakage {
                has_video: k % 2 == 0,
            },
        );
    }

    // Dynamic-page scenarios come off the same shuffled cursor, so they
    // are disjoint from every special role above and consume no extra
    // randomness — an all-zero mix (the default) changes nothing at all.
    for (kind, count) in [
        (ScenarioKind::CookieBanner, config.scenarios.cookie_banner),
        (ScenarioKind::LazyContent, config.scenarios.lazy_content),
        (ScenarioKind::SpaMutation, config.scenarios.spa_mutation),
    ] {
        for i in cursor.by_ref().take(count) {
            assign(i, SiteRole::Scenario(kind));
        }
    }
}

/// Generates the site population. Deterministic in the config.
///
/// This is the eager reference path: the lazy [`crate::PopulationShards`]
/// layer must reproduce its output bit for bit (differential-tested),
/// shard by shard, without ever holding the whole `Vec<Site>`.
pub fn generate_population(config: &PopulationConfig) -> Vec<Site> {
    let mut ctx = SimContext::new(config.seed);
    let rng = ctx.stream("population");

    // Base sites.
    let mut sites: Vec<Site> = (0..config.n_sites)
        .map(|i| {
            let attrs = draw_site_attrs(config, rng);
            materialise_site(config, i, attrs)
        })
        .collect();

    // Shuffle indices and deal out the special roles disjointly.
    deal_roles(config, rng, |i, role| apply_role(&mut sites[i], role));

    sites
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_counts_match_config() {
        let cfg = PopulationConfig::default();
        let sites = generate_population(&cfg);
        assert_eq!(sites.len(), 1_000);
        assert_eq!(sites.iter().filter(|s| s.unreachable).count(), 79);
        let visible = sites.iter().filter(|s| s.visibly_defends()).count();
        assert_eq!(visible, 5 + 2 + 4 + 1 + 1 + 1 + 2); // 16 sites ≈ 1.7 %
        let silent = sites
            .iter()
            .filter(|s| s.detector.map(|d| !d.reaction.visible()).unwrap_or(false))
            .count();
        assert_eq!(silent, 13);
        assert_eq!(sites.iter().filter(|s| s.breaks_under_spoofing).count(), 2);
    }

    #[test]
    fn special_roles_are_disjoint() {
        let sites = generate_population(&PopulationConfig::default());
        for s in &sites {
            let roles = usize::from(s.unreachable)
                + usize::from(s.detector.is_some())
                + usize::from(s.breaks_under_spoofing);
            assert!(roles <= 1, "site {} has {} roles", s.domain, roles);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = PopulationConfig::default();
        assert_eq!(generate_population(&cfg), generate_population(&cfg));
        let other = PopulationConfig { seed: 1, ..cfg };
        assert_ne!(
            generate_population(&other),
            generate_population(&PopulationConfig::default())
        );
    }

    #[test]
    fn scenario_mix_default_assigns_nothing_and_changes_nothing() {
        let baseline = generate_population(&PopulationConfig::default());
        assert!(baseline.iter().all(|s| s.scenario.is_none()));
        // An explicit all-zero mix is the same population, bit for bit.
        let explicit = PopulationConfig {
            scenarios: ScenarioMix::default(),
            ..PopulationConfig::default()
        };
        assert_eq!(generate_population(&explicit), baseline);
    }

    #[test]
    fn scenario_sites_are_dealt_disjointly_from_special_roles() {
        let cfg = PopulationConfig {
            scenarios: ScenarioMix {
                cookie_banner: 5,
                lazy_content: 4,
                spa_mutation: 3,
            },
            ..PopulationConfig::default()
        };
        let sites = generate_population(&cfg);
        let count = |k: ScenarioKind| sites.iter().filter(|s| s.scenario == Some(k)).count();
        assert_eq!(count(ScenarioKind::CookieBanner), 5);
        assert_eq!(count(ScenarioKind::LazyContent), 4);
        assert_eq!(count(ScenarioKind::SpaMutation), 3);
        for s in sites.iter().filter(|s| s.scenario.is_some()) {
            assert!(
                !s.unreachable && s.detector.is_none() && !s.breaks_under_spoofing,
                "{} holds two roles",
                s.domain
            );
        }
        // The non-scenario part of the population is untouched.
        let baseline = generate_population(&PopulationConfig::default());
        for (a, b) in sites.iter().zip(&baseline) {
            assert_eq!(
                Site {
                    scenario: None,
                    ..a.clone()
                },
                *b
            );
        }
    }

    #[test]
    fn ranks_are_within_top_10k() {
        let sites = generate_population(&PopulationConfig::default());
        assert!(sites.iter().all(|s| (1..=10_000).contains(&s.rank)));
    }

    #[test]
    fn ad_reaction_sites_have_ads_to_hide() {
        let sites = generate_population(&PopulationConfig::default());
        for s in sites.iter().filter(|s| {
            matches!(
                s.detector.map(|d| d.reaction),
                Some(Reaction::HideAllAds) | Some(Reaction::ReduceAds)
            )
        }) {
            assert!(s.ad_slots >= 2);
        }
    }
}
