//! Site model: what a website is made of and how it may react to bots.

use crate::dynamics::ScenarioKind;
use serde::{Deserialize, Serialize};

/// How a site detects web bots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DetectionMethod {
    /// Reads `navigator.webdriver` (the dominant commercial check — Vastel
    /// et al. found detectors "highly depend on the webdriver attribute").
    WebdriverFlag,
    /// Runs a JS template attack / side-effect scan, catching spoofing
    /// attempts too (rare; the paper saw one site keep blocking the
    /// extension for a subset of visits).
    TemplateAttack,
}

/// What a site does when it decides the visitor is a bot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Reaction {
    /// Serve a block page (visible).
    BlockPage,
    /// Serve a CAPTCHA interstitial (visible).
    Captcha,
    /// Suppress all ad slots (visible as missing ads).
    HideAllAds,
    /// Suppress some ad slots (visible as fewer ads).
    ReduceAds,
    /// Keep the page but answer first-party subresources with 403.
    Http403,
    /// Keep the page but answer first-party subresources with 503.
    Http503,
    /// Stop serving video segments, freezing the page's player (the
    /// "frozen video element(s)" row of Table 2).
    FreezeVideo,
}

impl Reaction {
    /// Whether a screenshot review would attribute this reaction to bot
    /// detection (§3.2 chooses visual responses because they "allow
    /// definitive attribution").
    pub fn visible(&self) -> bool {
        matches!(
            self,
            Reaction::BlockPage
                | Reaction::Captcha
                | Reaction::HideAllAds
                | Reaction::ReduceAds
                | Reaction::FreezeVideo
        )
    }
}

/// A deployed bot detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteDetector {
    /// How it detects.
    pub method: DetectionMethod,
    /// What it does on detection.
    pub reaction: Reaction,
}

/// A site in the synthetic Tranco sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Site {
    /// Tranco-style rank within the top 10K.
    pub rank: u32,
    /// Domain name.
    pub domain: String,
    /// Deployed bot detector, if any.
    pub detector: Option<SiteDetector>,
    /// Number of ad slots the page normally renders.
    pub ad_slots: u8,
    /// Whether the page embeds a video player.
    pub has_video: bool,
    /// Whether JS-level property spoofing breaks the page (the two
    /// compatibility casualties of §3.2: one deformed layout, one
    /// ever-loading video element).
    pub breaks_under_spoofing: bool,
    /// Host is down / unresolvable for the whole campaign.
    pub unreachable: bool,
    /// Per-visit probability of a transient failure (timeouts, 5xx flukes
    /// — the "web dynamics" the paper averages out with 8 instances).
    pub flaky_visit_prob: f64,
    /// Typical number of first-party subresource requests per visit.
    pub first_party_requests: u8,
    /// Typical number of third-party requests per visit.
    pub third_party_requests: u8,
    /// Dynamic-page behaviour this site exhibits (cookie wall, lazy
    /// content, SPA re-render), if any. `None` for the classic static
    /// population — the default [`crate::population::PopulationConfig`]
    /// assigns no scenarios, keeping campaign output bit-identical to
    /// the pre-scenario model.
    pub scenario: Option<ScenarioKind>,
}

impl Site {
    /// True when the site deploys any visible-reaction bot detector.
    pub fn visibly_defends(&self) -> bool {
        self.detector.map(|d| d.reaction.visible()).unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reaction_visibility_partition() {
        assert!(Reaction::BlockPage.visible());
        assert!(Reaction::Captcha.visible());
        assert!(Reaction::HideAllAds.visible());
        assert!(Reaction::ReduceAds.visible());
        assert!(!Reaction::Http403.visible());
        assert!(!Reaction::Http503.visible());
    }

    #[test]
    fn visibly_defends_requires_visible_reaction() {
        let mut s = Site {
            rank: 1,
            domain: "a.test".into(),
            detector: None,
            ad_slots: 2,
            has_video: false,
            breaks_under_spoofing: false,
            unreachable: false,
            flaky_visit_prob: 0.0,
            first_party_requests: 10,
            third_party_requests: 20,
            scenario: None,
        };
        assert!(!s.visibly_defends());
        s.detector = Some(SiteDetector {
            method: DetectionMethod::WebdriverFlag,
            reaction: Reaction::Http403,
        });
        assert!(!s.visibly_defends());
        s.detector = Some(SiteDetector {
            method: DetectionMethod::WebdriverFlag,
            reaction: Reaction::BlockPage,
        });
        assert!(s.visibly_defends());
    }
}
