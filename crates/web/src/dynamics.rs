//! Dynamic-page scenarios: the page behaviours that separate a crawler
//! that *interacts like a human* from one that teleports.
//!
//! Krumnow et al. ("Analysing and strengthening OpenWPM's reliability")
//! show page dynamism silently corrupting measurements; Gundelach et al.
//! ("Detecting Bot Detection") catalogue detectors keying on how
//! automation copes with overlays and late content. This module models
//! the three classes as *deterministic page programs* layered onto a
//! generated tree page ([`crate::page`]):
//!
//! * [`ScenarioKind::CookieBanner`] — a consent overlay paints above the
//!   whole page until its accept button is clicked; clicks that ignore it
//!   land on the banner, not the target underneath.
//! * [`ScenarioKind::LazyContent`] — the measured content is
//!   `display: none` until the viewport has *scrolled* past a reveal
//!   threshold (an IntersectionObserver-style loader watching wheel
//!   scrolling); a script jump never runs the loader.
//! * [`ScenarioKind::SpaMutation`] — the first click re-renders the
//!   page: the follow-up target is detached and re-created elsewhere, so
//!   coordinates (and node handles) cached before the click go stale.
//!
//! Scenario *application* consumes no RNG — each transformation is a
//! pure function of the page — so campaigns with scenarios disabled stay
//! bit-identical to the pre-scenario model, and the scenario rows are
//! reproducible where enabled.

use crate::page::GeneratedPage;
use crate::visit::VisualOutcome;
use hlisa_browser::dom::DocumentMutator;
use hlisa_browser::{Display, ElementBuilder, NodeId, Rect};
use serde::{Deserialize, Serialize};

/// A dynamic-page behaviour a site can exhibit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScenarioKind {
    /// A consent wall occludes the page until dismissed.
    CookieBanner,
    /// Content lays out only after genuine scrolling reaches it.
    LazyContent,
    /// The first interaction re-renders the page under the crawler.
    SpaMutation,
}

impl ScenarioKind {
    /// All scenario kinds, in fixed order.
    pub const ALL: [ScenarioKind; 3] = [
        ScenarioKind::CookieBanner,
        ScenarioKind::LazyContent,
        ScenarioKind::SpaMutation,
    ];

    /// The screenshot-level outcome a visit shows when a crawler fails
    /// to cope with this scenario — each kind gets its own Table 2 row.
    pub fn failure_outcome(&self) -> VisualOutcome {
        match self {
            ScenarioKind::CookieBanner => VisualOutcome::StuckOnOverlay,
            ScenarioKind::LazyContent => VisualOutcome::MissingLazyContent,
            ScenarioKind::SpaMutation => VisualOutcome::StaleElement,
        }
    }
}

/// How many sites of the population exhibit each scenario. The default
/// is all-zero: no site is dynamic, and population generation and every
/// downstream campaign remain bit-identical to the pre-scenario model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ScenarioMix {
    /// Sites with a consent wall.
    pub cookie_banner: usize,
    /// Sites with scroll-gated lazy content.
    pub lazy_content: usize,
    /// Sites that re-render on first interaction.
    pub spa_mutation: usize,
}

impl ScenarioMix {
    /// Total scenario sites requested.
    pub fn total(&self) -> usize {
        self.cookie_banner + self.lazy_content + self.spa_mutation
    }
}

/// `id` attribute of the consent overlay root.
pub const BANNER_ID: &str = "cookie-banner";
/// `id` attribute of the overlay's accept (dismiss) button.
pub const ACCEPT_ID: &str = "cookie-accept";
/// `id` attribute of the scroll-gated section.
pub const LAZY_ID: &str = "lazy-section";
/// `id` attribute of the button inside the lazy section — the element a
/// lazy-content visit must interact with.
pub const LAZY_TARGET_ID: &str = "lazy-cta";
/// `id` attribute of the post-click confirmation button (the element an
/// SPA visit must click second).
pub const CONFIRM_ID: &str = "confirm";

/// Fraction of the page height the viewport bottom must have scrolled
/// past for the lazy loader to fire.
pub const LAZY_REVEAL_FRACTION: f64 = 0.6;

/// The scroll offset at which the lazy loader reveals its section.
pub fn lazy_reveal_threshold(page_height: f64, viewport_height: f64) -> f64 {
    (LAZY_REVEAL_FRACTION * page_height - viewport_height).max(0.0)
}

/// Applies a scenario's initial page state to a generated page. Pure —
/// consumes no RNG; geometry comes from the authored overlay boxes and
/// the deterministic reflow.
pub fn apply_scenario(page: &mut GeneratedPage, kind: ScenarioKind) {
    match kind {
        ScenarioKind::CookieBanner => {
            // A modal centred over the primary target, one paint layer
            // up, with the accept button in its lower-left corner.
            let target_rect = page.doc.element(page.target).rect;
            let c = target_rect.center();
            let w = (page.doc.page_width * 0.6).max(320.0);
            let h = 240.0;
            let banner_rect = Rect::new((c.x - w / 2.0).max(0.0), (c.y - h / 2.0).max(0.0), w, h);
            let banner = ElementBuilder::new("div", banner_rect)
                .id(BANNER_ID)
                .layer(1)
                .text("We value your privacy")
                .insert(&mut page.doc);
            ElementBuilder::new(
                "button",
                Rect::new(banner_rect.x + 24.0, banner_rect.y + h - 52.0, 120.0, 32.0),
            )
            .id(ACCEPT_ID)
            .text("Accept all")
            .insert_under(&mut page.doc, banner);
        }
        ScenarioKind::LazyContent => {
            // The measured content sits in a display:none section at the
            // end of the body; until revealed it has no geometry and no
            // locator presence.
            let section = ElementBuilder::flow("section", Display::None)
                .id(LAZY_ID)
                .insert_under(&mut page.doc, page.body);
            ElementBuilder::flow(
                "button",
                Display::Block {
                    height: 40.0,
                    width_frac: 0.3,
                    margin: 8.0,
                    padding: 0.0,
                },
            )
            .id(LAZY_TARGET_ID)
            .text("Load more")
            .insert_under(&mut page.doc, section);
        }
        ScenarioKind::SpaMutation => {
            // The confirmation button exists up front (so a naive driver
            // can cache its coordinates), flowing right after the target.
            ElementBuilder::flow(
                "button",
                Display::Block {
                    height: 40.0,
                    width_frac: 0.25,
                    margin: 10.0,
                    padding: 0.0,
                },
            )
            .id(CONFIRM_ID)
            .text("Confirm")
            .insert_under(&mut page.doc, page.body);
        }
    }
}

/// Page program: dismisses the consent overlay (what clicking
/// [`ACCEPT_ID`] runs). Returns whether an overlay was present.
pub fn dismiss_banner(m: &mut DocumentMutator) -> bool {
    match m.doc().by_id(BANNER_ID) {
        Some(banner) => {
            m.detach(banner);
            true
        }
        None => false,
    }
}

/// Page program: the lazy loader. Fires when called with the viewport
/// scrolled past [`lazy_reveal_threshold`] *by a wheel-origin scroll* —
/// the caller (the browser harness) is responsible for only invoking it
/// on genuine scroll events, mirroring an IntersectionObserver that
/// never sees a teleporting `window.scrollTo`. Returns whether the
/// section was revealed by this call.
pub fn reveal_lazy(m: &mut DocumentMutator) -> bool {
    match m.doc().ids().find(|&i| m.doc().element(i).id == LAZY_ID) {
        Some(section) => {
            if m.doc().in_tree(section) {
                return false; // already revealed
            }
            m.set_display(
                section,
                Display::Block {
                    height: 60.0,
                    width_frac: 1.0,
                    margin: 8.0,
                    padding: 6.0,
                },
            );
            true
        }
        None => false,
    }
}

/// Page program: the SPA re-render triggered by the first click on the
/// primary target. The confirmation button is detached and re-created at
/// a different place (an absolute modal near the page top), so cached
/// geometry and node handles for [`CONFIRM_ID`] go stale. Returns the
/// fresh node, or `None` if the page has no confirmation button.
pub fn spa_rerender(m: &mut DocumentMutator) -> Option<NodeId> {
    let old = m.doc().by_id(CONFIRM_ID)?;
    let page_w = m.doc().page_width;
    m.detach(old);
    Some(
        m.append_root(
            ElementBuilder::new("button", Rect::new(page_w * 0.5 - 80.0, 120.0, 160.0, 40.0))
                .id(CONFIRM_ID)
                .layer(1)
                .text("Really confirm")
                .build(),
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{generate_page, PageStructure};
    use crate::population::{generate_population, PopulationConfig};
    use hlisa_sim::SimContext;

    fn scenario_page(kind: ScenarioKind) -> GeneratedPage {
        let cfg = PopulationConfig {
            n_sites: 1,
            unreachable_sites: 0,
            webdriver_visible: (0, 0, 0, 0),
            template_visible: (0, 0, 0),
            silent_http: (0, 0),
            breakage_sites: 0,
            ..PopulationConfig::default()
        };
        let site = generate_population(&cfg).remove(0);
        let mut page = generate_page(&site, &PageStructure::default(), &mut SimContext::new(5));
        apply_scenario(&mut page, kind);
        page
    }

    #[test]
    fn banner_occludes_target_until_dismissed() {
        let mut page = scenario_page(ScenarioKind::CookieBanner);
        let target_center = page.doc.element(page.target).rect.center();
        let banner = page.doc.by_id(BANNER_ID).unwrap();
        // A click aimed at the target lands on the overlay.
        assert_eq!(page.doc.hit_test(target_center), Some(banner));
        // The accept button paints above the banner.
        let accept = page.doc.by_id(ACCEPT_ID).unwrap();
        let accept_center = page.doc.element(accept).rect.center();
        assert_eq!(page.doc.hit_test(accept_center), Some(accept));
        // Dismissing restores the target.
        let dismissed = page.doc.mutate(dismiss_banner);
        assert!(dismissed);
        assert_eq!(page.doc.hit_test(target_center), Some(page.target));
        assert!(page.doc.by_id(BANNER_ID).is_none());
        // Idempotent: a second dismissal finds nothing.
        assert!(!page.doc.mutate(dismiss_banner));
    }

    #[test]
    fn lazy_section_only_exists_after_reveal() {
        let mut page = scenario_page(ScenarioKind::LazyContent);
        assert!(page.doc.by_id(LAZY_ID).is_none());
        assert!(page.doc.by_id(LAZY_TARGET_ID).is_none());
        let h_before = page.doc.page_height;
        let revealed = page.doc.mutate(reveal_lazy);
        assert!(revealed);
        let lazy = page.doc.by_id(LAZY_ID).unwrap();
        let cta = page.doc.by_id(LAZY_TARGET_ID).unwrap();
        let r = page.doc.element(cta).rect;
        assert!(r.height > 0.0, "lazy target has no box after reveal");
        assert_eq!(page.doc.hit_test(r.center()), Some(cta));
        assert!(page.doc.element(lazy).rect.height > 0.0);
        assert!(page.doc.page_height >= h_before);
        // Second reveal is a no-op.
        assert!(!page.doc.mutate(reveal_lazy));
    }

    #[test]
    fn spa_rerender_invalidates_cached_geometry() {
        let mut page = scenario_page(ScenarioKind::SpaMutation);
        let stale = page.doc.by_id(CONFIRM_ID).unwrap();
        let stale_center = page.doc.element(stale).rect.center();
        let fresh = page.doc.mutate(spa_rerender).unwrap();
        assert_ne!(stale, fresh);
        // The old handle is detached; the cached point no longer hits a
        // confirmation button.
        assert!(!page.doc.in_tree(stale));
        assert_ne!(page.doc.hit_test(stale_center), Some(stale));
        // A re-query finds the fresh node at its new location.
        assert_eq!(page.doc.by_id(CONFIRM_ID), Some(fresh));
        let fresh_center = page.doc.element(fresh).rect.center();
        assert_eq!(page.doc.hit_test(fresh_center), Some(fresh));
    }

    #[test]
    fn scenario_application_is_deterministic() {
        for kind in ScenarioKind::ALL {
            let a = scenario_page(kind);
            let b = scenario_page(kind);
            assert_eq!(a.doc, b.doc, "{kind:?} application must be pure");
        }
    }

    #[test]
    fn failure_outcomes_are_distinct_rows() {
        let outcomes: Vec<_> = ScenarioKind::ALL
            .iter()
            .map(|k| k.failure_outcome())
            .collect();
        for (i, a) in outcomes.iter().enumerate() {
            for b in &outcomes[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn reveal_threshold_tracks_page_height() {
        assert_eq!(lazy_reveal_threshold(2_000.0, 720.0), 480.0);
        assert_eq!(lazy_reveal_threshold(500.0, 720.0), 0.0);
    }
}
