//! The "naive solution" baselines of §4.1 (Fig. 1 C, Fig. 2 bottom left).
//!
//! The naive improver fixes Selenium's *limits* but not its *distributions*
//! — the second rung of the Fig. 3 simulator ladder ("limit behaviour to
//! humanly possible"):
//!
//! * mouse movement along "a straightforward Bézier curve", constant
//!   speed, no jitter — "still very artificial";
//! * click placement "randomised ... using a uniform distribution",
//!   which "generates clicks in places humans never reach";
//! * plausible but uniformly-jittered fixed typing delays (with Shift, so
//!   no hard impossibility remains);
//! * wheel scrolling at a metronomic tick gap without finger breaks.

use crate::motion::{plan_motion, trajectory_to_actions, MotionStyle};
use hlisa_browser::events::MouseButton;
use hlisa_browser::viewport::WHEEL_TICK_PX;
use hlisa_browser::Point;
use hlisa_human::keyboard::us_qwerty;
use hlisa_human::HumanParams;
use hlisa_sim::SimContext;
use hlisa_webdriver::{Action, ElementHandle, Session, WebDriverError, HLISA_MIN_MOVE_MS};
use rand::Rng;

/// A naive "humanised" action chain.
#[derive(Debug, Clone)]
pub struct NaiveActionChains {
    steps: Vec<NaiveStep>,
    params: HumanParams,
    ctx: SimContext,
}

#[derive(Debug, Clone, PartialEq)]
enum NaiveStep {
    MoveToElement(ElementHandle),
    Click(Option<ElementHandle>),
    SendKeysToElement(ElementHandle, String),
    ScrollBy(f64),
    Pause(f64),
}

impl NaiveActionChains {
    /// Creates a naive chain.
    pub fn new(seed: u64) -> Self {
        Self::with_context(SimContext::new(seed))
    }

    /// Creates a naive chain over an existing simulation context.
    pub fn with_context(ctx: SimContext) -> Self {
        Self {
            steps: Vec::new(),
            params: HumanParams::paper_baseline(),
            ctx,
        }
    }

    /// Queues a move to a uniformly random point on the element.
    pub fn move_to_element(mut self, el: ElementHandle) -> Self {
        self.steps.push(NaiveStep::MoveToElement(el));
        self
    }

    /// Queues a click (optionally moving to the element first).
    pub fn click(mut self, el: Option<ElementHandle>) -> Self {
        self.steps.push(NaiveStep::Click(el));
        self
    }

    /// Queues click-then-type with fixed-ish delays.
    pub fn send_keys_to_element(mut self, el: ElementHandle, keys: &str) -> Self {
        self.steps
            .push(NaiveStep::SendKeysToElement(el, keys.to_string()));
        self
    }

    /// Queues a metronomic wheel scroll.
    pub fn scroll_by(mut self, dy: f64) -> Self {
        self.steps.push(NaiveStep::ScrollBy(dy));
        self
    }

    /// Queues a pause (seconds).
    pub fn pause(mut self, seconds: f64) -> Self {
        self.steps.push(NaiveStep::Pause(seconds * 1000.0));
        self
    }

    /// Executes the chain.
    pub fn perform(mut self, session: &mut Session) -> Result<(), WebDriverError> {
        session.override_pointer_move_min_duration(HLISA_MIN_MOVE_MS);
        let steps = std::mem::take(&mut self.steps);
        for step in steps {
            match step {
                NaiveStep::MoveToElement(el) => self.move_impl(session, el)?,
                NaiveStep::Click(el) => {
                    if let Some(el) = el {
                        self.move_impl(session, el)?;
                    }
                    // Plausible dwell with uniform jitter — inside human
                    // limits, but the *distribution* is wrong.
                    let dwell = 60.0 + self.ctx.stream("naive").gen_range(-10.0..10.0);
                    session.perform_actions(&[
                        Action::PointerDown(MouseButton::Left),
                        Action::Pause(dwell),
                        Action::PointerUp(MouseButton::Left),
                    ]);
                }
                NaiveStep::SendKeysToElement(el, keys) => {
                    self.move_impl(session, el)?;
                    let dwell = 55.0 + self.ctx.stream("naive").gen_range(-10.0..10.0);
                    session.perform_actions(&[
                        Action::PointerDown(MouseButton::Left),
                        Action::Pause(dwell),
                        Action::PointerUp(MouseButton::Left),
                        Action::Pause(150.0),
                    ]);
                    let rng = self.ctx.stream("naive");
                    let mut actions = Vec::new();
                    let mut shift_down = false;
                    for ch in keys.chars() {
                        let Some(spec) = us_qwerty(ch) else { continue };
                        if spec.needs_shift && !shift_down {
                            actions.push(Action::KeyDown("Shift".into()));
                            actions.push(Action::Pause(30.0));
                            shift_down = true;
                        } else if !spec.needs_shift && shift_down {
                            actions.push(Action::KeyUp("Shift".into()));
                            actions.push(Action::Pause(15.0));
                            shift_down = false;
                        }
                        actions.push(Action::KeyDown(spec.key.clone()));
                        actions.push(Action::Pause(50.0 + rng.gen_range(-8.0..8.0)));
                        actions.push(Action::KeyUp(spec.key));
                        actions.push(Action::Pause(50.0 + rng.gen_range(-8.0..8.0)));
                    }
                    if shift_down {
                        actions.push(Action::KeyUp("Shift".into()));
                    }
                    session.perform_actions(&actions);
                }
                NaiveStep::ScrollBy(dy) => {
                    let dir = if dy >= 0.0 { 1 } else { -1 };
                    let ticks = (dy.abs() / WHEEL_TICK_PX).round() as usize;
                    let rng = self.ctx.stream("naive");
                    let mut actions = Vec::new();
                    for i in 0..ticks {
                        actions.push(Action::WheelTick(dir));
                        if i + 1 < ticks {
                            actions.push(Action::Pause(120.0 + rng.gen_range(-15.0..15.0)));
                        }
                    }
                    session.perform_actions(&actions);
                }
                NaiveStep::Pause(ms) => {
                    session.perform_actions(&[Action::Pause(ms)]);
                }
            }
        }
        Ok(())
    }

    fn move_impl(
        &mut self,
        session: &mut Session,
        el: ElementHandle,
    ) -> Result<(), WebDriverError> {
        session.ensure_interactable(el)?;
        let r = session.element_rect(el);
        // Uniform placement over the whole element (Fig. 2 bottom left).
        let target = {
            let rng = self.ctx.stream("naive");
            Point::new(
                r.x + rng.gen_range(0.0..r.width),
                r.y + rng.gen_range(0.0..r.height),
            )
        };
        let from = session.browser.mouse_position();
        let samples = plan_motion(
            MotionStyle::naive_bezier(),
            &self.params,
            &mut self.ctx,
            from,
            target,
            r.width.min(r.height),
        );
        let actions = trajectory_to_actions(&samples, HLISA_MIN_MOVE_MS);
        session.perform_actions(&actions);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlisa_browser::dom::standard_test_page;
    use hlisa_browser::{Browser, BrowserConfig};
    use hlisa_stats::descriptive::Summary;
    use hlisa_webdriver::By;

    fn session() -> Session {
        Session::new(Browser::open(
            BrowserConfig::webdriver(),
            standard_test_page("https://example.test/", 30_000.0),
        ))
    }

    #[test]
    fn clicks_are_uniform_over_element() {
        // Run many independent sessions; click x should spread across the
        // full width (σ of uniform over w=120 is ~34.6, vs ~17 for HLISA).
        let mut xs = Vec::new();
        for seed in 0..80 {
            let mut s = session();
            let el = s.find_element(By::Id("submit".into())).unwrap();
            NaiveActionChains::new(seed)
                .click(Some(el))
                .perform(&mut s)
                .unwrap();
            let clicks = s.browser.recorder.clicks();
            xs.push(clicks[0].x);
        }
        let sum = Summary::of(&xs);
        assert!(sum.std_dev > 25.0, "not uniform-ish: sd {}", sum.std_dev);
        // And every click is on the element.
        assert!(xs.iter().all(|x| (100.0..220.0).contains(x)));
    }

    #[test]
    fn typing_is_metronomic_but_shifted() {
        let mut s = session();
        let el = s.find_element(By::Id("text_area".into())).unwrap();
        NaiveActionChains::new(1)
            .send_keys_to_element(el, "Hello World")
            .perform(&mut s)
            .unwrap();
        assert_eq!(s.element_text(el), "Hello World");
        let strokes = s.browser.recorder.keystrokes();
        let dwells: Vec<f64> = strokes
            .iter()
            .filter(|k| k.key != "Shift")
            .map(|k| k.dwell_ms)
            .collect();
        let sum = Summary::of(&dwells);
        // Narrow uniform jitter: plausible sample, wrong distribution.
        assert!(sum.std_dev < 8.0, "sd {}", sum.std_dev);
        assert!(sum.min > 20.0);
    }

    #[test]
    fn scroll_has_no_finger_breaks() {
        let mut s = session();
        NaiveActionChains::new(2)
            .scroll_by(3_000.0)
            .perform(&mut s)
            .unwrap();
        let gaps = s.browser.recorder.scroll_gaps();
        assert!(!gaps.is_empty());
        assert!(gaps.iter().all(|g| *g < 200.0), "metronomic gaps only");
    }

    #[test]
    fn movement_curves() {
        let mut s = session();
        let el = s.find_element(By::Id("jump".into())).unwrap();
        NaiveActionChains::new(3)
            .move_to_element(el)
            .perform(&mut s)
            .unwrap();
        let trace = s.browser.recorder.cursor_trace();
        assert!(trace.len() >= 4);
        // Not collinear: fit the chord and find deviation.
        let a = trace.first().unwrap();
        let b = trace.last().unwrap();
        let chord = ((b.x - a.x).powi(2) + (b.y - a.y).powi(2)).sqrt();
        let max_dev = trace
            .iter()
            .map(|p| {
                ((b.x - a.x) * (a.y - p.y) - (a.x - p.x) * (b.y - a.y)).abs() / chord.max(1e-9)
            })
            .fold(0.0, f64::max);
        assert!(max_dev > 2.0, "no curvature: {max_dev}");
    }
}
