//! `HLISA_ActionChains` — the Table 3 API.
//!
//! "HLISA's API provides the same calls and signatures as in the original
//! Selenium API; with the exception of a few additions. This allows
//! developers to integrate HLISA by modifying two lines of code" (§4.1,
//! Listing 2). The additions over Selenium are `move_to`,
//! `move_to_element_outside_viewport`, `send_keys_to_element`, `scroll_by`
//! and `scroll_to`.
//!
//! Every queued step is compiled down to fine-grained Selenium primitives
//! ([`hlisa_webdriver::Action`]) at `perform` time — never to higher-level
//! Selenium calls — which is what makes HLISA "resistant to changes in the
//! Selenium source code that do not affect the Selenium API".

use crate::motion::{plan_motion_scratch, trajectory_to_actions_into, MotionStyle};
use crate::scrolling::plan_hlisa_scroll_into;
use crate::typing::{plan_consistent_typing_into, plan_hlisa_typing_into};
use hlisa_browser::events::MouseButton;
use hlisa_browser::Point;
use hlisa_human::click::{sample_click_point, sample_double_click_gap_ms, sample_dwell_ms};
use hlisa_human::cursor::{StrokeScratch, TrajectorySample};
use hlisa_human::typing::PlannedKeyEvent;
use hlisa_human::HumanParams;
use hlisa_sim::SimContext;
use hlisa_webdriver::{Action, ElementHandle, Session, WebDriverError};
use rand::Rng;

/// The duration HLISA patches into Selenium's `create_pointer_move`.
/// Re-exported from the webdriver layer, which owns the canonical value.
pub use hlisa_webdriver::HLISA_MIN_MOVE_MS;

/// One queued HLISA step (rows of Table 3).
#[derive(Debug, Clone, PartialEq)]
enum Step {
    Pause(f64),
    MoveTo(f64, f64),
    MoveByOffset(f64, f64),
    MoveToElement(ElementHandle),
    MoveToElementWithOffset(ElementHandle, f64, f64),
    MoveToElementOutsideViewport(ElementHandle),
    Click(Option<ElementHandle>),
    ClickAndHold(Option<ElementHandle>),
    Release(Option<ElementHandle>),
    DoubleClick(Option<ElementHandle>),
    SendKeys(String),
    SendKeysToElement(ElementHandle, String),
    ScrollBy(f64, f64),
    ScrollTo(f64, f64),
    ContextClick(Option<ElementHandle>),
    DragAndDrop(ElementHandle, ElementHandle),
    DragAndDropByOffset(ElementHandle, f64, f64),
}

/// The HLISA action chain (Table 3's `HLISA_ActionChains`).
#[derive(Debug, Clone)]
pub struct HlisaActionChains {
    steps: Vec<Step>,
    params: HumanParams,
    ctx: SimContext,
    consistent: bool,
    /// Scratch buffers reused across steps so a long chain performs
    /// without per-action `Vec` allocations in the motion/typing/scroll
    /// hot paths.
    sample_buf: Vec<TrajectorySample>,
    action_buf: Vec<Action>,
    key_events: Vec<PlannedKeyEvent>,
    stroke_scratch: StrokeScratch,
}

impl HlisaActionChains {
    /// Creates a chain with the paper's baseline interaction parameters.
    pub fn new(seed: u64) -> Self {
        Self::with_params(HumanParams::paper_baseline(), seed)
    }

    /// Creates a chain with custom interaction parameters (e.g. a fitted
    /// per-user profile — the top rung of the Fig. 3 simulator ladder).
    pub fn with_params(params: HumanParams, seed: u64) -> Self {
        Self::with_context(params, SimContext::new(seed))
    }

    /// Creates a chain drawing from an existing simulation context — its
    /// sub-models use the named `"motion"`, `"click"`, `"scroll"`,
    /// `"typing"` and `"chain"` streams.
    pub fn with_context(params: HumanParams, ctx: SimContext) -> Self {
        Self {
            steps: Vec::new(),
            params,
            ctx,
            consistent: false,
            sample_buf: Vec::new(),
            action_buf: Vec::new(),
            key_events: Vec::new(),
            stroke_scratch: StrokeScratch::new(),
        }
    }

    /// The chain's simulation context.
    pub fn context(&self) -> &SimContext {
        &self.ctx
    }

    /// Enables tempo-drift consistency in the timing draws — the "use
    /// consistent behaviour" escalation of Fig. 3 (a future-work refinement
    /// beyond the paper's i.i.d. proof of concept).
    pub fn with_consistency(mut self, on: bool) -> Self {
        self.consistent = on;
        self
    }

    /// Pauses the execution of the action chain (seconds, as in Table 3).
    pub fn pause(mut self, seconds: f64) -> Self {
        self.steps.push(Step::Pause(seconds * 1000.0));
        self
    }

    /// Moves the cursor from the current position to a given position.
    pub fn move_to(mut self, x: f64, y: f64) -> Self {
        self.steps.push(Step::MoveTo(x, y));
        self
    }

    /// Moves the cursor relative to the current position.
    pub fn move_by_offset(mut self, dx: f64, dy: f64) -> Self {
        self.steps.push(Step::MoveByOffset(dx, dy));
        self
    }

    /// Moves the cursor to a position within an element's boundaries.
    pub fn move_to_element(mut self, el: ElementHandle) -> Self {
        self.steps.push(Step::MoveToElement(el));
        self
    }

    /// Moves the cursor relative to an element's top-left corner.
    pub fn move_to_element_with_offset(mut self, el: ElementHandle, x: f64, y: f64) -> Self {
        self.steps.push(Step::MoveToElementWithOffset(el, x, y));
        self
    }

    /// Scrolls the element into the viewport (with human wheel scrolling),
    /// then moves to it.
    pub fn move_to_element_outside_viewport(mut self, el: ElementHandle) -> Self {
        self.steps.push(Step::MoveToElementOutsideViewport(el));
        self
    }

    /// Clicks; if an element is provided, first performs `move_to_element`.
    pub fn click(mut self, el: Option<ElementHandle>) -> Self {
        self.steps.push(Step::Click(el));
        self
    }

    /// Same as click without the release action.
    pub fn click_and_hold(mut self, el: Option<ElementHandle>) -> Self {
        self.steps.push(Step::ClickAndHold(el));
        self
    }

    /// Same as click without the press action.
    pub fn release(mut self, el: Option<ElementHandle>) -> Self {
        self.steps.push(Step::Release(el));
        self
    }

    /// Same as click with an additional click shortly after the first.
    pub fn double_click(mut self, el: Option<ElementHandle>) -> Self {
        self.steps.push(Step::DoubleClick(el));
        self
    }

    /// Executes a human typing rhythm for the given keys.
    pub fn send_keys(mut self, keys: &str) -> Self {
        self.steps.push(Step::SendKeys(keys.to_string()));
        self
    }

    /// Selects the element, then executes `send_keys`.
    pub fn send_keys_to_element(mut self, el: ElementHandle, keys: &str) -> Self {
        self.steps
            .push(Step::SendKeysToElement(el, keys.to_string()));
        self
    }

    /// Scrolls the viewport until a distance is covered (vertical axis;
    /// the simulated viewport has no horizontal overflow, so `x` must be
    /// 0 — matching how the Python HLISA drives a full-width page).
    pub fn scroll_by(mut self, x: f64, y: f64) -> Self {
        self.steps.push(Step::ScrollBy(x, y));
        self
    }

    /// Scrolls until the specified position is at the top of the viewport.
    pub fn scroll_to(mut self, x: f64, y: f64) -> Self {
        self.steps.push(Step::ScrollTo(x, y));
        self
    }

    /// Same as click using the right mouse button.
    pub fn context_click(mut self, el: Option<ElementHandle>) -> Self {
        self.steps.push(Step::ContextClick(el));
        self
    }

    /// Press over `source`, human-move to `target`, release.
    pub fn drag_and_drop(mut self, source: ElementHandle, target: ElementHandle) -> Self {
        self.steps.push(Step::DragAndDrop(source, target));
        self
    }

    /// Press on `el`, move by the offset, release.
    pub fn drag_and_drop_by_offset(mut self, el: ElementHandle, dx: f64, dy: f64) -> Self {
        self.steps.push(Step::DragAndDropByOffset(el, dx, dy));
        self
    }

    /// Removes all actions from the current chain.
    pub fn reset_actions(mut self) -> Self {
        self.steps.clear();
        self
    }

    /// Number of queued steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Executes the chain against a session.
    pub fn perform(mut self, session: &mut Session) -> Result<(), WebDriverError> {
        self.perform_mut(session)
    }

    /// Executes the chain without consuming it: the queue drains but the
    /// chain — its context, scratch buffers, and their capacities —
    /// survives, so a driver can queue and perform repeatedly with zero
    /// steady-state allocations. [`perform`](Self::perform) delegates here.
    pub fn perform_mut(&mut self, session: &mut Session) -> Result<(), WebDriverError> {
        // HLISA's create_pointer_move override (the canonical 50 ms floor
        // lives in hlisa-webdriver), plus clock unification: the session's
        // browser and this chain's context observe the same instant.
        session.apply_hlisa_profile();
        session.bind_context(&self.ctx);
        let steps = std::mem::take(&mut self.steps);
        for step in steps {
            self.run_step(session, step)?;
        }
        Ok(())
    }

    /// Current scratch capacities `[samples, actions, key events, tremor
    /// spill, basis spill]`. Capacities that stop growing across performs
    /// prove the chain's hot paths are allocation-free in steady state.
    pub fn scratch_capacities(&self) -> [usize; 5] {
        let (tremor, basis) = self.stroke_scratch.spill_capacities();
        [
            self.sample_buf.capacity(),
            self.action_buf.capacity(),
            self.key_events.capacity(),
            tremor,
            basis,
        ]
    }

    // ------------------------------------------------------------------

    fn run_step(&mut self, session: &mut Session, step: Step) -> Result<(), WebDriverError> {
        match step {
            Step::Pause(ms) => {
                session.perform_actions(&[Action::Pause(ms)]);
            }
            Step::MoveTo(x, y) => self.human_move(session, Point::new(x, y), 24.0),
            Step::MoveByOffset(dx, dy) => {
                let p = session.browser.mouse_position();
                self.human_move(session, Point::new(p.x + dx, p.y + dy), 24.0);
            }
            Step::MoveToElement(el) => {
                self.move_to_element_impl(session, el)?;
            }
            Step::MoveToElementWithOffset(el, dx, dy) => {
                if !session.is_displayed(el) {
                    return Err(WebDriverError::ElementNotInteractable(
                        "hidden element".to_string(),
                    ));
                }
                let r = session.element_rect(el);
                self.human_move(session, r.offset(dx, dy), r.width.min(r.height));
            }
            Step::MoveToElementOutsideViewport(el) => {
                self.scroll_element_into_view(session, el)?;
                self.move_to_element_impl(session, el)?;
            }
            Step::Click(el) => {
                if let Some(el) = el {
                    self.move_to_element_impl(session, el)?;
                }
                self.fixate(session);
                self.press_release(session, MouseButton::Left);
            }
            Step::ClickAndHold(el) => {
                if let Some(el) = el {
                    self.move_to_element_impl(session, el)?;
                }
                self.fixate(session);
                session.perform_actions(&[Action::PointerDown(MouseButton::Left)]);
            }
            Step::Release(el) => {
                if let Some(el) = el {
                    self.move_to_element_impl(session, el)?;
                }
                session.perform_actions(&[Action::PointerUp(MouseButton::Left)]);
            }
            Step::DoubleClick(el) => {
                if let Some(el) = el {
                    self.move_to_element_impl(session, el)?;
                }
                self.fixate(session);
                self.press_release(session, MouseButton::Left);
                let gap = sample_double_click_gap_ms(&self.params, &mut self.ctx);
                session.perform_actions(&[Action::Pause(gap)]);
                self.press_release(session, MouseButton::Left);
            }
            Step::SendKeys(keys) => {
                self.plan_keys(&keys);
                session.perform_actions(&self.action_buf);
            }
            Step::SendKeysToElement(el, keys) => {
                self.move_to_element_impl(session, el)?;
                self.fixate(session);
                self.press_release(session, MouseButton::Left);
                let focus_pause = self.ctx.stream("chain").gen_range(120.0..400.0);
                session.perform_actions(&[Action::Pause(focus_pause)]);
                self.plan_keys(&keys);
                session.perform_actions(&self.action_buf);
            }
            Step::ScrollBy(x, y) => {
                if x != 0.0 {
                    return Err(WebDriverError::InvalidArgument(
                        "horizontal scrolling is not modelled".to_string(),
                    ));
                }
                plan_hlisa_scroll_into(
                    &self.params,
                    self.ctx.stream("scroll"),
                    y,
                    &mut self.action_buf,
                );
                session.perform_actions(&self.action_buf);
            }
            Step::ScrollTo(x, y) => {
                if x != 0.0 {
                    return Err(WebDriverError::InvalidArgument(
                        "horizontal scrolling is not modelled".to_string(),
                    ));
                }
                let delta = y - session.browser.viewport.scroll_y();
                plan_hlisa_scroll_into(
                    &self.params,
                    self.ctx.stream("scroll"),
                    delta,
                    &mut self.action_buf,
                );
                session.perform_actions(&self.action_buf);
            }
            Step::ContextClick(el) => {
                if let Some(el) = el {
                    self.move_to_element_impl(session, el)?;
                }
                self.fixate(session);
                self.press_release(session, MouseButton::Right);
            }
            Step::DragAndDrop(source, target) => {
                self.move_to_element_impl(session, source)?;
                self.fixate(session);
                session.perform_actions(&[Action::PointerDown(MouseButton::Left)]);
                let hold = self.ctx.stream("chain").gen_range(80.0..200.0);
                session.perform_actions(&[Action::Pause(hold)]);
                self.move_to_element_impl(session, target)?;
                session.perform_actions(&[Action::PointerUp(MouseButton::Left)]);
            }
            Step::DragAndDropByOffset(el, dx, dy) => {
                self.move_to_element_impl(session, el)?;
                self.fixate(session);
                session.perform_actions(&[Action::PointerDown(MouseButton::Left)]);
                let hold = self.ctx.stream("chain").gen_range(80.0..200.0);
                session.perform_actions(&[Action::Pause(hold)]);
                let p = session.browser.mouse_position();
                self.human_move(session, Point::new(p.x + dx, p.y + dy), 24.0);
                session.perform_actions(&[Action::PointerUp(MouseButton::Left)]);
            }
        }
        Ok(())
    }

    /// Compiles the typing plan for `keys` into `self.action_buf`.
    fn plan_keys(&mut self, keys: &str) {
        if self.consistent {
            plan_consistent_typing_into(
                &self.params,
                self.ctx.stream("typing"),
                keys,
                &mut self.key_events,
                &mut self.action_buf,
            );
        } else {
            plan_hlisa_typing_into(
                &self.params,
                self.ctx.stream("typing"),
                keys,
                &mut self.key_events,
                &mut self.action_buf,
            );
        }
    }

    /// Human move to an absolute point: plan an HLISA trajectory, chop into
    /// ≥50 ms primitive moves, execute — through the reusable scratch
    /// buffers, so steady-state movement allocates nothing.
    fn human_move(&mut self, session: &mut Session, to: Point, target_w: f64) {
        let from = session.browser.mouse_position();
        plan_motion_scratch(
            MotionStyle::hlisa(),
            &self.params,
            self.ctx.stream("motion"),
            from,
            to,
            target_w,
            &mut self.stroke_scratch,
            &mut self.sample_buf,
        );
        trajectory_to_actions_into(&self.sample_buf, HLISA_MIN_MOVE_MS, &mut self.action_buf);
        session.perform_actions(&self.action_buf);
    }

    fn move_to_element_impl(
        &mut self,
        session: &mut Session,
        el: ElementHandle,
    ) -> Result<(), WebDriverError> {
        if !session.is_displayed(el) {
            return Err(WebDriverError::ElementNotInteractable(
                "hidden element".to_string(),
            ));
        }
        let rect = session.element_rect(el);
        if !session.browser.viewport.is_y_visible(rect.center().y) {
            self.scroll_element_into_view(session, el)?;
        }
        let rect = session.element_rect(el);
        let target = sample_click_point(&self.params, &mut self.ctx, rect);
        self.human_move(session, target, rect.width.min(rect.height));
        Ok(())
    }

    fn scroll_element_into_view(
        &mut self,
        session: &mut Session,
        el: ElementHandle,
    ) -> Result<(), WebDriverError> {
        let rect = session.element_rect(el);
        let viewport = &session.browser.viewport;
        let desired = (rect.center().y - viewport.height / 2.0).clamp(0.0, viewport.max_scroll_y());
        let delta = desired - viewport.scroll_y();
        plan_hlisa_scroll_into(
            &self.params,
            self.ctx.stream("scroll"),
            delta,
            &mut self.action_buf,
        );
        session.perform_actions(&self.action_buf);
        let settle = self.ctx.stream("chain").gen_range(150.0..500.0);
        session.perform_actions(&[Action::Pause(settle)]);
        Ok(())
    }

    /// A short visual-confirmation pause before pressing, as humans do.
    fn fixate(&mut self, session: &mut Session) {
        let pause = self.ctx.stream("chain").gen_range(40.0..160.0);
        session.perform_actions(&[Action::Pause(pause)]);
    }

    fn press_release(&mut self, session: &mut Session, button: MouseButton) {
        let dwell = sample_dwell_ms(&self.params, &mut self.ctx);
        session.perform_actions(&[
            Action::PointerDown(button),
            Action::Pause(dwell),
            Action::PointerUp(button),
        ]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlisa_browser::dom::standard_test_page;
    use hlisa_browser::{Browser, BrowserConfig, EventKind};
    use hlisa_webdriver::By;

    fn session() -> Session {
        Session::new(Browser::open(
            BrowserConfig::webdriver(),
            standard_test_page("https://example.test/", 30_000.0),
        ))
    }

    #[test]
    fn listing2_flow_works() {
        // The paper's Listing 2: move to element, send keys, perform.
        let mut driver = session();
        let element = driver.find_element(By::Id("text_area".into())).unwrap();
        let ac = HlisaActionChains::new(7)
            .move_to_element(element)
            .send_keys_to_element(element, "Text..");
        ac.perform(&mut driver).unwrap();
        assert_eq!(driver.element_text(element), "Text..");
    }

    #[test]
    fn click_is_on_element_off_centre_with_dwell() {
        let mut driver = session();
        let el = driver.find_element(By::Id("submit".into())).unwrap();
        let rect = driver.element_rect(el);
        HlisaActionChains::new(1)
            .click(Some(el))
            .perform(&mut driver)
            .unwrap();
        let clicks = driver.browser.recorder.clicks();
        assert_eq!(clicks.len(), 1);
        let c = clicks[0];
        assert!(rect.contains(Point::new(c.x, c.y)));
        assert!(c.dwell_ms >= 20.0, "dwell {}", c.dwell_ms);
        let center = rect.center();
        assert!(Point::new(c.x, c.y).distance_to(center) > 0.1);
    }

    #[test]
    fn movement_is_made_of_50ms_primitives() {
        let mut driver = session();
        HlisaActionChains::new(2)
            .move_to(900.0, 400.0)
            .perform(&mut driver)
            .unwrap();
        // The pointer profile was overridden to 50 ms.
        assert_eq!(driver.pointer_profile().min_duration_ms, HLISA_MIN_MOVE_MS);
        let trace = driver.browser.recorder.cursor_trace();
        assert!(trace.len() >= 5);
        // The OS-level position is exact; the last *dispatched* move may
        // have been frame-coalesced.
        let p = driver.browser.mouse_position();
        assert_eq!((p.x, p.y), (900.0, 400.0));
    }

    #[test]
    fn typing_presses_shift_for_capitals() {
        let mut driver = session();
        let el = driver.find_element(By::Id("text_area".into())).unwrap();
        HlisaActionChains::new(3)
            .send_keys_to_element(el, "Ab C")
            .perform(&mut driver)
            .unwrap();
        assert_eq!(driver.element_text(el), "Ab C");
        let shifts = driver
            .browser
            .recorder
            .events()
            .iter()
            .filter(|e| {
                e.kind == EventKind::KeyDown
                    && matches!(&e.payload,
                        hlisa_browser::EventPayload::Key { key, .. } if key == "Shift")
            })
            .count();
        assert_eq!(shifts, 2);
    }

    #[test]
    fn scroll_by_uses_wheel_ticks_with_breaks() {
        let mut driver = session();
        HlisaActionChains::new(4)
            .scroll_by(0.0, 2_000.0)
            .perform(&mut driver)
            .unwrap();
        let ticks = driver.browser.recorder.wheel_count();
        assert_eq!(ticks, 35); // 2000 / 57 ≈ 35.09 → 35 ticks
        for d in driver.browser.recorder.scroll_deltas() {
            assert!((d - 57.0).abs() < 1e-9);
        }
    }

    #[test]
    fn scroll_to_reaches_position() {
        let mut driver = session();
        HlisaActionChains::new(5)
            .scroll_to(0.0, 1_140.0)
            .perform(&mut driver)
            .unwrap();
        assert!((driver.browser.viewport.scroll_y() - 1_140.0).abs() < 57.0);
    }

    #[test]
    fn horizontal_scroll_is_rejected() {
        let mut driver = session();
        let err = HlisaActionChains::new(6)
            .scroll_by(100.0, 0.0)
            .perform(&mut driver)
            .unwrap_err();
        assert!(matches!(err, WebDriverError::InvalidArgument(_)));
    }

    #[test]
    fn double_click_fires_dblclick_with_human_gap() {
        let mut driver = session();
        let el = driver.find_element(By::Id("submit".into())).unwrap();
        HlisaActionChains::new(8)
            .double_click(Some(el))
            .perform(&mut driver)
            .unwrap();
        assert_eq!(
            driver.browser.recorder.of_kind(EventKind::DblClick).len(),
            1
        );
        let clicks = driver.browser.recorder.clicks();
        assert_eq!(clicks.len(), 2);
        let gap = clicks[1].down_t - clicks[0].up_t;
        assert!(gap >= 50.0, "gap {gap} too robotic");
    }

    #[test]
    fn context_click_uses_right_button() {
        let mut driver = session();
        let el = driver.find_element(By::Id("submit".into())).unwrap();
        HlisaActionChains::new(9)
            .context_click(Some(el))
            .perform(&mut driver)
            .unwrap();
        assert_eq!(
            driver
                .browser
                .recorder
                .of_kind(EventKind::ContextMenu)
                .len(),
            1
        );
    }

    #[test]
    fn click_and_hold_then_release() {
        let mut driver = session();
        let el = driver.find_element(By::Id("submit".into())).unwrap();
        HlisaActionChains::new(10)
            .click_and_hold(Some(el))
            .pause(0.2)
            .release(None)
            .perform(&mut driver)
            .unwrap();
        let clicks = driver.browser.recorder.clicks();
        assert_eq!(clicks.len(), 1);
        assert!(clicks[0].dwell_ms >= 200.0);
    }

    #[test]
    fn outside_viewport_move_scrolls_with_wheel() {
        let mut driver = session();
        let el = driver.find_element(By::Id("section-end".into())).unwrap();
        HlisaActionChains::new(11)
            .move_to_element_outside_viewport(el)
            .click(None)
            .perform(&mut driver)
            .unwrap();
        assert!(driver.browser.recorder.wheel_count() > 100);
        assert_eq!(driver.browser.recorder.clicks().len(), 1);
    }

    #[test]
    fn drag_and_drop_by_offset_moves_while_held() {
        let mut driver = session();
        let el = driver.find_element(By::Id("submit".into())).unwrap();
        HlisaActionChains::new(12)
            .drag_and_drop_by_offset(el, 150.0, 60.0)
            .perform(&mut driver)
            .unwrap();
        let evs = driver.browser.recorder.events();
        let down = evs
            .iter()
            .position(|e| e.kind == EventKind::MouseDown)
            .unwrap();
        let up = evs
            .iter()
            .position(|e| e.kind == EventKind::MouseUp)
            .unwrap();
        let moves_between = evs[down..up]
            .iter()
            .filter(|e| e.kind == EventKind::MouseMove)
            .count();
        assert!(moves_between >= 3, "drag produced {moves_between} moves");
    }

    #[test]
    fn hidden_element_interaction_errors() {
        let mut driver = session();
        let honey = driver.find_element(By::Id("honey".into())).unwrap();
        let err = HlisaActionChains::new(13)
            .click(Some(honey))
            .perform(&mut driver)
            .unwrap_err();
        assert!(matches!(err, WebDriverError::ElementNotInteractable(_)));
    }

    #[test]
    fn reset_actions_clears_queue() {
        let chain = HlisaActionChains::new(14)
            .move_to(1.0, 1.0)
            .click(None)
            .reset_actions();
        assert!(chain.is_empty());
        assert_eq!(chain.len(), 0);
    }

    #[test]
    fn pause_advances_time_only() {
        let mut driver = session();
        let before = driver.browser.now_ms();
        HlisaActionChains::new(15)
            .pause(1.5)
            .perform(&mut driver)
            .unwrap();
        assert_eq!(driver.browser.now_ms() - before, 1_500.0);
        assert!(driver.browser.recorder.is_empty());
    }
}
