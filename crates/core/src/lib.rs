//! HLISA — the Human-Like Interaction Selenium API (Rust reproduction).
//!
//! The paper's second contribution (§4.1): an interaction API with the same
//! calls and signatures as Selenium's `ActionChains` (Table 3) that drives
//! the *fine-grained* Selenium primitives (`move_to_offset`, `key_down`,
//! `key_up`, ...) so that every observable interaction looks human:
//!
//! * **Mouse movement** — jittered, curved trajectories with initial
//!   acceleration and final deceleration (Fig. 1 D), expressed as chains of
//!   ≥50 ms primitive pointer moves (the `create_pointer_move` override).
//! * **Mouse clicks** — normally distributed placement within the element
//!   (Fig. 2 bottom right) and normally distributed button dwell.
//! * **Scrolling** — an API Selenium lacks: 57 px wheel ticks with normally
//!   distributed pauses and a longer finger-repositioning break.
//! * **Typing** — normally distributed dwell and flight times, simulated
//!   Shift for capitals, and contextual pauses after words, commas and
//!   sentences (Alves et al.).
//!
//! Drop-in usage mirrors Listing 2 of the paper:
//!
//! ```
//! use hlisa::HlisaActionChains;
//! use hlisa_webdriver::{By, Session};
//! use hlisa_browser::{dom::standard_test_page, Browser, BrowserConfig};
//!
//! let browser = Browser::open(BrowserConfig::webdriver(),
//!                             standard_test_page("https://example.test/", 3000.0));
//! let mut driver = Session::new(browser);
//! let element = driver.find_element(By::Id("text_area".into())).unwrap();
//!
//! let mut ac = HlisaActionChains::new(7 /* rng seed */);
//! ac = ac.move_to_element(element);
//! ac = ac.send_keys_to_element(element, "Text..");
//! ac.perform(&mut driver).unwrap();
//! ```
//!
//! The crate also ships the paper's comparison points: the *naive*
//! improvements of §4.1 ([`naive`]) and simplified reimplementations of the
//! Appendix G tools ([`comparators`]).

pub mod chains;
pub mod comparators;
pub mod extras;
pub mod motion;
pub mod naive;
pub mod scrolling;
pub mod typing;

pub use chains::HlisaActionChains;
pub use extras::ExperimentBehaviors;
pub use motion::{plan_motion, DurationModel, MotionStyle};
pub use naive::NaiveActionChains;
