//! HLISA's scrolling extension.
//!
//! "HLISA extends the Selenium API with a function to simulate scrolling,
//! which uses the default mouse wheel scroll distance (57 pixels), uses a
//! normal distribution to incorporate short breaks, and incorporates a
//! slightly longer break to account for moving one's finger to continue
//! scrolling the mouse wheel" (§4.1). Draws are i.i.d. normals, matching
//! the proof-of-concept status the paper describes.

use hlisa_browser::viewport::WHEEL_TICK_PX;
use hlisa_human::scroll::sample_flick_len_with;
use hlisa_human::HumanParams;
use hlisa_sim::SimContext;
use hlisa_webdriver::Action;
use rand::Rng;

/// Plans wheel-tick actions covering `distance_px` (positive = down),
/// drawing from the context's `"scroll"` stream.
pub fn plan_hlisa_scroll(
    params: &HumanParams,
    ctx: &mut SimContext,
    distance_px: f64,
) -> Vec<Action> {
    plan_hlisa_scroll_with(params, ctx.stream("scroll"), distance_px)
}

/// Like [`plan_hlisa_scroll`], drawing from an explicit RNG stream.
pub fn plan_hlisa_scroll_with<R: Rng + ?Sized>(
    params: &HumanParams,
    rng: &mut R,
    distance_px: f64,
) -> Vec<Action> {
    let mut actions = Vec::new();
    plan_hlisa_scroll_into(params, rng, distance_px, &mut actions);
    actions
}

/// Like [`plan_hlisa_scroll_with`], filling a caller-supplied buffer
/// instead of allocating. The buffer is cleared first. Draw order is
/// identical — note it differs from the human planner's: no gap or break
/// is drawn after the final tick (the action chain ends at the tick, so
/// there is no trailing pause to time).
pub fn plan_hlisa_scroll_into<R: Rng + ?Sized>(
    params: &HumanParams,
    rng: &mut R,
    distance_px: f64,
    out: &mut Vec<Action>,
) {
    out.clear();
    let direction = if distance_px >= 0.0 { 1 } else { -1 };
    let n_ticks = (distance_px.abs() / WHEEL_TICK_PX).round() as usize;
    out.reserve(n_ticks * 2);
    let mut ticks_since_break = 0usize;
    let mut flick_len = sample_flick_len_with(params, rng);
    for i in 0..n_ticks {
        out.push(Action::WheelTick(direction));
        ticks_since_break += 1;
        if i + 1 == n_ticks {
            break;
        }
        if ticks_since_break >= flick_len {
            out.push(Action::Pause(params.scroll_finger_break.sample(rng)));
            ticks_since_break = 0;
            flick_len = sample_flick_len_with(params, rng);
        } else {
            out.push(Action::Pause(params.scroll_tick_gap.sample(rng)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlisa_sim::SimContext;

    #[test]
    fn tick_count_covers_distance() {
        let p = HumanParams::paper_baseline();
        let mut ctx = SimContext::new(1);
        let acts = plan_hlisa_scroll(&p, &mut ctx, 570.0);
        let ticks = acts
            .iter()
            .filter(|a| matches!(a, Action::WheelTick(1)))
            .count();
        assert_eq!(ticks, 10);
    }

    #[test]
    fn long_scrolls_include_finger_breaks() {
        let p = HumanParams::paper_baseline();
        let mut ctx = SimContext::new(2);
        let acts = plan_hlisa_scroll(&p, &mut ctx, 10_000.0);
        let long_pauses = acts
            .iter()
            .filter(|a| matches!(a, Action::Pause(ms) if *ms >= 150.0))
            .count();
        assert!(long_pauses > 5, "{long_pauses} long pauses");
    }

    #[test]
    fn upward_scroll_uses_negative_ticks() {
        let p = HumanParams::paper_baseline();
        let mut ctx = SimContext::new(3);
        let acts = plan_hlisa_scroll(&p, &mut ctx, -171.0);
        assert!(acts.iter().any(|a| matches!(a, Action::WheelTick(-1))));
        assert!(!acts.iter().any(|a| matches!(a, Action::WheelTick(1))));
    }

    #[test]
    fn zero_distance_plans_nothing() {
        let p = HumanParams::paper_baseline();
        let mut ctx = SimContext::new(4);
        assert!(plan_hlisa_scroll(&p, &mut ctx, 10.0).is_empty());
    }
}
