//! The Appendix G comparison tools (Table 4).
//!
//! Each tool from the paper's comparison is reproduced at two levels:
//!
//! 1. a **feature profile** — the exact check-mark row of Table 4, used by
//!    the `table4` regenerator; and
//! 2. where the tool simulates mouse movement, a **motion recipe**
//!    ([`crate::motion::MotionStyle`]) capturing its algorithm (B-spline
//!    vs Bézier, constant vs eased speed, shiver), used by the ablation
//!    benches to measure how each recipe fares against the detectors.

use crate::motion::{CurveStyle, DurationModel, MotionStyle, VelocityProfile};

/// A Table 4 feature (row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Feature {
    /// Mouse movement functionality.
    MouseMovement,
    /// Realistic mouse movement speed.
    RealisticSpeed,
    /// Movement accelerates/decelerates.
    AccelDecel,
    /// Movement shivering.
    Shivering,
    /// Curve in movement.
    CurvedMovement,
    /// Moves to random location in element.
    RandomInElementLocation,
    /// Click functionality.
    Clicks,
    /// Realistic dwell time.
    RealisticClickDwell,
    /// Simulates accidental right click.
    AccidentalRightClick,
    /// Simulates accidental double click.
    AccidentalDoubleClick,
    /// Simulates accidental no click.
    AccidentalNoClick,
    /// Scrolling functionality.
    Scrolling,
    /// Pause between scroll ticks.
    ScrollTickPauses,
    /// Pause for finger replacement.
    FingerReplacementPause,
    /// Realistic scroll distance in tick.
    RealisticScrollTick,
    /// Keyboard functionality.
    Keyboard,
    /// Flight time.
    FlightTime,
    /// Dwell time.
    KeyDwellTime,
    /// Timings based on data.
    DataBasedTimings,
    /// Selenium ready.
    SeleniumReady,
}

impl Feature {
    /// All features in Table 4 row order.
    pub const ALL: [Feature; 20] = [
        Feature::MouseMovement,
        Feature::RealisticSpeed,
        Feature::AccelDecel,
        Feature::Shivering,
        Feature::CurvedMovement,
        Feature::RandomInElementLocation,
        Feature::Clicks,
        Feature::RealisticClickDwell,
        Feature::AccidentalRightClick,
        Feature::AccidentalDoubleClick,
        Feature::AccidentalNoClick,
        Feature::Scrolling,
        Feature::ScrollTickPauses,
        Feature::FingerReplacementPause,
        Feature::RealisticScrollTick,
        Feature::Keyboard,
        Feature::FlightTime,
        Feature::KeyDwellTime,
        Feature::DataBasedTimings,
        Feature::SeleniumReady,
    ];

    /// Row label as printed in Table 4.
    pub fn label(&self) -> &'static str {
        match self {
            Feature::MouseMovement => "Mouse movement functionality",
            Feature::RealisticSpeed => "Realistic mouse movement speed",
            Feature::AccelDecel => "Movement accelerates/decellerates",
            Feature::Shivering => "Movement shivering",
            Feature::CurvedMovement => "Curve in movement",
            Feature::RandomInElementLocation => "Moves to random location in element",
            Feature::Clicks => "Click functionality",
            Feature::RealisticClickDwell => "Realistic dwell time",
            Feature::AccidentalRightClick => "Simulates accidental right click",
            Feature::AccidentalDoubleClick => "Simulates accidental double click",
            Feature::AccidentalNoClick => "Simulates accidental no click",
            Feature::Scrolling => "Scrolling functionality",
            Feature::ScrollTickPauses => "Pause between scroll ticks",
            Feature::FingerReplacementPause => "Pause for finger replacement",
            Feature::RealisticScrollTick => "Realistic scroll distance in tick",
            Feature::Keyboard => "Keyboard functionality",
            Feature::FlightTime => "Flight time",
            Feature::KeyDwellTime => "Dwell time",
            Feature::DataBasedTimings => "Timings based on data",
            Feature::SeleniumReady => "Selenium ready",
        }
    }
}

/// One column of Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tool {
    /// "Human-like mouse movement" StackOverflow answer (B-spline curves).
    Hmm,
    /// PyClick: Bézier-curve mouse movement library.
    PyClick,
    /// BezMouse: Bézier mouse tool for game-bot evasion.
    BezMouse,
    /// pyHM: python human-movement package.
    PyHm,
    /// Scroller: human scrolling for Selenium.
    Scroller,
    /// ClickBot: Java mouse movement + clicks.
    ClickBot,
    /// Noordzij's bachelor-thesis typing framework.
    ThesisTyping,
    /// HLISA itself.
    Hlisa,
}

impl Tool {
    /// All tools in Table 4 column order.
    pub const ALL: [Tool; 8] = [
        Tool::Hmm,
        Tool::PyClick,
        Tool::BezMouse,
        Tool::PyHm,
        Tool::Scroller,
        Tool::ClickBot,
        Tool::ThesisTyping,
        Tool::Hlisa,
    ];

    /// Column header.
    pub fn name(&self) -> &'static str {
        match self {
            Tool::Hmm => "HMM",
            Tool::PyClick => "PyC",
            Tool::BezMouse => "BezMouse",
            Tool::PyHm => "pyHM",
            Tool::Scroller => "Scroller",
            Tool::ClickBot => "ClickBot",
            Tool::ThesisTyping => "[20]",
            Tool::Hlisa => "HLISA",
        }
    }

    /// The tool's Table 4 check marks.
    pub fn features(&self) -> Vec<Feature> {
        use Feature::*;
        match self {
            Tool::Hmm => vec![MouseMovement, CurvedMovement],
            Tool::PyClick => vec![MouseMovement, RealisticSpeed, AccelDecel, CurvedMovement],
            Tool::BezMouse => vec![MouseMovement, RealisticSpeed, Shivering, CurvedMovement],
            Tool::PyHm => vec![
                MouseMovement,
                RealisticSpeed,
                AccelDecel,
                CurvedMovement,
                Clicks,
            ],
            Tool::Scroller => vec![
                Scrolling,
                ScrollTickPauses,
                FingerReplacementPause,
                RealisticScrollTick,
                SeleniumReady,
            ],
            Tool::ClickBot => vec![
                MouseMovement,
                RealisticSpeed,
                CurvedMovement,
                Clicks,
                RealisticClickDwell,
                AccidentalRightClick,
                AccidentalDoubleClick,
                AccidentalNoClick,
            ],
            Tool::ThesisTyping => vec![Keyboard, FlightTime, DataBasedTimings, SeleniumReady],
            Tool::Hlisa => vec![
                MouseMovement,
                RealisticSpeed,
                AccelDecel,
                Shivering,
                CurvedMovement,
                RandomInElementLocation,
                Clicks,
                RealisticClickDwell,
                Scrolling,
                ScrollTickPauses,
                FingerReplacementPause,
                RealisticScrollTick,
                Keyboard,
                FlightTime,
                KeyDwellTime,
                DataBasedTimings,
                SeleniumReady,
            ],
        }
    }

    /// Whether the tool has a check for the feature.
    pub fn has(&self, f: Feature) -> bool {
        self.features().contains(&f)
    }

    /// The tool's mouse-motion recipe, if it simulates movement.
    pub fn motion_style(&self) -> Option<MotionStyle> {
        match self {
            Tool::Hmm => Some(MotionStyle {
                curve: CurveStyle::BSpline,
                velocity: VelocityProfile::Uniform,
                jitter_px: 0.0,
                // The snippet moves in a fixed number of steps with no
                // timing control — executed through ActionChains it runs
                // far faster than any human hand.
                duration: DurationModel::ConstantSpeed(12.0),
            }),
            Tool::PyClick => Some(MotionStyle {
                curve: CurveStyle::QuadBezier,
                velocity: VelocityProfile::MinJerk,
                jitter_px: 0.0,
                duration: DurationModel::ConstantSpeed(0.9),
            }),
            Tool::BezMouse => Some(MotionStyle {
                curve: CurveStyle::QuadBezier,
                velocity: VelocityProfile::Uniform,
                jitter_px: 1.0,
                duration: DurationModel::ConstantSpeed(0.9),
            }),
            Tool::PyHm => Some(MotionStyle {
                curve: CurveStyle::QuadBezier,
                velocity: VelocityProfile::MinJerk,
                jitter_px: 0.0,
                duration: DurationModel::ConstantSpeed(0.8),
            }),
            Tool::ClickBot => Some(MotionStyle {
                curve: CurveStyle::QuadBezier,
                velocity: VelocityProfile::Uniform,
                jitter_px: 0.0,
                duration: DurationModel::ConstantSpeed(0.8),
            }),
            Tool::Hlisa => Some(MotionStyle::hlisa()),
            Tool::Scroller | Tool::ThesisTyping => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn hlisa_has_every_feature_it_claims_and_not_the_accident_ones() {
        let h: HashSet<_> = Tool::Hlisa.features().into_iter().collect();
        // Appendix F: misclicking/accidental interaction is experiment-level.
        assert!(!h.contains(&Feature::AccidentalRightClick));
        assert!(!h.contains(&Feature::AccidentalDoubleClick));
        assert!(!h.contains(&Feature::AccidentalNoClick));
        // The headline features are present.
        for f in [
            Feature::MouseMovement,
            Feature::Shivering,
            Feature::RandomInElementLocation,
            Feature::FingerReplacementPause,
            Feature::KeyDwellTime,
            Feature::SeleniumReady,
        ] {
            assert!(h.contains(&f), "HLISA missing {f:?}");
        }
    }

    #[test]
    fn only_hlisa_moves_to_random_element_location() {
        for t in Tool::ALL {
            let has = t.has(Feature::RandomInElementLocation);
            assert_eq!(has, t == Tool::Hlisa, "{t:?}");
        }
    }

    #[test]
    fn only_clickbot_simulates_accidents() {
        for t in Tool::ALL {
            let has = t.has(Feature::AccidentalRightClick);
            assert_eq!(has, t == Tool::ClickBot, "{t:?}");
        }
    }

    #[test]
    fn scroller_and_thesis_have_no_mouse_motion() {
        assert!(Tool::Scroller.motion_style().is_none());
        assert!(Tool::ThesisTyping.motion_style().is_none());
        assert!(Tool::PyClick.motion_style().is_some());
    }

    #[test]
    fn selenium_ready_tools_match_table() {
        let ready: Vec<_> = Tool::ALL
            .iter()
            .filter(|t| t.has(Feature::SeleniumReady))
            .collect();
        assert_eq!(ready.len(), 3); // Scroller, [20], HLISA
    }

    #[test]
    fn feature_labels_unique() {
        let labels: HashSet<_> = Feature::ALL.iter().map(|f| f.label()).collect();
        assert_eq!(labels.len(), Feature::ALL.len());
    }

    #[test]
    fn tool_names_unique() {
        let names: HashSet<_> = Tool::ALL.iter().map(|t| t.name()).collect();
        assert_eq!(names.len(), Tool::ALL.len());
    }
}
