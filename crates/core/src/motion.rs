//! Cursor motion synthesis over the Selenium primitives.
//!
//! HLISA "modifies a Bézier curve by starting with acceleration and ends
//! with deceleration, over a jittery curve" (§4.1, Fig. 1 D). The
//! trajectory model is shared with the human reference
//! ([`hlisa_human::cursor`]) — the paper explicitly uses "the speed,
//! acceleration and jitter of the mouse movement observed in the
//! experiment as a baseline".
//!
//! A trajectory cannot be handed to WebDriver directly: the only primitive
//! is a straight [`Action::PointerMove`] with a minimum duration. HLISA
//! therefore *chops the trajectory into waypoints* spaced by the overridden
//! 50 ms minimum and emits one primitive move per waypoint. This module
//! also provides the configurable [`MotionStyle`] used by the naive
//! baseline and the Appendix G comparator tools.

use hlisa_browser::Point;
use hlisa_human::cursor::{min_jerk_progress, StrokeScratch, TrajectorySample};
use hlisa_human::HumanParams;
use hlisa_sim::SimContext;
use hlisa_stats::Normal;
use hlisa_webdriver::Action;
use rand::Rng;

/// Path shape of a synthetic movement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CurveStyle {
    /// Straight chord (Selenium).
    Straight,
    /// One quadratic Bézier arc (the "naive solution" and most Appendix G
    /// tools).
    QuadBezier,
    /// A B-spline through random interior knots (the StackOverflow "HMM"
    /// snippet of Appendix G).
    BSpline,
}

/// Velocity profile along the path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VelocityProfile {
    /// Constant speed (Selenium, naive Bézier).
    Uniform,
    /// Minimum-jerk acceleration/deceleration (humans, HLISA).
    MinJerk,
}

/// How movement duration is chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DurationModel {
    /// Fixed total duration (ms) regardless of distance.
    Fixed(f64),
    /// Constant speed in px/ms.
    ConstantSpeed(f64),
    /// Fitts's law from the human parameter set.
    Fitts,
}

/// A complete motion recipe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MotionStyle {
    /// Path shape.
    pub curve: CurveStyle,
    /// Velocity profile.
    pub velocity: VelocityProfile,
    /// Per-sample tremor std-dev (px); 0 disables jitter.
    pub jitter_px: f64,
    /// Duration model.
    pub duration: DurationModel,
}

impl MotionStyle {
    /// HLISA's style (curved, jittered, accelerating, Fitts-timed).
    pub fn hlisa() -> Self {
        Self {
            curve: CurveStyle::QuadBezier,
            velocity: VelocityProfile::MinJerk,
            jitter_px: 1.2,
            duration: DurationModel::Fitts,
        }
    }

    /// The paper's naive solution: "a straightforward Bézier curve ...
    /// still very artificial" — curved but constant-speed and noise-free.
    pub fn naive_bezier() -> Self {
        Self {
            curve: CurveStyle::QuadBezier,
            velocity: VelocityProfile::Uniform,
            jitter_px: 0.0,
            duration: DurationModel::ConstantSpeed(0.8),
        }
    }
}

/// Plans a trajectory in the given style, drawing from the context's
/// `"motion"` stream. Samples are relative to t = 0.
pub fn plan_motion(
    style: MotionStyle,
    params: &HumanParams,
    ctx: &mut SimContext,
    from: Point,
    to: Point,
    target_w: f64,
) -> Vec<TrajectorySample> {
    plan_motion_with(style, params, ctx.stream("motion"), from, to, target_w)
}

/// Like [`plan_motion`], drawing from an explicit RNG stream.
pub fn plan_motion_with<R: Rng + ?Sized>(
    style: MotionStyle,
    params: &HumanParams,
    rng: &mut R,
    from: Point,
    to: Point,
    target_w: f64,
) -> Vec<TrajectorySample> {
    let mut out = Vec::new();
    plan_motion_into(style, params, rng, from, to, target_w, &mut out);
    out
}

/// Like [`plan_motion_with`], filling a caller-supplied buffer instead of
/// allocating. The buffer is cleared first; reusing it across movements
/// removes the per-action `Vec` from the motion hot path. Draw order is
/// identical to [`plan_motion_with`].
#[allow(clippy::too_many_arguments)]
pub fn plan_motion_into<R: Rng + ?Sized>(
    style: MotionStyle,
    params: &HumanParams,
    rng: &mut R,
    from: Point,
    to: Point,
    target_w: f64,
    out: &mut Vec<TrajectorySample>,
) {
    // A `StrokeScratch` is stack-cheap to construct (its spill `Vec`s stay
    // unallocated for ordinary strokes), so the scratch-free form simply
    // delegates; hot paths hold their own scratch and call
    // [`plan_motion_scratch`] directly.
    let mut scratch = StrokeScratch::new();
    plan_motion_scratch(style, params, rng, from, to, target_w, &mut scratch, out);
}

/// Like [`plan_motion_into`], additionally reusing a caller-retained
/// [`StrokeScratch`] for the HLISA-style trajectory kernel, so a long
/// action chain plans every movement without heap traffic. Draw order is
/// identical to [`plan_motion_into`].
#[allow(clippy::too_many_arguments)]
pub fn plan_motion_scratch<R: Rng + ?Sized>(
    style: MotionStyle,
    params: &HumanParams,
    rng: &mut R,
    from: Point,
    to: Point,
    target_w: f64,
    scratch: &mut StrokeScratch,
    out: &mut Vec<TrajectorySample>,
) {
    out.clear();
    // HLISA's style *is* the measured human motion model (§4.1 uses "the
    // speed, acceleration and jitter of the mouse movement observed in
    // the experiment as a baseline"), so it delegates to the canonical
    // generator — including the two-phase aim-and-correct kinematics.
    // The fixed-capacity kernel is bit-identical to the historic eager
    // generator (pinned by the kernel differential tests).
    if style == MotionStyle::hlisa() {
        hlisa_human::cursor::synthesize_into(params, rng, from, to, target_w, scratch, out);
        return;
    }
    let dist = from.distance_to(to);
    if dist < 1e-9 {
        out.push(TrajectorySample {
            t_ms: 0.0,
            x: to.x,
            y: to.y,
        });
        return;
    }
    let duration = match style.duration {
        DurationModel::Fixed(ms) => ms.max(1.0),
        DurationModel::ConstantSpeed(px_per_ms) => (dist / px_per_ms.max(1e-6)).max(1.0),
        DurationModel::Fitts => {
            params.fitts_duration_ms(dist, target_w) * rng.gen_range(0.88..1.12)
        }
    };

    // Control geometry.
    let (px, py) = {
        let dx = to.x - from.x;
        let dy = to.y - from.y;
        let len = (dx * dx + dy * dy).sqrt().max(1e-12);
        (-dy / len, dx / len)
    };
    let control = match style.curve {
        CurveStyle::Straight => None,
        CurveStyle::QuadBezier => {
            let amp = params.curve_amplitude_frac
                * dist
                * if rng.gen_bool(0.5) { 1.0 } else { -1.0 }
                * rng.gen_range(0.6..1.4);
            let mid = from.lerp(to, 0.5);
            Some(vec![Point::new(mid.x + px * amp, mid.y + py * amp)])
        }
        CurveStyle::BSpline => {
            // Three interior knots with independent perpendicular offsets.
            let mut knots = Vec::new();
            for frac in [0.25, 0.5, 0.75] {
                let amp = params.curve_amplitude_frac * dist * rng.gen_range(-1.2..1.2);
                let p = from.lerp(to, frac);
                knots.push(Point::new(p.x + px * amp, p.y + py * amp));
            }
            Some(knots)
        }
    };

    let interval = params.pointer_sample_interval_ms.max(1.0);
    let n = ((duration / interval).ceil() as usize).max(3);
    let jitter = Normal::new(0.0, style.jitter_px);
    let mut tremor = 0.0f64;
    out.reserve(n + 1);
    for i in 0..=n {
        let tau = i as f64 / n as f64;
        let s = match style.velocity {
            VelocityProfile::Uniform => tau,
            VelocityProfile::MinJerk => min_jerk_progress(tau),
        };
        let p = position_along(from, control.as_deref(), to, s);
        let (mut x, mut y) = (p.x, p.y);
        if style.jitter_px > 0.0 {
            tremor = 0.7 * tremor + 0.3 * jitter.sample(rng);
            let envelope = (std::f64::consts::PI * tau).sin();
            x += px * tremor * envelope;
            y += py * tremor * envelope;
        }
        out.push(TrajectorySample {
            t_ms: tau * duration,
            x,
            y,
        });
    }
    if let Some(last) = out.last_mut() {
        last.x = to.x;
        last.y = to.y;
    }
}

/// Point along the configured path at progress `s` ∈ [0, 1].
fn position_along(from: Point, control: Option<&[Point]>, to: Point, s: f64) -> Point {
    match control {
        None => from.lerp(to, s),
        Some([c]) => {
            let u = 1.0 - s;
            Point::new(
                u * u * from.x + 2.0 * u * s * c.x + s * s * to.x,
                u * u * from.y + 2.0 * u * s * c.y + s * s * to.y,
            )
        }
        Some(knots) => {
            // Piecewise Catmull-Rom-like blend through the knots.
            let pts: Vec<Point> = std::iter::once(from)
                .chain(knots.iter().copied())
                .chain(std::iter::once(to))
                .collect();
            let segs = pts.len() - 1;
            let scaled = s * segs as f64;
            let i = (scaled.floor() as usize).min(segs - 1);
            let local = scaled - i as f64;
            // Smoothstep within the segment keeps the path C1-ish.
            let smooth = local * local * (3.0 - 2.0 * local);
            pts[i].lerp(pts[i + 1], smooth)
        }
    }
}

/// Converts a trajectory into primitive pointer-move actions, one waypoint
/// per `min_segment_ms` of trajectory time — HLISA's chop-into-50 ms-moves
/// deployment strategy.
pub fn trajectory_to_actions(samples: &[TrajectorySample], min_segment_ms: f64) -> Vec<Action> {
    let mut out = Vec::new();
    trajectory_to_actions_into(samples, min_segment_ms, &mut out);
    out
}

/// Like [`trajectory_to_actions`], filling a caller-supplied buffer
/// instead of allocating. The buffer is cleared first.
pub fn trajectory_to_actions_into(
    samples: &[TrajectorySample],
    min_segment_ms: f64,
    out: &mut Vec<Action>,
) {
    assert!(min_segment_ms > 0.0, "segment duration must be positive");
    out.clear();
    let mut last_t = 0.0f64;
    for (i, s) in samples.iter().enumerate() {
        let is_last = i + 1 == samples.len();
        if i == 0 && samples.len() > 1 {
            continue; // starting point is the current cursor position
        }
        if s.t_ms - last_t >= min_segment_ms || is_last {
            out.push(Action::PointerMove {
                x: s.x,
                y: s.y,
                duration_ms: (s.t_ms - last_t).max(min_segment_ms),
            });
            last_t = s.t_ms;
        }
    }
    if out.is_empty() {
        if let Some(s) = samples.last() {
            out.push(Action::PointerMove {
                x: s.x,
                y: s.y,
                duration_ms: min_segment_ms,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlisa_human::cursor::metrics;
    use hlisa_sim::SimContext;

    fn params() -> HumanParams {
        HumanParams::paper_baseline()
    }

    #[test]
    fn hlisa_motion_is_curved_and_accelerating() {
        let mut ctx = SimContext::new(1);
        let t = plan_motion(
            MotionStyle::hlisa(),
            &params(),
            &mut ctx,
            Point::new(100.0, 500.0),
            Point::new(900.0, 300.0),
            40.0,
        );
        assert!(metrics::straightness(&t) < 0.9999);
        let speeds = metrics::speeds(&t);
        let n = speeds.len();
        let edge = (speeds[0] + speeds[n - 1]) / 2.0;
        let mid = speeds[n / 2];
        assert!(mid > edge * 2.0, "no accel/decel: edge {edge}, mid {mid}");
    }

    #[test]
    fn naive_bezier_is_curved_but_uniform() {
        let mut ctx = SimContext::new(2);
        let t = plan_motion(
            MotionStyle::naive_bezier(),
            &params(),
            &mut ctx,
            Point::new(100.0, 500.0),
            Point::new(900.0, 300.0),
            40.0,
        );
        assert!(metrics::straightness(&t) < 0.9999, "must curve");
        let speeds = metrics::speeds(&t);
        // Spatial speed along a uniform-parameter Bézier varies mildly but
        // has no rest-to-rest profile: endpoints are NOT near-zero.
        assert!(speeds[0] > 0.2, "naive starts at speed, got {}", speeds[0]);
        assert!(speeds[speeds.len() - 1] > 0.2);
    }

    #[test]
    fn straight_uniform_is_selenium_like() {
        let mut ctx = SimContext::new(3);
        let style = MotionStyle {
            curve: CurveStyle::Straight,
            velocity: VelocityProfile::Uniform,
            jitter_px: 0.0,
            duration: DurationModel::Fixed(250.0),
        };
        let t = plan_motion(
            style,
            &params(),
            &mut ctx,
            Point::new(0.0, 0.0),
            Point::new(800.0, 400.0),
            40.0,
        );
        assert!(metrics::straightness(&t) > 0.999999);
        let speeds = metrics::speeds(&t);
        let mean: f64 = speeds.iter().sum::<f64>() / speeds.len() as f64;
        for s in &speeds {
            assert!((s - mean).abs() / mean < 0.05);
        }
    }

    #[test]
    fn bspline_differs_from_single_bezier() {
        let mut ctx = SimContext::new(2);
        let style = MotionStyle {
            curve: CurveStyle::BSpline,
            velocity: VelocityProfile::Uniform,
            jitter_px: 0.0,
            duration: DurationModel::ConstantSpeed(0.8),
        };
        let t = plan_motion(
            style,
            &params(),
            &mut ctx,
            Point::new(0.0, 0.0),
            Point::new(800.0, 0.0),
            40.0,
        );
        // Multiple inflections: the perpendicular offset changes sign.
        let offsets: Vec<f64> = t.iter().map(|s| s.y).collect();
        let sign_changes = offsets
            .windows(2)
            .filter(|w| w[0].signum() != w[1].signum() && w[0].abs() > 0.5)
            .count();
        assert!(
            sign_changes >= 1,
            "b-spline should weave, offsets: {offsets:?}"
        );
        assert_eq!(t.last().unwrap().y, 0.0);
    }

    #[test]
    fn trajectory_to_actions_respects_min_segment() {
        let mut ctx = SimContext::new(5);
        let t = plan_motion(
            MotionStyle::hlisa(),
            &params(),
            &mut ctx,
            Point::new(0.0, 0.0),
            Point::new(900.0, 500.0),
            40.0,
        );
        let actions = trajectory_to_actions(&t, 50.0);
        assert!(actions.len() >= 3, "{} segments", actions.len());
        for a in &actions {
            match a {
                Action::PointerMove { duration_ms, .. } => {
                    assert!(*duration_ms >= 50.0 - 1e-9);
                }
                other => panic!("unexpected action {other:?}"),
            }
        }
        // Final action lands on the target.
        match actions.last().unwrap() {
            Action::PointerMove { x, y, .. } => {
                assert_eq!((*x, *y), (900.0, 500.0));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn zero_distance_yields_single_action() {
        let samples = vec![TrajectorySample {
            t_ms: 0.0,
            x: 5.0,
            y: 5.0,
        }];
        let actions = trajectory_to_actions(&samples, 50.0);
        assert_eq!(actions.len(), 1);
    }

    #[test]
    #[should_panic(expected = "segment duration")]
    fn rejects_zero_segment() {
        let _ = trajectory_to_actions(&[], 0.0);
    }
}
