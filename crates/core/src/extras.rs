//! Experiment-level behaviours (Appendix F).
//!
//! The paper deliberately keeps several humanising behaviours *out* of the
//! HLISA API, because "whether and to what extent such behaviour should be
//! simulated depends on the specific experiment being conducted":
//!
//! * "Mouse movement starting at (0,0), which can be solved by moving the
//!   mouse prior to loading a page" — [`ExperimentBehaviors::position_cursor_before_load`].
//! * "Adding random/spontaneous mouse movements" —
//!   [`ExperimentBehaviors::spontaneous_movement`].
//! * "Misclicking" — [`ExperimentBehaviors::click_element_with_misclicks`].
//! * "Introducing typing errors … erasing and cancelling input" —
//!   [`ExperimentBehaviors::type_with_typos`] (adjacent-key slips corrected
//!   with Backspace).
//!
//! They are provided here as composable helpers over the HLISA chain so an
//! experiment can opt in per task.

use crate::chains::HlisaActionChains;
use crate::motion::{plan_motion, trajectory_to_actions, MotionStyle};
use hlisa_browser::events::MouseButton;
use hlisa_browser::Point;
use hlisa_human::click::sample_dwell_ms;
use hlisa_human::keyboard::{adjacent_key, us_qwerty};
use hlisa_human::HumanParams;
use hlisa_sim::SimContext;
use hlisa_webdriver::{Action, ElementHandle, Session, WebDriverError};
use rand::Rng;

/// Experiment-level humanising behaviours, stacked on top of the API.
#[derive(Debug, Clone)]
pub struct ExperimentBehaviors {
    params: HumanParams,
    ctx: SimContext,
    chain_counter: u64,
}

impl ExperimentBehaviors {
    /// Creates the behaviour layer.
    pub fn new(seed: u64) -> Self {
        Self::with_context(SimContext::new(seed))
    }

    /// Creates the behaviour layer over an existing simulation context.
    pub fn with_context(ctx: SimContext) -> Self {
        Self {
            params: HumanParams::paper_baseline(),
            ctx,
            chain_counter: 0,
        }
    }

    fn chain(&mut self) -> HlisaActionChains {
        self.chain_counter += 1;
        HlisaActionChains::with_context(
            self.params.clone(),
            self.ctx.fork("behavior-chain", self.chain_counter),
        )
    }

    /// Moves the cursor to a plausible resting position before (or right
    /// after) page load, so the first recorded movement does not start at
    /// the OS origin (0, 0).
    pub fn position_cursor_before_load(
        &mut self,
        session: &mut Session,
    ) -> Result<(), WebDriverError> {
        let (x, y) = {
            let rng = self.ctx.stream("behavior");
            (rng.gen_range(200.0..1_000.0), rng.gen_range(120.0..600.0))
        };
        self.chain().move_to(x, y).perform(session)
    }

    /// A short, aimless drift of the cursor followed by a pause — the
    /// idle fidgeting real visitors produce while reading.
    pub fn spontaneous_movement(&mut self, session: &mut Session) -> Result<(), WebDriverError> {
        let p = session.browser.mouse_position();
        let (dx, dy, pause) = {
            let rng = self.ctx.stream("behavior");
            (
                rng.gen_range(-120.0..120.0),
                rng.gen_range(-80.0..80.0),
                rng.gen_range(0.3..1.8),
            )
        };
        self.chain()
            .move_by_offset(dx, dy)
            .pause(pause)
            .perform(session)?;
        let _ = p;
        Ok(())
    }

    /// Clicks an element, but with probability `misclick_prob` first lands
    /// a click just *outside* it, notices, and corrects — the "misclicking"
    /// behaviour Appendix F assigns to the experiment layer.
    ///
    /// Returns how many misclicks happened (0 or 1).
    pub fn click_element_with_misclicks(
        &mut self,
        session: &mut Session,
        el: ElementHandle,
        misclick_prob: f64,
    ) -> Result<usize, WebDriverError> {
        let mut misclicks = 0;
        if self
            .ctx
            .stream("behavior")
            .gen_bool(misclick_prob.clamp(0.0, 1.0))
        {
            session.ensure_interactable(el)?;
            let r = session.element_rect(el);
            // Land 4–18 px past a random edge.
            let (overshoot, edge) = {
                let rng = self.ctx.stream("behavior");
                (rng.gen_range(4.0..18.0), rng.gen_range(0..4u8))
            };
            let miss = match edge {
                0 => Point::new(r.x - overshoot, r.center().y),
                1 => Point::new(r.x + r.width + overshoot, r.center().y),
                2 => Point::new(r.center().x, r.y - overshoot),
                _ => Point::new(r.center().x, r.y + r.height + overshoot),
            };
            let from = session.browser.mouse_position();
            let samples = plan_motion(
                MotionStyle::hlisa(),
                &self.params,
                &mut self.ctx,
                from,
                miss,
                r.width.min(r.height),
            );
            let mut actions = trajectory_to_actions(&samples, 50.0);
            let dwell = sample_dwell_ms(&self.params, &mut self.ctx);
            actions.push(Action::PointerDown(MouseButton::Left));
            actions.push(Action::Pause(dwell));
            actions.push(Action::PointerUp(MouseButton::Left));
            // The double-take before correcting.
            let double_take = self.ctx.stream("behavior").gen_range(180.0..500.0);
            actions.push(Action::Pause(double_take));
            session.perform_actions(&actions);
            misclicks = 1;
        }
        self.chain().click(Some(el)).perform(session)?;
        Ok(misclicks)
    }

    /// Types `text` with occasional adjacent-key slips, each corrected
    /// with a pause and a Backspace before retyping the intended
    /// character.
    pub fn type_with_typos(
        &mut self,
        session: &mut Session,
        el: ElementHandle,
        text: &str,
        typo_prob: f64,
    ) -> Result<usize, WebDriverError> {
        self.chain().click(Some(el)).perform(session)?;
        let focus_pause = self.ctx.stream("behavior").gen_range(150.0..400.0);
        session.perform_actions(&[Action::Pause(focus_pause)]);
        let mut typos = 0;
        for ch in text.chars() {
            let Some(spec) = us_qwerty(ch) else {
                continue;
            };
            let slip = ch.is_ascii_alphabetic()
                && self
                    .ctx
                    .stream("behavior")
                    .gen_bool(typo_prob.clamp(0.0, 1.0));
            if slip {
                let slot = self.ctx.stream("behavior").gen_range(0..4usize);
                if let Some(wrong) = adjacent_key(ch, slot) {
                    self.type_one(session, &wrong.to_string());
                    // Noticing lag, then erase.
                    let lag = self.ctx.stream("behavior").gen_range(250.0..800.0);
                    session.perform_actions(&[Action::Pause(lag)]);
                    self.type_one(session, "Backspace");
                    typos += 1;
                }
            }
            self.type_one(session, &spec.key);
        }
        Ok(typos)
    }

    /// One human-timed key stroke through the primitives.
    fn type_one(&mut self, session: &mut Session, key: &str) {
        let needs_shift = {
            let mut chars = key.chars();
            matches!(
                (chars.next(), chars.next()),
                (Some(c), None) if hlisa_human::keyboard::requires_shift(c)
            )
        };
        let params = &self.params;
        let rng = self.ctx.stream("behavior");
        let mut actions = Vec::new();
        if needs_shift {
            actions.push(Action::KeyDown("Shift".to_string()));
            actions.push(Action::Pause(rng.gen_range(35.0..90.0)));
        }
        let dwell = params.key_dwell.sample(rng);
        actions.push(Action::KeyDown(key.to_string()));
        actions.push(Action::Pause(dwell));
        actions.push(Action::KeyUp(key.to_string()));
        if needs_shift {
            actions.push(Action::Pause(rng.gen_range(10.0..50.0)));
            actions.push(Action::KeyUp("Shift".to_string()));
        }
        actions.push(Action::Pause(params.key_flight.sample(rng).abs().max(5.0)));
        session.perform_actions(&actions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlisa_browser::dom::standard_test_page;
    use hlisa_browser::{Browser, BrowserConfig, EventKind};
    use hlisa_webdriver::By;

    fn session() -> Session {
        Session::new(Browser::open(
            BrowserConfig::webdriver(),
            standard_test_page("https://extras.test/", 5_000.0),
        ))
    }

    #[test]
    fn cursor_leaves_the_origin_before_work() {
        let mut s = session();
        let mut x = ExperimentBehaviors::new(1);
        assert_eq!(s.browser.mouse_position(), Point::new(0.0, 0.0));
        x.position_cursor_before_load(&mut s).unwrap();
        let p = s.browser.mouse_position();
        assert!(
            p.x > 100.0 && p.y > 100.0,
            "cursor still near origin: {p:?}"
        );
    }

    #[test]
    fn spontaneous_movement_adds_trace_without_clicks() {
        let mut s = session();
        let mut x = ExperimentBehaviors::new(2);
        x.position_cursor_before_load(&mut s).unwrap();
        let before = s.browser.recorder.cursor_trace().len();
        x.spontaneous_movement(&mut s).unwrap();
        assert!(s.browser.recorder.cursor_trace().len() > before);
        assert!(s.browser.recorder.clicks().is_empty());
    }

    #[test]
    fn misclick_produces_two_clicks_one_off_element() {
        let mut s = session();
        let mut x = ExperimentBehaviors::new(3);
        let el = s.find_element(By::Id("submit".into())).unwrap();
        let n = x.click_element_with_misclicks(&mut s, el, 1.0).unwrap();
        assert_eq!(n, 1);
        let clicks = s.browser.recorder.clicks();
        assert_eq!(clicks.len(), 2);
        let rect = s.element_rect(el);
        let on_el = clicks
            .iter()
            .filter(|c| rect.contains(Point::new(c.x, c.y)))
            .count();
        assert_eq!(on_el, 1, "exactly one of the two clicks lands on target");
    }

    #[test]
    fn no_misclick_when_probability_zero() {
        let mut s = session();
        let mut x = ExperimentBehaviors::new(4);
        let el = s.find_element(By::Id("submit".into())).unwrap();
        let n = x.click_element_with_misclicks(&mut s, el, 0.0).unwrap();
        assert_eq!(n, 0);
        assert_eq!(s.browser.recorder.clicks().len(), 1);
    }

    #[test]
    fn typos_are_corrected_so_text_ends_right() {
        let mut s = session();
        let mut x = ExperimentBehaviors::new(5);
        let el = s.find_element(By::Id("text_area".into())).unwrap();
        let typos = x
            .type_with_typos(&mut s, el, "hello brown fox", 0.5)
            .unwrap();
        assert!(typos > 0, "with p=0.5 over 13 letters a typo must occur");
        assert_eq!(s.element_text(el), "hello brown fox");
        // The trace shows the slips: backspace keydowns.
        let backspaces = s
            .browser
            .recorder
            .events()
            .iter()
            .filter(|e| {
                e.kind == EventKind::KeyDown
                    && matches!(&e.payload,
                        hlisa_browser::EventPayload::Key { key, .. } if key == "Backspace")
            })
            .count();
        assert_eq!(backspaces, typos);
    }

    #[test]
    fn typo_free_typing_matches_plain_hlisa_output() {
        let mut s = session();
        let mut x = ExperimentBehaviors::new(6);
        let el = s.find_element(By::Id("text_area".into())).unwrap();
        x.type_with_typos(&mut s, el, "Plain text.", 0.0).unwrap();
        assert_eq!(s.element_text(el), "Plain text.");
    }
}
