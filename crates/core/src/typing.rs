//! HLISA's typing model.
//!
//! HLISA copies the human typing *distributions* — dwell and flight drawn
//! "from a normal distribution parametrised with values found in our
//! experiment", simulated Shift for capitals, Alves et al. contextual
//! pauses, and the rollover (interleaved) presses fast typing exhibits —
//! but, being a proof of concept, it draws every timing **independently**
//! (Appendix F's caveat). Mechanically that means the schedule is produced
//! by the same planner as the human reference with the tempo-drift
//! autocorrelation set to zero, then compiled to Selenium key primitives.
//!
//! [`plan_consistent_typing`] keeps the drift on — the "use consistent
//! behaviour" escalation of the Fig. 3 simulator ladder, one of the
//! refinements the paper's future-work section anticipates.

use hlisa_human::typing::{plan_typing_into, plan_typing_with, PlannedKeyEvent};
use hlisa_human::HumanParams;
use hlisa_sim::SimContext;
use hlisa_webdriver::Action;
use rand::Rng;

/// Plans HLISA keystroke actions for `text` (i.i.d. timing draws),
/// drawing from the context's `"typing"` stream.
pub fn plan_hlisa_typing(params: &HumanParams, ctx: &mut SimContext, text: &str) -> Vec<Action> {
    plan_hlisa_typing_with(params, ctx.stream("typing"), text)
}

/// Like [`plan_hlisa_typing`], drawing from an explicit RNG stream.
pub fn plan_hlisa_typing_with<R: Rng + ?Sized>(
    params: &HumanParams,
    rng: &mut R,
    text: &str,
) -> Vec<Action> {
    let mut iid = params.clone();
    iid.dwell_autocorr = 0.0;
    events_to_actions(&plan_typing_with(&iid, rng, text))
}

/// Like [`plan_hlisa_typing_with`], filling caller-supplied buffers: the
/// intermediate key plan goes into `events` and the compiled actions into
/// `out` (both cleared first), so a driver typing many fields reuses the
/// same two allocations.
pub fn plan_hlisa_typing_into<R: Rng + ?Sized>(
    params: &HumanParams,
    rng: &mut R,
    text: &str,
    events: &mut Vec<PlannedKeyEvent>,
    out: &mut Vec<Action>,
) {
    let mut iid = params.clone();
    iid.dwell_autocorr = 0.0;
    plan_typing_into(&iid, rng, text, events);
    events_to_actions_into(events, out);
}

/// Plans typing with the human tempo drift retained — the consistency
/// escalation that defeats level-3 detectors. Draws from the context's
/// `"typing"` stream.
pub fn plan_consistent_typing(
    params: &HumanParams,
    ctx: &mut SimContext,
    text: &str,
) -> Vec<Action> {
    plan_consistent_typing_with(params, ctx.stream("typing"), text)
}

/// Like [`plan_consistent_typing`], drawing from an explicit RNG stream.
pub fn plan_consistent_typing_with<R: Rng + ?Sized>(
    params: &HumanParams,
    rng: &mut R,
    text: &str,
) -> Vec<Action> {
    events_to_actions(&plan_typing_with(params, rng, text))
}

/// Like [`plan_consistent_typing_with`], filling caller-supplied buffers
/// (see [`plan_hlisa_typing_into`]).
pub fn plan_consistent_typing_into<R: Rng + ?Sized>(
    params: &HumanParams,
    rng: &mut R,
    text: &str,
    events: &mut Vec<PlannedKeyEvent>,
    out: &mut Vec<Action>,
) {
    plan_typing_into(params, rng, text, events);
    events_to_actions_into(events, out);
}

/// Compiles a timestamped key plan into sequential Selenium primitives.
/// Interleaved (rollover) presses survive: the actions are emitted in
/// timestamp order with pauses in between, so a `key_down` of the next key
/// can precede the `key_up` of the previous one.
pub fn events_to_actions(events: &[PlannedKeyEvent]) -> Vec<Action> {
    let mut actions = Vec::new();
    events_to_actions_into(events, &mut actions);
    actions
}

/// Like [`events_to_actions`], filling a caller-supplied buffer instead of
/// allocating. The buffer is cleared first.
pub fn events_to_actions_into(events: &[PlannedKeyEvent], out: &mut Vec<Action>) {
    out.clear();
    out.reserve(events.len() * 2);
    let mut t = 0.0f64;
    for ev in events {
        if ev.at_ms > t {
            out.push(Action::Pause(ev.at_ms - t));
            t = ev.at_ms;
        }
        out.push(if ev.down {
            Action::KeyDown(ev.key.clone())
        } else {
            Action::KeyUp(ev.key.clone())
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlisa_sim::SimContext;

    fn plan(text: &str, seed: u64) -> Vec<Action> {
        let p = HumanParams::paper_baseline();
        let mut ctx = SimContext::new(seed);
        plan_hlisa_typing(&p, &mut ctx, text)
    }

    #[test]
    fn balanced_keys() {
        let acts = plan("Hello, World!", 1);
        let d = acts
            .iter()
            .filter(|a| matches!(a, Action::KeyDown(_)))
            .count();
        let u = acts
            .iter()
            .filter(|a| matches!(a, Action::KeyUp(_)))
            .count();
        assert_eq!(d, u);
    }

    #[test]
    fn shift_simulated_for_capitals_and_symbols() {
        let acts = plan("Hi!", 2);
        let shifts = acts
            .iter()
            .filter(|a| matches!(a, Action::KeyDown(k) if k == "Shift"))
            .count();
        // H needs shift; i does not; ! does.
        assert!(shifts >= 2, "{shifts} shifts");
    }

    #[test]
    fn pauses_are_positive_and_variable() {
        let acts = plan("abcdefghij", 3);
        let pauses: Vec<f64> = acts
            .iter()
            .filter_map(|a| match a {
                Action::Pause(ms) => Some(*ms),
                _ => None,
            })
            .collect();
        assert!(pauses.iter().all(|p| *p > 0.0));
        let first = pauses[0];
        assert!(pauses.iter().any(|p| (p - first).abs() > 1.0));
    }

    #[test]
    fn iid_plan_lacks_tempo_drift() {
        // Extract dwell sequence from the action stream and check its
        // lag-1 autocorrelation is near zero (vs the human planner's 0.55).
        let p = HumanParams::paper_baseline();
        let mut ctx = SimContext::new(4);
        let long = "the quick brown fox jumps over the lazy dog ".repeat(8);
        let acts = plan_hlisa_typing(&p, &mut ctx, &long);
        let dwells = dwells_of(&acts);
        assert!(dwells.len() > 200);
        let a: Vec<f64> = dwells[..dwells.len() - 1].to_vec();
        let b: Vec<f64> = dwells[1..].to_vec();
        let r = hlisa_stats::descriptive::pearson(&a, &b);
        assert!(r.abs() < 0.2, "iid dwell autocorr {r}");
    }

    #[test]
    fn consistent_plan_has_tempo_drift() {
        let p = HumanParams::paper_baseline();
        let mut ctx = SimContext::new(5);
        let long = "the quick brown fox jumps over the lazy dog ".repeat(8);
        let acts = plan_consistent_typing(&p, &mut ctx, &long);
        let dwells = dwells_of(&acts);
        let a: Vec<f64> = dwells[..dwells.len() - 1].to_vec();
        let b: Vec<f64> = dwells[1..].to_vec();
        let r = hlisa_stats::descriptive::pearson(&a, &b);
        assert!(r > 0.3, "consistent dwell autocorr {r}");
    }

    #[test]
    fn empty_text_plans_nothing() {
        assert!(plan("", 6).is_empty());
    }

    /// Reconstructs per-key dwell times by replaying the action stream.
    fn dwells_of(actions: &[Action]) -> Vec<f64> {
        let mut t = 0.0;
        let mut open: Vec<(String, f64)> = Vec::new();
        let mut dwells = Vec::new();
        for a in actions {
            match a {
                Action::Pause(ms) => t += ms,
                Action::KeyDown(k) if k != "Shift" => open.push((k.clone(), t)),
                Action::KeyUp(k) if k != "Shift" => {
                    if let Some(pos) = open.iter().position(|(ok, _)| ok == k) {
                        let (_, down_t) = open.remove(pos);
                        dwells.push(t - down_t);
                    }
                }
                _ => {}
            }
        }
        dwells
    }
}
