//! Statistical substrate for the HLISA reproduction.
//!
//! The paper's evaluation relies on a handful of statistical tools that are
//! usually imported from SciPy or R: matched-pairs Wilcoxon signed-rank tests
//! (§3.2), normal/truncated-normal noise models for HLISA's interaction
//! parameters (§4.1), and descriptive statistics over recorded interaction
//! traces (Appendix E). This crate implements them from scratch on top of
//! [`rand`], keeping the rest of the workspace free of numerics code.
//!
//! Modules:
//! * [`dist`] — sampling distributions (normal, truncated normal, log-normal).
//! * [`descriptive`] — summary statistics over slices.
//! * [`wilcoxon`] — Wilcoxon matched-pairs signed-rank test.
//! * [`ks`] — two-sample Kolmogorov–Smirnov test.
//! * [`hist`] — 1-D and 2-D histograms.
//! * [`ascii`] — terminal renderings used by the figure regenerators.
//! * [`rngutil`] — deterministic seeding helpers shared by all experiments.

pub mod ascii;
pub mod descriptive;
pub mod dist;
pub mod hist;
pub mod ks;
pub mod rngutil;
pub mod wilcoxon;

pub use descriptive::Summary;
pub use dist::{LogNormal, Normal, TruncatedNormal};
pub use ks::KsResult;
pub use wilcoxon::WilcoxonResult;
