//! Descriptive statistics over `f64` slices.

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean (0 for empty samples).
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 if n < 2).
    pub std_dev: f64,
    /// Minimum (0 for empty samples).
    pub min: f64,
    /// Maximum (0 for empty samples).
    pub max: f64,
    /// Median.
    pub median: f64,
}

impl Summary {
    /// Computes summary statistics of `xs`.
    pub fn of(xs: &[f64]) -> Self {
        if xs.is_empty() {
            return Self {
                n: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
                median: 0.0,
            };
        }
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        Self {
            n,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median: percentile_sorted(&sorted, 50.0),
        }
    }
}

/// Returns the `p`-th percentile (0–100) of `xs` (need not be sorted).
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    percentile_sorted(&sorted, p)
}

/// Percentile of an already-sorted slice using linear interpolation.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
    if sorted.is_empty() {
        return 0.0;
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation (n-1); 0 if fewer than two observations.
pub fn std_dev(xs: &[f64]) -> f64 {
    Summary::of(xs).std_dev
}

/// Pearson correlation coefficient of two equal-length samples.
///
/// Returns 0 when either sample has zero variance. The arms-race L3 detector
/// uses correlation to test behavioural *consistency* (e.g. movement speed vs
/// click accuracy, §4.2).
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "samples must be paired");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mx;
        let dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        0.0
    } else {
        sxy / (sxx.sqrt() * syy.sqrt())
    }
}

/// Coefficient of variation (std/mean); 0 for mean 0.
pub fn coefficient_of_variation(xs: &[f64]) -> f64 {
    let s = Summary::of(xs);
    if s.mean == 0.0 {
        0.0
    } else {
        s.std_dev / s.mean.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_simple() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.n, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.std_dev - (2.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn summary_empty() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn summary_single() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 0.0), 10.0);
        assert_eq!(percentile(&xs, 100.0), 40.0);
        assert!((percentile(&xs, 50.0) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [2.0, 4.0, 6.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg = [6.0, 4.0, 2.0];
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_zero_variance() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn cv_basics() {
        assert_eq!(coefficient_of_variation(&[0.0, 0.0]), 0.0);
        let cv = coefficient_of_variation(&[9.0, 10.0, 11.0]);
        assert!(cv > 0.0 && cv < 0.2);
    }
}
