//! Sampling distributions.
//!
//! HLISA draws interaction noise from normal distributions parametrised by
//! the paper's measurements (§4.1: click placement, key dwell times, scroll
//! pauses). `rand` 0.8 without `rand_distr` only offers uniform sampling, so
//! the normal variants are implemented here via the Marsaglia polar method.

use rand::Rng;

/// A normal (Gaussian) distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Panics
    /// Panics if `std_dev` is negative or not finite.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(
            std_dev.is_finite() && std_dev >= 0.0,
            "std_dev must be finite and non-negative, got {std_dev}"
        );
        assert!(mean.is_finite(), "mean must be finite");
        Self { mean, std_dev }
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The distribution standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Draws one sample using the Marsaglia polar method.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.std_dev == 0.0 {
            return self.mean;
        }
        // Marsaglia polar: rejection-sample a point in the unit disc.
        loop {
            let u: f64 = rng.gen_range(-1.0..1.0);
            let v: f64 = rng.gen_range(-1.0..1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                return self.mean + self.std_dev * u * factor;
            }
        }
    }

    /// Fills `out` with samples, bit-identical to calling [`Normal::sample`]
    /// once per slot (same values, same RNG draw sequence).
    ///
    /// The polar method splits into two phases per chunk: a rejection phase
    /// that only touches the RNG and stores the accepted `(u, s)` pairs, and
    /// a transform phase that runs the `ln`/`sqrt` arithmetic over the dense
    /// accepted block. The draws are interleaved identically to the one-shot
    /// path (each slot's rejection loop runs to acceptance before the next
    /// slot draws), so stream state after the fill matches a per-sample loop
    /// exactly; only the transform is hoisted out of the draw loop, which
    /// keeps the RNG hot in the rejection phase and lets the compiler
    /// pipeline the `ln` chain in the transform phase.
    pub fn fill_samples<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        if self.std_dev == 0.0 {
            out.fill(self.mean);
            return;
        }
        const CHUNK: usize = 64;
        let mut us = [0.0f64; CHUNK];
        let mut ss = [0.0f64; CHUNK];
        for block in out.chunks_mut(CHUNK) {
            // Phase A: rejection-only. Exactly the draws `sample` would make,
            // in the same order; accepted pairs land densely in `us`/`ss`.
            for slot in 0..block.len() {
                loop {
                    let u: f64 = rng.gen_range(-1.0..1.0);
                    let v: f64 = rng.gen_range(-1.0..1.0);
                    let s = u * u + v * v;
                    if s > 0.0 && s < 1.0 {
                        us[slot] = u;
                        ss[slot] = s;
                        break;
                    }
                }
            }
            // Phase B: the same transform expression as `sample`, applied to
            // the dense block. Identical expression => identical bits.
            for (slot, x) in block.iter_mut().enumerate() {
                let (u, s) = (us[slot], ss[slot]);
                let factor = (-2.0 * s.ln() / s).sqrt();
                *x = self.mean + self.std_dev * u * factor;
            }
        }
    }

    /// Probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        if self.std_dev == 0.0 {
            return if x == self.mean { f64::INFINITY } else { 0.0 };
        }
        let z = (x - self.mean) / self.std_dev;
        (-0.5 * z * z).exp() / (self.std_dev * (2.0 * std::f64::consts::PI).sqrt())
    }

    /// Cumulative distribution function at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        if self.std_dev == 0.0 {
            return if x < self.mean { 0.0 } else { 1.0 };
        }
        let z = (x - self.mean) / (self.std_dev * std::f64::consts::SQRT_2);
        0.5 * (1.0 + erf(z))
    }
}

/// A normal distribution truncated to `[lo, hi]`, sampled by rejection.
///
/// Interaction timings cannot be negative (a key cannot be released before it
/// is pressed), so HLISA truncates every timing distribution at a physically
/// plausible floor instead of clamping — clamping would put a detectable
/// point mass at the boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncatedNormal {
    inner: Normal,
    lo: f64,
    hi: f64,
}

impl TruncatedNormal {
    /// Creates a truncated normal distribution over `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn new(mean: f64, std_dev: f64, lo: f64, hi: f64) -> Self {
        assert!(lo < hi, "invalid truncation interval [{lo}, {hi}]");
        Self {
            inner: Normal::new(mean, std_dev),
            lo,
            hi,
        }
    }

    /// Mean of the underlying (untruncated) normal.
    pub fn mean(&self) -> f64 {
        self.inner.mean()
    }

    /// Standard deviation of the underlying (untruncated) normal.
    pub fn std_dev(&self) -> f64 {
        self.inner.std_dev()
    }

    /// Lower truncation bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper truncation bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Draws one sample. Falls back to uniform sampling over the interval if
    /// the acceptance region is far in the tail (keeps worst-case cost
    /// bounded while remaining continuous over the support).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        const MAX_REJECTIONS: usize = 64;
        for _ in 0..MAX_REJECTIONS {
            let x = self.inner.sample(rng);
            if x >= self.lo && x <= self.hi {
                return x;
            }
        }
        rng.gen_range(self.lo..self.hi)
    }
}

/// A log-normal distribution: `exp(N(mu, sigma))`.
///
/// Used for heavy-tailed dwell components of the human reference model —
/// human pauses are right-skewed (Chu et al., noted in Appendix F).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    log_inner: Normal,
}

impl LogNormal {
    /// Creates a log-normal distribution with the given log-space parameters.
    pub fn new(mu: f64, sigma: f64) -> Self {
        Self {
            log_inner: Normal::new(mu, sigma),
        }
    }

    /// Creates a log-normal with (approximately) the given real-space mean
    /// and standard deviation.
    pub fn from_mean_std(mean: f64, std_dev: f64) -> Self {
        assert!(mean > 0.0, "log-normal mean must be positive");
        let var = std_dev * std_dev;
        let sigma2 = (1.0 + var / (mean * mean)).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        Self::new(mu, sigma2.sqrt())
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.log_inner.sample(rng).exp()
    }
}

/// Error function approximation (Abramowitz & Stegun 7.1.26, |err| ≤ 1.5e-7).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal CDF.
pub fn std_normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive::Summary;
    use crate::rngutil::rng_from_seed;

    #[test]
    fn normal_sample_moments() {
        let mut rng = rng_from_seed(1);
        let d = Normal::new(10.0, 2.0);
        let xs: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        let s = Summary::of(&xs);
        assert!((s.mean - 10.0).abs() < 0.05, "mean={}", s.mean);
        assert!((s.std_dev - 2.0).abs() < 0.05, "std={}", s.std_dev);
    }

    #[test]
    fn normal_zero_std_is_constant() {
        let mut rng = rng_from_seed(2);
        let d = Normal::new(3.5, 0.0);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 3.5);
        }
    }

    #[test]
    fn fill_samples_matches_per_sample_loop_bit_for_bit() {
        // Values AND post-fill RNG state must match the one-shot path for
        // lengths straddling the internal chunk size (incl. 0 and 1).
        for seed in 0..200u64 {
            for n in [0usize, 1, 3, 63, 64, 65, 128, 200, 500] {
                let d = Normal::new(1.5, 2.25);
                let mut a = rng_from_seed(seed);
                let mut b = rng_from_seed(seed);
                let reference: Vec<f64> = (0..n).map(|_| d.sample(&mut a)).collect();
                let mut filled = vec![0.0; n];
                d.fill_samples(&mut b, &mut filled);
                for (i, (r, f)) in reference.iter().zip(&filled).enumerate() {
                    assert_eq!(r.to_bits(), f.to_bits(), "seed {seed} n {n} slot {i}");
                }
                assert_eq!(
                    a.gen::<u64>(),
                    b.gen::<u64>(),
                    "post-fill RNG state diverged at seed {seed} n {n}"
                );
            }
        }
    }

    #[test]
    fn fill_samples_zero_std_fills_mean_without_draws() {
        let d = Normal::new(3.5, 0.0);
        let mut a = rng_from_seed(7);
        let mut b = rng_from_seed(7);
        let mut out = vec![0.0; 17];
        d.fill_samples(&mut a, &mut out);
        assert!(out.iter().all(|x| *x == 3.5));
        assert_eq!(a.gen::<u64>(), b.gen::<u64>(), "zero-sigma fill drew");
    }

    #[test]
    #[should_panic(expected = "std_dev")]
    fn normal_rejects_negative_std() {
        let _ = Normal::new(0.0, -1.0);
    }

    #[test]
    fn normal_cdf_basics() {
        let d = Normal::new(0.0, 1.0);
        assert!((d.cdf(0.0) - 0.5).abs() < 1e-9);
        assert!(d.cdf(3.0) > 0.998);
        assert!(d.cdf(-3.0) < 0.002);
    }

    #[test]
    fn normal_pdf_peaks_at_mean() {
        let d = Normal::new(5.0, 1.5);
        assert!(d.pdf(5.0) > d.pdf(4.0));
        assert!(d.pdf(5.0) > d.pdf(6.0));
    }

    #[test]
    fn truncated_respects_bounds() {
        let mut rng = rng_from_seed(3);
        let d = TruncatedNormal::new(0.0, 100.0, 10.0, 20.0);
        for _ in 0..5_000 {
            let x = d.sample(&mut rng);
            assert!((10.0..=20.0).contains(&x), "out of range: {x}");
        }
    }

    #[test]
    #[should_panic(expected = "invalid truncation interval")]
    fn truncated_rejects_empty_interval() {
        let _ = TruncatedNormal::new(0.0, 1.0, 5.0, 5.0);
    }

    #[test]
    fn lognormal_is_positive_and_matches_mean() {
        let mut rng = rng_from_seed(4);
        let d = LogNormal::from_mean_std(200.0, 50.0);
        let xs: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        assert!(xs.iter().all(|x| *x > 0.0));
        let s = Summary::of(&xs);
        assert!((s.mean - 200.0).abs() < 3.0, "mean={}", s.mean);
    }

    #[test]
    fn erf_reference_values() {
        // erf(0)=0, erf(1)≈0.8427, erf(-1)≈-0.8427, erf(2)≈0.9953
        assert!(erf(0.0).abs() < 1e-6);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(2.0) - 0.995_322_27).abs() < 1e-6);
    }
}
