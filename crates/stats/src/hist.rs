//! 1-D and 2-D histograms.
//!
//! Used by the figure regenerators (Fig. 2 click scatter densities, Fig. 4
//! status-code bars) and by the level-2 interaction detectors.

/// A fixed-range 1-D histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `n_bins` equal-width bins.
    ///
    /// # Panics
    /// Panics if `lo >= hi` or `n_bins == 0`.
    pub fn new(lo: f64, hi: f64, n_bins: usize) -> Self {
        assert!(lo < hi, "invalid range [{lo}, {hi})");
        assert!(n_bins > 0, "need at least one bin");
        Self {
            lo,
            hi,
            bins: vec![0; n_bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((x - self.lo) / (self.hi - self.lo) * self.bins.len() as f64) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Adds every observation in `xs`.
    pub fn extend(&mut self, xs: &[f64]) {
        for &x in xs {
            self.add(x);
        }
    }

    /// Bin counts (within range).
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Count below range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count at or above range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations including out-of-range.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Centre of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + w * (i as f64 + 0.5)
    }
}

/// A fixed-range 2-D histogram (for click scatter densities).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram2d {
    x_lo: f64,
    x_hi: f64,
    y_lo: f64,
    y_hi: f64,
    nx: usize,
    ny: usize,
    cells: Vec<u64>,
    out_of_range: u64,
}

impl Histogram2d {
    /// Creates a 2-D histogram over `[x_lo, x_hi) × [y_lo, y_hi)`.
    pub fn new(x_lo: f64, x_hi: f64, y_lo: f64, y_hi: f64, nx: usize, ny: usize) -> Self {
        assert!(x_lo < x_hi && y_lo < y_hi, "invalid 2-D range");
        assert!(nx > 0 && ny > 0, "need at least one cell per axis");
        Self {
            x_lo,
            x_hi,
            y_lo,
            y_hi,
            nx,
            ny,
            cells: vec![0; nx * ny],
            out_of_range: 0,
        }
    }

    /// Adds one point.
    pub fn add(&mut self, x: f64, y: f64) {
        if x < self.x_lo || x >= self.x_hi || y < self.y_lo || y >= self.y_hi {
            self.out_of_range += 1;
            return;
        }
        let ix = (((x - self.x_lo) / (self.x_hi - self.x_lo)) * self.nx as f64) as usize;
        let iy = (((y - self.y_lo) / (self.y_hi - self.y_lo)) * self.ny as f64) as usize;
        let ix = ix.min(self.nx - 1);
        let iy = iy.min(self.ny - 1);
        self.cells[iy * self.nx + ix] += 1;
    }

    /// Count in cell `(ix, iy)`.
    pub fn cell(&self, ix: usize, iy: usize) -> u64 {
        self.cells[iy * self.nx + ix]
    }

    /// Grid width in cells.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid height in cells.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Points that fell outside the histogram range.
    pub fn out_of_range(&self) -> u64 {
        self.out_of_range
    }

    /// Largest cell count (for normalising plots).
    pub fn max_cell(&self) -> u64 {
        self.cells.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bins_points() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.extend(&[0.5, 1.5, 1.6, 9.9, -1.0, 10.0]);
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[1], 2);
        assert_eq!(h.bins()[9], 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn bin_center_is_midpoint() {
        let h = Histogram::new(0.0, 10.0, 10);
        assert!((h.bin_center(0) - 0.5).abs() < 1e-12);
        assert!((h.bin_center(9) - 9.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn histogram_rejects_bad_range() {
        let _ = Histogram::new(5.0, 5.0, 3);
    }

    #[test]
    fn hist2d_places_points() {
        let mut h = Histogram2d::new(0.0, 4.0, 0.0, 4.0, 4, 4);
        h.add(0.5, 0.5);
        h.add(3.5, 3.5);
        h.add(3.5, 3.6);
        h.add(-1.0, 2.0);
        assert_eq!(h.cell(0, 0), 1);
        assert_eq!(h.cell(3, 3), 2);
        assert_eq!(h.out_of_range(), 1);
        assert_eq!(h.max_cell(), 2);
    }
}
