//! Wilcoxon matched-pairs signed-rank test.
//!
//! §3.2 of the paper: *"We further use Wilcoxon Matched-Pairs signed-Rank
//! Test with a confidence interval of 95% to test for significance"* —
//! applied to paired per-site first-party error counts with and without the
//! spoofing extension (reported p-value 0.004).
//!
//! For n ≤ 25 non-zero pairs the exact null distribution of W is enumerated
//! (feasible: 2^25 via dynamic programming over rank sums); above that a
//! normal approximation with tie correction and continuity correction is
//! used, matching SciPy's default behaviour.

use crate::dist::std_normal_cdf;

/// Alternative hypothesis for the test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Alternative {
    /// The distributions differ (two-sided).
    TwoSided,
    /// First sample tends to be smaller than the second.
    Less,
    /// First sample tends to be greater than the second.
    Greater,
}

/// Result of a Wilcoxon signed-rank test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WilcoxonResult {
    /// Test statistic: the smaller of the positive/negative rank sums.
    pub w: f64,
    /// Number of pairs with non-zero difference.
    pub n_used: usize,
    /// p-value under the requested alternative.
    pub p_value: f64,
    /// Whether the exact distribution was used (vs normal approximation).
    pub exact: bool,
}

impl WilcoxonResult {
    /// True when the null hypothesis is rejected at the given level.
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Runs the Wilcoxon matched-pairs signed-rank test on paired samples.
///
/// Zero differences are discarded (Wilcoxon's original procedure, also
/// SciPy's `zero_method="wilcox"`). Returns `None` if fewer than one
/// non-zero pair remains.
pub fn wilcoxon_signed_rank(
    xs: &[f64],
    ys: &[f64],
    alternative: Alternative,
) -> Option<WilcoxonResult> {
    assert_eq!(xs.len(), ys.len(), "samples must be paired");
    let mut diffs: Vec<f64> = xs
        .iter()
        .zip(ys)
        .map(|(a, b)| a - b)
        .filter(|d| *d != 0.0)
        .collect();
    let n = diffs.len();
    if n == 0 {
        return None;
    }

    // Rank |d| with midranks for ties.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| {
        diffs[i]
            .abs()
            .partial_cmp(&diffs[j].abs())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut ranks = vec![0.0f64; n];
    let mut tie_correction = 0.0f64;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && diffs[order[j + 1]].abs() == diffs[order[i]].abs() {
            j += 1;
        }
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            ranks[k] = midrank;
        }
        let t = (j - i + 1) as f64;
        tie_correction += t * t * t - t;
        i = j + 1;
    }

    let w_plus: f64 = diffs
        .iter()
        .zip(&ranks)
        .filter(|(d, _)| **d > 0.0)
        .map(|(_, r)| *r)
        .sum();
    let total = n as f64 * (n as f64 + 1.0) / 2.0;
    let w_minus = total - w_plus;
    let has_ties = tie_correction > 0.0;

    let (p_value, exact) = if n <= 25 && !has_ties {
        (exact_p(n, w_plus, w_minus, alternative), true)
    } else {
        (approx_p(n, w_plus, tie_correction, alternative), false)
    };

    // Sort to silence "unused" and keep diffs deterministic for debugging.
    diffs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));

    Some(WilcoxonResult {
        w: w_plus.min(w_minus),
        n_used: n,
        p_value: p_value.clamp(0.0, 1.0),
        exact,
    })
}

/// Exact p-value by dynamic programming over the null distribution of W+.
fn exact_p(n: usize, w_plus: f64, w_minus: f64, alternative: Alternative) -> f64 {
    let max_sum = n * (n + 1) / 2;
    // counts[s] = number of sign assignments with rank sum s.
    let mut counts = vec![0u64; max_sum + 1];
    counts[0] = 1;
    for r in 1..=n {
        for s in (r..=max_sum).rev() {
            counts[s] += counts[s - r];
        }
    }
    let total: f64 = 2f64.powi(n as i32);
    let cdf_at = |w: f64| -> f64 {
        let w = w.floor() as usize;
        counts[..=w.min(max_sum)]
            .iter()
            .map(|c| *c as f64)
            .sum::<f64>()
            / total
    };
    match alternative {
        Alternative::TwoSided => (2.0 * cdf_at(w_plus.min(w_minus))).min(1.0),
        // "less": xs < ys, i.e. differences negative, so W+ is small.
        Alternative::Less => cdf_at(w_plus),
        Alternative::Greater => cdf_at(w_minus),
    }
}

/// Normal approximation with tie and continuity corrections.
fn approx_p(n: usize, w_plus: f64, tie_correction: f64, alternative: Alternative) -> f64 {
    let nf = n as f64;
    let mean = nf * (nf + 1.0) / 4.0;
    let var = nf * (nf + 1.0) * (2.0 * nf + 1.0) / 24.0 - tie_correction / 48.0;
    if var <= 0.0 {
        return 1.0;
    }
    let sd = var.sqrt();
    let z = |w: f64, cc: f64| (w - mean + cc) / sd;
    match alternative {
        Alternative::TwoSided => {
            let zval = ((w_plus - mean).abs() - 0.5) / sd;
            (2.0 * (1.0 - std_normal_cdf(zval))).min(1.0)
        }
        Alternative::Less => std_normal_cdf(z(w_plus, 0.5)),
        Alternative::Greater => 1.0 - std_normal_cdf(z(w_plus, -0.5)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn returns_none_when_all_pairs_equal() {
        let xs = [1.0, 2.0, 3.0];
        assert!(wilcoxon_signed_rank(&xs, &xs, Alternative::TwoSided).is_none());
    }

    #[test]
    fn detects_clear_shift_exact() {
        let xs: Vec<f64> = (1..=12).map(|i| (i * i) as f64 + 10.0).collect();
        let ys: Vec<f64> = (1..=12).map(|i| i as f64).collect();
        let r = wilcoxon_signed_rank(&xs, &ys, Alternative::TwoSided).unwrap();
        assert!(r.exact);
        assert!(r.p_value < 0.01, "p={}", r.p_value);
        assert!(r.significant_at(0.05));
    }

    #[test]
    fn no_effect_is_not_significant() {
        // Alternating small differences in both directions.
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = (0..20)
            .map(|i| i as f64 + if i % 2 == 0 { 0.3 } else { -0.3 })
            .collect();
        let r = wilcoxon_signed_rank(&xs, &ys, Alternative::TwoSided).unwrap();
        assert!(r.p_value > 0.3, "p={}", r.p_value);
    }

    #[test]
    fn one_sided_direction_matters() {
        let xs: Vec<f64> = (1..=15).map(|i| i as f64).collect();
        let ys: Vec<f64> = (1..=15).map(|i| i as f64 + 5.0).collect();
        // xs < ys, so "less" should be significant, "greater" should not.
        let less = wilcoxon_signed_rank(&xs, &ys, Alternative::Less).unwrap();
        let greater = wilcoxon_signed_rank(&xs, &ys, Alternative::Greater).unwrap();
        assert!(less.p_value < 0.01, "less p={}", less.p_value);
        assert!(greater.p_value > 0.99, "greater p={}", greater.p_value);
    }

    #[test]
    fn exact_matches_known_value() {
        // Classic example: n=8, W=3 → two-sided p ≈ 0.0391 (exact: 2*5/256).
        // Differences giving ranks 1,2 positive (W+=3) and the rest negative.
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let ys = [0.9, 1.8, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0];
        let r = wilcoxon_signed_rank(&xs, &ys, Alternative::TwoSided).unwrap();
        assert!(r.exact);
        assert_eq!(r.w, 3.0);
        assert!((r.p_value - 0.0390625).abs() < 1e-9, "p={}", r.p_value);
    }

    #[test]
    fn large_sample_uses_approximation() {
        let xs: Vec<f64> = (0..60).map(|i| (i as f64).sin() * 10.0 + 2.0).collect();
        let ys: Vec<f64> = (0..60).map(|i| (i as f64).sin() * 10.0).collect();
        let r = wilcoxon_signed_rank(&xs, &ys, Alternative::TwoSided).unwrap();
        assert!(!r.exact);
        assert!(r.p_value < 1e-6, "p={}", r.p_value);
    }

    #[test]
    fn exact_and_approximation_agree_at_moderate_n() {
        // Cross-validation: for n where both are defensible, the normal
        // approximation should land near the exact p-value.
        for seed in 0..12u64 {
            let xs: Vec<f64> = (0..22)
                .map(|i| ((i as f64) * 0.73 + seed as f64 * 0.19).sin() * 10.0)
                .collect();
            let ys: Vec<f64> = xs
                .iter()
                .enumerate()
                .map(|(i, x)| x + ((i as f64) * 1.37 + seed as f64).cos() * 3.0 + 0.8)
                .collect();
            let exact = wilcoxon_signed_rank(&xs, &ys, Alternative::TwoSided).unwrap();
            if !exact.exact {
                continue; // accidental tie pattern
            }
            // Force the approximation by lying about n via a direct call.
            let approx_p = super::approx_p(
                exact.n_used,
                total_minus(&xs, &ys),
                0.0,
                Alternative::TwoSided,
            );
            assert!(
                (exact.p_value - approx_p).abs() < 0.05,
                "seed {seed}: exact {} vs approx {}",
                exact.p_value,
                approx_p
            );
        }
    }

    /// Recomputes W+ for the approximation cross-check.
    fn total_minus(xs: &[f64], ys: &[f64]) -> f64 {
        let diffs: Vec<f64> = xs
            .iter()
            .zip(ys)
            .map(|(a, b)| a - b)
            .filter(|d| *d != 0.0)
            .collect();
        let n = diffs.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| diffs[i].abs().partial_cmp(&diffs[j].abs()).unwrap());
        let mut w_plus = 0.0;
        for (rank0, &idx) in order.iter().enumerate() {
            if diffs[idx] > 0.0 {
                w_plus += (rank0 + 1) as f64;
            }
        }
        w_plus
    }

    #[test]
    fn ties_force_approximation() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let ys = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]; // all diffs equal → full tie
        let r = wilcoxon_signed_rank(&xs, &ys, Alternative::TwoSided).unwrap();
        assert!(!r.exact);
        assert!(r.p_value < 0.05);
    }
}
