//! Two-sample Kolmogorov–Smirnov test.
//!
//! The level-2 interaction detector ("detect deviations from human
//! behaviour", Fig. 3) compares an observed timing sample against a human
//! reference sample. The KS statistic is the natural distribution-free test
//! for that comparison.

/// Result of a two-sample KS test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsResult {
    /// Maximum distance between the two empirical CDFs.
    pub statistic: f64,
    /// Asymptotic two-sided p-value (Smirnov's formula).
    pub p_value: f64,
    /// Sizes of the two samples.
    pub n1: usize,
    /// Size of the second sample.
    pub n2: usize,
}

impl KsResult {
    /// True when the null hypothesis (same distribution) is rejected.
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Runs a two-sample Kolmogorov–Smirnov test.
///
/// Returns `None` when either sample is empty.
pub fn ks_two_sample(xs: &[f64], ys: &[f64]) -> Option<KsResult> {
    if xs.is_empty() || ys.is_empty() {
        return None;
    }
    let mut a = xs.to_vec();
    let mut b = ys.to_vec();
    a.sort_by(|p, q| p.partial_cmp(q).unwrap_or(std::cmp::Ordering::Equal));
    b.sort_by(|p, q| p.partial_cmp(q).unwrap_or(std::cmp::Ordering::Equal));

    let (n1, n2) = (a.len(), b.len());
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < n1 && j < n2 {
        let v = a[i].min(b[j]);
        while i < n1 && a[i] <= v {
            i += 1;
        }
        while j < n2 && b[j] <= v {
            j += 1;
        }
        let f1 = i as f64 / n1 as f64;
        let f2 = j as f64 / n2 as f64;
        d = d.max((f1 - f2).abs());
    }

    let ne = (n1 * n2) as f64 / (n1 + n2) as f64;
    let lambda = (ne.sqrt() + 0.12 + 0.11 / ne.sqrt()) * d;
    Some(KsResult {
        statistic: d,
        p_value: ks_sf(lambda).clamp(0.0, 1.0),
        n1,
        n2,
    })
}

/// Kolmogorov survival function Q(λ) = 2 Σ (-1)^{k-1} exp(-2 k² λ²).
fn ks_sf(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64) * (k as f64) * lambda * lambda).exp();
        sum += sign * term;
        if term < 1e-12 {
            break;
        }
        sign = -sign;
    }
    2.0 * sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Normal;
    use crate::rngutil::rng_from_seed;

    #[test]
    fn identical_samples_not_significant() {
        let xs: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let r = ks_two_sample(&xs, &xs).unwrap();
        assert!(r.statistic < 1e-12);
        assert!(r.p_value > 0.99);
    }

    #[test]
    fn shifted_distributions_detected() {
        let mut rng = rng_from_seed(9);
        let a = Normal::new(0.0, 1.0);
        let b = Normal::new(2.0, 1.0);
        let xs: Vec<f64> = (0..300).map(|_| a.sample(&mut rng)).collect();
        let ys: Vec<f64> = (0..300).map(|_| b.sample(&mut rng)).collect();
        let r = ks_two_sample(&xs, &ys).unwrap();
        assert!(r.significant_at(0.01), "p={}", r.p_value);
    }

    #[test]
    fn same_distribution_usually_passes() {
        let mut rng = rng_from_seed(10);
        let d = Normal::new(5.0, 2.0);
        let xs: Vec<f64> = (0..400).map(|_| d.sample(&mut rng)).collect();
        let ys: Vec<f64> = (0..400).map(|_| d.sample(&mut rng)).collect();
        let r = ks_two_sample(&xs, &ys).unwrap();
        assert!(!r.significant_at(0.001), "p={}", r.p_value);
    }

    #[test]
    fn empty_sample_returns_none() {
        assert!(ks_two_sample(&[], &[1.0]).is_none());
        assert!(ks_two_sample(&[1.0], &[]).is_none());
    }

    #[test]
    fn statistic_is_one_for_disjoint_supports() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [10.0, 11.0, 12.0];
        let r = ks_two_sample(&xs, &ys).unwrap();
        assert!((r.statistic - 1.0).abs() < 1e-12);
    }
}
