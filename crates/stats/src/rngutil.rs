//! Deterministic RNG helpers.
//!
//! Every experiment in the workspace takes an explicit `u64` seed so that
//! tables and figures regenerate byte-identically. This module centralises
//! seed derivation so that independent subsystems (crawler machines, browser
//! instances, interaction agents) draw from decorrelated streams.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Creates a deterministic RNG from a seed.
///
/// This is the sanctioned definition site (the workspace linter exempts
/// it by path); callers outside `hlisa-sim` should go through a
/// `SimContext` stream.
pub fn rng_from_seed(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Derives a sub-seed for a named component.
///
/// Mixing uses the SplitMix64 finaliser, which decorrelates consecutive
/// indices well enough for simulation purposes.
pub fn derive_seed(seed: u64, label: &str, index: u64) -> u64 {
    let mut h = seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(index.wrapping_add(1));
    for b in label.as_bytes() {
        h = h.wrapping_add(u64::from(*b));
        h = splitmix64(h);
    }
    splitmix64(h)
}

/// SplitMix64 finaliser; a cheap, well-distributed 64-bit mixer.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = rng_from_seed(42);
        let mut b = rng_from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn derive_seed_differs_by_label() {
        assert_ne!(derive_seed(1, "mouse", 0), derive_seed(1, "keys", 0));
    }

    #[test]
    fn derive_seed_differs_by_index() {
        assert_ne!(derive_seed(1, "mouse", 0), derive_seed(1, "mouse", 1));
    }

    #[test]
    fn derive_seed_is_deterministic() {
        assert_eq!(derive_seed(7, "crawl", 3), derive_seed(7, "crawl", 3));
    }

    #[test]
    fn splitmix_is_not_identity() {
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), 1);
    }
}
