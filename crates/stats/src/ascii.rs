//! ASCII renderings for the figure regenerators.
//!
//! The paper's figures are regenerated as terminal plots plus CSV series so
//! that results can be checked visually (shape) and numerically (data).

use crate::hist::Histogram2d;

/// Renders an x/y polyline as an ASCII scatter over a `width × height` grid.
///
/// Multiple series are rendered with distinct glyphs; later series overwrite
/// earlier ones where they collide.
pub fn plot_lines(series: &[(&str, &[(f64, f64)])], width: usize, height: usize) -> String {
    assert!(width >= 8 && height >= 4, "plot too small");
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().copied())
        .collect();
    if all.is_empty() {
        return String::from("(no data)\n");
    }
    let (mut x_lo, mut x_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_lo, mut y_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for (x, y) in &all {
        x_lo = x_lo.min(*x);
        x_hi = x_hi.max(*x);
        y_lo = y_lo.min(*y);
        y_hi = y_hi.max(*y);
    }
    if x_lo == x_hi {
        x_hi = x_lo + 1.0;
    }
    if y_lo == y_hi {
        y_hi = y_lo + 1.0;
    }
    const GLYPHS: &[char] = &['A', 'B', 'C', 'D', 'E', 'F', '*', '+'];
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, pts)) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for (x, y) in pts.iter() {
            let cx = (((x - x_lo) / (x_hi - x_lo)) * (width - 1) as f64).round() as usize;
            // Screen y grows downward; data y grows upward.
            let cy = (((y - y_lo) / (y_hi - y_lo)) * (height - 1) as f64).round() as usize;
            let cy = height - 1 - cy.min(height - 1);
            grid[cy][cx.min(width - 1)] = glyph;
        }
    }
    let mut out = String::new();
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push('+');
    out.extend(std::iter::repeat('-').take(width));
    out.push('\n');
    let mut legend = String::new();
    for (si, (name, _)) in series.iter().enumerate() {
        legend.push_str(&format!("  {} = {}", GLYPHS[si % GLYPHS.len()], name));
    }
    out.push_str(&legend);
    out.push('\n');
    out
}

/// Renders a 2-D histogram as an ASCII density map (darker glyph = denser).
pub fn plot_density(hist: &Histogram2d) -> String {
    const SHADES: &[char] = &[' ', '.', ':', '+', '*', '#', '@'];
    let max = hist.max_cell().max(1) as f64;
    let mut out = String::new();
    for iy in (0..hist.ny()).rev() {
        out.push('|');
        for ix in 0..hist.nx() {
            let v = hist.cell(ix, iy) as f64 / max;
            let idx = (v * (SHADES.len() - 1) as f64).round() as usize;
            out.push(SHADES[idx.min(SHADES.len() - 1)]);
        }
        out.push('\n');
    }
    out.push('+');
    out.extend(std::iter::repeat('-').take(hist.nx()));
    out.push('\n');
    out
}

/// Renders a horizontal bar chart of labelled counts.
pub fn bar_chart(rows: &[(String, u64)], max_width: usize) -> String {
    let max = rows.iter().map(|(_, v)| *v).max().unwrap_or(0).max(1);
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, v) in rows {
        let w = ((*v as f64 / max as f64) * max_width as f64).round() as usize;
        out.push_str(&format!(
            "{label:<label_w$} | {bar} {v}\n",
            bar = "#".repeat(w)
        ));
    }
    out
}

/// Formats a table with aligned columns: `header` then `rows`.
pub fn format_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row arity mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            line.push_str(&format!("{:<w$}", cell, w = widths[i]));
            if i + 1 < cells.len() {
                line.push_str("  ");
            }
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(
        &header.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        &widths,
    ));
    out.push_str(&format!(
        "{}\n",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1))
    ));
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram2d;

    #[test]
    fn plot_lines_contains_glyphs_and_legend() {
        let a = [(0.0, 0.0), (1.0, 1.0)];
        let b = [(0.0, 1.0), (1.0, 0.0)];
        let s = plot_lines(&[("up", &a), ("down", &b)], 20, 10);
        assert!(s.contains('A'));
        assert!(s.contains('B'));
        assert!(s.contains("A = up"));
        assert!(s.contains("B = down"));
    }

    #[test]
    fn plot_lines_empty() {
        let s = plot_lines(&[("e", &[])], 20, 10);
        assert!(s.contains("no data"));
    }

    #[test]
    fn density_renders_grid() {
        let mut h = Histogram2d::new(0.0, 2.0, 0.0, 2.0, 2, 2);
        h.add(0.5, 0.5);
        let s = plot_density(&h);
        assert_eq!(s.lines().count(), 3); // 2 rows + axis
        assert!(s.contains('@'));
    }

    #[test]
    fn bar_chart_scales() {
        let rows = vec![("a".to_string(), 10), ("b".to_string(), 5)];
        let s = bar_chart(&rows, 10);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].matches('#').count() > lines[1].matches('#').count());
    }

    #[test]
    fn table_aligns_columns() {
        let s = format_table(
            &["name", "n"],
            &[
                vec!["alpha".into(), "1".into()],
                vec!["b".into(), "22".into()],
            ],
        );
        assert!(s.contains("name"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn table_rejects_ragged_rows() {
        let _ = format_table(&["a", "b"], &[vec!["x".into()]]);
    }
}
