//! Differential test: the grid-indexed document queries against the
//! linear-scan reference models.
//!
//! Hit-test targets are an interaction observable — every dispatched
//! pointer event carries one — so the spatial index must be invisible:
//! across arbitrary documents (random boxes, visibility, ids, tags,
//! anchors, overlaps, boxes hanging off the page) and arbitrary query
//! points (inside, on edges, outside the page), `hit_test` must return
//! exactly what the reference scan returns, and the id/tag/anchor maps
//! must match their linear references — including after mid-stream
//! mutations that force an index rebuild. Since the layered page model
//! the same contract covers trees: random parent/child structure, flow
//! layout (`Block`/`Inline`), paint layers, and `Display::None`
//! detachment.

use hlisa_browser::dom::{Display, Document, Element};
use hlisa_browser::{Point, Rect};
use proptest::collection::vec;
use proptest::prelude::*;

const TAGS: &[&str] = &["div", "a", "button", "input", "span", "h2"];
const IDS: &[&str] = &["", "submit", "text_area", "jump", "honey", "other"];
const ANCHORS: &[Option<&str>] = &[None, None, Some("end"), Some("top")];

/// One element decoded from a raw tuple so proptest drives the geometry.
/// The last byte's low bit carries visibility (the vendored proptest
/// subset has no `bool` strategy).
#[allow(clippy::type_complexity)]
fn element(raw: &(f64, f64, f64, f64, u8, u8, u8, u8)) -> Element {
    let (x, y, w, h, tag, id, anchor, visible) = *raw;
    Element {
        tag: TAGS[tag as usize % TAGS.len()].to_string(),
        id: IDS[id as usize % IDS.len()].to_string(),
        rect: Rect::new(x, y, w, h),
        display: Display::Absolute,
        layer: 0,
        visible: visible & 1 == 1,
        focusable: false,
        anchor: ANCHORS[anchor as usize % ANCHORS.len()].map(str::to_string),
        text: String::new(),
    }
}

fn build_doc(elements: &[(f64, f64, f64, f64, u8, u8, u8, u8)], page: (f64, f64)) -> Document {
    let mut doc = Document::new("https://differential.test/", page.0, page.1);
    for raw in elements {
        doc.add(element(raw));
    }
    doc
}

fn assert_queries_agree(doc: &Document, points: &[(f64, f64)]) {
    for (x, y) in points {
        let p = Point::new(*x, *y);
        assert_eq!(doc.hit_test(p), doc.hit_test_linear(p), "hit_test at {p:?}");
    }
    for id_attr in IDS {
        assert_eq!(doc.by_id(id_attr), doc.by_id_linear(id_attr));
    }
    for tag in TAGS {
        assert_eq!(doc.by_tag(tag), doc.by_tag_linear(tag));
    }
    for name in ["end", "top", "missing"] {
        assert_eq!(doc.anchor_target(name), doc.anchor_target_linear(name));
    }
}

/// Decodes one tree node: geometry + identity bytes as in [`element`],
/// plus structure bytes choosing parent, display mode, and paint layer.
#[allow(clippy::type_complexity)]
type RawTreeNode = ((f64, f64, f64, f64, u8, u8, u8, u8), (u8, u8, u8, u8));

fn build_tree_doc(raw_nodes: &[RawTreeNode], page: (f64, f64)) -> Document {
    let mut doc = Document::new("https://differential.test/", page.0, page.1);
    let mut inserted = Vec::new();
    for (i, (geom, (parent_sel, display_sel, layer, aux))) in raw_nodes.iter().enumerate() {
        let mut el = element(geom);
        el.display = match display_sel % 8 {
            0..=2 => Display::Absolute,
            3..=5 => Display::Block {
                height: geom.3.max(1.0),
                width_frac: 0.2 + f64::from(*aux % 80) / 100.0,
                margin: f64::from(*aux % 16),
                padding: f64::from(*aux % 8),
            },
            6 => Display::Inline {
                width: geom.2.max(1.0),
                height: geom.3.max(1.0),
                margin: f64::from(*aux % 10),
            },
            _ => Display::None,
        };
        el.layer = i32::from(*layer % 5) - 2;
        let id = if i == 0 || parent_sel % 4 == 0 {
            doc.add(el)
        } else {
            let parent = inserted[*parent_sel as usize % i];
            doc.add_child(parent, el)
        };
        inserted.push(id);
    }
    doc
}

proptest! {
    /// Grid-indexed queries equal the linear reference over arbitrary
    /// flat documents and points (the legacy page model).
    #[test]
    fn grid_matches_linear_reference(
        elements in vec(
            (0.0f64..1400.0, 0.0f64..2200.0, 0.0f64..600.0, 0.0f64..900.0,
             0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255),
            0..60,
        ),
        points in vec((-100.0f64..1500.0, -100.0f64..2400.0), 1..80),
        page_w in 200.0f64..1600.0,
        page_h in 200.0f64..2600.0,
    ) {
        let doc = build_doc(&elements, (page_w, page_h));
        assert_queries_agree(&doc, &points);
    }

    /// Mid-stream mutations (relocation, visibility flips) invalidate the
    /// index; queries afterwards still equal the linear reference.
    #[test]
    fn grid_matches_linear_reference_across_mutations(
        elements in vec(
            (0.0f64..1400.0, 0.0f64..2200.0, 0.0f64..600.0, 0.0f64..900.0,
             0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255),
            1..40,
        ),
        mutations in vec((0u16..=u16::MAX, 0.0f64..1400.0, 0.0f64..2200.0, 0u8..=255), 1..12),
        points in vec((-100.0f64..1500.0, -100.0f64..2400.0), 1..40),
    ) {
        let mut doc = build_doc(&elements, (1400.0, 2200.0));
        assert_queries_agree(&doc, &points);
        for (pick, x, y, visible) in &mutations {
            let ids: Vec<_> = doc.ids().collect();
            let id = ids[*pick as usize % ids.len()];
            let el = doc.element_mut(id);
            el.rect.x = *x;
            el.rect.y = *y;
            el.visible = *visible & 1 == 1;
            assert_queries_agree(&doc, &points);
        }
    }

    /// Tree documents: random parent/child structure, mixed display
    /// modes (absolute overlays, flowing blocks, wrapping inlines,
    /// detached subtrees), and paint layers in [-2, 2]. Paint-order
    /// hit testing and attachment-filtered locators must equal the
    /// from-scratch linear references.
    #[test]
    fn tree_grid_matches_linear_reference(
        raw_nodes in vec(
            ((0.0f64..1400.0, 0.0f64..2200.0, 0.0f64..600.0, 0.0f64..900.0,
              0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255),
             (0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255)),
            1..48,
        ),
        points in vec((-100.0f64..1500.0, -100.0f64..2400.0), 1..60),
    ) {
        let doc = build_tree_doc(&raw_nodes, (1400.0, 2200.0));
        assert_queries_agree(&doc, &points);
    }

    /// Tree documents under structural mutation: visibility and layer
    /// flips through `element_mut`, plus display changes (detach /
    /// reveal) through the mutator batch. Every revision must keep the
    /// index equal to the references.
    #[test]
    fn tree_grid_matches_linear_reference_across_mutations(
        raw_nodes in vec(
            ((0.0f64..1400.0, 0.0f64..2200.0, 0.0f64..600.0, 0.0f64..900.0,
              0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255),
             (0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255)),
            1..32,
        ),
        mutations in vec((0u16..=u16::MAX, 0u8..=255, 0u8..=255), 1..10),
        points in vec((-100.0f64..1500.0, -100.0f64..2400.0), 1..40),
    ) {
        let mut doc = build_tree_doc(&raw_nodes, (1400.0, 2200.0));
        assert_queries_agree(&doc, &points);
        for (pick, op, val) in &mutations {
            let ids: Vec<_> = doc.ids().collect();
            let id = ids[*pick as usize % ids.len()];
            match op % 3 {
                0 => {
                    let el = doc.element_mut(id);
                    el.visible = val & 1 == 1;
                }
                1 => {
                    doc.element_mut(id).layer = i32::from(val % 5) - 2;
                }
                _ => doc.mutate(|m| {
                    if val & 1 == 1 {
                        m.detach(id);
                    } else {
                        m.set_display(
                            id,
                            Display::Block {
                                height: f64::from(*val) + 1.0,
                                width_frac: 0.5,
                                margin: 2.0,
                                padding: 2.0,
                            },
                        );
                    }
                }),
            }
            assert_queries_agree(&doc, &points);
        }
    }
}
