//! Differential test: the grid-indexed document queries against the
//! linear-scan reference models.
//!
//! Hit-test targets are an interaction observable — every dispatched
//! pointer event carries one — so the spatial index must be invisible:
//! across arbitrary documents (random boxes, visibility, ids, tags,
//! anchors, overlaps, boxes hanging off the page) and arbitrary query
//! points (inside, on edges, outside the page), `hit_test` must return
//! exactly what the reverse linear scan returns, and the id/tag/anchor
//! maps must match their linear references — including after mid-stream
//! mutations that force an index rebuild.

use hlisa_browser::dom::{Document, Element};
use hlisa_browser::{Point, Rect};
use proptest::collection::vec;
use proptest::prelude::*;

const TAGS: &[&str] = &["div", "a", "button", "input", "span", "h2"];
const IDS: &[&str] = &["", "submit", "text_area", "jump", "honey", "other"];
const ANCHORS: &[Option<&str>] = &[None, None, Some("end"), Some("top")];

/// One element decoded from a raw tuple so proptest drives the geometry.
/// The last byte's low bit carries visibility (the vendored proptest
/// subset has no `bool` strategy).
#[allow(clippy::type_complexity)]
fn element(raw: &(f64, f64, f64, f64, u8, u8, u8, u8)) -> Element {
    let (x, y, w, h, tag, id, anchor, visible) = *raw;
    Element {
        tag: TAGS[tag as usize % TAGS.len()].to_string(),
        id: IDS[id as usize % IDS.len()].to_string(),
        rect: Rect::new(x, y, w, h),
        visible: visible & 1 == 1,
        focusable: false,
        anchor: ANCHORS[anchor as usize % ANCHORS.len()].map(str::to_string),
        text: String::new(),
    }
}

fn build_doc(elements: &[(f64, f64, f64, f64, u8, u8, u8, u8)], page: (f64, f64)) -> Document {
    let mut doc = Document::new("https://differential.test/", page.0, page.1);
    for raw in elements {
        doc.add(element(raw));
    }
    doc
}

fn assert_queries_agree(doc: &Document, points: &[(f64, f64)]) {
    for (x, y) in points {
        let p = Point::new(*x, *y);
        assert_eq!(doc.hit_test(p), doc.hit_test_linear(p), "hit_test at {p:?}");
    }
    for id_attr in IDS {
        assert_eq!(doc.by_id(id_attr), doc.by_id_linear(id_attr));
    }
    for tag in TAGS {
        assert_eq!(doc.by_tag(tag), doc.by_tag_linear(tag));
    }
    for name in ["end", "top", "missing"] {
        assert_eq!(doc.anchor_target(name), doc.anchor_target_linear(name));
    }
}

proptest! {
    /// Grid-indexed queries equal the linear reference over arbitrary
    /// documents and points.
    #[test]
    fn grid_matches_linear_reference(
        elements in vec(
            (0.0f64..1400.0, 0.0f64..2200.0, 0.0f64..600.0, 0.0f64..900.0,
             0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255),
            0..60,
        ),
        points in vec((-100.0f64..1500.0, -100.0f64..2400.0), 1..80),
        page_w in 200.0f64..1600.0,
        page_h in 200.0f64..2600.0,
    ) {
        let doc = build_doc(&elements, (page_w, page_h));
        assert_queries_agree(&doc, &points);
    }

    /// Mid-stream mutations (relocation, visibility flips) invalidate the
    /// index; queries afterwards still equal the linear reference.
    #[test]
    fn grid_matches_linear_reference_across_mutations(
        elements in vec(
            (0.0f64..1400.0, 0.0f64..2200.0, 0.0f64..600.0, 0.0f64..900.0,
             0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255),
            1..40,
        ),
        mutations in vec((0u16..=u16::MAX, 0.0f64..1400.0, 0.0f64..2200.0, 0u8..=255), 1..12),
        points in vec((-100.0f64..1500.0, -100.0f64..2400.0), 1..40),
    ) {
        let mut doc = build_doc(&elements, (1400.0, 2200.0));
        assert_queries_agree(&doc, &points);
        for (pick, x, y, visible) in &mutations {
            let ids: Vec<_> = doc.ids().collect();
            let id = ids[*pick as usize % ids.len()];
            let el = doc.element_mut(id);
            el.rect.x = *x;
            el.rect.y = *y;
            el.visible = *visible & 1 == 1;
            assert_queries_agree(&doc, &points);
        }
    }
}
