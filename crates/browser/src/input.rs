//! Raw (OS-level) input — what drivers inject *below* the event layer.
//!
//! Both Selenium's action primitives and HLISA ultimately inject raw input;
//! the browser turns it into the DOM events a page observes. Keeping the
//! two layers separate is what lets the same detector code judge Selenium,
//! naive improvements, HLISA, and the human reference model.

use crate::events::MouseButton;
use crate::viewport::ScrollOrigin;

/// A raw input item handed to [`crate::Browser::input`].
#[derive(Debug, Clone, PartialEq)]
pub enum RawInput {
    /// Pointer moved to absolute page coordinates.
    MouseMove {
        /// Target x (page px).
        x: f64,
        /// Target y (page px).
        y: f64,
    },
    /// Button pressed.
    MouseDown {
        /// Which button.
        button: MouseButton,
    },
    /// Button released.
    MouseUp {
        /// Which button.
        button: MouseButton,
    },
    /// Key pressed.
    KeyDown {
        /// DOM key value.
        key: String,
    },
    /// Key released.
    KeyUp {
        /// DOM key value.
        key: String,
    },
    /// One mouse-wheel click (±1 → down/up by the 57 px tick).
    WheelTick {
        /// +1 scrolls down, −1 scrolls up.
        direction: i32,
    },
    /// A free-form wheel delta (trackpads, scripted wheels).
    WheelDelta {
        /// Vertical delta (px, positive scrolls down).
        delta_y: f64,
    },
    /// A non-wheel scroll from the given origin.
    ScrollFrom {
        /// Which mechanism.
        origin: ScrollOrigin,
        /// Meaning depends on origin: absolute target for
        /// `ScrollBar`/`Find`/`Anchor`/`Script`, signed multiplier for the
        /// stepped origins.
        amount: f64,
    },
    /// Touch begun at page coordinates.
    TouchStart {
        /// Touch x.
        x: f64,
        /// Touch y.
        y: f64,
    },
    /// Touch ended.
    TouchEnd,
    /// Window minimised (page hidden).
    Minimize,
    /// Window restored (page visible).
    Restore,
    /// Window resized.
    Resize {
        /// New viewport width.
        width: f64,
        /// New viewport height.
        height: f64,
    },
}
