//! Viewport and scrolling model.
//!
//! Appendix D: scroll events can be triggered by "mouse wheel, trackpad
//! scrolling, scroll bar, arrow keys, using find, URL anchors, auto
//! scrolling", each moving a different distance — which is why scrolling is
//! a weak bot signal. The viewport implements every origin with its
//! Firefox-like distance: the fixed 57 px wheel tick the paper measured,
//! line-based arrow keys, page-based space bar, and absolute jumps for
//! scrollbar/anchor/find.

/// How a scroll came about. The origin is *not* part of the JS-observable
/// scroll event — detectors can only see the resulting deltas (plus a wheel
/// event when a wheel caused it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScrollOrigin {
    /// Mouse wheel tick(s).
    Wheel,
    /// Trackpad pan (many small deltas).
    Trackpad,
    /// Dragging the scroll bar (absolute positioning).
    ScrollBar,
    /// Arrow key line scroll.
    ArrowKey,
    /// Space bar page scroll.
    SpaceBar,
    /// In-page find jumping to a match.
    Find,
    /// `#anchor` navigation.
    Anchor,
    /// Firefox middle-click auto-scroll.
    AutoScroll,
    /// Programmatic (`window.scrollTo` — what Selenium's fallback does).
    Script,
}

/// Vertical distance of one mouse-wheel "click" in the paper's setup
/// (§4.1/Appendix D: "the amount scrolled by a scroll-wheel 'click' is
/// fixed (57 pixels in our setup)").
pub const WHEEL_TICK_PX: f64 = 57.0;

/// Arrow-key line scroll distance (Firefox default: 3 lines ≈ 57 px... but
/// a *line* is what the environment reports; Firefox scrolls 3 × 19 px
/// lines per arrow press in default configurations).
pub const ARROW_KEY_PX: f64 = 57.0;

/// A scrollable viewport over a page.
#[derive(Debug, Clone, PartialEq)]
pub struct Viewport {
    /// Viewport width (px).
    pub width: f64,
    /// Viewport height (px).
    pub height: f64,
    scroll_y: f64,
    page_height: f64,
    /// When true, large jumps are animated as a burst of intermediate
    /// scroll events (Firefox's smooth-scrolling setting; the paper's
    /// future-work notes HLISA does not yet account for it).
    pub smooth_scrolling: bool,
}

impl Viewport {
    /// A viewport of the given size over a page of `page_height`.
    pub fn new(width: f64, height: f64, page_height: f64) -> Self {
        assert!(width > 0.0 && height > 0.0, "degenerate viewport");
        Self {
            width,
            height,
            scroll_y: 0.0,
            page_height: page_height.max(height),
            smooth_scrolling: false,
        }
    }

    /// Current vertical scroll offset.
    pub fn scroll_y(&self) -> f64 {
        self.scroll_y
    }

    /// Maximum scroll offset.
    pub fn max_scroll_y(&self) -> f64 {
        (self.page_height - self.height).max(0.0)
    }

    /// Resizes the scrollable extent (a reflow grew or shrank the page).
    /// The scroll offset is re-clamped: if content above the current
    /// offset disappeared, the viewport snaps back to the new bottom.
    pub fn set_page_height(&mut self, page_height: f64) {
        self.page_height = page_height.max(self.height);
        self.scroll_y = self.scroll_y.clamp(0.0, self.max_scroll_y());
    }

    /// Scrolls by a delta, clamping to the document. Returns the actual
    /// delta applied (0 when already at an edge).
    pub fn scroll_by(&mut self, delta_y: f64) -> f64 {
        let before = self.scroll_y;
        self.scroll_y = (self.scroll_y + delta_y).clamp(0.0, self.max_scroll_y());
        self.scroll_y - before
    }

    /// Scrolls to an absolute offset, clamping. Returns the applied delta.
    pub fn scroll_to(&mut self, y: f64) -> f64 {
        let before = self.scroll_y;
        self.scroll_y = y.clamp(0.0, self.max_scroll_y());
        self.scroll_y - before
    }

    /// The distance one instance of the given origin scrolls, for
    /// relative-scrolling origins.
    pub fn origin_step(&self, origin: ScrollOrigin) -> f64 {
        match origin {
            ScrollOrigin::Wheel => WHEEL_TICK_PX,
            ScrollOrigin::Trackpad => 8.0,
            ScrollOrigin::ArrowKey => ARROW_KEY_PX,
            ScrollOrigin::SpaceBar => self.height * 0.9,
            ScrollOrigin::AutoScroll => 12.0,
            // Absolute origins have no fixed step.
            ScrollOrigin::ScrollBar
            | ScrollOrigin::Find
            | ScrollOrigin::Anchor
            | ScrollOrigin::Script => 0.0,
        }
    }

    /// True when a page-coordinate y is currently inside the viewport.
    pub fn is_y_visible(&self, y: f64) -> bool {
        y >= self.scroll_y && y < self.scroll_y + self.height
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wheel_tick_is_57px() {
        let v = Viewport::new(1280.0, 720.0, 30_000.0);
        assert_eq!(v.origin_step(ScrollOrigin::Wheel), 57.0);
    }

    #[test]
    fn scroll_clamps_to_document() {
        let mut v = Viewport::new(1280.0, 720.0, 1000.0);
        assert_eq!(v.max_scroll_y(), 280.0);
        assert_eq!(v.scroll_by(500.0), 280.0);
        assert_eq!(v.scroll_y(), 280.0);
        assert_eq!(v.scroll_by(10.0), 0.0);
        assert_eq!(v.scroll_by(-1000.0), -280.0);
        assert_eq!(v.scroll_y(), 0.0);
    }

    #[test]
    fn scroll_to_absolute() {
        let mut v = Viewport::new(1280.0, 720.0, 30_000.0);
        v.scroll_to(5_000.0);
        assert_eq!(v.scroll_y(), 5_000.0);
        v.scroll_to(-10.0);
        assert_eq!(v.scroll_y(), 0.0);
    }

    #[test]
    fn short_page_cannot_scroll() {
        let mut v = Viewport::new(1280.0, 720.0, 400.0);
        assert_eq!(v.max_scroll_y(), 0.0);
        assert_eq!(v.scroll_by(100.0), 0.0);
    }

    #[test]
    fn visibility_window() {
        let mut v = Viewport::new(1280.0, 720.0, 30_000.0);
        assert!(v.is_y_visible(0.0));
        assert!(!v.is_y_visible(720.0));
        v.scroll_to(1000.0);
        assert!(v.is_y_visible(1000.0));
        assert!(v.is_y_visible(1719.0));
        assert!(!v.is_y_visible(999.0));
    }

    #[test]
    fn space_bar_scrolls_most_of_a_page() {
        let v = Viewport::new(1280.0, 720.0, 30_000.0);
        assert_eq!(v.origin_step(ScrollOrigin::SpaceBar), 648.0);
    }
}
