//! DOM events: the full Appendix C catalogue and the dispatched event type.
//!
//! Appendix C lists every event "related to or triggered by interaction"
//! that Firefox offers, grouped by target (Document / Element / Window);
//! Appendix D reduces them to a small covering set that captures all
//! interaction information available to a page. The input pipeline
//! ([`crate::input`]) dispatches the covering set plus the events needed
//! for completeness probes.

use crate::dom::NodeId;

/// Target interface an event fires on (Appendix C grouping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventTarget {
    /// Fires on `document`.
    Document,
    /// Fires on individual elements.
    Element,
    /// Fires on `window`.
    Window,
}

/// One entry of the Appendix C catalogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CatalogEntry {
    /// Event name, e.g. `"pointermove"`.
    pub name: &'static str,
    /// Which interface it fires on.
    pub target: EventTarget,
}

/// The Appendix C catalogue of interaction-related events.
pub const EVENT_CATALOG: &[CatalogEntry] = &[
    // Document
    CatalogEntry {
        name: "copy",
        target: EventTarget::Document,
    },
    CatalogEntry {
        name: "cut",
        target: EventTarget::Document,
    },
    CatalogEntry {
        name: "dragend",
        target: EventTarget::Document,
    },
    CatalogEntry {
        name: "dragenter",
        target: EventTarget::Document,
    },
    CatalogEntry {
        name: "dragleave",
        target: EventTarget::Document,
    },
    CatalogEntry {
        name: "dragover",
        target: EventTarget::Document,
    },
    CatalogEntry {
        name: "dragstart",
        target: EventTarget::Document,
    },
    CatalogEntry {
        name: "drag",
        target: EventTarget::Document,
    },
    CatalogEntry {
        name: "drop",
        target: EventTarget::Document,
    },
    CatalogEntry {
        name: "fullscreenchange",
        target: EventTarget::Document,
    },
    CatalogEntry {
        name: "gotpointercapture",
        target: EventTarget::Document,
    },
    CatalogEntry {
        name: "keydown",
        target: EventTarget::Document,
    },
    CatalogEntry {
        name: "keypress",
        target: EventTarget::Document,
    },
    CatalogEntry {
        name: "keyup",
        target: EventTarget::Document,
    },
    CatalogEntry {
        name: "lostpointercapture",
        target: EventTarget::Document,
    },
    CatalogEntry {
        name: "paste",
        target: EventTarget::Document,
    },
    CatalogEntry {
        name: "pointercancel",
        target: EventTarget::Document,
    },
    CatalogEntry {
        name: "pointerdown",
        target: EventTarget::Document,
    },
    CatalogEntry {
        name: "pointerenter",
        target: EventTarget::Document,
    },
    CatalogEntry {
        name: "pointerleave",
        target: EventTarget::Document,
    },
    CatalogEntry {
        name: "pointermove",
        target: EventTarget::Document,
    },
    CatalogEntry {
        name: "pointerout",
        target: EventTarget::Document,
    },
    CatalogEntry {
        name: "pointerover",
        target: EventTarget::Document,
    },
    CatalogEntry {
        name: "pointerup",
        target: EventTarget::Document,
    },
    CatalogEntry {
        name: "scroll",
        target: EventTarget::Document,
    },
    CatalogEntry {
        name: "selectionchange",
        target: EventTarget::Document,
    },
    CatalogEntry {
        name: "selectstart",
        target: EventTarget::Document,
    },
    CatalogEntry {
        name: "touchcancel",
        target: EventTarget::Document,
    },
    CatalogEntry {
        name: "touchend",
        target: EventTarget::Document,
    },
    CatalogEntry {
        name: "touchmove",
        target: EventTarget::Document,
    },
    CatalogEntry {
        name: "touchstart",
        target: EventTarget::Document,
    },
    CatalogEntry {
        name: "transitionend",
        target: EventTarget::Document,
    },
    CatalogEntry {
        name: "transitionrun",
        target: EventTarget::Document,
    },
    CatalogEntry {
        name: "transitionstart",
        target: EventTarget::Document,
    },
    CatalogEntry {
        name: "visibilitychange",
        target: EventTarget::Document,
    },
    CatalogEntry {
        name: "wheel",
        target: EventTarget::Document,
    },
    // Element
    CatalogEntry {
        name: "auxclick",
        target: EventTarget::Element,
    },
    CatalogEntry {
        name: "blur",
        target: EventTarget::Element,
    },
    CatalogEntry {
        name: "click",
        target: EventTarget::Element,
    },
    CatalogEntry {
        name: "contextmenu",
        target: EventTarget::Element,
    },
    CatalogEntry {
        name: "dblclick",
        target: EventTarget::Element,
    },
    CatalogEntry {
        name: "focusin",
        target: EventTarget::Element,
    },
    CatalogEntry {
        name: "focusout",
        target: EventTarget::Element,
    },
    CatalogEntry {
        name: "focus",
        target: EventTarget::Element,
    },
    CatalogEntry {
        name: "mousedown",
        target: EventTarget::Element,
    },
    CatalogEntry {
        name: "mouseenter",
        target: EventTarget::Element,
    },
    CatalogEntry {
        name: "mouseleave",
        target: EventTarget::Element,
    },
    CatalogEntry {
        name: "mousemove",
        target: EventTarget::Element,
    },
    CatalogEntry {
        name: "mouseout",
        target: EventTarget::Element,
    },
    CatalogEntry {
        name: "mouseover",
        target: EventTarget::Element,
    },
    CatalogEntry {
        name: "mouseup",
        target: EventTarget::Element,
    },
    CatalogEntry {
        name: "select",
        target: EventTarget::Element,
    },
    // Window
    CatalogEntry {
        name: "resize",
        target: EventTarget::Window,
    },
    CatalogEntry {
        name: "focus",
        target: EventTarget::Window,
    },
];

/// Interaction category of the Appendix D covering set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoverageCategory {
    /// Mouse movement.
    MouseMovement,
    /// Mouse clicking.
    MouseClicking,
    /// Scrolling.
    Scrolling,
    /// Typing.
    Typing,
    /// Touch.
    Touch,
    /// Losing/gaining focus.
    FocusChange,
}

/// The covering set of Appendix D: "the following set of 10 events together
/// cover all interaction information available to a web page" — mousemove;
/// dblclick/mousedown/mouseup; scroll/wheel; keydown/keyup;
/// touchstart/touchend — plus the focus category
/// (visibilitychange/blur/focus) called out alongside them.
pub const COVERING_SET: &[(&str, CoverageCategory)] = &[
    ("mousemove", CoverageCategory::MouseMovement),
    ("dblclick", CoverageCategory::MouseClicking),
    ("mousedown", CoverageCategory::MouseClicking),
    ("mouseup", CoverageCategory::MouseClicking),
    ("scroll", CoverageCategory::Scrolling),
    ("wheel", CoverageCategory::Scrolling),
    ("keydown", CoverageCategory::Typing),
    ("keyup", CoverageCategory::Typing),
    ("touchstart", CoverageCategory::Touch),
    ("touchend", CoverageCategory::Touch),
    ("visibilitychange", CoverageCategory::FocusChange),
    ("blur", CoverageCategory::FocusChange),
    ("focus", CoverageCategory::FocusChange),
];

/// Kind of a dispatched event (the subset of the catalogue the input
/// pipeline synthesises).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Pointer-events layer: pointer moved (precedes `mousemove`).
    PointerMove,
    /// Pointer-events layer: contact down (precedes `mousedown`).
    PointerDown,
    /// Pointer-events layer: contact up (precedes `mouseup`).
    PointerUp,
    /// Pointer moved.
    MouseMove,
    /// Primary/secondary button pressed.
    MouseDown,
    /// Button released.
    MouseUp,
    /// down+up on the same target (primary button).
    Click,
    /// Secondary-button click.
    ContextMenu,
    /// Non-primary-button click (e.g. middle, or the `auxclick` a right
    /// press also generates).
    AuxClick,
    /// Two clicks within the double-click interval.
    DblClick,
    /// Mouse wheel rotated.
    Wheel,
    /// Viewport scrolled (any origin).
    Scroll,
    /// Key pressed.
    KeyDown,
    /// Character-generating key pressed (legacy event).
    KeyPress,
    /// Key released.
    KeyUp,
    /// Element gained focus.
    Focus,
    /// Element lost focus.
    Blur,
    /// Page visibility toggled (minimise/restore).
    VisibilityChange,
    /// Window resized.
    Resize,
    /// Touch begun.
    TouchStart,
    /// Touch ended.
    TouchEnd,
}

impl EventKind {
    /// DOM event name.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::PointerMove => "pointermove",
            EventKind::PointerDown => "pointerdown",
            EventKind::PointerUp => "pointerup",
            EventKind::MouseMove => "mousemove",
            EventKind::MouseDown => "mousedown",
            EventKind::MouseUp => "mouseup",
            EventKind::Click => "click",
            EventKind::ContextMenu => "contextmenu",
            EventKind::AuxClick => "auxclick",
            EventKind::DblClick => "dblclick",
            EventKind::Wheel => "wheel",
            EventKind::Scroll => "scroll",
            EventKind::KeyDown => "keydown",
            EventKind::KeyPress => "keypress",
            EventKind::KeyUp => "keyup",
            EventKind::Focus => "focus",
            EventKind::Blur => "blur",
            EventKind::VisibilityChange => "visibilitychange",
            EventKind::Resize => "resize",
            EventKind::TouchStart => "touchstart",
            EventKind::TouchEnd => "touchend",
        }
    }

    /// Appendix D category this event carries information about.
    pub fn category(&self) -> CoverageCategory {
        match self {
            EventKind::PointerMove | EventKind::MouseMove => CoverageCategory::MouseMovement,
            EventKind::PointerDown
            | EventKind::PointerUp
            | EventKind::MouseDown
            | EventKind::MouseUp
            | EventKind::Click
            | EventKind::ContextMenu
            | EventKind::AuxClick
            | EventKind::DblClick => CoverageCategory::MouseClicking,
            EventKind::Wheel | EventKind::Scroll => CoverageCategory::Scrolling,
            EventKind::KeyDown | EventKind::KeyPress | EventKind::KeyUp => CoverageCategory::Typing,
            EventKind::TouchStart | EventKind::TouchEnd => CoverageCategory::Touch,
            EventKind::Focus
            | EventKind::Blur
            | EventKind::VisibilityChange
            | EventKind::Resize => CoverageCategory::FocusChange,
        }
    }
}

/// Mouse button identifier (DOM `MouseEvent.button`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MouseButton {
    /// Left / primary (0).
    Left,
    /// Middle / auxiliary (1).
    Middle,
    /// Right / secondary (2).
    Right,
}

/// Event payload, by family.
#[derive(Debug, Clone, PartialEq)]
pub enum EventPayload {
    /// Mouse family: page coordinates and button.
    Mouse {
        /// Pointer x (page px).
        x: f64,
        /// Pointer y (page px).
        y: f64,
        /// Button involved (movement carries the last-known button state's
        /// primary button by convention; unused for `mousemove`).
        button: MouseButton,
    },
    /// Keyboard family.
    Key {
        /// DOM `key` value (`"a"`, `"A"`, `"Shift"`, `"Enter"`, ...).
        key: String,
        /// Whether Shift was held.
        shift: bool,
    },
    /// Wheel rotation.
    Wheel {
        /// Vertical delta in px (positive scrolls down).
        delta_y: f64,
    },
    /// Scroll position after the scroll.
    Scroll {
        /// New vertical scroll offset (px).
        scroll_y: f64,
    },
    /// Visibility state after the change.
    Visibility {
        /// True when the page became visible.
        visible: bool,
    },
    /// No payload.
    None,
}

/// A dispatched DOM event, as a page's listeners observe it.
#[derive(Debug, Clone, PartialEq)]
pub struct DomEvent {
    /// Event kind.
    pub kind: EventKind,
    /// Timestamp in ms, quantised to the page-observable 1 ms granularity.
    pub timestamp_ms: f64,
    /// Target element, when the event has one.
    pub target: Option<NodeId>,
    /// Payload.
    pub payload: EventPayload,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn catalog_matches_appendix_c() {
        // 36 document + 16 element + 2 window entries.
        let doc = EVENT_CATALOG
            .iter()
            .filter(|e| e.target == EventTarget::Document)
            .count();
        let el = EVENT_CATALOG
            .iter()
            .filter(|e| e.target == EventTarget::Element)
            .count();
        let win = EVENT_CATALOG
            .iter()
            .filter(|e| e.target == EventTarget::Window)
            .count();
        assert_eq!(doc, 36);
        assert_eq!(el, 16);
        assert_eq!(win, 2);
    }

    #[test]
    fn catalog_entries_unique_per_target() {
        let mut seen = HashSet::new();
        for e in EVENT_CATALOG {
            assert!(seen.insert((e.name, e.target)), "duplicate: {e:?}");
        }
    }

    #[test]
    fn covering_set_names_exist_in_catalog() {
        let names: HashSet<&str> = EVENT_CATALOG.iter().map(|e| e.name).collect();
        for (name, _) in COVERING_SET {
            assert!(names.contains(name), "{name} missing from catalog");
        }
    }

    #[test]
    fn covering_set_spans_all_categories() {
        let cats: HashSet<_> = COVERING_SET.iter().map(|(_, c)| *c).collect();
        assert_eq!(cats.len(), 6);
    }

    #[test]
    fn kind_names_round_trip_into_catalog() {
        let names: HashSet<&str> = EVENT_CATALOG.iter().map(|e| e.name).collect();
        for k in [
            EventKind::MouseMove,
            EventKind::DblClick,
            EventKind::Wheel,
            EventKind::KeyDown,
            EventKind::VisibilityChange,
            EventKind::TouchEnd,
        ] {
            assert!(names.contains(k.name()));
        }
    }

    #[test]
    fn categories_assigned_sensibly() {
        assert_eq!(EventKind::Click.category(), CoverageCategory::MouseClicking);
        assert_eq!(EventKind::Scroll.category(), CoverageCategory::Scrolling);
        assert_eq!(EventKind::KeyUp.category(), CoverageCategory::Typing);
        assert_eq!(EventKind::Blur.category(), CoverageCategory::FocusChange);
    }
}
