//! Simulated browser substrate (the paper's Firefox/Gecko stand-in).
//!
//! The paper's interaction experiments (§4, Appendices C–E) observe
//! interaction exclusively through the JavaScript events a web page
//! receives. This crate therefore implements the pieces of a browser that
//! shape those observations:
//!
//! * a DOM with box layout and hit testing ([`dom`]),
//! * a viewport with every scrolling origin Appendix D lists ([`viewport`]),
//! * an OS-input → DOM-event pipeline with Firefox's granularity quirks
//!   ([`input`], [`events`]): ≥1 ms event timestamps, frame-coalesced
//!   `mousemove`, the 57 px wheel tick, and the environment-supplied
//!   double-click interval (500 ms on Windows, 600 ms observed under
//!   Selenium),
//! * an event recorder standing in for a page's JS listeners
//!   ([`recorder`]),
//! * the full catalogue of the 57 interaction-related events of Appendix C
//!   and the 10-event covering set of Appendix D ([`events`]).
//!
//! A [`Browser`] owns one loaded [`dom::Document`] plus a
//! [`hlisa_jsom::World`] for the page's JS globals, so fingerprint spoofing
//! and interaction run against the same page.

pub mod browser;
pub mod clock;
pub mod dom;
pub mod events;
pub mod geometry;
mod index;
pub mod input;
pub mod recorder;
pub mod viewport;

pub use browser::{Browser, BrowserConfig};
pub use clock::VirtualClock;
pub use dom::{Display, Document, DocumentMutator, Element, ElementBuilder, NodeId};
pub use events::{DomEvent, EventKind, EventPayload};
pub use geometry::{Point, Rect};
pub use input::RawInput;
pub use recorder::EventRecorder;
pub use viewport::{ScrollOrigin, Viewport};
