//! Query acceleration for [`crate::dom::Document`].
//!
//! Every pointer sample a driver injects pays a `hit_test`, and every
//! locator call (`by_id`, `by_tag`, `anchor_target`) scans the node
//! arena. At measurement scale — a campaign synthesises millions of
//! pointer samples — those linear scans dominate the interaction
//! pipeline. This module precomputes, per document revision:
//!
//! * the **paint order** of the tree (pre-order traversal, stable-sorted
//!   by cumulative layer) and per-node attachment/visibility, resolving
//!   the z-order/occlusion semantics once;
//! * a **uniform grid** over the page box mapping each cell to the
//!   effectively-visible elements whose boxes intersect it, in paint
//!   order, so a hit test scans one cell instead of the whole tree;
//! * **id / tag / anchor lookup maps** over *attached* nodes (detached
//!   `Display::None` subtrees are not in the DOM) for the locator calls.
//!
//! The index is built lazily on first query and torn down by any `&mut`
//! access that could change layout or the tree ([`Document::add`],
//! [`Document::add_child`], [`Document::element_mut`],
//! [`Document::mutate`], [`Document::reflow`]), so it can never serve
//! stale geometry.
//!
//! Semantics are *identical* to the linear reference scans, enforced by a
//! differential proptest (`tests/hit_test_differential.rs`):
//!
//! * paint order is pre-order position stable-sorted by effective layer,
//!   so scanning a cell back-to-front and taking the first
//!   `rect.contains(p)` match returns the same topmost
//!   effectively-visible element the reference's max-key scan finds (for
//!   flat layer-0 documents both degenerate to arena order — the old
//!   flat z-semantics);
//! * cell coverage uses the same inclusive interval arithmetic as
//!   [`crate::geometry::Rect::contains`], and both rect spans and query
//!   points are clamped to the grid with the same monotone mapping, so an
//!   element containing a point is always present in the point's cell —
//!   even for boxes or points outside the page bounds;
//! * the id/tag/anchor maps keep first-occurrence (`by_id`,
//!   `anchor_target`) and arena-order (`by_tag`) semantics over attached
//!   nodes.
//!
//! Determinism note: the interior `HashMap`s are only ever point-queried
//! — their iteration order never reaches any observable output (`by_tag`
//! returns the precomputed document-ordered `Vec` for one key) — which
//! is why the workspace linter sanctions this module as an allowed
//! unordered-container interior (see `UNORDERED_INTERIOR_SITES` in
//! `hlisa-lint`).

use crate::dom::{Display, Node, NodeId};
use crate::geometry::Point;
use std::collections::HashMap;

/// Hard cap on grid cells per axis: bounds memory for huge pages while
/// keeping cells small enough that dense documents spread out.
const MAX_CELLS_PER_AXIS: usize = 64;

/// Precomputed lookup structures for one document revision.
#[derive(Debug)]
pub(crate) struct DocumentIndex {
    /// First attached element per `id` attribute. The empty id is indexed
    /// like any other so `by_id("")` matches the linear reference (which
    /// finds the first attached unnamed element).
    by_id: HashMap<String, NodeId>,
    /// All attached elements per tag, in arena order.
    by_tag: HashMap<String, Vec<NodeId>>,
    /// First attached element per anchor name.
    by_anchor: HashMap<String, NodeId>,
    /// Effectively-visible elements intersecting each cell, in paint
    /// order (bottom → top).
    cells: Vec<Vec<NodeId>>,
    cols: usize,
    rows: usize,
    cell_w: f64,
    cell_h: f64,
}

impl DocumentIndex {
    /// Builds the index for the current tree contents.
    pub(crate) fn build(
        nodes: &[Node],
        roots: &[NodeId],
        page_width: f64,
        page_height: f64,
    ) -> Self {
        // One pre-order traversal resolves, per node: pre-order position,
        // cumulative paint layer, attachment (no `Display::None` on the
        // ancestor path), and effective visibility (attached + no hidden
        // ancestor).
        let n = nodes.len();
        let mut pre_order: Vec<NodeId> = Vec::with_capacity(n);
        let mut eff_layer = vec![0i64; n];
        let mut attached = vec![false; n];
        let mut eff_visible = vec![false; n];
        // Stack entries carry the parent's accumulated (layer, visible).
        let mut stack: Vec<(NodeId, i64, bool)> =
            roots.iter().rev().map(|&r| (r, 0i64, true)).collect();
        while let Some((id, parent_layer, parent_visible)) = stack.pop() {
            let node = &nodes[id.index()];
            if node.el.display == Display::None {
                // The whole subtree stays detached (flags default false).
                continue;
            }
            let layer = parent_layer + i64::from(node.el.layer);
            let visible = parent_visible && node.el.visible;
            pre_order.push(id);
            eff_layer[id.index()] = layer;
            attached[id.index()] = true;
            eff_visible[id.index()] = visible;
            for &c in node.children.iter().rev() {
                stack.push((c, layer, visible));
            }
        }
        // Paint order: pre-order, stable-sorted by effective layer. The
        // stable sort keeps document order within a layer, so flat
        // layer-0 pages paint in arena order exactly as before.
        let mut paint = pre_order;
        paint.sort_by_key(|id| eff_layer[id.index()]);

        let mut by_id: HashMap<String, NodeId> = HashMap::with_capacity(n);
        let mut by_tag: HashMap<String, Vec<NodeId>> = HashMap::new();
        let mut by_anchor: HashMap<String, NodeId> = HashMap::new();

        // Cell sizing: aim for O(1) candidates per cell on spread-out
        // documents without exploding memory on sparse ones.
        let axis = (n as f64).sqrt().ceil() as usize;
        let cols = axis.clamp(1, MAX_CELLS_PER_AXIS);
        let rows = axis.clamp(1, MAX_CELLS_PER_AXIS);
        let cell_w = page_width / cols as f64;
        let cell_h = page_height / rows as f64;
        let mut cells: Vec<Vec<NodeId>> = vec![Vec::new(); cols * rows];

        // Locator maps: arena order over attached nodes.
        for (i, node) in nodes.iter().enumerate() {
            if !attached[i] {
                continue;
            }
            let id = NodeId(i);
            by_id.entry(node.el.id.clone()).or_insert(id);
            by_tag.entry(node.el.tag.clone()).or_default().push(id);
            if let Some(name) = &node.el.anchor {
                by_anchor.entry(name.clone()).or_insert(id);
            }
        }
        // Spatial grid: paint order over effectively-visible nodes, so
        // each cell's candidate list is already bottom → top.
        for &id in &paint {
            if !eff_visible[id.index()] {
                continue;
            }
            let rect = nodes[id.index()].el.rect;
            // Monotone, clamped span → every cell a contained point
            // can map to is covered (see the module docs).
            let c0 = cell_coord(rect.x, cell_w, cols);
            let c1 = cell_coord(rect.x + rect.width, cell_w, cols);
            let r0 = cell_coord(rect.y, cell_h, rows);
            let r1 = cell_coord(rect.y + rect.height, cell_h, rows);
            for r in r0..=r1 {
                for c in c0..=c1 {
                    cells[r * cols + c].push(id);
                }
            }
        }
        Self {
            by_id,
            by_tag,
            by_anchor,
            cells,
            cols,
            rows,
            cell_w,
            cell_h,
        }
    }

    /// Fast path for [`crate::dom::Document::by_id`].
    pub(crate) fn by_id(&self, id_attr: &str) -> Option<NodeId> {
        self.by_id.get(id_attr).copied()
    }

    /// Fast path for [`crate::dom::Document::by_tag`] (arena order).
    pub(crate) fn by_tag(&self, tag: &str) -> &[NodeId] {
        self.by_tag.get(tag).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Fast path for [`crate::dom::Document::anchor_target`].
    pub(crate) fn anchor_target(&self, name: &str) -> Option<NodeId> {
        self.by_anchor.get(name).copied()
    }

    /// Fast path for [`crate::dom::Document::hit_test`]: topmost
    /// effectively-visible element containing the point. Scans one cell
    /// back-to-front; the cell holds candidates in paint order.
    pub(crate) fn hit_test(&self, nodes: &[Node], p: Point) -> Option<NodeId> {
        let c = cell_coord(p.x, self.cell_w, self.cols);
        let r = cell_coord(p.y, self.cell_h, self.rows);
        self.cells[r * self.cols + c]
            .iter()
            .rev()
            .find(|id| nodes[id.index()].el.rect.contains(p))
            .copied()
    }
}

/// Maps a coordinate to a clamped cell index along one axis.
fn cell_coord(v: f64, cell_size: f64, n: usize) -> usize {
    if cell_size <= 0.0 || !v.is_finite() {
        return 0;
    }
    let idx = (v / cell_size).floor();
    if idx <= 0.0 {
        0
    } else {
        (idx as usize).min(n - 1)
    }
}
