//! 2-D geometry primitives (page coordinates, CSS pixels).

/// A point in page coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate (CSS px).
    pub x: f64,
    /// Vertical coordinate (CSS px, grows downward).
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance_to(&self, other: Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Linear interpolation: `self` at t=0, `other` at t=1.
    pub fn lerp(&self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }
}

/// An axis-aligned rectangle in page coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Rect {
    /// Left edge.
    pub x: f64,
    /// Top edge.
    pub y: f64,
    /// Width (px).
    pub width: f64,
    /// Height (px).
    pub height: f64,
}

impl Rect {
    /// Creates a rectangle.
    pub const fn new(x: f64, y: f64, width: f64, height: f64) -> Self {
        Self {
            x,
            y,
            width,
            height,
        }
    }

    /// Centre point.
    pub fn center(&self) -> Point {
        Point::new(self.x + self.width / 2.0, self.y + self.height / 2.0)
    }

    /// True when the point lies inside (edges inclusive on top/left,
    /// exclusive on bottom/right, CSS hit-testing convention).
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.x && p.x < self.x + self.width && p.y >= self.y && p.y < self.y + self.height
    }

    /// True when the two rectangles overlap.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.x < other.x + other.width
            && other.x < self.x + self.width
            && self.y < other.y + other.height
            && other.y < self.y + self.height
    }

    /// The point at a relative offset from the top-left corner.
    pub fn offset(&self, dx: f64, dy: f64) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_and_lerp() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance_to(b) - 5.0).abs() < 1e-12);
        let mid = a.lerp(b, 0.5);
        assert_eq!(mid, Point::new(1.5, 2.0));
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
    }

    #[test]
    fn rect_center_and_contains() {
        let r = Rect::new(10.0, 20.0, 100.0, 40.0);
        assert_eq!(r.center(), Point::new(60.0, 40.0));
        assert!(r.contains(Point::new(10.0, 20.0)));
        assert!(r.contains(Point::new(109.9, 59.9)));
        assert!(!r.contains(Point::new(110.0, 40.0)));
        assert!(!r.contains(Point::new(60.0, 60.0)));
    }

    #[test]
    fn rect_intersections() {
        let a = Rect::new(0.0, 0.0, 10.0, 10.0);
        let b = Rect::new(5.0, 5.0, 10.0, 10.0);
        let c = Rect::new(20.0, 20.0, 5.0, 5.0);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn rect_offset_is_from_top_left() {
        let r = Rect::new(10.0, 20.0, 100.0, 40.0);
        assert_eq!(r.offset(1.0, 2.0), Point::new(11.0, 22.0));
    }
}
