//! DOM documents with box layout and hit testing.
//!
//! Detectors and interaction APIs only need the parts of a DOM that shape
//! JS-observable interaction: element boxes (where is the click target?),
//! z-order (what does a click at (x, y) hit?), focusability (typing
//! targets), and page extent (how far can one scroll?).

use crate::geometry::{Point, Rect};
use crate::index::DocumentIndex;
use std::sync::OnceLock;

/// Index of a node in a [`Document`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The raw arena index.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// An element node.
#[derive(Debug, Clone, PartialEq)]
pub struct Element {
    /// Tag name (`"div"`, `"a"`, `"input"`, ...).
    pub tag: String,
    /// `id` attribute (empty if none).
    pub id: String,
    /// Layout box in page coordinates.
    pub rect: Rect,
    /// Whether the element is rendered (hidden elements cannot be
    /// interacted with by humans — interacting with them anyway is the
    /// "honey element" bot signal of §4.2).
    pub visible: bool,
    /// Whether the element can hold keyboard focus.
    pub focusable: bool,
    /// Anchor target name, for `<a href="#...">` scroll jumps.
    pub anchor: Option<String>,
    /// Text content (what typing appends to for focusable elements).
    pub text: String,
}

/// A laid-out document.
pub struct Document {
    /// URL the document was loaded from.
    pub url: String,
    nodes: Vec<Element>,
    /// Total page width (px).
    pub page_width: f64,
    /// Total page height (px). Appendix E's scroll experiment uses a
    /// 30,000 px page.
    pub page_height: f64,
    /// Lazily-built query index (spatial grid + id/tag/anchor maps).
    /// Torn down by every `&mut` access that could change layout, so it
    /// never serves stale geometry; rebuilt on the next query.
    index: OnceLock<DocumentIndex>,
}

impl Clone for Document {
    fn clone(&self) -> Self {
        Self {
            url: self.url.clone(),
            nodes: self.nodes.clone(),
            page_width: self.page_width,
            page_height: self.page_height,
            // The clone rebuilds its own index on first query.
            index: OnceLock::new(),
        }
    }
}

impl PartialEq for Document {
    fn eq(&self, other: &Self) -> bool {
        // The index is derived state; equality is over page content only.
        self.url == other.url
            && self.nodes == other.nodes
            && self.page_width == other.page_width
            && self.page_height == other.page_height
    }
}

impl std::fmt::Debug for Document {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Document")
            .field("url", &self.url)
            .field("nodes", &self.nodes)
            .field("page_width", &self.page_width)
            .field("page_height", &self.page_height)
            .finish_non_exhaustive()
    }
}

impl Document {
    /// An empty page of the given size.
    pub fn new(url: &str, page_width: f64, page_height: f64) -> Self {
        assert!(page_width > 0.0 && page_height > 0.0, "degenerate page");
        Self {
            url: url.to_string(),
            nodes: Vec::new(),
            page_width,
            page_height,
            index: OnceLock::new(),
        }
    }

    /// The query index, built on demand for the current revision.
    fn index(&self) -> &DocumentIndex {
        self.index
            .get_or_init(|| DocumentIndex::build(&self.nodes, self.page_width, self.page_height))
    }

    /// Adds an element, returning its id. Later elements paint on top
    /// (document order = z-order, as with non-positioned CSS boxes).
    pub fn add(&mut self, el: Element) -> NodeId {
        self.index = OnceLock::new();
        self.nodes.push(el);
        NodeId(self.nodes.len() - 1)
    }

    /// Borrows an element.
    pub fn element(&self, id: NodeId) -> &Element {
        &self.nodes[id.0]
    }

    /// Borrows an element mutably. The caller may change anything the
    /// query index depends on (box, visibility, id, tag, anchor), so the
    /// index is invalidated up front.
    pub fn element_mut(&mut self, id: NodeId) -> &mut Element {
        self.index = OnceLock::new();
        &mut self.nodes[id.0]
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the document has no elements.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All node ids in document order.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Finds the first element with the given `id` attribute.
    pub fn by_id(&self, id_attr: &str) -> Option<NodeId> {
        self.index().by_id(id_attr)
    }

    /// Linear reference model for [`Document::by_id`].
    pub fn by_id_linear(&self, id_attr: &str) -> Option<NodeId> {
        self.nodes.iter().position(|e| e.id == id_attr).map(NodeId)
    }

    /// Finds all elements with the given tag, in document order.
    pub fn by_tag(&self, tag: &str) -> Vec<NodeId> {
        self.index().by_tag(tag).to_vec()
    }

    /// Linear reference model for [`Document::by_tag`].
    pub fn by_tag_linear(&self, tag: &str) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, e)| e.tag == tag)
            .map(|(i, _)| NodeId(i))
            .collect()
    }

    /// Topmost visible element containing the point, if any. Served from
    /// the spatial grid; semantically identical to
    /// [`Document::hit_test_linear`] (the differential proptest in
    /// `tests/hit_test_differential.rs` pins the equivalence).
    pub fn hit_test(&self, p: Point) -> Option<NodeId> {
        self.index().hit_test(&self.nodes, p)
    }

    /// Linear reference model for [`Document::hit_test`]: the original
    /// O(nodes) reverse scan over the arena.
    pub fn hit_test_linear(&self, p: Point) -> Option<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .rev()
            .find(|(_, e)| e.visible && e.rect.contains(p))
            .map(|(i, _)| NodeId(i))
    }

    /// Finds the element anchoring `name` (for `#name` navigation).
    pub fn anchor_target(&self, name: &str) -> Option<NodeId> {
        self.index().anchor_target(name)
    }

    /// Linear reference model for [`Document::anchor_target`].
    pub fn anchor_target_linear(&self, name: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|e| e.anchor.as_deref() == Some(name))
            .map(NodeId)
    }
}

/// Fluent builder for elements.
#[derive(Debug, Clone)]
pub struct ElementBuilder {
    el: Element,
}

impl ElementBuilder {
    /// Starts building an element with the given tag and box.
    pub fn new(tag: &str, rect: Rect) -> Self {
        Self {
            el: Element {
                tag: tag.to_string(),
                id: String::new(),
                rect,
                visible: true,
                focusable: false,
                anchor: None,
                text: String::new(),
            },
        }
    }

    /// Sets the `id` attribute.
    pub fn id(mut self, id: &str) -> Self {
        self.el.id = id.to_string();
        self
    }

    /// Marks the element invisible (a honey element).
    pub fn hidden(mut self) -> Self {
        self.el.visible = false;
        self
    }

    /// Marks the element focusable (text inputs, textareas).
    pub fn focusable(mut self) -> Self {
        self.el.focusable = true;
        self
    }

    /// Names an anchor on this element.
    pub fn anchor(mut self, name: &str) -> Self {
        self.el.anchor = Some(name.to_string());
        self
    }

    /// Finishes, inserting into the document.
    pub fn insert(self, doc: &mut Document) -> NodeId {
        doc.add(self.el)
    }
}

/// Builds the standard test page used across the workspace's experiments:
/// a 1280 px wide page with a button, a text area, a link with an anchor
/// target far down the page, and one hidden honey element.
pub fn standard_test_page(url: &str, page_height: f64) -> Document {
    let mut doc = Document::new(url, 1280.0, page_height);
    ElementBuilder::new("body", Rect::new(0.0, 0.0, 1280.0, page_height)).insert(&mut doc);
    ElementBuilder::new("button", Rect::new(100.0, 480.0, 120.0, 40.0))
        .id("submit")
        .insert(&mut doc);
    ElementBuilder::new("input", Rect::new(400.0, 300.0, 300.0, 30.0))
        .id("text_area")
        .focusable()
        .insert(&mut doc);
    ElementBuilder::new("a", Rect::new(900.0, 120.0, 140.0, 20.0))
        .id("jump")
        .insert(&mut doc);
    ElementBuilder::new(
        "h2",
        Rect::new(0.0, (page_height - 600.0).max(0.0), 400.0, 30.0),
    )
    .id("section-end")
    .anchor("end")
    .insert(&mut doc);
    ElementBuilder::new("div", Rect::new(10.0, 10.0, 8.0, 8.0))
        .id("honey")
        .hidden()
        .insert(&mut doc);
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_id_and_tag_lookup() {
        let doc = standard_test_page("https://example.test/", 30_000.0);
        assert!(doc.by_id("submit").is_some());
        assert!(doc.by_id("nope").is_none());
        assert_eq!(doc.by_tag("button").len(), 1);
    }

    #[test]
    fn hit_test_returns_topmost_visible() {
        let mut doc = Document::new("u", 100.0, 100.0);
        let below = ElementBuilder::new("div", Rect::new(0.0, 0.0, 100.0, 100.0)).insert(&mut doc);
        let above =
            ElementBuilder::new("button", Rect::new(40.0, 40.0, 20.0, 20.0)).insert(&mut doc);
        assert_eq!(doc.hit_test(Point::new(50.0, 50.0)), Some(above));
        assert_eq!(doc.hit_test(Point::new(10.0, 10.0)), Some(below));
    }

    #[test]
    fn hidden_elements_are_not_hit() {
        let doc = standard_test_page("u", 30_000.0);
        let honey = doc.by_id("honey").unwrap();
        let c = doc.element(honey).rect.center();
        // The body below it is hit instead.
        let hit = doc.hit_test(c).unwrap();
        assert_ne!(hit, honey);
        assert_eq!(doc.element(hit).tag, "body");
    }

    #[test]
    fn anchor_lookup() {
        let doc = standard_test_page("u", 30_000.0);
        let target = doc.anchor_target("end").unwrap();
        assert_eq!(doc.element(target).id, "section-end");
        assert!(doc.anchor_target("missing").is_none());
    }

    #[test]
    #[should_panic(expected = "degenerate page")]
    fn rejects_zero_size_page() {
        let _ = Document::new("u", 0.0, 100.0);
    }

    #[test]
    fn element_mut_allows_relocation() {
        let mut doc = standard_test_page("u", 30_000.0);
        let id = doc.by_id("submit").unwrap();
        doc.element_mut(id).rect = Rect::new(1.0, 2.0, 3.0, 4.0);
        assert_eq!(doc.element(id).rect, Rect::new(1.0, 2.0, 3.0, 4.0));
    }

    #[test]
    fn mutation_invalidates_the_query_index() {
        let mut doc = standard_test_page("u", 30_000.0);
        let id = doc.by_id("submit").unwrap();
        // Force the index to build, then move the element.
        assert_eq!(doc.hit_test(doc.element(id).rect.center()), Some(id));
        doc.element_mut(id).rect = Rect::new(600.0, 10_000.0, 50.0, 50.0);
        assert_eq!(doc.hit_test(Point::new(625.0, 10_025.0)), Some(id));
        // Identity attributes are index inputs too.
        doc.element_mut(id).id = "renamed".to_string();
        assert_eq!(doc.by_id("renamed"), Some(id));
        assert!(doc.by_id("submit").is_none());
        // A hidden element leaves the grid on the next rebuild.
        doc.element_mut(id).visible = false;
        assert_ne!(doc.hit_test(Point::new(625.0, 10_025.0)), Some(id));
    }

    #[test]
    fn indexed_queries_match_the_linear_reference_on_the_test_page() {
        let doc = standard_test_page("u", 30_000.0);
        for id_attr in ["submit", "text_area", "jump", "honey", "ghost", ""] {
            assert_eq!(doc.by_id(id_attr), doc.by_id_linear(id_attr));
        }
        for tag in ["button", "a", "div", "nope"] {
            assert_eq!(doc.by_tag(tag), doc.by_tag_linear(tag));
        }
        for name in ["end", "missing"] {
            assert_eq!(doc.anchor_target(name), doc.anchor_target_linear(name));
        }
        for x in [0.0, 10.0, 160.0, 550.0, 970.0, 1279.0, 1280.0, -5.0] {
            for y in [0.0, 14.0, 130.0, 315.0, 500.0, 29_500.0, 30_000.0] {
                let p = Point::new(x, y);
                assert_eq!(doc.hit_test(p), doc.hit_test_linear(p), "at {p:?}");
            }
        }
    }
}
