//! DOM documents: a node tree, a deterministic flow layout pass, and
//! paint-order hit testing.
//!
//! Detectors and interaction APIs only need the parts of a DOM that shape
//! JS-observable interaction: element boxes (where is the click target?),
//! paint order (what does a click at (x, y) hit?), focusability (typing
//! targets), and page extent (how far can one scroll?). Since PR 6 the
//! geometry is no longer authored directly: documents are **trees**
//! (parent/children/depth), elements carry a [`Display`] specification,
//! and a layout pass computes the boxes. The pipeline is
//!
//! ```text
//! DOM tree (tags, display specs)  →  layout (reflow: boxes)  →  geometry
//!                                                                (hit_test)
//! ```
//!
//! Layout consumes **no randomness**: [`Document::reflow`] is a pure
//! function of the tree, so two documents with equal trees always get
//! bit-identical geometry and campaign output stays reproducible.
//!
//! The legacy flat-page API is preserved exactly: [`ElementBuilder::new`]
//! authors an [`Display::Absolute`] element whose `rect` is taken as-is,
//! root-level, at layer 0 — for such documents paint order degenerates to
//! arena order and every query answers exactly as before the refactor.

use crate::geometry::{Point, Rect};
use crate::index::DocumentIndex;
use std::sync::OnceLock;

/// Index of a node in a [`Document`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The raw arena index.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// How an element participates in layout.
///
/// A tiny, deterministic subset of CSS display/positioning — just enough
/// to express the page shapes the paper's breakage classes need (flowing
/// articles, wrapping toolbars, overlaying banners, `display: none`
/// lazy sections).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Display {
    /// Out-of-flow: the geometry authored in [`Element::rect`] is used
    /// verbatim and never rewritten by layout. This is the legacy page
    /// model ([`ElementBuilder::new`]) and the overlay primitive (cookie
    /// banners, modals). Children lay out inside the authored box.
    Absolute,
    /// In-flow block: stacks vertically inside the parent content box.
    /// Width is a fraction of the parent content width; height grows to
    /// fit overflowing flow children (auto-height).
    Block {
        /// Intrinsic height (px) before auto-growth.
        height: f64,
        /// Fraction of the parent content width this box spans.
        width_frac: f64,
        /// Vertical and horizontal outer margin (px).
        margin: f64,
        /// Inner padding (px) shrinking the content box for children.
        padding: f64,
    },
    /// In-flow inline block: flows horizontally, wrapping to a new line
    /// when the parent content width is exhausted.
    Inline {
        /// Fixed width (px).
        width: f64,
        /// Fixed height (px).
        height: f64,
        /// Outer margin on all sides (px).
        margin: f64,
    },
    /// Removed from layout entirely (`display: none`): the subtree gets
    /// no geometry, is skipped by hit testing *and* by the locator
    /// queries (`by_id`, `by_tag`, `anchor_target`) — it is not "in the
    /// DOM" as far as drivers can observe. Lazy content that has not been
    /// scrolled into existence yet, and detached SPA nodes, live here.
    None,
}

/// An element node.
#[derive(Debug, Clone, PartialEq)]
pub struct Element {
    /// Tag name (`"div"`, `"a"`, `"input"`, ...).
    pub tag: String,
    /// `id` attribute (empty if none).
    pub id: String,
    /// Layout box in page coordinates. For [`Display::Absolute`] this is
    /// authored by the caller; for in-flow displays it is **computed** by
    /// [`Document::reflow`] and overwritten on every reflow.
    pub rect: Rect,
    /// How layout computes this element's geometry.
    pub display: Display,
    /// Paint layer, cumulative down the tree (a child paints at its
    /// parent's effective layer plus its own). Higher paints on top;
    /// ties break by pre-order position (document order), which is
    /// exactly the old flat z-order for layer-0 documents.
    pub layer: i32,
    /// Whether the element is rendered (hidden elements cannot be
    /// interacted with by humans — interacting with them anyway is the
    /// "honey element" bot signal of §4.2). Unlike [`Display::None`],
    /// a hidden element still occupies layout space and stays findable
    /// by the locator queries.
    pub visible: bool,
    /// Whether the element can hold keyboard focus.
    pub focusable: bool,
    /// Anchor target name, for `<a href="#...">` scroll jumps.
    pub anchor: Option<String>,
    /// Text content (what typing appends to for focusable elements).
    pub text: String,
}

/// One arena slot: the element plus its tree links.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Node {
    pub(crate) el: Element,
    pub(crate) parent: Option<NodeId>,
    pub(crate) children: Vec<NodeId>,
    pub(crate) depth: usize,
}

/// A laid-out document.
pub struct Document {
    /// URL the document was loaded from.
    pub url: String,
    nodes: Vec<Node>,
    roots: Vec<NodeId>,
    /// Total page width (px).
    pub page_width: f64,
    /// Total page height (px). Appendix E's scroll experiment uses a
    /// 30,000 px page. Grows when flow content overflows the authored
    /// minimum; never shrinks below it.
    pub page_height: f64,
    /// The authored minimum page height (reflow floor).
    min_page_height: f64,
    /// Lazily-built query index (spatial grid + id/tag/anchor maps).
    /// Torn down by every `&mut` access that could change layout, so it
    /// never serves stale geometry; rebuilt on the next query.
    index: OnceLock<DocumentIndex>,
}

impl Clone for Document {
    fn clone(&self) -> Self {
        Self {
            url: self.url.clone(),
            nodes: self.nodes.clone(),
            roots: self.roots.clone(),
            page_width: self.page_width,
            page_height: self.page_height,
            min_page_height: self.min_page_height,
            // The clone rebuilds its own index on first query.
            index: OnceLock::new(),
        }
    }
}

impl PartialEq for Document {
    fn eq(&self, other: &Self) -> bool {
        // The index is derived state; equality is over page content only.
        self.url == other.url
            && self.nodes == other.nodes
            && self.roots == other.roots
            && self.page_width == other.page_width
            && self.page_height == other.page_height
    }
}

impl std::fmt::Debug for Document {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Document")
            .field("url", &self.url)
            .field("nodes", &self.nodes)
            .field("page_width", &self.page_width)
            .field("page_height", &self.page_height)
            .finish_non_exhaustive()
    }
}

impl Document {
    /// An empty page of the given size.
    pub fn new(url: &str, page_width: f64, page_height: f64) -> Self {
        assert!(page_width > 0.0 && page_height > 0.0, "degenerate page");
        Self {
            url: url.to_string(),
            nodes: Vec::new(),
            roots: Vec::new(),
            page_width,
            page_height,
            min_page_height: page_height,
            index: OnceLock::new(),
        }
    }

    /// The query index, built on demand for the current revision.
    fn index(&self) -> &DocumentIndex {
        self.index.get_or_init(|| {
            DocumentIndex::build(&self.nodes, &self.roots, self.page_width, self.page_height)
        })
    }

    /// Raw arena insertion; callers are responsible for reflowing.
    fn insert_node(&mut self, parent: Option<NodeId>, el: Element) -> NodeId {
        let id = NodeId(self.nodes.len());
        let depth = match parent {
            Some(p) => {
                self.nodes[p.0].children.push(id);
                self.nodes[p.0].depth + 1
            }
            None => {
                self.roots.push(id);
                0
            }
        };
        self.nodes.push(Node {
            el,
            parent,
            children: Vec::new(),
            depth,
        });
        id
    }

    /// Adds a root-level element, returning its id. For layer-0 documents
    /// later elements paint on top (document order = z-order, as with
    /// non-positioned CSS boxes). Triggers a reflow.
    pub fn add(&mut self, el: Element) -> NodeId {
        let id = self.insert_node(None, el);
        self.reflow();
        id
    }

    /// Adds an element as the last child of `parent`. Triggers a reflow.
    pub fn add_child(&mut self, parent: NodeId, el: Element) -> NodeId {
        let id = self.insert_node(Some(parent), el);
        self.reflow();
        id
    }

    /// Applies a batch of structural mutations through a
    /// [`DocumentMutator`], then invalidates the query index and reflows
    /// exactly once. This is the supported way for page scripts (cookie
    /// banners dismissing, lazy loaders revealing, SPA re-renders) to
    /// change a live document.
    pub fn mutate<R>(&mut self, f: impl FnOnce(&mut DocumentMutator) -> R) -> R {
        let r = f(&mut DocumentMutator { doc: self });
        self.reflow();
        r
    }

    /// Borrows an element.
    pub fn element(&self, id: NodeId) -> &Element {
        &self.nodes[id.0].el
    }

    /// Borrows an element mutably. The caller may change anything the
    /// query index depends on (box, visibility, layer, id, tag, anchor),
    /// so the index is invalidated up front. Geometry writes through this
    /// path are only meaningful for [`Display::Absolute`] elements —
    /// in-flow boxes are rewritten by the next reflow. Display changes
    /// must go through [`Document::mutate`] so layout reruns.
    pub fn element_mut(&mut self, id: NodeId) -> &mut Element {
        self.index = OnceLock::new();
        &mut self.nodes[id.0].el
    }

    /// The parent of a node, if it is not a root.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.0].parent
    }

    /// The children of a node, in insertion order.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id.0].children
    }

    /// Tree depth of a node (roots are depth 0).
    pub fn depth(&self, id: NodeId) -> usize {
        self.nodes[id.0].depth
    }

    /// Root nodes in insertion order.
    pub fn roots(&self) -> &[NodeId] {
        &self.roots
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the document has no elements.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All node ids in arena (insertion) order.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len()).map(NodeId)
    }

    /// True when the node is attached to the layout tree: neither it nor
    /// any ancestor is [`Display::None`]. Detached nodes are invisible to
    /// every query — locators and hit testing alike.
    pub fn in_tree(&self, id: NodeId) -> bool {
        let mut cur = Some(id);
        while let Some(c) = cur {
            if self.nodes[c.0].el.display == Display::None {
                return false;
            }
            cur = self.nodes[c.0].parent;
        }
        true
    }

    /// True when the node is rendered: attached, and neither it nor any
    /// ancestor is hidden. Only effectively-visible elements can be hit.
    pub fn effectively_visible(&self, id: NodeId) -> bool {
        if !self.in_tree(id) {
            return false;
        }
        let mut cur = Some(id);
        while let Some(c) = cur {
            if !self.nodes[c.0].el.visible {
                return false;
            }
            cur = self.nodes[c.0].parent;
        }
        true
    }

    /// Cumulative paint layer: the sum of `layer` along the ancestor
    /// path. Children paint at (at least) their parent's level.
    fn effective_layer(&self, id: NodeId) -> i64 {
        let mut sum = 0i64;
        let mut cur = Some(id);
        while let Some(c) = cur {
            sum += i64::from(self.nodes[c.0].el.layer);
            cur = self.nodes[c.0].parent;
        }
        sum
    }

    // ------------------------------------------------------------------
    // Layout: DOM tree → geometry. Pure, deterministic, RNG-free.
    // ------------------------------------------------------------------

    /// Recomputes geometry for every in-flow element and the page extent.
    /// A pure function of the tree — consumes no randomness, so equal
    /// trees always reflow to bit-identical geometry. Invalidates the
    /// query index.
    pub fn reflow(&mut self) {
        self.index = OnceLock::new();
        let content = Rect::new(0.0, 0.0, self.page_width, self.min_page_height);
        let flow_bottom = self.layout_flow(None, content);
        // Page extent: the authored minimum, grown by overflowing *flow*
        // content only. Absolute boxes never change the extent, which
        // keeps the legacy flat pages bit-identical.
        self.page_height = self.min_page_height.max(flow_bottom);
    }

    /// Lays out the flow children of `parent` (or the roots) inside
    /// `content`, returning the page-coordinate bottom edge of the flow.
    fn layout_flow(&mut self, parent: Option<NodeId>, content: Rect) -> f64 {
        let child_ids: Vec<NodeId> = match parent {
            Some(p) => self.nodes[p.0].children.clone(),
            None => self.roots.clone(),
        };
        let mut y = content.y;
        let mut x = content.x;
        let mut line_h = 0.0f64;
        for id in child_ids {
            match self.nodes[id.0].el.display {
                Display::None => continue,
                Display::Absolute => {
                    // Authored geometry; out of flow. Children lay out
                    // inside the authored box.
                    let r = self.nodes[id.0].el.rect;
                    self.layout_flow(Some(id), r);
                }
                Display::Block {
                    height,
                    width_frac,
                    margin,
                    padding,
                } => {
                    // A block closes any open inline line.
                    if line_h > 0.0 {
                        y += line_h;
                        line_h = 0.0;
                        x = content.x;
                    }
                    y += margin;
                    let w = (content.width * width_frac.clamp(0.0, 1.0) - 2.0 * margin).max(1.0);
                    self.nodes[id.0].el.rect = Rect::new(content.x + margin, y, w, height.max(1.0));
                    let outer = self.nodes[id.0].el.rect;
                    let inner = Rect::new(
                        outer.x + padding,
                        outer.y + padding,
                        (outer.width - 2.0 * padding).max(0.0),
                        (outer.height - 2.0 * padding).max(0.0),
                    );
                    let child_bottom = self.layout_flow(Some(id), inner);
                    // Auto-height: grow to contain overflowing flow
                    // children.
                    let needed = (child_bottom - outer.y) + padding;
                    if needed > self.nodes[id.0].el.rect.height {
                        self.nodes[id.0].el.rect.height = needed;
                    }
                    y += self.nodes[id.0].el.rect.height + margin;
                }
                Display::Inline {
                    width,
                    height,
                    margin,
                } => {
                    let advance = width + 2.0 * margin;
                    if x > content.x && x + advance > content.x + content.width {
                        // Wrap to the next line.
                        y += line_h;
                        line_h = 0.0;
                        x = content.x;
                    }
                    self.nodes[id.0].el.rect =
                        Rect::new(x + margin, y + margin, width.max(1.0), height.max(1.0));
                    let outer = self.nodes[id.0].el.rect;
                    x += advance;
                    line_h = line_h.max(height + 2.0 * margin);
                    self.layout_flow(Some(id), outer);
                }
            }
        }
        if line_h > 0.0 {
            y += line_h;
        }
        y
    }

    // ------------------------------------------------------------------
    // Queries.
    // ------------------------------------------------------------------

    /// Finds the first attached element (arena order) with the given `id`
    /// attribute. Detached ([`Display::None`]) subtrees are skipped — a
    /// driver cannot locate what is not in the DOM.
    pub fn by_id(&self, id_attr: &str) -> Option<NodeId> {
        self.index().by_id(id_attr)
    }

    /// Linear reference model for [`Document::by_id`].
    pub fn by_id_linear(&self, id_attr: &str) -> Option<NodeId> {
        self.ids()
            .find(|&i| self.nodes[i.0].el.id == id_attr && self.in_tree(i))
    }

    /// Finds all attached elements with the given tag, in arena order.
    pub fn by_tag(&self, tag: &str) -> Vec<NodeId> {
        self.index().by_tag(tag).to_vec()
    }

    /// Linear reference model for [`Document::by_tag`].
    pub fn by_tag_linear(&self, tag: &str) -> Vec<NodeId> {
        self.ids()
            .filter(|&i| self.nodes[i.0].el.tag == tag && self.in_tree(i))
            .collect()
    }

    /// Topmost effectively-visible element containing the point, if any.
    /// "Topmost" is paint order: pre-order tree traversal, stable-sorted
    /// by effective layer — for layer-0 flat documents this degenerates
    /// to the old arena-order z-semantics. Served from the spatial grid;
    /// semantically identical to [`Document::hit_test_linear`] (the
    /// differential proptest in `tests/hit_test_differential.rs` pins
    /// the equivalence).
    pub fn hit_test(&self, p: Point) -> Option<NodeId> {
        self.index().hit_test(&self.nodes, p)
    }

    /// Linear reference model for [`Document::hit_test`]: a from-scratch
    /// scan that recomputes paint position per node (effective layer via
    /// ancestor walks, pre-order position via a fresh traversal) and
    /// takes the maximum over containing, effectively-visible elements.
    /// Deliberately shares no derived state with the index.
    pub fn hit_test_linear(&self, p: Point) -> Option<NodeId> {
        let mut pre_pos = vec![0usize; self.nodes.len()];
        let mut stack: Vec<NodeId> = self.roots.iter().rev().copied().collect();
        let mut next = 0usize;
        while let Some(id) = stack.pop() {
            pre_pos[id.0] = next;
            next += 1;
            for &c in self.nodes[id.0].children.iter().rev() {
                stack.push(c);
            }
        }
        let mut best: Option<(i64, usize, NodeId)> = None;
        for id in self.ids() {
            if !self.effectively_visible(id) || !self.nodes[id.0].el.rect.contains(p) {
                continue;
            }
            let key = (self.effective_layer(id), pre_pos[id.0]);
            if best.map(|(l, pp, _)| key > (l, pp)).unwrap_or(true) {
                best = Some((key.0, key.1, id));
            }
        }
        best.map(|(_, _, id)| id)
    }

    /// Finds the attached element anchoring `name` (for `#name`
    /// navigation).
    pub fn anchor_target(&self, name: &str) -> Option<NodeId> {
        self.index().anchor_target(name)
    }

    /// Linear reference model for [`Document::anchor_target`].
    pub fn anchor_target_linear(&self, name: &str) -> Option<NodeId> {
        self.ids()
            .find(|&i| self.nodes[i.0].el.anchor.as_deref() == Some(name) && self.in_tree(i))
    }
}

/// Batched structural mutation over a [`Document`], in the style of a
/// retained-mode DOM mutator: all operations are raw tree edits, and the
/// owning [`Document::mutate`] call invalidates the query index and
/// reflows once when the batch completes.
pub struct DocumentMutator<'d> {
    doc: &'d mut Document,
}

impl DocumentMutator<'_> {
    /// Appends a root-level element (no reflow until the batch ends).
    pub fn append_root(&mut self, el: Element) -> NodeId {
        self.doc.insert_node(None, el)
    }

    /// Appends an element as the last child of `parent`.
    pub fn append_child(&mut self, parent: NodeId, el: Element) -> NodeId {
        self.doc.insert_node(Some(parent), el)
    }

    /// Changes how an element participates in layout.
    pub fn set_display(&mut self, id: NodeId, display: Display) {
        self.doc.nodes[id.0].el.display = display;
    }

    /// Shows or hides an element (visibility, not layout).
    pub fn set_visible(&mut self, id: NodeId, visible: bool) {
        self.doc.nodes[id.0].el.visible = visible;
    }

    /// Rewrites the authored box of an [`Display::Absolute`] element.
    pub fn set_rect(&mut self, id: NodeId, rect: Rect) {
        self.doc.nodes[id.0].el.rect = rect;
    }

    /// Replaces an element's text content.
    pub fn set_text(&mut self, id: NodeId, text: &str) {
        self.doc.nodes[id.0].el.text = text.to_string();
    }

    /// Renames an element's `id` attribute.
    pub fn set_id(&mut self, id: NodeId, id_attr: &str) {
        self.doc.nodes[id.0].el.id = id_attr.to_string();
    }

    /// Detaches a subtree from the document: it keeps its arena slots
    /// (NodeIds stay stable, as with a JS reference to a removed node)
    /// but leaves layout, hit testing, and the locator queries. This is
    /// how banner dismissal and SPA re-renders model `removeChild`.
    pub fn detach(&mut self, id: NodeId) {
        self.doc.nodes[id.0].el.display = Display::None;
    }

    /// Read access to the document being mutated.
    pub fn doc(&self) -> &Document {
        self.doc
    }
}

/// Fluent builder for elements.
#[derive(Debug, Clone)]
pub struct ElementBuilder {
    el: Element,
}

impl ElementBuilder {
    /// Starts building an [`Display::Absolute`] element with the given
    /// tag and authored box — the legacy flat-page path.
    pub fn new(tag: &str, rect: Rect) -> Self {
        Self {
            el: Element {
                tag: tag.to_string(),
                id: String::new(),
                rect,
                display: Display::Absolute,
                layer: 0,
                visible: true,
                focusable: false,
                anchor: None,
                text: String::new(),
            },
        }
    }

    /// Starts building an in-flow element whose geometry the layout pass
    /// computes (the authored rect starts empty).
    pub fn flow(tag: &str, display: Display) -> Self {
        let mut b = Self::new(tag, Rect::new(0.0, 0.0, 0.0, 0.0));
        b.el.display = display;
        b
    }

    /// Sets the `id` attribute.
    pub fn id(mut self, id: &str) -> Self {
        self.el.id = id.to_string();
        self
    }

    /// Sets the paint layer (relative to the parent's effective layer).
    pub fn layer(mut self, layer: i32) -> Self {
        self.el.layer = layer;
        self
    }

    /// Marks the element invisible (a honey element).
    pub fn hidden(mut self) -> Self {
        self.el.visible = false;
        self
    }

    /// Marks the element focusable (text inputs, textareas).
    pub fn focusable(mut self) -> Self {
        self.el.focusable = true;
        self
    }

    /// Names an anchor on this element.
    pub fn anchor(mut self, name: &str) -> Self {
        self.el.anchor = Some(name.to_string());
        self
    }

    /// Sets the text content.
    pub fn text(mut self, text: &str) -> Self {
        self.el.text = text.to_string();
        self
    }

    /// The built element, for insertion through a [`DocumentMutator`].
    pub fn build(self) -> Element {
        self.el
    }

    /// Finishes, inserting at the document root.
    pub fn insert(self, doc: &mut Document) -> NodeId {
        doc.add(self.el)
    }

    /// Finishes, inserting as the last child of `parent`.
    pub fn insert_under(self, doc: &mut Document, parent: NodeId) -> NodeId {
        doc.add_child(parent, self.el)
    }
}

/// Builds the standard test page used across the workspace's experiments:
/// a 1280 px wide page with a button, a text area, a link with an anchor
/// target far down the page, and one hidden honey element.
pub fn standard_test_page(url: &str, page_height: f64) -> Document {
    let mut doc = Document::new(url, 1280.0, page_height);
    ElementBuilder::new("body", Rect::new(0.0, 0.0, 1280.0, page_height)).insert(&mut doc);
    ElementBuilder::new("button", Rect::new(100.0, 480.0, 120.0, 40.0))
        .id("submit")
        .insert(&mut doc);
    ElementBuilder::new("input", Rect::new(400.0, 300.0, 300.0, 30.0))
        .id("text_area")
        .focusable()
        .insert(&mut doc);
    ElementBuilder::new("a", Rect::new(900.0, 120.0, 140.0, 20.0))
        .id("jump")
        .insert(&mut doc);
    ElementBuilder::new(
        "h2",
        Rect::new(0.0, (page_height - 600.0).max(0.0), 400.0, 30.0),
    )
    .id("section-end")
    .anchor("end")
    .insert(&mut doc);
    ElementBuilder::new("div", Rect::new(10.0, 10.0, 8.0, 8.0))
        .id("honey")
        .hidden()
        .insert(&mut doc);
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_id_and_tag_lookup() {
        let doc = standard_test_page("https://example.test/", 30_000.0);
        assert!(doc.by_id("submit").is_some());
        assert!(doc.by_id("nope").is_none());
        assert_eq!(doc.by_tag("button").len(), 1);
    }

    #[test]
    fn hit_test_returns_topmost_visible() {
        let mut doc = Document::new("u", 100.0, 100.0);
        let below = ElementBuilder::new("div", Rect::new(0.0, 0.0, 100.0, 100.0)).insert(&mut doc);
        let above =
            ElementBuilder::new("button", Rect::new(40.0, 40.0, 20.0, 20.0)).insert(&mut doc);
        assert_eq!(doc.hit_test(Point::new(50.0, 50.0)), Some(above));
        assert_eq!(doc.hit_test(Point::new(10.0, 10.0)), Some(below));
    }

    #[test]
    fn hidden_elements_are_not_hit() {
        let doc = standard_test_page("u", 30_000.0);
        let honey = doc.by_id("honey").unwrap();
        let c = doc.element(honey).rect.center();
        // The body below it is hit instead.
        let hit = doc.hit_test(c).unwrap();
        assert_ne!(hit, honey);
        assert_eq!(doc.element(hit).tag, "body");
    }

    #[test]
    fn anchor_lookup() {
        let doc = standard_test_page("u", 30_000.0);
        let target = doc.anchor_target("end").unwrap();
        assert_eq!(doc.element(target).id, "section-end");
        assert!(doc.anchor_target("missing").is_none());
    }

    #[test]
    #[should_panic(expected = "degenerate page")]
    fn rejects_zero_size_page() {
        let _ = Document::new("u", 0.0, 100.0);
    }

    #[test]
    fn element_mut_allows_relocation() {
        let mut doc = standard_test_page("u", 30_000.0);
        let id = doc.by_id("submit").unwrap();
        doc.element_mut(id).rect = Rect::new(1.0, 2.0, 3.0, 4.0);
        assert_eq!(doc.element(id).rect, Rect::new(1.0, 2.0, 3.0, 4.0));
    }

    #[test]
    fn mutation_invalidates_the_query_index() {
        let mut doc = standard_test_page("u", 30_000.0);
        let id = doc.by_id("submit").unwrap();
        // Force the index to build, then move the element.
        assert_eq!(doc.hit_test(doc.element(id).rect.center()), Some(id));
        doc.element_mut(id).rect = Rect::new(600.0, 10_000.0, 50.0, 50.0);
        assert_eq!(doc.hit_test(Point::new(625.0, 10_025.0)), Some(id));
        // Identity attributes are index inputs too.
        doc.element_mut(id).id = "renamed".to_string();
        assert_eq!(doc.by_id("renamed"), Some(id));
        assert!(doc.by_id("submit").is_none());
        // A hidden element leaves the grid on the next rebuild.
        doc.element_mut(id).visible = false;
        assert_ne!(doc.hit_test(Point::new(625.0, 10_025.0)), Some(id));
    }

    #[test]
    fn indexed_queries_match_the_linear_reference_on_the_test_page() {
        let doc = standard_test_page("u", 30_000.0);
        for id_attr in ["submit", "text_area", "jump", "honey", "ghost", ""] {
            assert_eq!(doc.by_id(id_attr), doc.by_id_linear(id_attr));
        }
        for tag in ["button", "a", "div", "nope"] {
            assert_eq!(doc.by_tag(tag), doc.by_tag_linear(tag));
        }
        for name in ["end", "missing"] {
            assert_eq!(doc.anchor_target(name), doc.anchor_target_linear(name));
        }
        for x in [0.0, 10.0, 160.0, 550.0, 970.0, 1279.0, 1280.0, -5.0] {
            for y in [0.0, 14.0, 130.0, 315.0, 500.0, 29_500.0, 30_000.0] {
                let p = Point::new(x, y);
                assert_eq!(doc.hit_test(p), doc.hit_test_linear(p), "at {p:?}");
            }
        }
    }

    // ----- tree / layout / occlusion behaviour (PR 6) -----

    /// A small nested flow page: body block containing a heading, an
    /// inline toolbar row, and an article of paragraphs.
    fn flow_page() -> (Document, NodeId, Vec<NodeId>) {
        let mut doc = Document::new("u", 1000.0, 500.0);
        let body = ElementBuilder::flow(
            "body",
            Display::Block {
                height: 10.0,
                width_frac: 1.0,
                margin: 0.0,
                padding: 10.0,
            },
        )
        .insert(&mut doc);
        let mut kids = Vec::new();
        for i in 0..3 {
            kids.push(
                ElementBuilder::flow(
                    "p",
                    Display::Block {
                        height: 40.0,
                        width_frac: 0.5,
                        margin: 5.0,
                        padding: 0.0,
                    },
                )
                .id(&format!("p{i}"))
                .insert_under(&mut doc, body),
            );
        }
        (doc, body, kids)
    }

    #[test]
    fn tree_links_and_depth() {
        let (doc, body, kids) = flow_page();
        assert_eq!(doc.parent(body), None);
        assert_eq!(doc.depth(body), 0);
        for &k in &kids {
            assert_eq!(doc.parent(k), Some(body));
            assert_eq!(doc.depth(k), 1);
        }
        assert_eq!(doc.children(body), &kids[..]);
        assert_eq!(doc.roots(), &[body]);
    }

    #[test]
    fn blocks_stack_vertically_and_parent_auto_grows() {
        let (doc, body, kids) = flow_page();
        let r0 = doc.element(kids[0]).rect;
        let r1 = doc.element(kids[1]).rect;
        // Stacked with 5px margins inside 10px padding.
        assert_eq!(r0.y, 15.0);
        assert_eq!(r1.y, r0.y + 40.0 + 2.0 * 5.0);
        // Half the content width minus margins.
        assert_eq!(r0.width, (1000.0 - 20.0) * 0.5 - 10.0);
        // The body grew past its intrinsic 10px to contain the flow.
        let body_r = doc.element(body).rect;
        assert!(body_r.height >= 3.0 * 50.0, "body: {body_r:?}");
    }

    #[test]
    fn inline_elements_wrap_at_the_content_edge() {
        let mut doc = Document::new("u", 100.0, 100.0);
        let row = ElementBuilder::flow(
            "nav",
            Display::Block {
                height: 10.0,
                width_frac: 1.0,
                margin: 0.0,
                padding: 0.0,
            },
        )
        .insert(&mut doc);
        let mut items = Vec::new();
        for _ in 0..3 {
            items.push(
                ElementBuilder::flow(
                    "a",
                    Display::Inline {
                        width: 40.0,
                        height: 20.0,
                        margin: 0.0,
                    },
                )
                .insert_under(&mut doc, row),
            );
        }
        let rects: Vec<Rect> = items.iter().map(|&i| doc.element(i).rect).collect();
        // Two fit on the first line; the third wraps.
        assert_eq!(rects[0].y, rects[1].y);
        assert!(rects[2].y > rects[0].y, "no wrap: {rects:?}");
        assert_eq!(rects[2].x, rects[0].x);
    }

    #[test]
    fn layout_is_deterministic_and_rng_free() {
        let (a, _, _) = flow_page();
        let (b, _, _) = flow_page();
        assert_eq!(a, b);
        let mut c = a.clone();
        c.reflow();
        assert_eq!(a, c, "reflow must be idempotent");
    }

    #[test]
    fn flow_overflow_grows_the_page() {
        let mut doc = Document::new("u", 100.0, 50.0);
        for _ in 0..4 {
            ElementBuilder::flow(
                "div",
                Display::Block {
                    height: 30.0,
                    width_frac: 1.0,
                    margin: 0.0,
                    padding: 0.0,
                },
            )
            .insert(&mut doc);
        }
        assert_eq!(doc.page_height, 120.0);
    }

    #[test]
    fn layered_overlay_occludes_and_its_children_paint_on_top() {
        let mut doc = Document::new("u", 200.0, 200.0);
        let target =
            ElementBuilder::new("button", Rect::new(50.0, 50.0, 100.0, 100.0)).insert(&mut doc);
        // Banner inserted *before target in arena order would lose under
        // flat z-semantics; the layer puts it on top.
        let banner = ElementBuilder::new("div", Rect::new(0.0, 0.0, 200.0, 120.0))
            .layer(1)
            .insert(&mut doc);
        let accept = ElementBuilder::new("button", Rect::new(10.0, 10.0, 50.0, 30.0))
            .id("accept")
            .insert_under(&mut doc, banner);
        // The banner occludes the target where they overlap.
        assert_eq!(doc.hit_test(Point::new(100.0, 100.0)), Some(banner));
        // Its child paints above it (cumulative layer).
        assert_eq!(doc.hit_test(Point::new(20.0, 20.0)), Some(accept));
        // Below the banner the target is reachable.
        assert_eq!(doc.hit_test(Point::new(100.0, 140.0)), Some(target));
    }

    #[test]
    fn detached_subtrees_leave_every_query() {
        let mut doc = Document::new("u", 200.0, 200.0);
        let target =
            ElementBuilder::new("button", Rect::new(50.0, 50.0, 100.0, 100.0)).insert(&mut doc);
        let banner = ElementBuilder::new("div", Rect::new(0.0, 0.0, 200.0, 200.0))
            .id("banner")
            .layer(1)
            .insert(&mut doc);
        let accept = ElementBuilder::new("button", Rect::new(10.0, 10.0, 50.0, 30.0))
            .id("accept")
            .insert_under(&mut doc, banner);
        assert_eq!(doc.hit_test(Point::new(100.0, 100.0)), Some(banner));
        // Dismiss: detach the banner subtree in one mutation batch.
        doc.mutate(|m| m.detach(banner));
        assert_eq!(doc.hit_test(Point::new(100.0, 100.0)), Some(target));
        assert!(doc.by_id("banner").is_none());
        assert!(doc.by_id("accept").is_none());
        assert!(!doc.in_tree(accept));
        // NodeIds remain stable (stale references are representable).
        assert_eq!(doc.element(accept).id, "accept");
    }

    #[test]
    fn display_none_takes_no_layout_space() {
        let mut doc = Document::new("u", 100.0, 10.0);
        let a = ElementBuilder::flow(
            "div",
            Display::Block {
                height: 30.0,
                width_frac: 1.0,
                margin: 0.0,
                padding: 0.0,
            },
        )
        .insert(&mut doc);
        let lazy = ElementBuilder::flow("section", Display::None)
            .id("lazy")
            .insert(&mut doc);
        let b = ElementBuilder::flow(
            "div",
            Display::Block {
                height: 30.0,
                width_frac: 1.0,
                margin: 0.0,
                padding: 0.0,
            },
        )
        .insert(&mut doc);
        assert_eq!(doc.element(b).rect.y, 30.0, "lazy section took space");
        assert!(doc.by_id("lazy").is_none());
        // Reveal: the section enters the flow and pushes `b` down.
        doc.mutate(|m| {
            m.set_display(
                lazy,
                Display::Block {
                    height: 50.0,
                    width_frac: 1.0,
                    margin: 0.0,
                    padding: 0.0,
                },
            )
        });
        assert_eq!(doc.by_id("lazy"), Some(lazy));
        assert_eq!(doc.element(b).rect.y, 80.0);
        assert_eq!(doc.page_height, 110.0);
        let _ = (a, b);
    }

    #[test]
    fn mutator_batch_reflows_once_at_the_end() {
        let mut doc = Document::new("u", 100.0, 100.0);
        let ids = doc.mutate(|m| {
            let row = m.append_root(
                ElementBuilder::flow(
                    "div",
                    Display::Block {
                        height: 20.0,
                        width_frac: 1.0,
                        margin: 0.0,
                        padding: 0.0,
                    },
                )
                .build(),
            );
            let child = m.append_child(
                row,
                ElementBuilder::flow(
                    "span",
                    Display::Inline {
                        width: 10.0,
                        height: 10.0,
                        margin: 0.0,
                    },
                )
                .id("s")
                .build(),
            );
            (row, child)
        });
        assert_eq!(doc.by_id("s"), Some(ids.1));
        assert_eq!(doc.element(ids.1).rect, Rect::new(0.0, 0.0, 10.0, 10.0));
        assert_eq!(doc.children(ids.0), &[ids.1]);
    }

    #[test]
    fn ancestor_visibility_gates_hits() {
        let mut doc = Document::new("u", 100.0, 100.0);
        let base = ElementBuilder::new("body", Rect::new(0.0, 0.0, 100.0, 100.0)).insert(&mut doc);
        let wrap = ElementBuilder::new("div", Rect::new(0.0, 0.0, 50.0, 50.0)).insert(&mut doc);
        let inner = ElementBuilder::new("button", Rect::new(10.0, 10.0, 20.0, 20.0))
            .insert_under(&mut doc, wrap);
        assert_eq!(doc.hit_test(Point::new(15.0, 15.0)), Some(inner));
        doc.element_mut(wrap).visible = false;
        // The hidden wrapper hides its child too; the base is hit.
        assert_eq!(doc.hit_test(Point::new(15.0, 15.0)), Some(base));
        assert!(!doc.effectively_visible(inner));
    }
}
