//! The browser: pages, clock, input pipeline, and event dispatch.

use crate::clock::VirtualClock;
use crate::dom::{Document, NodeId};
use crate::events::{DomEvent, EventKind, EventPayload, MouseButton};
use crate::geometry::Point;
use crate::input::RawInput;
use crate::recorder::EventRecorder;
use crate::viewport::{ScrollOrigin, Viewport};
use hlisa_jsom::{build_firefox_world, BrowserFlavor, World};
use hlisa_sim::{CounterSet, Observer};
use std::sync::OnceLock;

/// Static browser configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct BrowserConfig {
    /// Viewport width (px).
    pub viewport_width: f64,
    /// Viewport height (px).
    pub viewport_height: f64,
    /// Maximum interval between two clicks to count as a double click.
    /// Windows defaults to 500 ms; the paper measured 600 ms under
    /// Selenium's environment (Appendix D).
    pub double_click_interval_ms: f64,
    /// Minimum interval between dispatched `mousemove` events. Firefox
    /// coalesces pointer samples to the paint cadence; Appendix D found the
    /// event API "too coarse to register every detail of normal mouse
    /// movement".
    pub mousemove_min_interval_ms: f64,
    /// JS flavour the page world is built as.
    pub flavor: BrowserFlavor,
}

impl BrowserConfig {
    /// A regular desktop Firefox.
    pub fn regular() -> Self {
        Self {
            viewport_width: 1280.0,
            viewport_height: 720.0,
            double_click_interval_ms: 500.0,
            mousemove_min_interval_ms: 16.0,
            flavor: BrowserFlavor::RegularFirefox,
        }
    }

    /// A WebDriver-automated Firefox (the OpenWPM client): webdriver flag
    /// set, and the 600 ms double-click interval the paper measured.
    pub fn webdriver() -> Self {
        Self {
            double_click_interval_ms: 600.0,
            flavor: BrowserFlavor::WebDriverFirefox,
            ..Self::regular()
        }
    }
}

/// A loaded page plus interaction state.
pub struct Browser {
    config: BrowserConfig,
    /// The page JS world (spoofing targets live here).
    pub world: World,
    /// Pristine copy of the flavour's freshly-built world. Navigation
    /// stamps `world` from this snapshot instead of re-running the world
    /// builder — world construction is deterministic and RNG-free, so the
    /// stamp is observably identical (see the jsom differential proptest).
    pristine_world: World,
    document: Document,
    /// The viewport over the current document.
    pub viewport: Viewport,
    clock: VirtualClock,
    /// Recorded events ("the page's listeners"). The recorder is itself an
    /// [`Observer`] that dispatch feeds through the trait; it stays a named
    /// field so trace accessors remain directly reachable.
    pub recorder: EventRecorder,
    observers: Vec<Box<dyn Observer<DomEvent>>>,
    mouse: Point,
    pending_move: Option<Point>,
    last_move_dispatch_ms: f64,
    buttons_down: Vec<(MouseButton, Option<NodeId>)>,
    keys_down: Vec<String>,
    last_click: Option<(f64, Option<NodeId>)>,
    focused: Option<NodeId>,
    visible: bool,
    /// Counters absorbed from outside the event dispatch — e.g. the
    /// crawler's `fault.*` / `retry.*` / `breaker.*` family — surfaced
    /// through [`Browser::metrics`] alongside the observer counters.
    external_counters: CounterSet,
    /// Cached recorder + observer + external counter merge, so repeated
    /// [`Browser::metrics`] calls between events are O(1) instead of
    /// re-walking every counter source. Invalidated (reset to an empty
    /// `OnceLock`) wherever any source can change: event dispatch,
    /// counter absorption, observer attachment, and navigation. The
    /// jsom realm stats are *not* part of the cached base — the realm
    /// mutates its counters on plain property reads, so those are
    /// layered on fresh at every call.
    metrics_cache: OnceLock<CounterSet>,
}

impl Clone for Browser {
    /// Clones the page and interaction state. The clone gets an
    /// *independent* clock frozen at the current instant (matching the old
    /// per-browser clock semantics) and no attached observers — a sink
    /// subscribed to one browser must not silently receive another's
    /// events.
    fn clone(&self) -> Self {
        Browser {
            config: self.config.clone(),
            world: self.world.clone(),
            pristine_world: self.pristine_world.clone(),
            document: self.document.clone(),
            viewport: self.viewport.clone(),
            clock: self.clock.fork_detached(),
            recorder: self.recorder.clone(),
            observers: Vec::new(),
            mouse: self.mouse,
            pending_move: self.pending_move,
            last_move_dispatch_ms: self.last_move_dispatch_ms,
            buttons_down: self.buttons_down.clone(),
            keys_down: self.keys_down.clone(),
            last_click: self.last_click,
            focused: self.focused,
            visible: self.visible,
            external_counters: self.external_counters.clone(),
            // Fresh cache: the clone recomputes from its own (identical)
            // sources on first query, so values carry over observably.
            metrics_cache: OnceLock::new(),
        }
    }
}

impl std::fmt::Debug for Browser {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Browser")
            .field("config", &self.config)
            .field("url", &self.document.url)
            .field("now_ms", &self.clock.now_ms())
            .field("events", &self.recorder.len())
            .field("observers", &self.observers.len())
            .field("mouse", &self.mouse)
            .field("focused", &self.focused)
            .field("visible", &self.visible)
            .finish_non_exhaustive()
    }
}

impl Browser {
    /// Opens a browser on the given document, with its own fresh clock.
    pub fn open(config: BrowserConfig, document: Document) -> Self {
        Self::open_with_clock(config, document, VirtualClock::new())
    }

    /// Opens a browser whose time is the given shared clock — the way a
    /// `SimContext` and a browser come to agree on "now".
    pub fn open_with_clock(config: BrowserConfig, document: Document, clock: VirtualClock) -> Self {
        let viewport = Viewport::new(
            config.viewport_width,
            config.viewport_height,
            document.page_height,
        );
        let pristine_world = build_firefox_world(config.flavor);
        let world = pristine_world.clone();
        Self {
            config,
            world,
            pristine_world,
            document,
            viewport,
            clock,
            recorder: EventRecorder::new(),
            observers: Vec::new(),
            // The OS hands a fresh window a cursor at the origin — the
            // "mouse movement starting at (0,0)" signal of Appendix F.
            mouse: Point::new(0.0, 0.0),
            pending_move: None,
            last_move_dispatch_ms: f64::NEG_INFINITY,
            buttons_down: Vec::new(),
            keys_down: Vec::new(),
            last_click: None,
            focused: None,
            visible: true,
            external_counters: CounterSet::new(),
            metrics_cache: OnceLock::new(),
        }
    }

    /// Navigates to a new document. Interaction state carries over (the
    /// cursor stays where the OS left it) but the event trace resets.
    pub fn navigate(&mut self, document: Document) {
        self.viewport = Viewport::new(
            self.config.viewport_width,
            self.config.viewport_height,
            document.page_height,
        );
        self.world = self.pristine_world.clone();
        self.document = document;
        self.recorder.clear();
        self.metrics_cache = OnceLock::new();
        self.pending_move = None;
        self.buttons_down.clear();
        self.keys_down.clear();
        self.last_click = None;
        self.focused = None;
    }

    /// The loaded document.
    pub fn document(&self) -> &Document {
        &self.document
    }

    /// Mutable access (page dynamics like moving click targets).
    pub fn document_mut(&mut self) -> &mut Document {
        &mut self.document
    }

    /// Applies a batched structural mutation to the live document (SPA
    /// re-renders, banner dismissal, lazy-content reveal) and keeps the
    /// browser's derived state coherent: the document's query index is
    /// invalidated and the tree reflowed (by [`Document::mutate`]), the
    /// viewport's scrollable extent follows the new page height, a
    /// `dom.mutations` counter records the revision, and the metrics
    /// cache is rebuilt on next read — a mutation changes both geometry
    /// and metrics, so neither PR 5 cache may serve the old revision.
    pub fn mutate_document<R>(
        &mut self,
        f: impl FnOnce(&mut crate::dom::DocumentMutator) -> R,
    ) -> R {
        let r = self.document.mutate(f);
        self.viewport.set_page_height(self.document.page_height);
        self.external_counters.add("dom.mutations", 1);
        self.metrics_cache = OnceLock::new();
        r
    }

    /// The configuration.
    pub fn config(&self) -> &BrowserConfig {
        &self.config
    }

    /// Current cursor position (page coordinates).
    pub fn mouse_position(&self) -> Point {
        self.mouse
    }

    /// Currently focused element.
    pub fn focused(&self) -> Option<NodeId> {
        self.focused
    }

    /// Whether the page is visible.
    pub fn is_visible(&self) -> bool {
        self.visible
    }

    /// Buttons currently held down (the WebDriver "release actions"
    /// endpoint needs to know what to let go of).
    pub fn pressed_buttons(&self) -> Vec<MouseButton> {
        self.buttons_down.iter().map(|(b, _)| *b).collect()
    }

    /// Keys currently held down.
    pub fn pressed_keys(&self) -> Vec<String> {
        self.keys_down.clone()
    }

    /// Simulated now (ms).
    pub fn now_ms(&self) -> f64 {
        self.clock.now_ms()
    }

    /// Advances simulated time (drivers pace their input with this).
    pub fn advance(&mut self, delta_ms: f64) {
        self.clock.advance(delta_ms);
    }

    /// A handle to this browser's clock; clones share the instant.
    pub fn clock(&self) -> VirtualClock {
        self.clock.clone()
    }

    /// Rebinds the browser onto a shared clock. If the new clock is behind
    /// this browser's current time it is advanced to match, preserving the
    /// monotonicity of already-recorded event timestamps.
    pub fn bind_clock(&mut self, clock: VirtualClock) {
        let behind = self.clock.now_ms() - clock.now_ms();
        if behind > 0.0 {
            clock.advance(behind);
        }
        self.clock = clock;
    }

    /// Subscribes an observer to this browser's event dispatch. Every
    /// event the page's listeners would see is fanned out to each attached
    /// observer, in attachment order, after the recorder.
    pub fn attach_observer(&mut self, observer: Box<dyn Observer<DomEvent>>) {
        self.observers.push(observer);
        self.metrics_cache = OnceLock::new();
    }

    /// Number of attached observers (the recorder is not counted).
    pub fn observer_count(&self) -> usize {
        self.observers.len()
    }

    /// Absorbs an externally-produced counter set (e.g. a chaos
    /// campaign's fault monitor) into this browser's metrics surface.
    pub fn absorb_counters(&mut self, counters: &CounterSet) {
        self.external_counters.merge(counters);
        self.metrics_cache = OnceLock::new();
    }

    /// Event-count metrics aggregated across the recorder and every
    /// attached observer, plus absorbed external counters (the crawler's
    /// `fault.*` / `retry.*` family) and the page world's realm counters.
    pub fn metrics(&self) -> CounterSet {
        let base = self.metrics_cache.get_or_init(|| {
            let mut all = Observer::counters(&self.recorder);
            for o in &self.observers {
                all.merge(&o.counters());
            }
            all.merge(&self.external_counters);
            all
        });
        let mut all = base.clone();
        let js = self.world.realm.stats();
        all.add("jsom.objects_allocated", js.objects_allocated);
        all.add("jsom.atoms_interned", js.atoms_interned);
        all.add("jsom.shape_transitions", js.shape_transitions);
        all.add("jsom.property_gets", js.property_gets);
        all.add("jsom.own_lookups", js.own_lookups);
        all
    }

    /// Injects one raw input item at the current simulated time.
    pub fn input(&mut self, raw: RawInput) {
        match raw {
            RawInput::MouseMove { x, y } => self.on_mouse_move(x, y),
            RawInput::MouseDown { button } => self.on_mouse_down(button),
            RawInput::MouseUp { button } => self.on_mouse_up(button),
            RawInput::KeyDown { key } => self.on_key_down(key),
            RawInput::KeyUp { key } => self.on_key_up(key),
            RawInput::WheelTick { direction } => {
                let delta = f64::from(direction.signum()) * crate::viewport::WHEEL_TICK_PX;
                self.on_wheel(delta);
            }
            RawInput::WheelDelta { delta_y } => self.on_wheel(delta_y),
            RawInput::ScrollFrom { origin, amount } => self.on_scroll_from(origin, amount),
            RawInput::TouchStart { x, y } => {
                let target = self.document.hit_test(Point::new(x, y));
                self.dispatch(
                    EventKind::TouchStart,
                    target,
                    EventPayload::Mouse {
                        x,
                        y,
                        button: MouseButton::Left,
                    },
                );
            }
            RawInput::TouchEnd => {
                self.dispatch(EventKind::TouchEnd, None, EventPayload::None);
            }
            RawInput::Minimize => {
                if self.visible {
                    self.visible = false;
                    self.dispatch(
                        EventKind::VisibilityChange,
                        None,
                        EventPayload::Visibility { visible: false },
                    );
                    self.dispatch(EventKind::Blur, self.focused, EventPayload::None);
                }
            }
            RawInput::Restore => {
                if !self.visible {
                    self.visible = true;
                    self.dispatch(
                        EventKind::VisibilityChange,
                        None,
                        EventPayload::Visibility { visible: true },
                    );
                    self.dispatch(EventKind::Focus, self.focused, EventPayload::None);
                }
            }
            RawInput::Resize { width, height } => {
                let scroll = self.viewport.scroll_y();
                self.viewport = Viewport::new(width, height, self.document.page_height);
                self.viewport.scroll_to(scroll);
                self.dispatch(EventKind::Resize, None, EventPayload::None);
            }
        }
    }

    /// Convenience: advance time, then inject.
    pub fn input_after(&mut self, delta_ms: f64, raw: RawInput) {
        self.advance(delta_ms);
        self.input(raw);
    }

    // -----------------------------------------------------------------
    // Pipeline internals
    // -----------------------------------------------------------------

    fn dispatch(&mut self, kind: EventKind, target: Option<NodeId>, payload: EventPayload) {
        self.metrics_cache = OnceLock::new();
        let event = DomEvent {
            kind,
            timestamp_ms: self.clock.observable_now_ms(),
            target,
            payload,
        };
        // The recorder is just the first subscriber; everything goes
        // through the same Observer protocol.
        Observer::on_event(&mut self.recorder, event.timestamp_ms, &event);
        for observer in &mut self.observers {
            observer.on_event(event.timestamp_ms, &event);
        }
    }

    fn on_mouse_move(&mut self, x: f64, y: f64) {
        // An OS cursor cannot leave the desktop; clamp to the page box so
        // no impossible coordinates ever reach page listeners.
        let x = x.clamp(0.0, self.document.page_width);
        let y = y.clamp(0.0, self.document.page_height);
        self.mouse = Point::new(x, y);
        let now = self.clock.now_ms();
        if now - self.last_move_dispatch_ms >= self.config.mousemove_min_interval_ms {
            self.last_move_dispatch_ms = now;
            self.pending_move = None;
            let target = self.document.hit_test(self.mouse);
            // Firefox dispatches the pointer-events layer first.
            self.dispatch(
                EventKind::PointerMove,
                target,
                EventPayload::Mouse {
                    x,
                    y,
                    button: MouseButton::Left,
                },
            );
            self.dispatch(
                EventKind::MouseMove,
                target,
                EventPayload::Mouse {
                    x,
                    y,
                    button: MouseButton::Left,
                },
            );
        } else {
            // Coalesced: remember it so a button event flushes the final
            // position first (browsers never press at an unreported spot).
            self.pending_move = Some(self.mouse);
        }
    }

    fn flush_pending_move(&mut self) {
        if let Some(p) = self.pending_move.take() {
            self.last_move_dispatch_ms = self.clock.now_ms();
            let target = self.document.hit_test(p);
            self.dispatch(
                EventKind::PointerMove,
                target,
                EventPayload::Mouse {
                    x: p.x,
                    y: p.y,
                    button: MouseButton::Left,
                },
            );
            self.dispatch(
                EventKind::MouseMove,
                target,
                EventPayload::Mouse {
                    x: p.x,
                    y: p.y,
                    button: MouseButton::Left,
                },
            );
        }
    }

    fn on_mouse_down(&mut self, button: MouseButton) {
        self.flush_pending_move();
        let target = self.document.hit_test(self.mouse);
        self.buttons_down.push((button, target));
        self.dispatch(
            EventKind::PointerDown,
            target,
            EventPayload::Mouse {
                x: self.mouse.x,
                y: self.mouse.y,
                button,
            },
        );
        self.dispatch(
            EventKind::MouseDown,
            target,
            EventPayload::Mouse {
                x: self.mouse.x,
                y: self.mouse.y,
                button,
            },
        );
        // Focus follows the primary button press.
        if button == MouseButton::Left {
            let focus_target = target.filter(|id| self.document.element(*id).focusable);
            if focus_target != self.focused {
                if self.focused.is_some() {
                    self.dispatch(EventKind::Blur, self.focused, EventPayload::None);
                }
                self.focused = focus_target;
                if focus_target.is_some() {
                    self.dispatch(EventKind::Focus, focus_target, EventPayload::None);
                }
            }
        }
        // Linux Firefox fires contextmenu on the right-button press.
        if button == MouseButton::Right {
            self.dispatch(
                EventKind::ContextMenu,
                target,
                EventPayload::Mouse {
                    x: self.mouse.x,
                    y: self.mouse.y,
                    button,
                },
            );
        }
    }

    fn on_mouse_up(&mut self, button: MouseButton) {
        self.flush_pending_move();
        let up_target = self.document.hit_test(self.mouse);
        let down_entry = self
            .buttons_down
            .iter()
            .position(|(b, _)| *b == button)
            .map(|i| self.buttons_down.remove(i));
        self.dispatch(
            EventKind::PointerUp,
            up_target,
            EventPayload::Mouse {
                x: self.mouse.x,
                y: self.mouse.y,
                button,
            },
        );
        self.dispatch(
            EventKind::MouseUp,
            up_target,
            EventPayload::Mouse {
                x: self.mouse.x,
                y: self.mouse.y,
                button,
            },
        );
        let Some((_, down_target)) = down_entry else {
            return; // spurious up
        };
        // A click requires press and release on the same element.
        if down_target != up_target {
            return;
        }
        match button {
            MouseButton::Left => {
                if let Some(el) = up_target {
                    let r = self.document.element(el).rect;
                    if r.width > 0.0 && r.height > 0.0 {
                        let c = r.center();
                        let off = (((self.mouse.x - c.x) / r.width).powi(2)
                            + ((self.mouse.y - c.y) / r.height).powi(2))
                        .sqrt();
                        self.recorder.record_click_offset(off);
                    }
                }
                self.dispatch(
                    EventKind::Click,
                    up_target,
                    EventPayload::Mouse {
                        x: self.mouse.x,
                        y: self.mouse.y,
                        button,
                    },
                );
                let now = self.clock.observable_now_ms();
                if let Some((prev_t, prev_target)) = self.last_click {
                    if prev_target == up_target
                        && now - prev_t <= self.config.double_click_interval_ms
                    {
                        self.dispatch(
                            EventKind::DblClick,
                            up_target,
                            EventPayload::Mouse {
                                x: self.mouse.x,
                                y: self.mouse.y,
                                button,
                            },
                        );
                        self.last_click = None;
                        return;
                    }
                }
                self.last_click = Some((now, up_target));
            }
            MouseButton::Middle | MouseButton::Right => {
                self.dispatch(
                    EventKind::AuxClick,
                    up_target,
                    EventPayload::Mouse {
                        x: self.mouse.x,
                        y: self.mouse.y,
                        button,
                    },
                );
            }
        }
    }

    fn on_key_down(&mut self, key: String) {
        self.keys_down.push(key.clone());
        let shift = self.keys_down.iter().any(|k| k == "Shift");
        self.dispatch(
            EventKind::KeyDown,
            self.focused,
            EventPayload::Key {
                key: key.clone(),
                shift,
            },
        );
        if key == "Backspace" {
            if let Some(f) = self.focused {
                self.document.element_mut(f).text.pop();
            }
        }
        // keypress + text insertion for printable keys.
        if key.chars().count() == 1 {
            self.dispatch(
                EventKind::KeyPress,
                self.focused,
                EventPayload::Key {
                    key: key.clone(),
                    shift,
                },
            );
            if let Some(f) = self.focused {
                self.document.element_mut(f).text.push_str(&key);
            }
        }
    }

    fn on_key_up(&mut self, key: String) {
        if let Some(pos) = self.keys_down.iter().position(|k| *k == key) {
            self.keys_down.remove(pos);
        }
        let shift = self.keys_down.iter().any(|k| k == "Shift");
        self.dispatch(
            EventKind::KeyUp,
            self.focused,
            EventPayload::Key { key, shift },
        );
    }

    fn on_wheel(&mut self, delta_y: f64) {
        self.flush_pending_move();
        let target = self.document.hit_test(self.mouse);
        self.dispatch(EventKind::Wheel, target, EventPayload::Wheel { delta_y });
        let applied = self.viewport.scroll_by(delta_y);
        if applied != 0.0 {
            let y = self.viewport.scroll_y();
            self.dispatch(
                EventKind::Scroll,
                None,
                EventPayload::Scroll { scroll_y: y },
            );
        }
    }

    fn on_scroll_from(&mut self, origin: ScrollOrigin, amount: f64) {
        let applied = match origin {
            ScrollOrigin::ScrollBar
            | ScrollOrigin::Find
            | ScrollOrigin::Anchor
            | ScrollOrigin::Script => {
                if self.viewport.smooth_scrolling {
                    self.smooth_scroll_to(amount);
                    return;
                }
                self.viewport.scroll_to(amount)
            }
            ScrollOrigin::Wheel => {
                // Wheel scrolls go through on_wheel for the wheel event.
                self.on_wheel(amount * crate::viewport::WHEEL_TICK_PX);
                return;
            }
            stepped => {
                let step = self.viewport.origin_step(stepped);
                self.viewport.scroll_by(step * amount)
            }
        };
        if applied != 0.0 {
            let y = self.viewport.scroll_y();
            self.dispatch(
                EventKind::Scroll,
                None,
                EventPayload::Scroll { scroll_y: y },
            );
        }
    }

    /// Animates an absolute scroll the way Firefox's smooth scrolling
    /// does: ~350 ms of eased 16 ms frames, each dispatching its own
    /// scroll event.
    fn smooth_scroll_to(&mut self, target_y: f64) {
        let start = self.viewport.scroll_y();
        let clamped = target_y.clamp(0.0, self.viewport.max_scroll_y());
        if (clamped - start).abs() < 1.0 {
            return;
        }
        const FRAMES: usize = 22; // ≈350 ms at 16 ms/frame
        for i in 1..=FRAMES {
            let tau = i as f64 / FRAMES as f64;
            // Ease-out cubic, Gecko-like.
            let eased = 1.0 - (1.0 - tau).powi(3);
            let y = start + (clamped - start) * eased;
            self.advance(16.0);
            let moved = self.viewport.scroll_to(y);
            if moved != 0.0 {
                let pos = self.viewport.scroll_y();
                self.dispatch(
                    EventKind::Scroll,
                    None,
                    EventPayload::Scroll { scroll_y: pos },
                );
            }
        }
    }

    /// Scrolls until the element's box is inside the viewport, using the
    /// given origin (Selenium uses [`ScrollOrigin::Script`]; a human drags
    /// the wheel). Returns the final scroll offset.
    pub fn scroll_element_into_view(&mut self, id: NodeId, origin: ScrollOrigin) -> f64 {
        let rect = self.document.element(id).rect;
        if self.viewport.is_y_visible(rect.y)
            && self.viewport.is_y_visible(rect.y + rect.height - 1.0)
        {
            return self.viewport.scroll_y();
        }
        let desired = (rect.y - self.viewport.height / 3.0).max(0.0);
        match origin {
            ScrollOrigin::Script
            | ScrollOrigin::Anchor
            | ScrollOrigin::Find
            | ScrollOrigin::ScrollBar => {
                self.on_scroll_from(origin, desired);
            }
            _ => {
                // Step until visible (bounded by page size).
                let step = self.viewport.origin_step(origin).max(1.0);
                let dir = if desired > self.viewport.scroll_y() {
                    1.0
                } else {
                    -1.0
                };
                let mut guard = 0;
                while (self.viewport.scroll_y() - desired).abs() > step && guard < 10_000 {
                    if origin == ScrollOrigin::Wheel {
                        self.on_wheel(dir * crate::viewport::WHEEL_TICK_PX);
                    } else {
                        self.on_scroll_from(origin, dir);
                    }
                    self.advance(16.0);
                    guard += 1;
                }
            }
        }
        self.viewport.scroll_y()
    }

    /// Where the element's centre currently is, in page coordinates.
    pub fn element_center(&self, id: NodeId) -> Point {
        self.document.element(id).rect.center()
    }

    /// Dispatches a *synthetic* click on an element — the DOM
    /// `element.click()` path Selenium falls back to for obscured
    /// elements. No pointer movement, no mousedown/mouseup, and it works
    /// on hidden elements: exactly the signals honey-element detectors
    /// watch for (§4.2 "adding honey elements").
    pub fn synthetic_click(&mut self, id: NodeId) {
        let c = self.document.element(id).rect.center();
        let r = self.document.element(id).rect;
        if r.width > 0.0 && r.height > 0.0 {
            // A synthetic click reports the exact centre.
            self.recorder.record_click_offset(0.0);
        }
        self.dispatch(
            EventKind::Click,
            Some(id),
            EventPayload::Mouse {
                x: c.x,
                y: c.y,
                button: MouseButton::Left,
            },
        );
    }

    /// Enables Firefox's smooth-scrolling setting: large programmatic
    /// scrolls are animated as a burst of eased intermediate scroll
    /// events instead of one jump (the refinement the paper's future-work
    /// section says HLISA should account for).
    pub fn set_smooth_scrolling(&mut self, on: bool) {
        self.viewport.smooth_scrolling = on;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::standard_test_page;
    use crate::events::EventKind;

    fn browser() -> Browser {
        Browser::open(
            BrowserConfig::regular(),
            standard_test_page("https://example.test/", 30_000.0),
        )
    }

    #[test]
    fn cursor_starts_at_origin() {
        let b = browser();
        assert_eq!(b.mouse_position(), Point::new(0.0, 0.0));
    }

    #[test]
    fn click_sequence_down_up_click() {
        let mut b = browser();
        let button = b.document().by_id("submit").unwrap();
        let c = b.element_center(button);
        b.input_after(100.0, RawInput::MouseMove { x: c.x, y: c.y });
        b.input_after(
            5.0,
            RawInput::MouseDown {
                button: MouseButton::Left,
            },
        );
        b.input_after(
            80.0,
            RawInput::MouseUp {
                button: MouseButton::Left,
            },
        );
        let kinds: Vec<EventKind> = b.recorder.events().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::MouseDown));
        assert!(kinds.contains(&EventKind::MouseUp));
        assert!(kinds.contains(&EventKind::Click));
        let clicks = b.recorder.clicks();
        assert_eq!(clicks.len(), 1);
        assert!((clicks[0].dwell_ms - 80.0).abs() <= 1.0);
    }

    #[test]
    fn double_click_requires_interval() {
        let mut b = browser();
        let button = b.document().by_id("submit").unwrap();
        let c = b.element_center(button);
        b.input_after(20.0, RawInput::MouseMove { x: c.x, y: c.y });
        for gap in [10.0, 60.0] {
            b.input_after(
                gap,
                RawInput::MouseDown {
                    button: MouseButton::Left,
                },
            );
            b.input_after(
                50.0,
                RawInput::MouseUp {
                    button: MouseButton::Left,
                },
            );
            let _ = gap;
        }
        assert_eq!(b.recorder.of_kind(EventKind::DblClick).len(), 1);

        // Beyond the interval: no dblclick.
        let mut b2 = browser();
        b2.input_after(20.0, RawInput::MouseMove { x: c.x, y: c.y });
        b2.input_after(
            10.0,
            RawInput::MouseDown {
                button: MouseButton::Left,
            },
        );
        b2.input_after(
            50.0,
            RawInput::MouseUp {
                button: MouseButton::Left,
            },
        );
        b2.advance(800.0);
        b2.input(RawInput::MouseDown {
            button: MouseButton::Left,
        });
        b2.input_after(
            50.0,
            RawInput::MouseUp {
                button: MouseButton::Left,
            },
        );
        assert!(b2.recorder.of_kind(EventKind::DblClick).is_empty());
    }

    #[test]
    fn selenium_config_widens_double_click_window() {
        let cfg = BrowserConfig::webdriver();
        assert_eq!(cfg.double_click_interval_ms, 600.0);
        assert_eq!(BrowserConfig::regular().double_click_interval_ms, 500.0);
    }

    #[test]
    fn mousemove_coalescing_limits_rate() {
        let mut b = browser();
        // 100 raw samples 1 ms apart — far above the 16 ms dispatch cadence.
        for i in 0..100 {
            b.input_after(
                1.0,
                RawInput::MouseMove {
                    x: f64::from(i),
                    y: 0.0,
                },
            );
        }
        let moves = b.recorder.of_kind(EventKind::MouseMove).len();
        assert!(moves <= 8, "dispatched {moves} moves for 100 samples");
        // Position is still tracked exactly.
        assert_eq!(b.mouse_position().x, 99.0);
    }

    #[test]
    fn pending_move_flushes_before_button() {
        let mut b = browser();
        b.input_after(20.0, RawInput::MouseMove { x: 50.0, y: 50.0 });
        // Below the coalescing interval — no event yet...
        b.input_after(1.0, RawInput::MouseMove { x: 51.0, y: 50.0 });
        b.input(RawInput::MouseDown {
            button: MouseButton::Left,
        });
        let evs = b.recorder.events();
        // ... but the press is preceded by a move reporting (51, 50).
        let down_idx = evs
            .iter()
            .position(|e| e.kind == EventKind::MouseDown)
            .unwrap();
        let last_move = evs[..down_idx]
            .iter()
            .rev()
            .find(|e| e.kind == EventKind::MouseMove)
            .unwrap();
        match &last_move.payload {
            EventPayload::Mouse { x, .. } => assert_eq!(*x, 51.0),
            _ => panic!("mouse payload expected"),
        }
    }

    #[test]
    fn typing_focuses_and_fills_input() {
        let mut b = browser();
        let input = b.document().by_id("text_area").unwrap();
        let c = b.element_center(input);
        b.input_after(50.0, RawInput::MouseMove { x: c.x, y: c.y });
        b.input_after(
            10.0,
            RawInput::MouseDown {
                button: MouseButton::Left,
            },
        );
        b.input_after(
            70.0,
            RawInput::MouseUp {
                button: MouseButton::Left,
            },
        );
        assert_eq!(b.focused(), Some(input));
        for k in ["h", "i"] {
            b.input_after(100.0, RawInput::KeyDown { key: k.into() });
            b.input_after(80.0, RawInput::KeyUp { key: k.into() });
        }
        assert_eq!(b.document().element(input).text, "hi");
        assert_eq!(b.recorder.keystrokes().len(), 2);
    }

    #[test]
    fn shift_flag_reflects_modifier_state() {
        let mut b = browser();
        let input = b.document().by_id("text_area").unwrap();
        let c = b.element_center(input);
        b.input_after(50.0, RawInput::MouseMove { x: c.x, y: c.y });
        b.input_after(
            10.0,
            RawInput::MouseDown {
                button: MouseButton::Left,
            },
        );
        b.input_after(
            70.0,
            RawInput::MouseUp {
                button: MouseButton::Left,
            },
        );
        b.input_after(
            50.0,
            RawInput::KeyDown {
                key: "Shift".into(),
            },
        );
        b.input_after(40.0, RawInput::KeyDown { key: "H".into() });
        let shifted = b
            .recorder
            .events()
            .iter()
            .filter(|e| e.kind == EventKind::KeyDown)
            .filter_map(|e| match &e.payload {
                EventPayload::Key { key, shift } if key == "H" => Some(*shift),
                _ => None,
            })
            .next()
            .unwrap();
        assert!(shifted);
    }

    #[test]
    fn wheel_tick_scrolls_57px_and_fires_both_events() {
        let mut b = browser();
        b.input_after(10.0, RawInput::WheelTick { direction: 1 });
        assert_eq!(b.viewport.scroll_y(), 57.0);
        assert_eq!(b.recorder.wheel_count(), 1);
        assert_eq!(b.recorder.of_kind(EventKind::Scroll).len(), 1);
    }

    #[test]
    fn script_scroll_has_no_wheel_event() {
        let mut b = browser();
        b.input_after(
            10.0,
            RawInput::ScrollFrom {
                origin: ScrollOrigin::Script,
                amount: 2_000.0,
            },
        );
        assert_eq!(b.viewport.scroll_y(), 2_000.0);
        assert_eq!(b.recorder.wheel_count(), 0);
        assert_eq!(b.recorder.of_kind(EventKind::Scroll).len(), 1);
    }

    #[test]
    fn minimize_fires_visibilitychange_and_blur() {
        let mut b = browser();
        b.input_after(10.0, RawInput::Minimize);
        assert!(!b.is_visible());
        assert_eq!(b.recorder.of_kind(EventKind::VisibilityChange).len(), 1);
        assert_eq!(b.recorder.of_kind(EventKind::Blur).len(), 1);
        b.input_after(10.0, RawInput::Restore);
        assert!(b.is_visible());
        assert_eq!(b.recorder.of_kind(EventKind::VisibilityChange).len(), 2);
    }

    #[test]
    fn scroll_into_view_wheel_steps_by_ticks() {
        let mut b = browser();
        let target = b.document().by_id("section-end").unwrap();
        let final_y = b.scroll_element_into_view(target, ScrollOrigin::Wheel);
        assert!(final_y > 0.0);
        let rect_y = b.document().element(target).rect.y;
        assert!(b.viewport.is_y_visible(rect_y));
        // Every wheel scroll delta is exactly one tick.
        for d in b.recorder.scroll_deltas() {
            assert!((d.abs() - 57.0).abs() < 1e-9, "delta {d}");
        }
        assert!(b.recorder.wheel_count() > 100);
    }

    #[test]
    fn navigate_resets_trace_but_not_cursor() {
        let mut b = browser();
        b.input_after(30.0, RawInput::MouseMove { x: 200.0, y: 200.0 });
        b.navigate(standard_test_page("https://two.test/", 5_000.0));
        assert!(b.recorder.is_empty());
        assert_eq!(b.mouse_position(), Point::new(200.0, 200.0));
        assert_eq!(b.document().url, "https://two.test/");
    }

    #[test]
    fn right_press_fires_contextmenu() {
        let mut b = browser();
        b.input_after(30.0, RawInput::MouseMove { x: 160.0, y: 500.0 });
        b.input_after(
            10.0,
            RawInput::MouseDown {
                button: MouseButton::Right,
            },
        );
        b.input_after(
            60.0,
            RawInput::MouseUp {
                button: MouseButton::Right,
            },
        );
        assert_eq!(b.recorder.of_kind(EventKind::ContextMenu).len(), 1);
        assert_eq!(b.recorder.of_kind(EventKind::AuxClick).len(), 1);
        assert!(b.recorder.of_kind(EventKind::Click).is_empty());
    }

    #[test]
    fn click_requires_same_target_for_down_and_up() {
        let mut b = browser();
        let button = b.document().by_id("submit").unwrap();
        let c = b.element_center(button);
        b.input_after(30.0, RawInput::MouseMove { x: c.x, y: c.y });
        b.input_after(
            10.0,
            RawInput::MouseDown {
                button: MouseButton::Left,
            },
        );
        // Drag off the element before releasing.
        b.input_after(
            40.0,
            RawInput::MouseMove {
                x: c.x + 400.0,
                y: c.y + 100.0,
            },
        );
        b.input_after(
            40.0,
            RawInput::MouseUp {
                button: MouseButton::Left,
            },
        );
        assert!(b.recorder.of_kind(EventKind::Click).is_empty());
    }

    #[test]
    fn pointer_is_clamped_to_the_page() {
        let mut b = browser();
        b.input_after(30.0, RawInput::MouseMove { x: -50.0, y: -10.0 });
        assert_eq!(b.mouse_position(), Point::new(0.0, 0.0));
        b.input_after(30.0, RawInput::MouseMove { x: 1e9, y: 1e9 });
        let p = b.mouse_position();
        assert_eq!((p.x, p.y), (1280.0, 30_000.0));
    }

    #[test]
    fn pointer_events_precede_mouse_events() {
        let mut b = browser();
        b.input_after(30.0, RawInput::MouseMove { x: 50.0, y: 50.0 });
        b.input_after(
            30.0,
            RawInput::MouseDown {
                button: MouseButton::Left,
            },
        );
        b.input_after(
            60.0,
            RawInput::MouseUp {
                button: MouseButton::Left,
            },
        );
        let evs = b.recorder.events();
        for (ptr, mouse) in [
            (EventKind::PointerMove, EventKind::MouseMove),
            (EventKind::PointerDown, EventKind::MouseDown),
            (EventKind::PointerUp, EventKind::MouseUp),
        ] {
            let pi = evs.iter().position(|e| e.kind == ptr).unwrap();
            let mi = evs.iter().position(|e| e.kind == mouse).unwrap();
            assert!(pi < mi, "{ptr:?} must precede {mouse:?}");
            assert_eq!(
                b.recorder.of_kind(ptr).len(),
                b.recorder.of_kind(mouse).len(),
                "layer counts must match for {ptr:?}"
            );
        }
    }

    #[test]
    fn backspace_edits_focused_text() {
        let mut b = browser();
        let input = b.document().by_id("text_area").unwrap();
        let c = b.element_center(input);
        b.input_after(50.0, RawInput::MouseMove { x: c.x, y: c.y });
        b.input_after(
            10.0,
            RawInput::MouseDown {
                button: MouseButton::Left,
            },
        );
        b.input_after(
            70.0,
            RawInput::MouseUp {
                button: MouseButton::Left,
            },
        );
        for k in ["a", "b", "c"] {
            b.input_after(80.0, RawInput::KeyDown { key: k.into() });
            b.input_after(60.0, RawInput::KeyUp { key: k.into() });
        }
        b.input_after(
            80.0,
            RawInput::KeyDown {
                key: "Backspace".into(),
            },
        );
        b.input_after(
            60.0,
            RawInput::KeyUp {
                key: "Backspace".into(),
            },
        );
        assert_eq!(b.document().element(input).text, "ab");
    }

    #[test]
    fn synthetic_click_fires_without_pointer_events() {
        let mut b = browser();
        let honey = b.document().by_id("honey").unwrap();
        b.advance(50.0);
        b.synthetic_click(honey);
        assert_eq!(b.recorder.of_kind(EventKind::Click).len(), 1);
        assert!(b.recorder.of_kind(EventKind::MouseDown).is_empty());
        assert!(b.recorder.of_kind(EventKind::MouseMove).is_empty());
        // And it hit the hidden element — impossible for real input.
        assert_eq!(b.recorder.of_kind(EventKind::Click)[0].target, Some(honey));
    }

    #[test]
    fn smooth_scrolling_animates_script_jumps() {
        let mut b = browser();
        b.set_smooth_scrolling(true);
        b.input_after(
            10.0,
            RawInput::ScrollFrom {
                origin: ScrollOrigin::Script,
                amount: 4_000.0,
            },
        );
        assert!((b.viewport.scroll_y() - 4_000.0).abs() < 1.0);
        let scrolls = b.recorder.of_kind(EventKind::Scroll).len();
        assert!(scrolls >= 15, "only {scrolls} scroll events");
        // Deltas shrink toward the end (ease-out).
        let deltas = b.recorder.scroll_deltas();
        assert!(deltas.first().unwrap() > deltas.last().unwrap());
        // Without smoothing the same jump is a single event.
        let mut plain = browser();
        plain.input_after(
            10.0,
            RawInput::ScrollFrom {
                origin: ScrollOrigin::Script,
                amount: 4_000.0,
            },
        );
        assert_eq!(plain.recorder.of_kind(EventKind::Scroll).len(), 1);
    }

    #[test]
    fn observers_see_dispatch_and_feed_metrics() {
        use hlisa_sim::{CounterSet, Observer};

        struct ClickCounter {
            clicks: u64,
        }
        impl Observer<DomEvent> for ClickCounter {
            fn on_event(&mut self, _t: f64, ev: &DomEvent) {
                if ev.kind == EventKind::Click {
                    self.clicks += 1;
                }
            }
            fn counters(&self) -> CounterSet {
                let mut c = CounterSet::new();
                c.add("observer.clicks", self.clicks);
                c
            }
        }

        let mut b = browser();
        b.attach_observer(Box::new(ClickCounter { clicks: 0 }));
        let button = b.document().by_id("submit").unwrap();
        let c = b.element_center(button);
        b.input_after(30.0, RawInput::MouseMove { x: c.x, y: c.y });
        b.input_after(
            10.0,
            RawInput::MouseDown {
                button: MouseButton::Left,
            },
        );
        b.input_after(
            70.0,
            RawInput::MouseUp {
                button: MouseButton::Left,
            },
        );

        let metrics = b.metrics();
        assert_eq!(metrics.get("observer.clicks"), Some(1));
        assert_eq!(metrics.get("events.click"), Some(1));
        assert_eq!(metrics.get("events.total"), Some(b.recorder.len() as u64));
    }

    #[test]
    fn absorbed_fault_counters_surface_in_metrics() {
        use hlisa_sim::{FaultEvent, FaultKind, FaultMonitor, Observer};

        let mut monitor = FaultMonitor::new();
        monitor.record(&FaultEvent::Injected {
            kind: FaultKind::RealmCrash,
        });
        monitor.record(&FaultEvent::RetryScheduled {
            attempt: 0,
            backoff_ms: 750.0,
        });
        monitor.record(&FaultEvent::RecoveredAfterRetry { attempts: 2 });

        let mut b = browser();
        b.absorb_counters(&monitor.counters());
        let metrics = b.metrics();
        assert_eq!(metrics.get("fault.injected"), Some(1));
        assert_eq!(metrics.get("fault.injected.realm_crash"), Some(1));
        assert_eq!(metrics.get("retry.scheduled"), Some(1));
        assert_eq!(metrics.get("retry.recovered"), Some(1));
        // Absorbed counters survive cloning like the rest of the state.
        assert_eq!(b.clone().metrics().get("fault.injected"), Some(1));
    }

    #[test]
    fn metrics_cache_invalidates_on_every_source_change() {
        use hlisa_sim::{CounterSet, Observer};

        let mut b = browser();
        // Prime the cache, then dispatch: the new event must show up.
        let before = b.metrics().get("events.total").unwrap_or(0);
        b.input_after(30.0, RawInput::WheelTick { direction: 1 });
        let after = b.metrics().get("events.total").unwrap();
        assert!(
            after > before,
            "dispatch must invalidate ({before} -> {after})"
        );

        // Prime again, then absorb external counters.
        let _ = b.metrics();
        let mut external = CounterSet::new();
        external.add("chaos.example", 7);
        b.absorb_counters(&external);
        assert_eq!(b.metrics().get("chaos.example"), Some(7));

        // Prime again, then attach an observer with its own counters.
        let _ = b.metrics();
        struct Fixed;
        impl Observer<DomEvent> for Fixed {
            fn on_event(&mut self, _t: f64, _ev: &DomEvent) {}
            fn counters(&self) -> CounterSet {
                let mut c = CounterSet::new();
                c.add("observer.fixed", 1);
                c
            }
        }
        b.attach_observer(Box::new(Fixed));
        assert_eq!(b.metrics().get("observer.fixed"), Some(1));

        // Prime again, then navigate: the event trace resets.
        let _ = b.metrics();
        b.navigate(standard_test_page("https://example.test/next", 5_000.0));
        assert_eq!(b.metrics().get("events.total"), Some(0));
    }

    #[test]
    fn document_mutation_invalidates_index_and_metrics_caches() {
        use crate::dom::{Display, ElementBuilder};

        let mut b = browser();
        let submit = b.document().by_id("submit").unwrap();
        let c = b.element_center(submit);
        // Prime both PR 5 caches: the query index and the metrics cache.
        assert_eq!(b.document().hit_test(c), Some(submit));
        assert!(b.metrics().get("dom.mutations").is_none());

        // An SPA-style re-render: drop the old button, graft a new one.
        let fresh = b.mutate_document(|m| {
            m.detach(submit);
            m.append_root(
                ElementBuilder::new("button", crate::Rect::new(700.0, 900.0, 80.0, 30.0))
                    .id("submit")
                    .build(),
            )
        });
        // The rebuilt index serves the new revision...
        assert_eq!(b.document().by_id("submit"), Some(fresh));
        assert_ne!(b.document().hit_test(c), Some(submit));
        // ...and the rebuilt metrics surface the mutation counter.
        assert_eq!(b.metrics().get("dom.mutations"), Some(1));

        // A reveal that grows the page extends the scrollable extent.
        let before_max = b.viewport.max_scroll_y();
        b.mutate_document(|m| {
            m.append_root(
                ElementBuilder::flow(
                    "section",
                    Display::Block {
                        height: 50_000.0,
                        width_frac: 1.0,
                        margin: 0.0,
                        padding: 0.0,
                    },
                )
                .build(),
            );
        });
        assert!(b.viewport.max_scroll_y() > before_max);
        assert_eq!(b.metrics().get("dom.mutations"), Some(2));
    }

    #[test]
    fn coalesced_move_flushes_position_and_target_before_press() {
        let mut b = browser();
        let submit = b.document().by_id("submit").unwrap();
        let text_area = b.document().by_id("text_area").unwrap();
        let s = b.element_center(submit);
        let t = b.element_center(text_area);

        // A dispatched move onto the submit button...
        b.input_after(30.0, RawInput::MouseMove { x: s.x, y: s.y });
        // ...then 1 ms later (inside the coalescing window) a move onto
        // the text area, which is only remembered as `pending_move`...
        b.input_after(1.0, RawInput::MouseMove { x: t.x, y: t.y });
        // ...then the press. The flushed move must report the *final*
        // position with the *re-hit-tested* target — a press at an
        // unreported spot (or against the stale submit target) is exactly
        // the inconsistency a detector would flag.
        b.input_after(
            1.0,
            RawInput::MouseDown {
                button: MouseButton::Left,
            },
        );

        let events = b.recorder.events();
        let down_idx = events
            .iter()
            .position(|e| e.kind == EventKind::MouseDown)
            .unwrap();
        assert_eq!(events[down_idx].target, Some(text_area));
        // The event immediately before the press pair must be the flushed
        // move, carrying the text-area position and target.
        let flushed = &events[down_idx - 2];
        assert_eq!(flushed.kind, EventKind::MouseMove);
        assert_eq!(flushed.target, Some(text_area));
        match &flushed.payload {
            EventPayload::Mouse { x, y, .. } => {
                assert_eq!((*x, *y), (t.x, t.y));
            }
            other => panic!("flushed move payload was {other:?}"),
        }
        // And it precedes the pointerdown (down_idx - 1 is PointerDown).
        assert_eq!(events[down_idx - 1].kind, EventKind::PointerDown);
    }

    #[test]
    fn shared_clock_times_events() {
        let clock = hlisa_sim::VirtualClock::starting_at(1_000.0);
        let mut b = Browser::open_with_clock(
            BrowserConfig::regular(),
            standard_test_page("https://example.test/", 5_000.0),
            clock.clone(),
        );
        // Time advanced on the shared handle is what events observe.
        clock.advance(23.5);
        b.input(RawInput::WheelTick { direction: 1 });
        assert_eq!(b.recorder.events().last().unwrap().timestamp_ms, 1_023.0);
        assert!(b.clock().shares_time_with(&clock));
    }

    #[test]
    fn bind_clock_preserves_monotonicity() {
        let mut b = browser();
        b.advance(500.0);
        let late_clock = hlisa_sim::VirtualClock::starting_at(100.0);
        b.bind_clock(late_clock.clone());
        // The lagging clock is pulled forward, never the browser backward.
        assert_eq!(b.now_ms(), 500.0);
        assert_eq!(late_clock.now_ms(), 500.0);
    }

    #[test]
    fn clones_get_independent_clocks_and_no_observers() {
        use hlisa_sim::Observer;
        struct Null;
        impl Observer<DomEvent> for Null {
            fn on_event(&mut self, _t: f64, _ev: &DomEvent) {}
        }
        let mut a = browser();
        a.attach_observer(Box::new(Null));
        a.advance(10.0);
        let mut b = a.clone();
        assert_eq!(b.observer_count(), 0);
        b.advance(5.0);
        assert_eq!(a.now_ms(), 10.0);
        assert_eq!(b.now_ms(), 15.0);
    }

    #[test]
    fn world_flavor_matches_config() {
        let mut bot = Browser::open(BrowserConfig::webdriver(), standard_test_page("u", 5_000.0));
        let nav = bot.world.resolve_navigator();
        let v = bot.world.realm.get(nav, "webdriver").unwrap();
        assert_eq!(v, hlisa_jsom::Value::Bool(true));
    }
}
