//! Virtual clock.
//!
//! All interaction timing in the workspace is simulated time, so whole
//! crawl campaigns run in milliseconds of wall-clock while behaving as if
//! minutes of interaction elapsed. The clock itself lives in `hlisa-sim`
//! as a *shared handle* ([`VirtualClock`]): the browser, its webdriver
//! session, and the interaction agent all observe the same instant instead
//! of each keeping private time. The clock's resolution mirrors what a
//! page can observe: Firefox exposes event timestamps at millisecond
//! granularity (Appendix D: "the granularity for typing events is 1 ms").

pub use hlisa_sim::VirtualClock;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let c = VirtualClock::new();
        assert_eq!(c.now_ms(), 0.0);
        c.advance(12.75);
        assert_eq!(c.now_ms(), 12.75);
        assert_eq!(c.observable_now_ms(), 12.0);
    }

    #[test]
    #[should_panic(expected = "monotonically")]
    fn rejects_negative_advance() {
        VirtualClock::new().advance(-1.0);
    }
}
