//! Virtual clock.
//!
//! All interaction timing in the workspace is simulated time, so whole
//! crawl campaigns run in milliseconds of wall-clock while behaving as if
//! minutes of interaction elapsed. The clock's resolution mirrors what a
//! page can observe: Firefox exposes event timestamps at millisecond
//! granularity (Appendix D: "the granularity for typing events is 1 ms").

/// A simulated millisecond clock.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimClock {
    now_ms: f64,
}

impl SimClock {
    /// A clock starting at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time (ms, sub-ms precision kept internally).
    pub fn now_ms(&self) -> f64 {
        self.now_ms
    }

    /// Current time as a page would observe it: quantised to 1 ms.
    pub fn observable_now_ms(&self) -> f64 {
        self.now_ms.floor()
    }

    /// Advances the clock.
    ///
    /// # Panics
    /// Panics on negative advances — simulated time is monotone.
    pub fn advance(&mut self, delta_ms: f64) {
        assert!(
            delta_ms >= 0.0 && delta_ms.is_finite(),
            "clock must advance monotonically, got {delta_ms}"
        );
        self.now_ms += delta_ms;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let mut c = SimClock::new();
        assert_eq!(c.now_ms(), 0.0);
        c.advance(12.75);
        assert_eq!(c.now_ms(), 12.75);
        assert_eq!(c.observable_now_ms(), 12.0);
    }

    #[test]
    #[should_panic(expected = "monotonically")]
    fn rejects_negative_advance() {
        SimClock::new().advance(-1.0);
    }
}
