//! Event recorder — the stand-in for a page's JavaScript event listeners.
//!
//! Appendix E: "We built a website that uses JavaScript to record events."
//! The recorder captures every dispatched event in order and offers the
//! trace views the paper's analysis needs (cursor trajectories, click
//! timings, key dwell/flight times, scroll cadences).
//!
//! The trace views are maintained *incrementally*: every aggregate is
//! updated at [`EventRecorder::record`] time, so detector-side queries
//! are O(1) slice borrows instead of O(n) rescans of the event log. The
//! original full-scan derivations are retained as `*_rescan` reference
//! implementations; a test asserts the two always agree.

use crate::events::{DomEvent, EventKind, EventPayload, MouseButton};
use hlisa_sim::{CounterSet, Observer};

/// A recorded interaction trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventRecorder {
    events: Vec<DomEvent>,
    click_offsets: Vec<f64>,
    // ---- incremental aggregates, maintained by `record` ----
    cursor: Vec<CursorSample>,
    clicks: Vec<ClickObservation>,
    /// Open presses awaiting their release: (button, down_t, x, y).
    pending_clicks: Vec<(MouseButton, f64, f64, f64)>,
    keystrokes: Vec<KeyObservation>,
    /// Open keydowns awaiting their keyup. Stores the *event index* of
    /// the keydown instead of a cloned key `String`; the key is borrowed
    /// from the event log for matching and cloned only once, when the
    /// pair completes.
    pending_keys: Vec<(usize, f64)>,
    key_flights: Vec<f64>,
    scroll_deltas: Vec<f64>,
    scroll_gaps: Vec<f64>,
    /// Timestamp and position of the last `scroll` event.
    last_scroll: Option<(f64, f64)>,
    wheel_count: usize,
    /// Per-kind event counts in first-seen order (≤ 57 kinds, so a
    /// linear scan beats hashing and keeps counter order deterministic).
    kind_counts: Vec<(EventKind, u64)>,
}

/// A single sampled cursor position.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CursorSample {
    /// Event timestamp (ms).
    pub t: f64,
    /// Page x.
    pub x: f64,
    /// Page y.
    pub y: f64,
}

/// One observed click: press/release pair on the same target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClickObservation {
    /// `mousedown` timestamp.
    pub down_t: f64,
    /// `mouseup` timestamp.
    pub up_t: f64,
    /// Press position x.
    pub x: f64,
    /// Press position y.
    pub y: f64,
    /// Button dwell time (ms).
    pub dwell_ms: f64,
    /// Button.
    pub button: MouseButton,
}

/// One observed key stroke: down/up pair for the same key.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyObservation {
    /// `keydown` timestamp.
    pub down_t: f64,
    /// `keyup` timestamp.
    pub up_t: f64,
    /// The key.
    pub key: String,
    /// Dwell time (ms).
    pub dwell_ms: f64,
}

impl EventRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one event, folding it into every incremental aggregate.
    pub fn record(&mut self, ev: DomEvent) {
        self.update_aggregates(&ev);
        self.events.push(ev);
    }

    /// Folds one event into the running aggregates. Called *before* the
    /// event is appended, so `self.events.len()` is the index the event
    /// will occupy.
    fn update_aggregates(&mut self, ev: &DomEvent) {
        match self.kind_counts.iter_mut().find(|(k, _)| *k == ev.kind) {
            Some((_, c)) => *c += 1,
            None => self.kind_counts.push((ev.kind, 1)),
        }
        match (&ev.kind, &ev.payload) {
            (EventKind::MouseMove, EventPayload::Mouse { x, y, .. }) => {
                self.cursor.push(CursorSample {
                    t: ev.timestamp_ms,
                    x: *x,
                    y: *y,
                });
            }
            (EventKind::MouseDown, EventPayload::Mouse { x, y, button }) => {
                self.pending_clicks.push((*button, ev.timestamp_ms, *x, *y));
            }
            (EventKind::MouseUp, EventPayload::Mouse { button, .. }) => {
                if let Some(pos) = self.pending_clicks.iter().position(|(b, ..)| b == button) {
                    let (b, down_t, x, y) = self.pending_clicks.remove(pos);
                    self.clicks.push(ClickObservation {
                        down_t,
                        up_t: ev.timestamp_ms,
                        x,
                        y,
                        dwell_ms: ev.timestamp_ms - down_t,
                        button: b,
                    });
                }
            }
            (EventKind::KeyDown, EventPayload::Key { .. }) => {
                self.pending_keys.push((self.events.len(), ev.timestamp_ms));
            }
            (EventKind::KeyUp, EventPayload::Key { key, .. }) => {
                let events = &self.events;
                let matching = self.pending_keys.iter().position(|(idx, _)| {
                    matches!(&events[*idx].payload,
                        EventPayload::Key { key: k, .. } if k == key)
                });
                if let Some(pos) = matching {
                    let (idx, down_t) = self.pending_keys.remove(pos);
                    if let EventPayload::Key { key, .. } = &self.events[idx].payload {
                        if let Some(last) = self.keystrokes.last() {
                            self.key_flights.push(down_t - last.up_t);
                        }
                        self.keystrokes.push(KeyObservation {
                            down_t,
                            up_t: ev.timestamp_ms,
                            key: key.clone(),
                            dwell_ms: ev.timestamp_ms - down_t,
                        });
                    }
                }
            }
            (EventKind::Scroll, EventPayload::Scroll { scroll_y }) => {
                if let Some((last_t, last_y)) = self.last_scroll {
                    self.scroll_deltas.push(*scroll_y - last_y);
                    self.scroll_gaps.push(ev.timestamp_ms - last_t);
                }
                self.last_scroll = Some((ev.timestamp_ms, *scroll_y));
            }
            (EventKind::Wheel, _) => {
                self.wheel_count += 1;
            }
            _ => {}
        }
    }

    /// All events in dispatch order.
    pub fn events(&self) -> &[DomEvent] {
        &self.events
    }

    /// Records a normalised radial click offset, computed at dispatch time
    /// against the clicked element's box — what a page script derives from
    /// `getBoundingClientRect()` inside its click listener.
    pub fn record_click_offset(&mut self, offset_frac: f64) {
        self.click_offsets.push(offset_frac);
    }

    /// Normalised radial click offsets, in click order.
    pub fn click_offsets(&self) -> &[f64] {
        &self.click_offsets
    }

    /// Clears the trace and every aggregate.
    pub fn clear(&mut self) {
        self.events.clear();
        self.click_offsets.clear();
        self.cursor.clear();
        self.clicks.clear();
        self.pending_clicks.clear();
        self.keystrokes.clear();
        self.pending_keys.clear();
        self.key_flights.clear();
        self.scroll_deltas.clear();
        self.scroll_gaps.clear();
        self.last_scroll = None;
        self.wheel_count = 0;
        self.kind_counts.clear();
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events of one kind.
    pub fn of_kind(&self, kind: EventKind) -> Vec<&DomEvent> {
        self.events.iter().filter(|e| e.kind == kind).collect()
    }

    /// The cursor trajectory: every `mousemove` as (t, x, y). O(1) — the
    /// trace is maintained incrementally at record time.
    pub fn cursor_trace(&self) -> &[CursorSample] {
        &self.cursor
    }

    /// Click observations: mousedown/mouseup pairs per button, in order.
    /// O(1) — maintained incrementally at record time.
    pub fn clicks(&self) -> &[ClickObservation] {
        &self.clicks
    }

    /// Key observations: keydown/keyup pairs per key, supporting the
    /// interleaved presses fast human typing produces (§4.1: "sometimes a
    /// key is only released when a different key has already been pressed").
    /// O(1) — maintained incrementally at record time.
    pub fn keystrokes(&self) -> &[KeyObservation] {
        &self.keystrokes
    }

    /// Flight times between consecutive keystrokes: keyup(i) → keydown(i+1),
    /// in ms (may be negative for interleaved presses). O(1) — maintained
    /// incrementally at record time.
    pub fn key_flight_times(&self) -> &[f64] {
        &self.key_flights
    }

    /// Scroll deltas between consecutive scroll events (px). O(1) —
    /// maintained incrementally at record time.
    pub fn scroll_deltas(&self) -> &[f64] {
        &self.scroll_deltas
    }

    /// Inter-event gaps between consecutive scroll events (ms). O(1) —
    /// maintained incrementally at record time.
    pub fn scroll_gaps(&self) -> &[f64] {
        &self.scroll_gaps
    }

    /// Count of wheel events. O(1) — maintained incrementally.
    pub fn wheel_count(&self) -> usize {
        self.wheel_count
    }

    // ---- full-scan reference implementations --------------------------
    //
    // The original O(n) derivations over the raw event log, retained as
    // the semantic definition of each aggregate. The incremental views
    // above must always equal these (asserted by a test); keeping both
    // also lets offline consumers recompute views from a deserialized
    // event log alone.

    /// Full-scan reference for [`cursor_trace`](Self::cursor_trace).
    pub fn cursor_trace_rescan(&self) -> Vec<CursorSample> {
        self.events
            .iter()
            .filter(|e| e.kind == EventKind::MouseMove)
            .filter_map(|e| match &e.payload {
                EventPayload::Mouse { x, y, .. } => Some(CursorSample {
                    t: e.timestamp_ms,
                    x: *x,
                    y: *y,
                }),
                _ => None,
            })
            .collect()
    }

    /// Full-scan reference for [`clicks`](Self::clicks).
    pub fn clicks_rescan(&self) -> Vec<ClickObservation> {
        let mut out = Vec::new();
        let mut pending: Vec<(MouseButton, f64, f64, f64)> = Vec::new();
        for e in &self.events {
            match (&e.kind, &e.payload) {
                (EventKind::MouseDown, EventPayload::Mouse { x, y, button }) => {
                    pending.push((*button, e.timestamp_ms, *x, *y));
                }
                (EventKind::MouseUp, EventPayload::Mouse { button, .. }) => {
                    if let Some(pos) = pending.iter().position(|(b, ..)| b == button) {
                        let (b, down_t, x, y) = pending.remove(pos);
                        out.push(ClickObservation {
                            down_t,
                            up_t: e.timestamp_ms,
                            x,
                            y,
                            dwell_ms: e.timestamp_ms - down_t,
                            button: b,
                        });
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Full-scan reference for [`keystrokes`](Self::keystrokes).
    pub fn keystrokes_rescan(&self) -> Vec<KeyObservation> {
        let mut out = Vec::new();
        let mut pending: Vec<(String, f64)> = Vec::new();
        for e in &self.events {
            match (&e.kind, &e.payload) {
                (EventKind::KeyDown, EventPayload::Key { key, .. }) => {
                    pending.push((key.clone(), e.timestamp_ms));
                }
                (EventKind::KeyUp, EventPayload::Key { key, .. }) => {
                    if let Some(pos) = pending.iter().position(|(k, _)| k == key) {
                        let (k, down_t) = pending.remove(pos);
                        out.push(KeyObservation {
                            down_t,
                            up_t: e.timestamp_ms,
                            key: k,
                            dwell_ms: e.timestamp_ms - down_t,
                        });
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Full-scan reference for [`key_flight_times`](Self::key_flight_times).
    pub fn key_flight_times_rescan(&self) -> Vec<f64> {
        let strokes = self.keystrokes_rescan();
        strokes
            .windows(2)
            .map(|w| w[1].down_t - w[0].up_t)
            .collect()
    }

    /// Full-scan reference for [`scroll_deltas`](Self::scroll_deltas).
    pub fn scroll_deltas_rescan(&self) -> Vec<f64> {
        let ys: Vec<f64> = self
            .events
            .iter()
            .filter_map(|e| match (&e.kind, &e.payload) {
                (EventKind::Scroll, EventPayload::Scroll { scroll_y }) => Some(*scroll_y),
                _ => None,
            })
            .collect();
        ys.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Full-scan reference for [`scroll_gaps`](Self::scroll_gaps).
    pub fn scroll_gaps_rescan(&self) -> Vec<f64> {
        let ts: Vec<f64> = self
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Scroll)
            .map(|e| e.timestamp_ms)
            .collect();
        ts.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Full-scan reference for [`wheel_count`](Self::wheel_count).
    pub fn wheel_count_rescan(&self) -> usize {
        self.of_kind(EventKind::Wheel).len()
    }
}

/// The recorder is the canonical [`Observer`]: the browser feeds it every
/// dispatched event through this impl, and its counters expose the trace
/// as per-event-kind metrics.
impl Observer<DomEvent> for EventRecorder {
    fn on_event(&mut self, _t_ms: f64, event: &DomEvent) {
        self.record(event.clone());
    }

    fn counters(&self) -> CounterSet {
        // One insertion per *kind* (first-seen order, matching what
        // per-event insertion would produce) instead of one string
        // format + linear probe per event.
        let mut counters = CounterSet::new();
        counters.add("events.total", self.events.len() as u64);
        for (kind, count) in &self.kind_counts {
            counters.add(&format!("events.{}", kind.name()), *count);
        }
        counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{DomEvent, EventPayload};

    fn mouse_ev(kind: EventKind, t: f64, x: f64, y: f64, button: MouseButton) -> DomEvent {
        DomEvent {
            kind,
            timestamp_ms: t,
            target: None,
            payload: EventPayload::Mouse { x, y, button },
        }
    }

    fn key_ev(kind: EventKind, t: f64, key: &str) -> DomEvent {
        DomEvent {
            kind,
            timestamp_ms: t,
            target: None,
            payload: EventPayload::Key {
                key: key.into(),
                shift: false,
            },
        }
    }

    #[test]
    fn cursor_trace_extracts_moves() {
        let mut r = EventRecorder::new();
        r.record(mouse_ev(
            EventKind::MouseMove,
            1.0,
            10.0,
            20.0,
            MouseButton::Left,
        ));
        r.record(mouse_ev(
            EventKind::MouseDown,
            2.0,
            10.0,
            20.0,
            MouseButton::Left,
        ));
        r.record(mouse_ev(
            EventKind::MouseMove,
            3.0,
            11.0,
            21.0,
            MouseButton::Left,
        ));
        let trace = r.cursor_trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[1].x, 11.0);
    }

    #[test]
    fn clicks_pair_down_and_up() {
        let mut r = EventRecorder::new();
        r.record(mouse_ev(
            EventKind::MouseDown,
            10.0,
            5.0,
            5.0,
            MouseButton::Left,
        ));
        r.record(mouse_ev(
            EventKind::MouseUp,
            95.0,
            5.0,
            5.0,
            MouseButton::Left,
        ));
        let clicks = r.clicks();
        assert_eq!(clicks.len(), 1);
        assert_eq!(clicks[0].dwell_ms, 85.0);
        assert_eq!(clicks[0].button, MouseButton::Left);
    }

    #[test]
    fn keystrokes_support_interleaving() {
        let mut r = EventRecorder::new();
        // a down, b down, a up, b up — rollover typing.
        r.record(key_ev(EventKind::KeyDown, 0.0, "a"));
        r.record(key_ev(EventKind::KeyDown, 40.0, "b"));
        r.record(key_ev(EventKind::KeyUp, 60.0, "a"));
        r.record(key_ev(EventKind::KeyUp, 110.0, "b"));
        let ks = r.keystrokes();
        assert_eq!(ks.len(), 2);
        assert_eq!(ks[0].key, "a");
        assert_eq!(ks[0].dwell_ms, 60.0);
        assert_eq!(ks[1].key, "b");
        assert_eq!(ks[1].dwell_ms, 70.0);
        // Negative flight time marks the interleave.
        let flights = r.key_flight_times();
        assert_eq!(flights, vec![-20.0]);
    }

    #[test]
    fn scroll_views() {
        let mut r = EventRecorder::new();
        for (t, y) in [(0.0, 57.0), (100.0, 114.0), (230.0, 171.0)] {
            r.record(DomEvent {
                kind: EventKind::Scroll,
                timestamp_ms: t,
                target: None,
                payload: EventPayload::Scroll { scroll_y: y },
            });
        }
        assert_eq!(r.scroll_deltas(), vec![57.0, 57.0]);
        assert_eq!(r.scroll_gaps(), vec![100.0, 130.0]);
    }

    #[test]
    fn clear_resets() {
        let mut r = EventRecorder::new();
        r.record(key_ev(EventKind::KeyDown, 0.0, "a"));
        assert!(!r.is_empty());
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert!(r.cursor_trace().is_empty());
        assert!(r.keystrokes().is_empty());
        assert_eq!(r.wheel_count(), 0);
        assert!(r.counters().get("events.keydown").is_none());
    }

    /// The incremental aggregates equal the full-scan references after a
    /// busy mixed trace — including unmatched presses, rollover typing,
    /// and a mid-stream burst of every event family.
    #[test]
    fn incremental_views_equal_rescan() {
        let mut r = EventRecorder::new();
        // Mixed trace: moves, an interleaved typing burst, a right-button
        // press with no release, clicks, wheel + scroll cadence.
        r.record(mouse_ev(
            EventKind::MouseMove,
            1.0,
            10.0,
            20.0,
            MouseButton::Left,
        ));
        r.record(key_ev(EventKind::KeyDown, 2.0, "a"));
        r.record(key_ev(EventKind::KeyDown, 3.0, "b"));
        r.record(mouse_ev(
            EventKind::MouseDown,
            4.0,
            11.0,
            21.0,
            MouseButton::Right,
        ));
        r.record(key_ev(EventKind::KeyUp, 5.0, "a"));
        r.record(mouse_ev(
            EventKind::MouseDown,
            6.0,
            12.0,
            22.0,
            MouseButton::Left,
        ));
        r.record(key_ev(EventKind::KeyUp, 7.0, "b"));
        r.record(mouse_ev(
            EventKind::MouseUp,
            8.0,
            12.0,
            22.0,
            MouseButton::Left,
        ));
        for (i, y) in [(0u32, 57.0), (1, 114.0), (2, 171.0)] {
            r.record(DomEvent {
                kind: EventKind::Wheel,
                timestamp_ms: 9.0 + f64::from(i),
                target: None,
                payload: EventPayload::Mouse {
                    x: 12.0,
                    y: 22.0,
                    button: MouseButton::Left,
                },
            });
            r.record(DomEvent {
                kind: EventKind::Scroll,
                timestamp_ms: 9.5 + f64::from(i),
                target: None,
                payload: EventPayload::Scroll { scroll_y: y },
            });
        }
        r.record(key_ev(EventKind::KeyDown, 20.0, "c"));
        r.record(key_ev(EventKind::KeyUp, 25.0, "c"));

        assert_eq!(r.cursor_trace(), r.cursor_trace_rescan());
        assert_eq!(r.clicks(), r.clicks_rescan());
        assert_eq!(r.keystrokes(), r.keystrokes_rescan());
        assert_eq!(r.key_flight_times(), r.key_flight_times_rescan());
        assert_eq!(r.scroll_deltas(), r.scroll_deltas_rescan());
        assert_eq!(r.scroll_gaps(), r.scroll_gaps_rescan());
        assert_eq!(r.wheel_count(), r.wheel_count_rescan());
    }
}
