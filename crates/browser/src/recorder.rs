//! Event recorder — the stand-in for a page's JavaScript event listeners.
//!
//! Appendix E: "We built a website that uses JavaScript to record events."
//! The recorder captures every dispatched event in order and offers the
//! trace views the paper's analysis needs (cursor trajectories, click
//! timings, key dwell/flight times, scroll cadences).

use crate::events::{DomEvent, EventKind, EventPayload, MouseButton};
use hlisa_sim::{CounterSet, Observer};

/// A recorded interaction trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventRecorder {
    events: Vec<DomEvent>,
    click_offsets: Vec<f64>,
}

/// A single sampled cursor position.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CursorSample {
    /// Event timestamp (ms).
    pub t: f64,
    /// Page x.
    pub x: f64,
    /// Page y.
    pub y: f64,
}

/// One observed click: press/release pair on the same target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClickObservation {
    /// `mousedown` timestamp.
    pub down_t: f64,
    /// `mouseup` timestamp.
    pub up_t: f64,
    /// Press position x.
    pub x: f64,
    /// Press position y.
    pub y: f64,
    /// Button dwell time (ms).
    pub dwell_ms: f64,
    /// Button.
    pub button: MouseButton,
}

/// One observed key stroke: down/up pair for the same key.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyObservation {
    /// `keydown` timestamp.
    pub down_t: f64,
    /// `keyup` timestamp.
    pub up_t: f64,
    /// The key.
    pub key: String,
    /// Dwell time (ms).
    pub dwell_ms: f64,
}

impl EventRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one event.
    pub fn record(&mut self, ev: DomEvent) {
        self.events.push(ev);
    }

    /// All events in dispatch order.
    pub fn events(&self) -> &[DomEvent] {
        &self.events
    }

    /// Records a normalised radial click offset, computed at dispatch time
    /// against the clicked element's box — what a page script derives from
    /// `getBoundingClientRect()` inside its click listener.
    pub fn record_click_offset(&mut self, offset_frac: f64) {
        self.click_offsets.push(offset_frac);
    }

    /// Normalised radial click offsets, in click order.
    pub fn click_offsets(&self) -> &[f64] {
        &self.click_offsets
    }

    /// Clears the trace.
    pub fn clear(&mut self) {
        self.events.clear();
        self.click_offsets.clear();
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events of one kind.
    pub fn of_kind(&self, kind: EventKind) -> Vec<&DomEvent> {
        self.events.iter().filter(|e| e.kind == kind).collect()
    }

    /// The cursor trajectory: every `mousemove` as (t, x, y).
    pub fn cursor_trace(&self) -> Vec<CursorSample> {
        self.events
            .iter()
            .filter(|e| e.kind == EventKind::MouseMove)
            .filter_map(|e| match &e.payload {
                EventPayload::Mouse { x, y, .. } => Some(CursorSample {
                    t: e.timestamp_ms,
                    x: *x,
                    y: *y,
                }),
                _ => None,
            })
            .collect()
    }

    /// Click observations: mousedown/mouseup pairs per button, in order.
    pub fn clicks(&self) -> Vec<ClickObservation> {
        let mut out = Vec::new();
        let mut pending: Vec<(MouseButton, f64, f64, f64)> = Vec::new();
        for e in &self.events {
            match (&e.kind, &e.payload) {
                (EventKind::MouseDown, EventPayload::Mouse { x, y, button }) => {
                    pending.push((*button, e.timestamp_ms, *x, *y));
                }
                (EventKind::MouseUp, EventPayload::Mouse { button, .. }) => {
                    if let Some(pos) = pending.iter().position(|(b, ..)| b == button) {
                        let (b, down_t, x, y) = pending.remove(pos);
                        out.push(ClickObservation {
                            down_t,
                            up_t: e.timestamp_ms,
                            x,
                            y,
                            dwell_ms: e.timestamp_ms - down_t,
                            button: b,
                        });
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Key observations: keydown/keyup pairs per key, supporting the
    /// interleaved presses fast human typing produces (§4.1: "sometimes a
    /// key is only released when a different key has already been pressed").
    pub fn keystrokes(&self) -> Vec<KeyObservation> {
        let mut out = Vec::new();
        let mut pending: Vec<(String, f64)> = Vec::new();
        for e in &self.events {
            match (&e.kind, &e.payload) {
                (EventKind::KeyDown, EventPayload::Key { key, .. }) => {
                    pending.push((key.clone(), e.timestamp_ms));
                }
                (EventKind::KeyUp, EventPayload::Key { key, .. }) => {
                    if let Some(pos) = pending.iter().position(|(k, _)| k == key) {
                        let (k, down_t) = pending.remove(pos);
                        out.push(KeyObservation {
                            down_t,
                            up_t: e.timestamp_ms,
                            key: k,
                            dwell_ms: e.timestamp_ms - down_t,
                        });
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Flight times between consecutive keystrokes: keyup(i) → keydown(i+1),
    /// in ms (may be negative for interleaved presses).
    pub fn key_flight_times(&self) -> Vec<f64> {
        let strokes = self.keystrokes();
        strokes
            .windows(2)
            .map(|w| w[1].down_t - w[0].up_t)
            .collect()
    }

    /// Scroll deltas between consecutive scroll events (px).
    pub fn scroll_deltas(&self) -> Vec<f64> {
        let ys: Vec<f64> = self
            .events
            .iter()
            .filter_map(|e| match (&e.kind, &e.payload) {
                (EventKind::Scroll, EventPayload::Scroll { scroll_y }) => Some(*scroll_y),
                _ => None,
            })
            .collect();
        ys.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Inter-event gaps between consecutive scroll events (ms).
    pub fn scroll_gaps(&self) -> Vec<f64> {
        let ts: Vec<f64> = self
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Scroll)
            .map(|e| e.timestamp_ms)
            .collect();
        ts.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Count of wheel events.
    pub fn wheel_count(&self) -> usize {
        self.of_kind(EventKind::Wheel).len()
    }
}

/// The recorder is the canonical [`Observer`]: the browser feeds it every
/// dispatched event through this impl, and its counters expose the trace
/// as per-event-kind metrics.
impl Observer<DomEvent> for EventRecorder {
    fn on_event(&mut self, _t_ms: f64, event: &DomEvent) {
        self.record(event.clone());
    }

    fn counters(&self) -> CounterSet {
        let mut counters = CounterSet::new();
        counters.add("events.total", self.events.len() as u64);
        for e in &self.events {
            counters.add(&format!("events.{}", e.kind.name()), 1);
        }
        counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{DomEvent, EventPayload};

    fn mouse_ev(kind: EventKind, t: f64, x: f64, y: f64, button: MouseButton) -> DomEvent {
        DomEvent {
            kind,
            timestamp_ms: t,
            target: None,
            payload: EventPayload::Mouse { x, y, button },
        }
    }

    fn key_ev(kind: EventKind, t: f64, key: &str) -> DomEvent {
        DomEvent {
            kind,
            timestamp_ms: t,
            target: None,
            payload: EventPayload::Key {
                key: key.into(),
                shift: false,
            },
        }
    }

    #[test]
    fn cursor_trace_extracts_moves() {
        let mut r = EventRecorder::new();
        r.record(mouse_ev(
            EventKind::MouseMove,
            1.0,
            10.0,
            20.0,
            MouseButton::Left,
        ));
        r.record(mouse_ev(
            EventKind::MouseDown,
            2.0,
            10.0,
            20.0,
            MouseButton::Left,
        ));
        r.record(mouse_ev(
            EventKind::MouseMove,
            3.0,
            11.0,
            21.0,
            MouseButton::Left,
        ));
        let trace = r.cursor_trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[1].x, 11.0);
    }

    #[test]
    fn clicks_pair_down_and_up() {
        let mut r = EventRecorder::new();
        r.record(mouse_ev(
            EventKind::MouseDown,
            10.0,
            5.0,
            5.0,
            MouseButton::Left,
        ));
        r.record(mouse_ev(
            EventKind::MouseUp,
            95.0,
            5.0,
            5.0,
            MouseButton::Left,
        ));
        let clicks = r.clicks();
        assert_eq!(clicks.len(), 1);
        assert_eq!(clicks[0].dwell_ms, 85.0);
        assert_eq!(clicks[0].button, MouseButton::Left);
    }

    #[test]
    fn keystrokes_support_interleaving() {
        let mut r = EventRecorder::new();
        // a down, b down, a up, b up — rollover typing.
        r.record(key_ev(EventKind::KeyDown, 0.0, "a"));
        r.record(key_ev(EventKind::KeyDown, 40.0, "b"));
        r.record(key_ev(EventKind::KeyUp, 60.0, "a"));
        r.record(key_ev(EventKind::KeyUp, 110.0, "b"));
        let ks = r.keystrokes();
        assert_eq!(ks.len(), 2);
        assert_eq!(ks[0].key, "a");
        assert_eq!(ks[0].dwell_ms, 60.0);
        assert_eq!(ks[1].key, "b");
        assert_eq!(ks[1].dwell_ms, 70.0);
        // Negative flight time marks the interleave.
        let flights = r.key_flight_times();
        assert_eq!(flights, vec![-20.0]);
    }

    #[test]
    fn scroll_views() {
        let mut r = EventRecorder::new();
        for (t, y) in [(0.0, 57.0), (100.0, 114.0), (230.0, 171.0)] {
            r.record(DomEvent {
                kind: EventKind::Scroll,
                timestamp_ms: t,
                target: None,
                payload: EventPayload::Scroll { scroll_y: y },
            });
        }
        assert_eq!(r.scroll_deltas(), vec![57.0, 57.0]);
        assert_eq!(r.scroll_gaps(), vec![100.0, 130.0]);
    }

    #[test]
    fn clear_resets() {
        let mut r = EventRecorder::new();
        r.record(key_ev(EventKind::KeyDown, 0.0, "a"));
        assert!(!r.is_empty());
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
    }
}
