//! Table 4 regenerator: feature comparison of human-like interaction tools,
//! plus a measured column — each tool's motion recipe judged by the
//! level-1/level-2 detectors.

use hlisa::comparators::{Feature, Tool};
use hlisa::motion::plan_motion_with;
use hlisa_browser::Point;
use hlisa_detect::interaction::TraceFeatures;
use hlisa_detect::{HumanReference, InteractionDetector};
use hlisa_human::cursor::metrics;
use hlisa_human::HumanParams;
use hlisa_stats::ascii::format_table;
use hlisa_stats::descriptive::coefficient_of_variation;
// Pinned pre-SimContext seeding: the published table derives from this
// stream layout; migrating would change it. lint: allow(no-rng-from-seed)
use hlisa_stats::rngutil::{derive_seed, rng_from_seed};

/// Formats the check-mark matrix exactly as in Table 4.
pub fn feature_matrix() -> String {
    let mut out = String::from(
        "Table 4: A comparison of different libraries or code samples to simulate\n\
         human-like behaviour. 'x' = functionality present.\n\n",
    );
    let mut header = vec!["Functionality".to_string()];
    header.extend(Tool::ALL.iter().map(|t| t.name().to_string()));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let rows: Vec<Vec<String>> = Feature::ALL
        .iter()
        .map(|f| {
            let mut row = vec![f.label().to_string()];
            row.extend(
                Tool::ALL
                    .iter()
                    .map(|t| if t.has(*f) { "x" } else { "" }.to_string()),
            );
            row
        })
        .collect();
    out.push_str(&format_table(&header_refs, &rows));
    out
}

/// Measured verdicts for each motion-capable tool: whether an L1 detector
/// flags its cursor movements.
pub fn measured_motion_verdicts(seed: u64, reference: &HumanReference) -> Vec<(Tool, bool, bool)> {
    let params = HumanParams::paper_baseline();
    let l1 = InteractionDetector::level1();
    let l2 = InteractionDetector::level2(reference.clone());
    Tool::ALL
        .iter()
        .filter_map(|tool| {
            let style = tool.motion_style()?;
            // Same justification as the import. lint: allow(no-rng-from-seed)
            let mut rng = rng_from_seed(derive_seed(seed, tool.name(), 0));
            // Generate 12 representative movements and summarise them the
            // way the detectors see them.
            let mut features = TraceFeatures::default();
            for i in 0..12 {
                let from = Point::new(100.0 + f64::from(i) * 40.0, 600.0 - f64::from(i) * 30.0);
                let to = Point::new(1_100.0 - f64::from(i) * 50.0, 150.0 + f64::from(i) * 25.0);
                let t = plan_motion_with(style, &params, &mut rng, from, to, 40.0);
                features.straightness.push(metrics::straightness(&t));
                let speeds = metrics::speeds(&t);
                if speeds.len() >= 3 {
                    features.speed_cvs.push(coefficient_of_variation(&speeds));
                    features.max_speed = features
                        .max_speed
                        .max(speeds.iter().copied().fold(0.0, f64::max));
                }
            }
            let v1 = l1.judge_features(&features).is_bot;
            let v2 = l2.judge_features(&features).is_bot;
            Some((*tool, v1, v2))
        })
        .collect()
}

/// Full Table 4 report with the measured extension.
pub fn report(seed: u64, reference: &HumanReference) -> String {
    let mut out = feature_matrix();
    out.push_str("\nMeasured extension: cursor-motion recipes vs the interaction detectors\n");
    let header = ["Tool", "flagged by L1", "flagged by L2"];
    let rows: Vec<Vec<String>> = measured_motion_verdicts(seed, reference)
        .into_iter()
        .map(|(tool, l1, l2)| {
            vec![
                tool.name().to_string(),
                if l1 { "yes" } else { "no" }.to_string(),
                if l2 { "yes" } else { "no" }.to_string(),
            ]
        })
        .collect();
    out.push_str(&format_table(&header, &rows));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_contains_all_tools_and_features() {
        let m = feature_matrix();
        for t in Tool::ALL {
            assert!(m.contains(t.name()), "{} missing", t.name());
        }
        assert!(m.contains("Movement shivering"));
        assert!(m.contains("Selenium ready"));
    }

    #[test]
    fn hlisa_motion_evades_l1_and_hmm_does_not() {
        let reference = HumanReference::generate(50, 2);
        let verdicts = measured_motion_verdicts(9, &reference);
        let get = |t: Tool| verdicts.iter().find(|(x, ..)| *x == t).unwrap();
        // HMM's fixed-step B-spline is unrealistically fast → L1 flags it.
        assert!(get(Tool::Hmm).1, "HMM should be flagged at L1");
        // HLISA's motion passes both levels.
        assert!(!get(Tool::Hlisa).1);
        assert!(!get(Tool::Hlisa).2);
    }
}
