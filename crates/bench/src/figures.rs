//! Figure 1 (cursor trajectories) and Figure 2 (click distributions).

use hlisa::motion::{plan_motion_with, CurveStyle, DurationModel, MotionStyle, VelocityProfile};
use hlisa::{HlisaActionChains, NaiveActionChains};
use hlisa_browser::dom::{Document, ElementBuilder};
use hlisa_browser::{Browser, BrowserConfig, Point, Rect};
use hlisa_human::cursor::generate_with as human_generate;
use hlisa_human::{HumanAgent, HumanParams};
use hlisa_stats::ascii::{plot_density, plot_lines};
use hlisa_stats::hist::Histogram2d;
// Pinned pre-SimContext seeding: the published figure numbers derive from
// this stream layout; migrating would change them. lint: allow(no-rng-from-seed)
use hlisa_stats::rngutil::{derive_seed, rng_from_seed};
use hlisa_stats::Summary;
use hlisa_webdriver::{By, SeleniumActionChains, Session};

/// The four agents of Figures 1–2, in the paper's panel order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Agent {
    /// (A / top-left) Selenium.
    Selenium,
    /// (B / top-right) Human.
    Human,
    /// (C / bottom-left) Naive solution.
    Naive,
    /// (D / bottom-right) HLISA.
    Hlisa,
}

impl Agent {
    /// All agents, panel order.
    pub const ALL: [Agent; 4] = [Agent::Selenium, Agent::Human, Agent::Naive, Agent::Hlisa];

    /// Panel label.
    pub fn label(&self) -> &'static str {
        match self {
            Agent::Selenium => "Selenium",
            Agent::Human => "human",
            Agent::Naive => "naive solution",
            Agent::Hlisa => "HLISA",
        }
    }
}

// ---------------------------------------------------------------------
// Figure 1
// ---------------------------------------------------------------------

/// Fig. 1 endpoints: a long diagonal movement across the page.
pub const FIG1_FROM: Point = Point::new(100.0, 500.0);
/// Movement target.
pub const FIG1_TO: Point = Point::new(900.0, 300.0);

/// One agent's trajectory as (x, y) points.
pub type Trajectory = Vec<(f64, f64)>;

/// Generates the four Fig. 1 trajectories.
pub fn figure1_trajectories(seed: u64) -> Vec<(Agent, Trajectory)> {
    let params = HumanParams::paper_baseline();
    Agent::ALL
        .iter()
        .map(|agent| {
            // Same justification as the import. lint: allow(no-rng-from-seed)
            let mut rng = rng_from_seed(derive_seed(seed, "fig1", *agent as u64));
            let style = match agent {
                Agent::Selenium => MotionStyle {
                    curve: CurveStyle::Straight,
                    velocity: VelocityProfile::Uniform,
                    jitter_px: 0.0,
                    duration: DurationModel::Fixed(250.0),
                },
                Agent::Naive => MotionStyle::naive_bezier(),
                Agent::Hlisa => MotionStyle::hlisa(),
                Agent::Human => {
                    let t = human_generate(&params, &mut rng, FIG1_FROM, FIG1_TO, 40.0);
                    return (*agent, t.iter().map(|s| (s.x, s.y)).collect());
                }
            };
            let t = plan_motion_with(style, &params, &mut rng, FIG1_FROM, FIG1_TO, 40.0);
            (*agent, t.iter().map(|s| (s.x, s.y)).collect())
        })
        .collect()
}

/// Renders Fig. 1 as four ASCII panels plus a CSV appendix.
pub fn figure1_report(seed: u64) -> String {
    let trajectories = figure1_trajectories(seed);
    let mut out = String::from(
        "Figure 1: Cursor trajectories for (A) Selenium, (B) human, (C) naive solution, (D) HLISA.\n\n",
    );
    for (agent, t) in &trajectories {
        out.push_str(&format!("({:?}) {}\n", agent, agent.label()));
        out.push_str(&plot_lines(&[(agent.label(), t.as_slice())], 72, 14));
        out.push('\n');
    }
    out.push_str("CSV (agent,x,y):\n");
    for (agent, t) in &trajectories {
        for (x, y) in t.iter().step_by(4) {
            out.push_str(&format!("{},{:.1},{:.1}\n", agent.label(), x, y));
        }
    }
    out
}

// ---------------------------------------------------------------------
// Figure 2
// ---------------------------------------------------------------------

/// Click-task element size (a typical button).
pub const FIG2_ELEMENT: (f64, f64) = (120.0, 40.0);

fn click_page() -> Document {
    let mut doc = Document::new("https://fig2.test/", 1280.0, 720.0);
    ElementBuilder::new("body", Rect::new(0.0, 0.0, 1280.0, 720.0)).insert(&mut doc);
    ElementBuilder::new(
        "button",
        Rect::new(400.0, 300.0, FIG2_ELEMENT.0, FIG2_ELEMENT.1),
    )
    .id("target")
    .insert(&mut doc);
    doc
}

fn target_rect(seed: u64, round: usize) -> Rect {
    let h = derive_seed(seed, "fig2-pos", round as u64);
    let x = 60.0 + (h % 1_000) as f64 / 1_000.0 * 1_000.0;
    let y = 60.0 + ((h >> 12) % 1_000) as f64 / 1_000.0 * 560.0;
    Rect::new(x, y, FIG2_ELEMENT.0, FIG2_ELEMENT.1)
}

/// Collected click points for one agent, in element-relative fractions
/// (0..1 on both axes).
#[derive(Debug, Clone, PartialEq)]
pub struct ClickCloud {
    /// Which agent produced the clicks.
    pub agent: Agent,
    /// Click positions as fractions of element width/height.
    pub points: Vec<(f64, f64)>,
}

impl ClickCloud {
    /// Fraction of clicks within 1 px of the exact centre.
    pub fn exact_center_fraction(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        let hits = self
            .points
            .iter()
            .filter(|(fx, fy)| {
                (fx - 0.5).abs() * FIG2_ELEMENT.0 < 1.0 && (fy - 0.5).abs() * FIG2_ELEMENT.1 < 1.0
            })
            .count();
        hits as f64 / self.points.len() as f64
    }

    /// Standard deviation of the x fraction (spread measure).
    pub fn x_spread(&self) -> f64 {
        Summary::of(&self.points.iter().map(|(x, _)| *x).collect::<Vec<_>>()).std_dev
    }

    /// A 2-D density over the element for rendering.
    pub fn density(&self, nx: usize, ny: usize) -> Histogram2d {
        let mut h = Histogram2d::new(0.0, 1.0, 0.0, 1.0, nx, ny);
        for (x, y) in &self.points {
            h.add(*x, *y);
        }
        h
    }
}

/// Runs the Appendix E click task (`rounds` clicks on a relocating
/// element) for each agent.
pub fn figure2_clicks(seed: u64, rounds: usize) -> Vec<ClickCloud> {
    Agent::ALL
        .iter()
        .map(|agent| ClickCloud {
            agent: *agent,
            points: run_click_task(*agent, seed, rounds),
        })
        .collect()
}

fn run_click_task(agent: Agent, seed: u64, rounds: usize) -> Vec<(f64, f64)> {
    let mut points = Vec::with_capacity(rounds);
    match agent {
        Agent::Human => {
            let mut browser = Browser::open(BrowserConfig::regular(), click_page());
            let mut human = HumanAgent::baseline(derive_seed(seed, "fig2-human", 0));
            let target = browser.document().by_id("target").unwrap();
            for round in 0..rounds {
                let rect = target_rect(seed, round);
                browser.document_mut().element_mut(target).rect = rect;
                let p = human.click_element(&mut browser, target);
                points.push(((p.x - rect.x) / rect.width, (p.y - rect.y) / rect.height));
            }
        }
        _ => {
            let mut session = Session::new(Browser::open(BrowserConfig::webdriver(), click_page()));
            let target = session.find_element(By::Id("target".into())).unwrap();
            for round in 0..rounds {
                let rect = target_rect(seed, round);
                session
                    .browser
                    .document_mut()
                    .element_mut(target.node())
                    .rect = rect;
                match agent {
                    Agent::Selenium => SeleniumActionChains::new()
                        .click(Some(target))
                        .perform(&mut session)
                        .expect("selenium click"),
                    Agent::Naive => {
                        NaiveActionChains::new(derive_seed(seed, "fig2-naive", round as u64))
                            .click(Some(target))
                            .perform(&mut session)
                            .expect("naive click")
                    }
                    Agent::Hlisa => {
                        HlisaActionChains::new(derive_seed(seed, "fig2-hlisa", round as u64))
                            .click(Some(target))
                            .perform(&mut session)
                            .expect("hlisa click")
                    }
                    Agent::Human => unreachable!(),
                }
                let click = *session
                    .browser
                    .recorder
                    .clicks()
                    .last()
                    .expect("click recorded");
                points.push((
                    (click.x - rect.x) / rect.width,
                    (click.y - rect.y) / rect.height,
                ));
            }
        }
    }
    points
}

/// Renders Fig. 2 as four density panels plus summary statistics.
pub fn figure2_report(seed: u64, rounds: usize) -> String {
    let clouds = figure2_clicks(seed, rounds);
    let mut out = String::from(
        "Figure 2: distribution of mouse clicks of (top left) Selenium, (top right) humans,\n\
         (bottom left) naive solution, (bottom right) HLISA. Densities over the element box.\n\n",
    );
    for cloud in &clouds {
        out.push_str(&format!(
            "{}: {} clicks, {:.0}% exactly centred, x-spread (fraction) = {:.3}\n",
            cloud.agent.label(),
            cloud.points.len(),
            100.0 * cloud.exact_center_fraction(),
            cloud.x_spread(),
        ));
        out.push_str(&plot_density(&cloud.density(40, 12)));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlisa_human::cursor::metrics;
    use hlisa_human::cursor::TrajectorySample;

    fn as_samples(t: &[(f64, f64)]) -> Vec<TrajectorySample> {
        t.iter()
            .enumerate()
            .map(|(i, (x, y))| TrajectorySample {
                t_ms: i as f64,
                x: *x,
                y: *y,
            })
            .collect()
    }

    #[test]
    fn figure1_shapes_match_the_paper() {
        let ts = figure1_trajectories(42);
        let straightness: Vec<(Agent, f64)> = ts
            .iter()
            .map(|(a, t)| (*a, metrics::straightness(&as_samples(t))))
            .collect();
        let get = |a: Agent| straightness.iter().find(|(x, _)| *x == a).unwrap().1;
        // Selenium is perfectly straight; everyone else curves.
        assert!(get(Agent::Selenium) > 0.999999);
        assert!(get(Agent::Human) < 0.9999);
        assert!(get(Agent::Naive) < 0.9999);
        assert!(get(Agent::Hlisa) < 0.9999);
        // All reach the same endpoints.
        for (_, t) in &ts {
            assert_eq!(*t.last().unwrap(), (FIG1_TO.x, FIG1_TO.y));
        }
    }

    #[test]
    fn figure2_distributions_match_the_paper() {
        let clouds = figure2_clicks(7, 40);
        let get = |a: Agent| clouds.iter().find(|c| c.agent == a).unwrap();
        // Selenium: every click dead centre.
        assert!((get(Agent::Selenium).exact_center_fraction() - 1.0).abs() < 1e-9);
        assert!(get(Agent::Selenium).x_spread() < 1e-9);
        // Humans: distributed but hardly ever centred.
        assert!(get(Agent::Human).exact_center_fraction() < 0.2);
        assert!(get(Agent::Human).x_spread() > 0.05);
        // Naive: wider (uniform) spread than human/HLISA.
        assert!(get(Agent::Naive).x_spread() > get(Agent::Human).x_spread());
        assert!(get(Agent::Naive).x_spread() > get(Agent::Hlisa).x_spread());
        // HLISA: spread comparable to human (same distribution family).
        let ratio = get(Agent::Hlisa).x_spread() / get(Agent::Human).x_spread();
        assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn reports_render() {
        let r1 = figure1_report(1);
        assert!(r1.contains("Selenium"));
        assert!(r1.contains("CSV"));
        let r2 = figure2_report(1, 12);
        assert!(r2.contains("HLISA"));
    }
}
