//! Chaos-mode campaign benchmark: what the fault plane costs.
//!
//! Two measurements, emitted as `BENCH_chaos.json`:
//!
//! 1. **Rate-0 overhead** — the legacy runner vs the chaos runner with
//!    [`ChaosConfig::off`]. The outputs are asserted bit-identical (the
//!    PR's key invariant), so the comparison isolates the pure plumbing
//!    cost of the fault plane when nothing is injected.
//! 2. **Faulted throughput** — visits/sec at a 5% uniform per-visit
//!    fault rate with the default retry/breaker policy, plus the
//!    resulting `fault.*` / `retry.*` / `breaker.*` counters (asserted
//!    reproducible across the two timed runs).
//!
//! Timing reads the wall clock on purpose, like the other benches: the
//! numbers feed a JSON report, never a simulated observable.

use crate::campaign_bench::Comparison;
use hlisa_crawler::campaign::{run_campaign, CampaignConfig};
use hlisa_crawler::chaos::{run_chaos_campaign, ChaosConfig};
use hlisa_sim::CounterSet;
use hlisa_web::PopulationConfig;
use std::time::Duration;

/// The per-visit fault rate the faulted side runs at.
pub const FAULT_RATE: f64 = 0.05;

/// Benchmark sizing.
#[derive(Debug, Clone, Copy)]
pub struct ChaosBenchConfig {
    /// Sites in the campaign population.
    pub campaign_sites: usize,
    /// Visits per site per machine.
    pub visits_per_site: usize,
}

impl ChaosBenchConfig {
    /// The default run: big enough for stable ratios.
    pub fn full() -> Self {
        Self {
            campaign_sites: 120,
            visits_per_site: 8,
        }
    }

    /// A seconds-scale smoke run for CI.
    pub fn smoke() -> Self {
        Self {
            campaign_sites: 30,
            visits_per_site: 4,
        }
    }
}

/// The chaos benchmark result.
#[derive(Debug, Clone)]
pub struct ChaosBenchReport {
    /// Sizing used.
    pub config: ChaosBenchConfig,
    /// Visits per campaign side (2 machines × sites × visits).
    pub campaign_visits: u64,
    /// Legacy runner (baseline) vs rate-0 chaos runner (optimized):
    /// `speedup` near 1.0 means the fault plane is free when off.
    pub rate_zero: Comparison,
    /// Elapsed seconds for the 5%-fault campaign.
    pub faulted_s: f64,
    /// Attempts actually simulated in the faulted run (visits + retries
    /// − breaker skips).
    pub faulted_attempts: u64,
    /// The faulted run's fault/retry/breaker counters.
    pub counters: CounterSet,
}

fn timed<R>(f: impl FnOnce() -> R) -> (Duration, R) {
    let start = std::time::Instant::now();
    let out = f();
    (start.elapsed(), out)
}

fn campaign_config(bench: &ChaosBenchConfig) -> CampaignConfig {
    CampaignConfig {
        seed: 42,
        population: PopulationConfig {
            n_sites: bench.campaign_sites,
            // Keep the paper's 79/1000 unreachable fraction at any sizing;
            // the default's absolute count would drown the breaker/retry
            // numbers in intrinsically dead sites at bench scale.
            unreachable_sites: bench.campaign_sites * 79 / 1000,
            ..PopulationConfig::default()
        },
        visits_per_site: bench.visits_per_site,
        instances: 4,
        world_cache: true,
        plan_interactions: false,
    }
}

/// Runs the whole suite.
pub fn run(config: ChaosBenchConfig) -> ChaosBenchReport {
    let cfg = campaign_config(&config);
    let visits = 2 * config.campaign_sites as u64 * config.visits_per_site as u64;

    let (legacy_t, legacy) = timed(|| run_campaign(&cfg));
    let (zero_t, zero) = timed(|| run_chaos_campaign(&cfg, &ChaosConfig::off()));
    assert_eq!(
        zero.campaign, legacy,
        "rate-0 chaos diverged from the legacy runner"
    );

    let faulted_cfg = ChaosConfig::uniform(FAULT_RATE);
    let (faulted_t, faulted) = timed(|| run_chaos_campaign(&cfg, &faulted_cfg));
    let (_, again) = timed(|| run_chaos_campaign(&cfg, &faulted_cfg));
    assert_eq!(
        faulted.counters(),
        again.counters(),
        "faulted counters not reproducible"
    );

    let attempts: u64 = [&faulted.openwpm_recovery, &faulted.spoofed_recovery]
        .iter()
        .flat_map(|m| &m.sites)
        .map(|s| u64::from(s.total_attempts()))
        .sum();

    ChaosBenchReport {
        config,
        campaign_visits: visits,
        rate_zero: Comparison {
            ops: visits,
            baseline_s: legacy_t.as_secs_f64(),
            optimized_s: zero_t.as_secs_f64(),
        },
        faulted_s: faulted_t.as_secs_f64(),
        faulted_attempts: attempts,
        counters: faulted.counters(),
    }
}

fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

impl ChaosBenchReport {
    /// Visits/sec of the faulted run.
    pub fn faulted_rate(&self) -> f64 {
        self.campaign_visits as f64 / self.faulted_s.max(1e-12)
    }

    /// Serializes the report (hand-rolled, like the campaign bench: the
    /// workspace vendors no JSON writer).
    pub fn to_json(&self) -> String {
        let counters: Vec<String> = self
            .counters
            .entries()
            .iter()
            .map(|(name, value)| format!("\"{name}\": {value}"))
            .collect();
        format!(
            concat!(
                "{{\n",
                "  \"benchmark\": \"hlisa chaos-mode campaign (fault plane + recovery)\",\n",
                "  \"config\": {{\"campaign_sites\": {}, \"visits_per_site\": {}, ",
                "\"fault_rate\": {}}},\n",
                "  \"rate_zero_overhead\": {{\"ops\": {}, \"unit\": \"visits\", ",
                "\"legacy_s\": {}, \"chaos_off_s\": {}, \"legacy_per_sec\": {}, ",
                "\"chaos_off_per_sec\": {}, \"overhead_ratio\": {}}},\n",
                "  \"faulted\": {{\"ops\": {}, \"unit\": \"visits\", \"attempts\": {}, ",
                "\"elapsed_s\": {}, \"visits_per_sec\": {}}},\n",
                "  \"counters\": {{{}}}\n",
                "}}\n"
            ),
            self.config.campaign_sites,
            self.config.visits_per_site,
            json_num(FAULT_RATE),
            self.rate_zero.ops,
            json_num(self.rate_zero.baseline_s),
            json_num(self.rate_zero.optimized_s),
            json_num(self.rate_zero.baseline_rate()),
            json_num(self.rate_zero.optimized_rate()),
            json_num(self.rate_zero.optimized_s / self.rate_zero.baseline_s.max(1e-12)),
            self.campaign_visits,
            self.faulted_attempts,
            json_num(self.faulted_s),
            json_num(self.faulted_rate()),
            counters.join(", "),
        )
    }

    /// Human-readable summary.
    pub fn render_human(&self) -> String {
        let mut out = String::from("chaos-mode campaign benchmark\n");
        out.push_str(&format!(
            "rate-0 overhead    {:>12.0}/s -> {:>12.0}/s   (x{:.2} elapsed)\n",
            self.rate_zero.baseline_rate(),
            self.rate_zero.optimized_rate(),
            self.rate_zero.optimized_s / self.rate_zero.baseline_s.max(1e-12),
        ));
        out.push_str(&format!(
            "5% faults          {:>12.0} visits/s over {} attempts\n",
            self.faulted_rate(),
            self.faulted_attempts,
        ));
        for (name, value) in self.counters.entries() {
            out.push_str(&format!("  {name:<28} {value}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_report_is_well_formed() {
        let report = run(ChaosBenchConfig {
            campaign_sites: 12,
            visits_per_site: 2,
        });
        assert_eq!(report.campaign_visits, 2 * 12 * 2);
        assert!(
            report.faulted_attempts
                >= report.campaign_visits
                    - report.counters.get("breaker.skipped_visits").unwrap_or(0)
        );
        let json = report.to_json();
        for field in [
            "\"rate_zero_overhead\"",
            "\"faulted\"",
            "\"counters\"",
            "\"overhead_ratio\"",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        let human = report.render_human();
        assert!(human.contains("rate-0 overhead"));
    }
}
