//! Ablation experiments for HLISA's design choices.
//!
//! Each ablation removes one ingredient of HLISA's interaction model and
//! measures the consequence with the same detectors used everywhere else —
//! quantifying why the paper's design (§4.1) needs *all* of curve + noise +
//! easing for motion, a normal (not uniform) click distribution, sampled
//! (not fixed) typing timings, and finger-break scrolling.

use hlisa::motion::{plan_motion_with, CurveStyle, DurationModel, MotionStyle, VelocityProfile};
use hlisa_browser::Point;
use hlisa_detect::interaction::TraceFeatures;
use hlisa_detect::{HumanReference, InteractionDetector};
use hlisa_human::cursor::metrics;
use hlisa_human::HumanParams;
use hlisa_stats::ascii::format_table;
use hlisa_stats::descriptive::coefficient_of_variation;
// Pinned pre-SimContext seeding: the published ablation numbers derive from
// this stream layout; migrating would change them. lint: allow(no-rng-from-seed)
use hlisa_stats::rngutil::{derive_seed, rng_from_seed};
use hlisa_stats::{Normal, TruncatedNormal};
use rand::Rng;

/// One ablation row: variant name and detection rates at L1/L2.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Variant label.
    pub variant: String,
    /// L1 detection rate over the trials.
    pub l1_rate: f64,
    /// L2 detection rate over the trials.
    pub l2_rate: f64,
}

/// Motion ablation: which ingredients of the HLISA trajectory matter.
pub fn motion_ablation(seed: u64, reference: &HumanReference, trials: usize) -> Vec<AblationRow> {
    let params = HumanParams::paper_baseline();
    let variants: Vec<(&str, MotionStyle)> = vec![
        (
            "straight + uniform (Selenium)",
            MotionStyle {
                curve: CurveStyle::Straight,
                velocity: VelocityProfile::Uniform,
                jitter_px: 0.0,
                duration: DurationModel::Fixed(250.0),
            },
        ),
        ("bezier + uniform (naive)", MotionStyle::naive_bezier()),
        (
            "bezier + min-jerk, no jitter",
            MotionStyle {
                jitter_px: 0.0,
                ..MotionStyle::hlisa()
            },
        ),
        (
            "straight + min-jerk + jitter",
            MotionStyle {
                curve: CurveStyle::Straight,
                ..MotionStyle::hlisa()
            },
        ),
        ("full HLISA motion", MotionStyle::hlisa()),
    ];

    let l1 = InteractionDetector::level1();
    let l2 = InteractionDetector::level2(reference.clone());
    variants
        .into_iter()
        .map(|(name, style)| {
            let mut flagged1 = 0;
            let mut flagged2 = 0;
            for trial in 0..trials {
                // Same justification as the import. lint: allow(no-rng-from-seed)
                let mut rng = rng_from_seed(derive_seed(seed, name, trial as u64));
                let mut f = TraceFeatures::default();
                for i in 0..10 {
                    let from = Point::new(80.0 + f64::from(i) * 30.0, 650.0);
                    let to = Point::new(1_150.0 - f64::from(i) * 40.0, 120.0 + f64::from(i) * 35.0);
                    let t = plan_motion_with(style, &params, &mut rng, from, to, 40.0);
                    f.straightness.push(metrics::straightness(&t));
                    let speeds = metrics::speeds(&t);
                    if speeds.len() >= 3 {
                        f.speed_cvs.push(coefficient_of_variation(&speeds));
                        f.max_speed = f.max_speed.max(speeds.iter().copied().fold(0.0, f64::max));
                    }
                }
                if l1.judge_features(&f).is_bot {
                    flagged1 += 1;
                }
                if l2.judge_features(&f).is_bot {
                    flagged2 += 1;
                }
            }
            AblationRow {
                variant: name.to_string(),
                l1_rate: flagged1 as f64 / trials as f64,
                l2_rate: flagged2 as f64 / trials as f64,
            }
        })
        .collect()
}

/// Click-placement ablation: uniform vs normal vs dead-centre, judged on
/// click offsets.
pub fn click_ablation(seed: u64, reference: &HumanReference, trials: usize) -> Vec<AblationRow> {
    let l1 = InteractionDetector::level1();
    let l2 = InteractionDetector::level2(reference.clone());
    let dwell = TruncatedNormal::new(85.0, 25.0, 20.0, 250.0);
    let variants: [&str; 3] = [
        "dead centre (Selenium)",
        "uniform (naive)",
        "normal (HLISA)",
    ];
    variants
        .iter()
        .map(|name| {
            let mut flagged1 = 0;
            let mut flagged2 = 0;
            for trial in 0..trials {
                // Same justification as the import. lint: allow(no-rng-from-seed)
                let mut rng = rng_from_seed(derive_seed(seed, name, trial as u64));
                let mut f = TraceFeatures::default();
                for _ in 0..40 {
                    // Element-relative offsets for a 120×40 target.
                    let (fx, fy): (f64, f64) = match *name {
                        "dead centre (Selenium)" => (0.5, 0.5),
                        "uniform (naive)" => (rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)),
                        _ => {
                            let nx = Normal::new(0.52, 0.14);
                            let ny = Normal::new(0.5, 0.16);
                            (
                                nx.sample(&mut rng).clamp(0.02, 0.98),
                                ny.sample(&mut rng).clamp(0.02, 0.98),
                            )
                        }
                    };
                    let off = ((fx - 0.5f64).powi(2) + (fy - 0.5f64).powi(2)).sqrt();
                    f.click_offsets_frac.push(off);
                    f.click_dwells_ms
                        .push(if *name == "dead centre (Selenium)" {
                            0.0
                        } else {
                            dwell.sample(&mut rng)
                        });
                }
                if l1.judge_features(&f).is_bot {
                    flagged1 += 1;
                }
                if l2.judge_features(&f).is_bot {
                    flagged2 += 1;
                }
            }
            AblationRow {
                variant: name.to_string(),
                l1_rate: flagged1 as f64 / trials as f64,
                l2_rate: flagged2 as f64 / trials as f64,
            }
        })
        .collect()
}

/// Typing-rhythm ablation: fixed delays vs uniform jitter vs i.i.d.
/// normal draws vs tempo-drift consistency, judged by L1/L2/L3. The L3
/// column is reported in [`AblationRow::l2_rate`]'s sibling field via a
/// dedicated run below.
pub fn typing_ablation(
    seed: u64,
    reference: &HumanReference,
    trials: usize,
) -> Vec<(AblationRow, f64)> {
    use hlisa_browser::dom::standard_test_page;
    use hlisa_browser::{Browser, BrowserConfig};
    use hlisa_webdriver::{By, Session};

    let l1 = InteractionDetector::level1();
    let l2 = InteractionDetector::level2(reference.clone());
    let l3 = InteractionDetector::level3(reference.clone());
    let text = "the quick brown fox jumps over the lazy dog and keeps running onward";
    let variants = [
        "selenium (0 dwell)",
        "fixed + jitter (naive)",
        "iid normal (HLISA)",
        "tempo drift (consistent)",
    ];
    variants
        .iter()
        .map(|name| {
            let mut flagged = [0usize; 3];
            for trial in 0..trials {
                let mut s = Session::new(Browser::open(
                    BrowserConfig::webdriver(),
                    standard_test_page("https://abl.test/", 2_000.0),
                ));
                let el = s.find_element(By::Id("text_area".into())).unwrap();
                let tseed = derive_seed(seed, name, trial as u64);
                match *name {
                    "selenium (0 dwell)" => {
                        hlisa_webdriver::SeleniumActionChains::new()
                            .send_keys_to_element(el, text)
                            .perform(&mut s)
                            .unwrap();
                    }
                    "fixed + jitter (naive)" => {
                        hlisa::NaiveActionChains::new(tseed)
                            .send_keys_to_element(el, text)
                            .perform(&mut s)
                            .unwrap();
                    }
                    "iid normal (HLISA)" => {
                        hlisa::HlisaActionChains::new(tseed)
                            .send_keys_to_element(el, text)
                            .perform(&mut s)
                            .unwrap();
                    }
                    _ => {
                        hlisa::HlisaActionChains::new(tseed)
                            .with_consistency(true)
                            .send_keys_to_element(el, text)
                            .perform(&mut s)
                            .unwrap();
                    }
                }
                let mut f = TraceFeatures::extract(&s.browser.recorder, s.browser.document());
                // A *typing* ablation: blind the detectors to the mouse
                // work that focuses the field, which differs per variant.
                f.straightness.clear();
                f.speed_cvs.clear();
                f.max_speed = 0.0;
                f.click_dwells_ms.clear();
                f.click_offsets_frac.clear();
                f.pointerless_clicks = 0;
                for (i, det) in [&l1, &l2, &l3].iter().enumerate() {
                    if det.judge_features(&f).is_bot {
                        flagged[i] += 1;
                    }
                }
            }
            (
                AblationRow {
                    variant: name.to_string(),
                    l1_rate: flagged[0] as f64 / trials as f64,
                    l2_rate: flagged[1] as f64 / trials as f64,
                },
                flagged[2] as f64 / trials as f64,
            )
        })
        .collect()
}

/// Scroll-cadence ablation: script jump vs metronomic ticks vs
/// ticks-with-finger-breaks, judged by L1/L2.
pub fn scroll_ablation(seed: u64, reference: &HumanReference, trials: usize) -> Vec<AblationRow> {
    use hlisa_browser::dom::standard_test_page;
    use hlisa_browser::viewport::ScrollOrigin;
    use hlisa_browser::{Browser, BrowserConfig, RawInput};
    use hlisa_webdriver::Session;

    let l1 = InteractionDetector::level1();
    let l2 = InteractionDetector::level2(reference.clone());
    let variants = [
        "script jump (Selenium)",
        "metronomic ticks (naive)",
        "ticks + finger breaks (HLISA)",
    ];
    variants
        .iter()
        .map(|name| {
            let mut flagged = [0usize; 2];
            for trial in 0..trials {
                let mut s = Session::new(Browser::open(
                    BrowserConfig::webdriver(),
                    standard_test_page("https://abl.test/", 30_000.0),
                ));
                let tseed = derive_seed(seed, name, trial as u64);
                let distance = s.browser.viewport.max_scroll_y();
                match *name {
                    "script jump (Selenium)" => {
                        for i in 1..=4 {
                            s.browser.input(RawInput::ScrollFrom {
                                origin: ScrollOrigin::Script,
                                amount: distance * f64::from(i) / 4.0,
                            });
                            s.browser.advance(150.0);
                        }
                    }
                    "metronomic ticks (naive)" => {
                        hlisa::NaiveActionChains::new(tseed)
                            .scroll_by(distance)
                            .perform(&mut s)
                            .unwrap();
                    }
                    _ => {
                        hlisa::HlisaActionChains::new(tseed)
                            .scroll_by(0.0, distance)
                            .perform(&mut s)
                            .unwrap();
                    }
                }
                let f = TraceFeatures::extract(&s.browser.recorder, s.browser.document());
                if l1.judge_features(&f).is_bot {
                    flagged[0] += 1;
                }
                if l2.judge_features(&f).is_bot {
                    flagged[1] += 1;
                }
            }
            AblationRow {
                variant: name.to_string(),
                l1_rate: flagged[0] as f64 / trials as f64,
                l2_rate: flagged[1] as f64 / trials as f64,
            }
        })
        .collect()
}

/// Formats ablation rows.
pub fn report(title: &str, rows: &[AblationRow]) -> String {
    let mut out = format!("{title}\n");
    let header = ["Variant", "L1 detection", "L2 detection"];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.variant.clone(),
                format!("{:.2}", r.l1_rate),
                format!("{:.2}", r.l2_rate),
            ]
        })
        .collect();
    out.push_str(&format_table(&header, &table));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn motion_ablation_shows_ingredient_value() {
        let reference = HumanReference::generate(60, 2);
        let rows = motion_ablation(5, &reference, 4);
        let get = |name: &str| rows.iter().find(|r| r.variant.contains(name)).unwrap();
        assert_eq!(get("Selenium").l1_rate, 1.0);
        assert_eq!(get("full HLISA").l1_rate, 0.0);
        assert_eq!(get("full HLISA").l2_rate, 0.0);
        // A straight path, even with easing and jitter, is still flagged.
        assert!(get("straight + min-jerk").l1_rate > 0.5);
    }

    #[test]
    fn typing_ablation_separates_the_four_rhythms() {
        let reference = HumanReference::generate(62, 2);
        let rows = typing_ablation(7, &reference, 3);
        let get = |name: &str| rows.iter().find(|(r, _)| r.variant.contains(name)).unwrap();
        // Selenium: impossible at L1.
        assert_eq!(get("selenium").0.l1_rate, 1.0);
        // Naive: possible but mis-distributed — L2 catches.
        assert_eq!(get("naive").0.l1_rate, 0.0);
        assert_eq!(get("naive").0.l2_rate, 1.0);
        // HLISA i.i.d.: passes L2, caught by L3 consistency.
        assert_eq!(get("HLISA").0.l2_rate, 0.0);
        assert!(get("HLISA").1 >= 0.66, "L3 rate {}", get("HLISA").1);
        // Consistent variant passes all three.
        assert_eq!(get("consistent").1, 0.0);
    }

    #[test]
    fn scroll_ablation_separates_the_three_cadences() {
        let reference = HumanReference::generate(63, 2);
        let rows = scroll_ablation(8, &reference, 3);
        let get = |name: &str| rows.iter().find(|r| r.variant.contains(name)).unwrap();
        assert_eq!(get("script jump").l1_rate, 1.0);
        assert_eq!(get("metronomic").l1_rate, 0.0);
        assert_eq!(get("metronomic").l2_rate, 1.0);
        assert_eq!(get("finger breaks").l1_rate, 0.0);
        assert_eq!(get("finger breaks").l2_rate, 0.0);
    }

    #[test]
    fn click_ablation_separates_the_three_strategies() {
        let reference = HumanReference::generate(61, 2);
        let rows = click_ablation(6, &reference, 4);
        let get = |name: &str| rows.iter().find(|r| r.variant.contains(name)).unwrap();
        assert_eq!(get("dead centre").l1_rate, 1.0);
        assert_eq!(get("uniform").l1_rate, 0.0);
        assert!(
            get("uniform").l2_rate > 0.5,
            "uniform placement must fail L2"
        );
        assert_eq!(get("normal").l2_rate, 0.0);
    }
}
