//! Interaction fast-path benchmark: hit testing, trajectory synthesis,
//! batch visit planning, and recorder analytics.
//!
//! Four measurements, emitted as `BENCH_interaction.json`:
//!
//! 1. **Hit testing** — the linear reverse scan
//!    ([`Document::hit_test_linear`]) vs the spatial-grid index
//!    ([`Document::hit_test`]), probed over a deterministic point lattice
//!    on a listing-sized page (hundreds of boxes).
//! 2. **Trajectory synthesis** — the seed-era eager planner
//!    ([`cursor::reference::generate_with`]: fresh `Vec`, per-sample
//!    basis evaluation, one Marsaglia-polar draw call per sample) vs the
//!    fixed-capacity kernel ([`cursor::synthesize_into`]: shared basis
//!    table, split-phase batched tremor fill, inline scratch, reused
//!    output arena). Both sides draw the identical RNG sequence and must
//!    produce bit-identical samples. The speedup ceiling is set by the
//!    irreducible per-sample draw + `ln` cost the determinism contract
//!    pins (see EXPERIMENTS.md for the floor decomposition).
//! 3. **Batch planning** — a full visit's action chain planned the
//!    per-action way ([`plan_visit_unbatched`]: fresh buffers per action)
//!    vs the one-arena [`VisitPlanner`], which lays every movement, key
//!    stroke, and wheel tick of the visit into reused arenas — zero
//!    allocations per visit in steady state, asserted via capacity
//!    stability and reported in the JSON.
//! 4. **Recorder queries** — the retained full-scan analytics
//!    (`*_rescan`) vs the incrementally-maintained views the recorder now
//!    serves as slices, over a realistic multi-thousand-event trace.
//!
//! Timing here reads the *wall clock on purpose*: the benchmark measures
//! real elapsed cost, and its numbers feed a JSON report, never a
//! simulated observable, so the determinism fence does not apply.

pub use crate::campaign_bench::Comparison;
use hlisa_browser::dom::standard_test_page;
use hlisa_browser::{Browser, BrowserConfig, Document, ElementBuilder, EventRecorder, Point, Rect};
use hlisa_human::cursor;
use hlisa_human::plan::{plan_visit_unbatched, visit_script_into, ScriptStep};
use hlisa_human::{HumanAgent, HumanParams, VisitPlanner};
use hlisa_sim::SimContext;
use hlisa_stats::rngutil::splitmix64;
use std::hint::black_box;
use std::time::Duration;

/// Benchmark sizing.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Elements on the synthetic hit-test page.
    pub hit_elements: usize,
    /// Full passes over the probe lattice per hit-test loop.
    pub hit_passes: u32,
    /// Cursor movements synthesized per trajectory loop.
    pub traj_moves: u32,
    /// Whole visits planned per batch-planning loop.
    pub plan_visits: u32,
    /// Full query sweeps (all seven analytics views) per recorder loop.
    pub query_iters: u32,
}

impl BenchConfig {
    /// The default run: big enough for stable ratios.
    pub fn full() -> Self {
        Self {
            hit_elements: 400,
            hit_passes: 300,
            traj_moves: 20_000,
            plan_visits: 4_000,
            query_iters: 2_000,
        }
    }

    /// A seconds-scale smoke run for CI.
    pub fn smoke() -> Self {
        Self {
            hit_elements: 200,
            hit_passes: 20,
            traj_moves: 100,
            plan_visits: 60,
            query_iters: 50,
        }
    }
}

/// The full benchmark result.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Sizing used.
    pub config: BenchConfig,
    /// Linear reverse scan vs spatial-grid hit testing.
    pub hit_test: Comparison,
    /// Seed-era eager planner vs fixed-capacity kernel synthesis.
    pub trajectory: Comparison,
    /// Per-action fresh-buffer planning vs the one-arena batch planner.
    pub batch_plan: Comparison,
    /// Arenas that still grew during the timed batch-planning loop
    /// (0 = zero steady-state allocations, the planner's contract).
    pub plan_arenas_grown: u64,
    /// Events in the recorder-query trace.
    pub trace_events: u64,
    /// Full-rescan analytics vs incremental views.
    pub recorder: Comparison,
}

fn timed<R>(f: impl FnOnce() -> R) -> (Duration, R) {
    let start = std::time::Instant::now();
    let out = f();
    (start.elapsed(), out)
}

/// A listing-like page: a full-page body plus a lattice of row boxes, the
/// shape a search-result or article-index page presents to hit testing.
fn listing_page(n_elements: usize) -> Document {
    const PAGE_W: f64 = 1280.0;
    const PAGE_H: f64 = 30_000.0;
    let mut doc = Document::new("https://bench.test/listing", PAGE_W, PAGE_H);
    ElementBuilder::new("body", Rect::new(0.0, 0.0, PAGE_W, PAGE_H)).insert(&mut doc);
    let cols = 8usize;
    let rows = n_elements.div_ceil(cols);
    // Card-sized boxes filling a good fraction of each lattice cell, so
    // the probe lattice lands on cards and bare body alike.
    let card_h = ((PAGE_H - 80.0) / rows as f64 * 0.45).clamp(24.0, 400.0);
    for i in 0..n_elements {
        let (col, row) = (i % cols, i / cols);
        let x = 20.0 + col as f64 * (PAGE_W - 40.0) / cols as f64;
        let y = 40.0 + row as f64 * (PAGE_H - 80.0) / rows as f64;
        ElementBuilder::new("div", Rect::new(x, y, 120.0, card_h)).insert(&mut doc);
    }
    doc
}

/// Probe lattice: 64×64 points spanning the page, hitting a mix of row
/// boxes and bare body.
fn probe_points(doc: &Document) -> Vec<Point> {
    let mut points = Vec::with_capacity(64 * 64);
    for i in 0..64u32 {
        for j in 0..64u32 {
            points.push(Point::new(
                f64::from(i) / 63.0 * (doc.page_width - 1.0),
                f64::from(j) / 63.0 * (doc.page_height - 1.0),
            ));
        }
    }
    points
}

fn bench_hit_test(config: &BenchConfig) -> Comparison {
    let doc = listing_page(config.hit_elements);
    let points = probe_points(&doc);
    // Prime the grid so index construction is not on the timed path
    // (a real session builds it once and queries it thousands of times).
    let _ = doc.hit_test(points[0]);
    let ops = u64::from(config.hit_passes) * points.len() as u64;
    let (linear_t, a) = timed(|| {
        let mut acc = 0u64;
        for _ in 0..config.hit_passes {
            for p in &points {
                acc += doc
                    .hit_test_linear(black_box(*p))
                    .map_or(0, |id| id.index() as u64 + 1);
            }
        }
        acc
    });
    let (grid_t, b) = timed(|| {
        let mut acc = 0u64;
        for _ in 0..config.hit_passes {
            for p in &points {
                acc += doc
                    .hit_test(black_box(*p))
                    .map_or(0, |id| id.index() as u64 + 1);
            }
        }
        acc
    });
    assert_eq!(a, b, "hit-test sides disagree");
    Comparison {
        ops,
        baseline_s: linear_t.as_secs_f64(),
        optimized_s: grid_t.as_secs_f64(),
    }
}

/// Deterministic movement endpoints: varied distances (short in-paragraph
/// hops through full-viewport crossings) so both code paths exercise the
/// single-stroke and two-phase planners.
fn move_endpoints(i: u32) -> (Point, Point, f64) {
    let from = Point::new(
        40.0 + f64::from(i % 13) * 30.0,
        60.0 + f64::from(i % 7) * 80.0,
    );
    let to = Point::new(
        1240.0 - f64::from(i % 11) * 90.0,
        660.0 - f64::from(i % 5) * 120.0,
    );
    let target_w = 20.0 + f64::from(i % 4) * 15.0;
    (from, to, target_w)
}

fn bench_trajectory(config: &BenchConfig) -> Comparison {
    let params = HumanParams::paper_baseline();
    let checksum = |s: &cursor::TrajectorySample| s.x + s.y + s.t_ms;
    let mut scratch = cursor::StrokeScratch::new();
    let mut buf: Vec<cursor::TrajectorySample> = Vec::new();
    // Warm both paths (page-in, branch predictors, basis tables, scratch
    // high-water marks) before timing, and pin bit-equality of every
    // warmed movement: the kernel must reproduce the reference exactly.
    for i in 0..config.traj_moves.min(200) {
        let (from, to, w) = move_endpoints(i);
        let mut ctx = SimContext::new(u64::from(i));
        let reference =
            cursor::reference::generate_with(&params, ctx.stream("cursor"), from, to, w);
        let mut ctx = SimContext::new(u64::from(i));
        buf.clear();
        cursor::synthesize_into(
            &params,
            ctx.stream("cursor"),
            from,
            to,
            w,
            &mut scratch,
            &mut buf,
        );
        assert_eq!(reference, buf, "kernel diverges from reference on move {i}");
    }
    let (reference_t, a) = timed(|| {
        let mut acc = 0.0f64;
        let mut samples = 0u64;
        for i in 0..config.traj_moves {
            let mut ctx = SimContext::new(u64::from(i));
            let (from, to, w) = move_endpoints(i);
            let v = cursor::reference::generate_with(&params, ctx.stream("cursor"), from, to, w);
            samples += v.len() as u64;
            acc += v.iter().map(checksum).sum::<f64>();
            black_box(&v);
        }
        (acc, samples)
    });
    let (kernel_t, b) = timed(|| {
        let mut acc = 0.0f64;
        let mut samples = 0u64;
        for i in 0..config.traj_moves {
            let mut ctx = SimContext::new(u64::from(i));
            let (from, to, w) = move_endpoints(i);
            buf.clear();
            cursor::synthesize_into(
                &params,
                ctx.stream("cursor"),
                from,
                to,
                w,
                &mut scratch,
                &mut buf,
            );
            samples += buf.len() as u64;
            acc += buf.iter().map(checksum).sum::<f64>();
            black_box(&buf);
        }
        (acc, samples)
    });
    assert_eq!(a, b, "trajectory sides disagree");
    Comparison {
        ops: u64::from(config.traj_moves),
        baseline_s: reference_t.as_secs_f64(),
        optimized_s: kernel_t.as_secs_f64(),
    }
}

/// Per-visit `(seed, content hash, planned steps)` for the batch-planning
/// row, mirroring the step-count spread [`VisitTimeline`] derives from the
/// site content hash (3–8 actions).
fn plan_visit_shape(i: u32) -> (u64, u64, usize) {
    let seed = splitmix64(0x706c_616e ^ u64::from(i));
    let content_hash = splitmix64(seed);
    let steps = 3 + ((content_hash >> 16) % 6) as usize;
    (seed, content_hash, steps)
}

fn bench_batch_plan(config: &BenchConfig) -> (Comparison, u64) {
    let params = HumanParams::paper_baseline();
    let visits = config.plan_visits;
    let mut planner = VisitPlanner::new();
    let mut script: Vec<ScriptStep> = Vec::new();
    // Differential anchor outside the timed loops: the batched planner
    // must reproduce the per-action reference plan bit for bit.
    for i in 0..visits.min(48) {
        let (seed, hash, steps) = plan_visit_shape(i);
        visit_script_into(hash, steps, &mut script);
        let mut ctx = SimContext::new(seed);
        let reference = plan_visit_unbatched(&params, &mut ctx, &script);
        let mut ctx = SimContext::new(seed);
        let batched = planner.plan_site_visit(&params, &mut ctx, hash, steps);
        assert_eq!(&reference, batched, "planners disagree on visit {i}");
    }
    // Warm the arenas over every visit shape in the workload so the timed
    // loop below runs at the steady-state high-water mark.
    for i in 0..visits {
        let (seed, hash, steps) = plan_visit_shape(i);
        let mut ctx = SimContext::new(seed);
        black_box(
            planner
                .plan_site_visit(&params, &mut ctx, hash, steps)
                .total_ms(),
        );
    }
    let (unbatched_t, a) = timed(|| {
        let mut acc = 0.0f64;
        for i in 0..visits {
            let (seed, hash, steps) = plan_visit_shape(i);
            let mut step_buf = Vec::new();
            visit_script_into(hash, steps, &mut step_buf);
            let mut ctx = SimContext::new(seed);
            let plan = plan_visit_unbatched(&params, &mut ctx, &step_buf);
            acc += plan.total_ms();
            black_box(&plan);
        }
        acc
    });
    let frozen = planner.capacities();
    let (batched_t, b) = timed(|| {
        let mut acc = 0.0f64;
        for i in 0..visits {
            let (seed, hash, steps) = plan_visit_shape(i);
            let mut ctx = SimContext::new(seed);
            acc += planner
                .plan_site_visit(&params, &mut ctx, hash, steps)
                .total_ms();
        }
        acc
    });
    assert_eq!(a, b, "batch-plan sides disagree");
    let arenas_grown = frozen
        .iter()
        .zip(planner.capacities().iter())
        .filter(|(before, after)| before != after)
        .count() as u64;
    (
        Comparison {
            ops: u64::from(visits),
            baseline_s: unbatched_t.as_secs_f64(),
            optimized_s: batched_t.as_secs_f64(),
        },
        arenas_grown,
    )
}

/// Drives one realistic session (clicks, typing, a full-page scroll, and
/// some wandering) to fill a recorder with a few thousand events.
fn recorded_session() -> EventRecorder {
    let mut b = Browser::open(
        BrowserConfig::regular(),
        standard_test_page("https://bench.test/", 30_000.0),
    );
    let mut h = HumanAgent::baseline(1_117);
    let submit = b.document().by_id("submit").expect("standard page");
    let text_area = b.document().by_id("text_area").expect("standard page");
    h.click_element(&mut b, submit);
    h.click_element(&mut b, text_area);
    h.type_text(&mut b, "The quick brown fox jumps over the lazy dog");
    h.scroll_to_bottom(&mut b);
    for i in 0..12u32 {
        let (from, to, w) = move_endpoints(i);
        h.move_cursor_to(&mut b, from, w);
        h.move_cursor_to(&mut b, to, w);
    }
    b.recorder.clone()
}

fn bench_recorder(config: &BenchConfig) -> (u64, Comparison) {
    let rec = recorded_session();
    let trace_events = rec.len() as u64;
    // Seven analytics views per sweep, matching what a level-2 detector
    // pulls when featurizing a session.
    let ops = u64::from(config.query_iters) * 7;
    let sweep_rescan = |r: &EventRecorder| {
        r.cursor_trace_rescan().len()
            + r.clicks_rescan().len()
            + r.keystrokes_rescan().len()
            + r.key_flight_times_rescan().len()
            + r.scroll_deltas_rescan().len()
            + r.scroll_gaps_rescan().len()
            + r.wheel_count_rescan()
    };
    let sweep_incremental = |r: &EventRecorder| {
        r.cursor_trace().len()
            + r.clicks().len()
            + r.keystrokes().len()
            + r.key_flight_times().len()
            + r.scroll_deltas().len()
            + r.scroll_gaps().len()
            + r.wheel_count()
    };
    assert_eq!(
        sweep_rescan(&rec),
        sweep_incremental(&rec),
        "recorder views disagree"
    );
    let (rescan_t, a) = timed(|| {
        let mut acc = 0usize;
        for _ in 0..config.query_iters {
            acc += sweep_rescan(black_box(&rec));
        }
        acc
    });
    let (incr_t, b) = timed(|| {
        let mut acc = 0usize;
        for _ in 0..config.query_iters {
            acc += sweep_incremental(black_box(&rec));
        }
        acc
    });
    assert_eq!(a, b, "recorder sides disagree");
    (
        trace_events,
        Comparison {
            ops,
            baseline_s: rescan_t.as_secs_f64(),
            optimized_s: incr_t.as_secs_f64(),
        },
    )
}

/// Runs the whole suite.
pub fn run(config: BenchConfig) -> BenchReport {
    let hit_test = bench_hit_test(&config);
    let trajectory = bench_trajectory(&config);
    let (batch_plan, plan_arenas_grown) = bench_batch_plan(&config);
    let (trace_events, recorder) = bench_recorder(&config);
    BenchReport {
        config,
        hit_test,
        trajectory,
        batch_plan,
        plan_arenas_grown,
        trace_events,
        recorder,
    }
}

fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

fn comparison_json(c: &Comparison, unit: &str) -> String {
    format!(
        concat!(
            "{{\"ops\": {}, \"unit\": \"{}\", \"baseline_s\": {}, \"optimized_s\": {}, ",
            "\"baseline_per_sec\": {}, \"optimized_per_sec\": {}, \"speedup\": {}}}"
        ),
        c.ops,
        unit,
        json_num(c.baseline_s),
        json_num(c.optimized_s),
        json_num(c.baseline_rate()),
        json_num(c.optimized_rate()),
        json_num(c.speedup()),
    )
}

impl BenchReport {
    /// Serializes the report (hand-rolled: the workspace vendors no JSON
    /// writer and the schema is three flat objects).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\n",
                "  \"benchmark\": \"hlisa interaction fast path ",
                "(hit test/trajectory/batch plan/recorder)\",\n",
                "  \"config\": {{\"hit_elements\": {}, \"hit_passes\": {}, ",
                "\"traj_moves\": {}, \"plan_visits\": {}, \"query_iters\": {}}},\n",
                "  \"trace_events\": {},\n",
                "  \"plan_arenas_grown\": {},\n",
                "  \"hit_test\": {},\n",
                "  \"trajectory_synthesis\": {},\n",
                "  \"batch_plan\": {},\n",
                "  \"recorder_queries\": {}\n",
                "}}\n"
            ),
            self.config.hit_elements,
            self.config.hit_passes,
            self.config.traj_moves,
            self.config.plan_visits,
            self.config.query_iters,
            self.trace_events,
            self.plan_arenas_grown,
            comparison_json(&self.hit_test, "probes"),
            comparison_json(&self.trajectory, "movements"),
            comparison_json(&self.batch_plan, "visits"),
            comparison_json(&self.recorder, "queries"),
        )
    }

    /// Human-readable summary.
    pub fn render_human(&self) -> String {
        let row = |label: &str, c: &Comparison| {
            format!(
                "{label:<18} {:>12.0}/s -> {:>12.0}/s   ({:.1}x)\n",
                c.baseline_rate(),
                c.optimized_rate(),
                c.speedup()
            )
        };
        let mut out = String::from("interaction fast-path benchmark (baseline -> optimized)\n");
        out.push_str(&row("hit testing", &self.hit_test));
        out.push_str(&row("trajectory synth", &self.trajectory));
        out.push_str(&row("batch plan", &self.batch_plan));
        out.push_str(&format!(
            "{:<18} {} arenas grew during the timed loop\n",
            "  steady state", self.plan_arenas_grown
        ));
        out.push_str(&row("recorder queries", &self.recorder));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_report_is_well_formed() {
        let mut cfg = BenchConfig::smoke();
        // Keep the test fast; rates are not asserted here.
        cfg.hit_elements = 50;
        cfg.hit_passes = 1;
        cfg.traj_moves = 5;
        cfg.plan_visits = 4;
        cfg.query_iters = 2;
        let report = run(cfg);
        assert!(
            report.trace_events > 1_000,
            "{} events",
            report.trace_events
        );
        assert_eq!(
            report.plan_arenas_grown, 0,
            "batch planner allocated in steady state"
        );
        let json = report.to_json();
        for field in [
            "\"hit_test\"",
            "\"trajectory_synthesis\"",
            "\"batch_plan\"",
            "\"plan_arenas_grown\"",
            "\"recorder_queries\"",
            "\"speedup\"",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        let human = report.render_human();
        assert!(human.contains("recorder queries"));
        assert!(human.contains("batch plan"));
    }

    #[test]
    fn listing_page_probe_mix_hits_rows_and_body() {
        let doc = listing_page(200);
        let points = probe_points(&doc);
        let rows = points
            .iter()
            .filter(|p| doc.hit_test(**p).is_some_and(|id| id.index() > 0))
            .count();
        assert!(rows > 0, "lattice never lands on a row box");
        assert!(rows < points.len(), "lattice never lands on bare body");
    }
}
