//! Reliability-study benchmark: how much measurement loss corrupts the
//! campaign's conclusions, and what the strengthened capture mode costs.
//!
//! Two measurements, emitted as `BENCH_reliability.json`:
//!
//! 1. **Drift-vs-loss-rate curve** — the same seeded campaign is run
//!    with naive lossy capture at each rate in [`LOSS_RATES`] and diffed
//!    against pristine capture: per-metric relative error over every
//!    Table 2 cell and recorder analytic, plus conclusion flips (sign
//!    changes of the machine-1-vs-machine-2 comparisons).
//! 2. **Strengthened-mode overhead** — pristine capture vs write-ahead
//!    capture with the attach barrier at the harshest curve rate. The
//!    outputs are asserted bit-identical (the PR's key invariant), so
//!    the comparison isolates the pure cost of write-ahead buffering.
//!
//! Timing reads the wall clock on purpose, like the other benches: the
//! numbers feed a JSON report, never a simulated observable.

use crate::campaign_bench::Comparison;
use hlisa_crawler::campaign::CampaignConfig;
use hlisa_crawler::reliability::{drift_report, run_captured_campaign, CaptureMode};
use hlisa_sim::LossPlan;
use hlisa_web::PopulationConfig;
use std::time::Duration;

/// The loss rates the drift curve sweeps (uniform over all three loss
/// kinds; rate 0 pins the bit-identity point of the curve).
pub const LOSS_RATES: [f64; 5] = [0.0, 0.05, 0.1, 0.2, 0.4];

/// Benchmark sizing.
#[derive(Debug, Clone, Copy)]
pub struct ReliabilityBenchConfig {
    /// Sites in the campaign population.
    pub campaign_sites: usize,
    /// Visits per site per machine.
    pub visits_per_site: usize,
}

impl ReliabilityBenchConfig {
    /// The default run: big enough for stable drift numbers, and for
    /// per-run wall-clock times that dwarf worker-thread spawn noise in
    /// the overhead comparison.
    pub fn full() -> Self {
        Self {
            campaign_sites: 480,
            visits_per_site: 8,
        }
    }

    /// A seconds-scale smoke run for CI.
    pub fn smoke() -> Self {
        Self {
            campaign_sites: 30,
            visits_per_site: 3,
        }
    }
}

/// One point of the drift-vs-loss-rate curve.
#[derive(Debug, Clone)]
pub struct CurvePoint {
    /// The uniform loss rate of this point.
    pub rate: f64,
    /// Largest per-metric relative error of the naive capture.
    pub naive_max_rel_error: f64,
    /// Mean per-metric relative error of the naive capture.
    pub naive_mean_rel_error: f64,
    /// Comparative conclusions whose sign flipped under loss.
    pub conclusion_flips: usize,
    /// Events the naive channel dropped, campaign-wide.
    pub events_dropped: u64,
    /// Events the campaign offered the channel.
    pub events_offered: u64,
}

/// The reliability benchmark result.
#[derive(Debug, Clone)]
pub struct ReliabilityBenchReport {
    /// Sizing used.
    pub config: ReliabilityBenchConfig,
    /// Visits per campaign (2 machines × sites × visits).
    pub campaign_visits: u64,
    /// The drift curve, one point per [`LOSS_RATES`] entry.
    pub curve: Vec<CurvePoint>,
    /// The rate the strengthened mode was exercised at (the harshest
    /// curve point).
    pub strengthened_rate: f64,
    /// Pristine capture (baseline) vs strengthened capture (optimized):
    /// `overhead_ratio` near 1.0 means write-ahead buffering is cheap.
    pub strengthened_overhead: Comparison,
    /// Events the write-ahead buffer replayed across attach barriers.
    pub events_replayed: u64,
}

fn timed<R>(f: impl FnOnce() -> R) -> (Duration, R) {
    let start = std::time::Instant::now();
    let out = f();
    (start.elapsed(), out)
}

/// Timed repetitions per capture mode. A full campaign is milliseconds
/// of work, so repetitions are cheap — and necessary: one-shot timings
/// of runs this short swing ±30% with scheduler noise. The overhead
/// comparison *interleaves* pristine and strengthened repetitions (so
/// slow drift in machine load hits both sides alike) and reports each
/// side's minimum — the standard noise-resistant estimate of a
/// deterministic workload's intrinsic cost.
const TIMING_REPS: u32 = 30;

fn campaign_config(bench: &ReliabilityBenchConfig) -> CampaignConfig {
    CampaignConfig {
        seed: 42,
        population: PopulationConfig {
            n_sites: bench.campaign_sites,
            // Keep the paper's 79/1000 unreachable fraction at any sizing,
            // as the chaos bench does.
            unreachable_sites: bench.campaign_sites * 79 / 1000,
            ..PopulationConfig::default()
        },
        visits_per_site: bench.visits_per_site,
        instances: 4,
        world_cache: true,
        plan_interactions: false,
    }
}

/// Runs the whole suite.
pub fn run(config: ReliabilityBenchConfig) -> ReliabilityBenchReport {
    let cfg = campaign_config(&config);
    let visits = 2 * config.campaign_sites as u64 * config.visits_per_site as u64;
    let harshest = LOSS_RATES[LOSS_RATES.len() - 1];

    // Untimed first runs double as warmup for the timing loop below.
    let pristine = run_captured_campaign(&cfg, &LossPlan::none(), CaptureMode::Pristine);

    let curve: Vec<CurvePoint> = LOSS_RATES
        .iter()
        .map(|&rate| {
            let naive =
                run_captured_campaign(&cfg, &LossPlan::uniform(rate), CaptureMode::NaiveLossy);
            let drift = drift_report(&pristine, &naive);
            CurvePoint {
                rate,
                naive_max_rel_error: drift.max_rel_error(),
                naive_mean_rel_error: drift.mean_rel_error(),
                conclusion_flips: drift.conclusion_flips.len(),
                events_dropped: naive.analytics.get("loss.dropped").unwrap_or(0),
                events_offered: naive.analytics.get("loss.offered").unwrap_or(0),
            }
        })
        .collect();
    assert!(
        curve[0].naive_max_rel_error == 0.0 && curve[0].events_dropped == 0,
        "rate-0 point of the curve must be drift-free"
    );

    let harsh_plan = LossPlan::uniform(harshest);
    let strengthened = run_captured_campaign(&cfg, &harsh_plan, CaptureMode::Strengthened);
    assert_eq!(
        strengthened.campaign, pristine.campaign,
        "strengthened capture diverged from pristine"
    );

    // Both timed sides run under the *same* loss plan: the schedule is
    // the simulated environment, not part of either instrument, and
    // Pristine mode's output is plan-independent (asserted below), so
    // the pairing isolates what the write-ahead buffer itself costs.
    let pristine_harsh = run_captured_campaign(&cfg, &harsh_plan, CaptureMode::Pristine);
    assert_eq!(
        pristine_harsh.campaign, pristine.campaign,
        "pristine capture must not depend on the loss plan"
    );
    let mut pristine_t = Duration::MAX;
    let mut strengthened_t = Duration::MAX;
    for _ in 0..TIMING_REPS {
        pristine_t = pristine_t
            .min(timed(|| run_captured_campaign(&cfg, &harsh_plan, CaptureMode::Pristine)).0);
        strengthened_t = strengthened_t
            .min(timed(|| run_captured_campaign(&cfg, &harsh_plan, CaptureMode::Strengthened)).0);
    }

    ReliabilityBenchReport {
        config,
        campaign_visits: visits,
        curve,
        strengthened_rate: harshest,
        strengthened_overhead: Comparison {
            ops: visits,
            baseline_s: pristine_t.as_secs_f64(),
            optimized_s: strengthened_t.as_secs_f64(),
        },
        events_replayed: strengthened.analytics.get("capture.replayed").unwrap_or(0),
    }
}

fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

impl ReliabilityBenchReport {
    /// Elapsed-time ratio of strengthened over pristine capture.
    pub fn overhead_ratio(&self) -> f64 {
        self.strengthened_overhead.optimized_s / self.strengthened_overhead.baseline_s.max(1e-12)
    }

    /// Serializes the report (hand-rolled, like the other benches: the
    /// workspace vendors no JSON writer).
    pub fn to_json(&self) -> String {
        let curve: Vec<String> = self
            .curve
            .iter()
            .map(|p| {
                format!(
                    concat!(
                        "{{\"rate\": {}, \"naive_max_rel_error\": {}, ",
                        "\"naive_mean_rel_error\": {}, \"conclusion_flips\": {}, ",
                        "\"events_dropped\": {}, \"events_offered\": {}}}"
                    ),
                    json_num(p.rate),
                    json_num(p.naive_max_rel_error),
                    json_num(p.naive_mean_rel_error),
                    p.conclusion_flips,
                    p.events_dropped,
                    p.events_offered,
                )
            })
            .collect();
        format!(
            concat!(
                "{{\n",
                "  \"benchmark\": \"hlisa measurement-loss reliability study\",\n",
                "  \"config\": {{\"campaign_sites\": {}, \"visits_per_site\": {}}},\n",
                "  \"campaign_visits\": {},\n",
                "  \"drift_curve\": [\n    {}\n  ],\n",
                "  \"strengthened\": {{\"rate\": {}, \"bit_identical_to_pristine\": true, ",
                "\"events_replayed\": {}, \"ops\": {}, \"unit\": \"visits\", ",
                "\"pristine_s\": {}, \"strengthened_s\": {}, \"pristine_per_sec\": {}, ",
                "\"strengthened_per_sec\": {}, \"overhead_ratio\": {}}}\n",
                "}}\n"
            ),
            self.config.campaign_sites,
            self.config.visits_per_site,
            self.campaign_visits,
            curve.join(",\n    "),
            json_num(self.strengthened_rate),
            self.events_replayed,
            self.strengthened_overhead.ops,
            json_num(self.strengthened_overhead.baseline_s),
            json_num(self.strengthened_overhead.optimized_s),
            json_num(self.strengthened_overhead.baseline_rate()),
            json_num(self.strengthened_overhead.optimized_rate()),
            json_num(self.overhead_ratio()),
        )
    }

    /// Human-readable summary.
    pub fn render_human(&self) -> String {
        let mut out = String::from("measurement-loss reliability benchmark\n");
        out.push_str("rate    max err   mean err  flips  dropped/offered\n");
        for p in &self.curve {
            out.push_str(&format!(
                "{:<7.2} {:<9.4} {:<9.4} {:<6} {}/{}\n",
                p.rate,
                p.naive_max_rel_error,
                p.naive_mean_rel_error,
                p.conclusion_flips,
                p.events_dropped,
                p.events_offered,
            ));
        }
        out.push_str(&format!(
            "strengthened @ {:.2}  bit-identical, {} events replayed, x{:.2} overhead\n",
            self.strengthened_rate,
            self.events_replayed,
            self.overhead_ratio(),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_report_is_well_formed() {
        let report = run(ReliabilityBenchConfig {
            campaign_sites: 12,
            visits_per_site: 2,
        });
        assert_eq!(report.campaign_visits, 2 * 12 * 2);
        assert_eq!(report.curve.len(), LOSS_RATES.len());
        assert_eq!(report.curve[0].naive_max_rel_error, 0.0);
        let harsh = report.curve.last().unwrap();
        assert!(harsh.events_dropped > 0, "harshest point must drop events");
        assert!(report.events_replayed > 0);
        let json = report.to_json();
        for field in [
            "\"drift_curve\"",
            "\"strengthened\"",
            "\"overhead_ratio\"",
            "\"bit_identical_to_pristine\": true",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        let human = report.render_human();
        assert!(human.contains("strengthened @"));
    }
}
