//! Runs the lint-throughput benchmark and writes `BENCH_lint.json`.
//!
//! Usage: `bench_lint [--smoke] [--out PATH]`
//!
//! `--smoke` uses the seconds-scale CI sizing; the default sizing matches
//! the numbers committed at the repository root.
fn main() {
    let mut smoke = false;
    let mut out_path: Option<String> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                out_path = Some(argv.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_lint [--smoke] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    let (config, mode) = if smoke {
        (hlisa_bench::lint_bench::BenchConfig::smoke(), "smoke")
    } else {
        (hlisa_bench::lint_bench::BenchConfig::full(), "full")
    };
    eprintln!("benchmarking lint throughput ({mode} mode)...");
    let report = hlisa_bench::lint_bench::run(config);
    print!("{}", report.render_human());
    let out_path = out_path.unwrap_or_else(|| String::from("BENCH_lint.json"));
    std::fs::write(&out_path, report.to_json()).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out_path}");
}
