//! Runs the design-choice ablations from DESIGN.md.
use hlisa_bench::ablations;
use hlisa_detect::HumanReference;
fn main() {
    eprintln!("generating human reference corpus...");
    let reference = HumanReference::generate(2021, 4);
    let motion = ablations::motion_ablation(2021, &reference, 10);
    println!(
        "{}",
        ablations::report("Ablation: cursor-motion ingredients", &motion)
    );
    println!();
    let click = ablations::click_ablation(2021, &reference, 10);
    println!(
        "{}",
        ablations::report("Ablation: click placement strategies", &click)
    );
    println!();
    let typing = ablations::typing_ablation(2021, &reference, 8);
    println!("Ablation: typing rhythm (plus L3 consistency column)");
    println!("{:<28} {:>4} {:>4} {:>4}", "Variant", "L1", "L2", "L3");
    for (row, l3) in &typing {
        println!(
            "{:<28} {:>4.2} {:>4.2} {:>4.2}",
            row.variant, row.l1_rate, row.l2_rate, l3
        );
    }
    println!();
    let scroll = ablations::scroll_ablation(2021, &reference, 8);
    println!("{}", ablations::report("Ablation: scroll cadence", &scroll));
}
