//! Regenerates Figure 1 (cursor trajectories A-D).
fn main() {
    println!("{}", hlisa_bench::figures::figure1_report(2021));
}
