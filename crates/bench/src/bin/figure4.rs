//! Regenerates Figure 4 / Appendix B (HTTP errors + Wilcoxon test).
fn main() {
    eprintln!("running the paper-scale campaign (1,000 sites x 8 visits x 2 machines)...");
    let campaign = hlisa_bench::fieldstudy::run_paper_scale();
    println!("{}", hlisa_bench::fieldstudy::figure4_report(&campaign));
}
