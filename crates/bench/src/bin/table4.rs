//! Regenerates Table 4 / Appendix G (tool comparison + measured verdicts).
use hlisa_detect::HumanReference;
fn main() {
    let reference = HumanReference::generate(2021, 3);
    println!("{}", hlisa_bench::table4::report(2021, &reference));
}
