//! Runs the measurement-loss reliability benchmark and writes
//! `BENCH_reliability.json`.
//!
//! Usage: `bench_reliability [--smoke] [--out PATH]`
//!
//! Sweeps naive lossy capture over the drift curve's loss rates, diffs
//! each campaign against pristine capture (per-metric relative error,
//! conclusion flips), and times the strengthened write-ahead mode at the
//! harshest rate — asserting its output bit-identical to pristine.
fn main() {
    let mut smoke = false;
    let mut out_path: Option<String> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                out_path = Some(argv.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_reliability [--smoke] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    let (mode, config) = if smoke {
        (
            "smoke",
            hlisa_bench::reliability_bench::ReliabilityBenchConfig::smoke(),
        )
    } else {
        (
            "full",
            hlisa_bench::reliability_bench::ReliabilityBenchConfig::full(),
        )
    };
    eprintln!(
        "benchmarking measurement-loss reliability ({mode} mode, {} sites)...",
        config.campaign_sites
    );
    let report = hlisa_bench::reliability_bench::run(config);
    let out_path = out_path.unwrap_or_else(|| String::from("BENCH_reliability.json"));

    print!("{}", report.render_human());
    std::fs::write(&out_path, report.to_json()).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out_path}");
}
