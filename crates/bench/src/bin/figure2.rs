//! Regenerates Figure 2 (click distributions; 100-round task per agent).
fn main() {
    println!("{}", hlisa_bench::figures::figure2_report(2021, 100));
}
