//! Regenerates Figure 3 (arms-race detection matrix).
use hlisa_armsrace::TournamentConfig;
fn main() {
    eprintln!("running the simulator x detector tournament...");
    let result = hlisa_bench::figure3::run(&TournamentConfig::default());
    println!("{}", hlisa_bench::figure3::report(&result));
    eprintln!("playing out the escalation sequence...");
    let rounds = hlisa_armsrace::run_escalation(&TournamentConfig {
        sessions_per_agent: 4,
        ..TournamentConfig::default()
    });
    println!("{}", hlisa_armsrace::escalation::report(&rounds));
}
