//! Regenerates the Appendix C/D event and granularity report.
fn main() {
    let r = hlisa_bench::appendix_d::run();
    println!("{}", hlisa_bench::appendix_d::report(&r));
}
