//! Regenerates Table 2 (screenshot evaluation of the 1,000-site crawl).
fn main() {
    eprintln!("running the paper-scale campaign (1,000 sites x 8 visits x 2 machines)...");
    let campaign = hlisa_bench::fieldstudy::run_paper_scale();
    println!("{}", hlisa_bench::fieldstudy::table2_report(&campaign));
}
