//! Runs the paper-scale campaign and writes the analysis CSVs to disk
//! (visits.csv, table2.csv, status_codes.csv) for downstream analysis.
use hlisa_crawler::{run_campaign, status_codes_csv, table2_csv, visits_csv, CampaignConfig};
use std::fs;

fn main() {
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "crawl-output".to_string());
    eprintln!("running the paper-scale campaign...");
    let campaign = run_campaign(&CampaignConfig::default());
    fs::create_dir_all(&dir).expect("create output dir");
    fs::write(format!("{dir}/visits.csv"), visits_csv(&campaign)).expect("write visits");
    fs::write(format!("{dir}/table2.csv"), table2_csv(&campaign)).expect("write table2");
    fs::write(
        format!("{dir}/status_codes.csv"),
        status_codes_csv(&campaign),
    )
    .expect("write status codes");
    println!("wrote {dir}/visits.csv, table2.csv, status_codes.csv");
}
