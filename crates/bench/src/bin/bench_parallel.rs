//! Runs the core-scaling benchmark and writes `BENCH_parallel.json`.
//!
//! Usage: `bench_parallel [--smoke] [--out PATH]`
//!
//! Sweeps the campaign worker count over a lazily-sharded population
//! (100K sites in full mode, seconds-scale in `--smoke`) and reports
//! visits/sec, parallel efficiency per core count, and the peak bytes of
//! population materialised at once.
fn main() {
    let mut smoke = false;
    let mut out_path: Option<String> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                out_path = Some(argv.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_parallel [--smoke] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    let (mode, config) = if smoke {
        (
            "smoke",
            hlisa_bench::parallel_bench::ParallelBenchConfig::smoke(),
        )
    } else {
        (
            "full",
            hlisa_bench::parallel_bench::ParallelBenchConfig::full(),
        )
    };
    eprintln!(
        "benchmarking parallel scaling ({mode} mode, {} sites)...",
        config.n_sites
    );
    let report = hlisa_bench::parallel_bench::run(config);
    let out_path = out_path.unwrap_or_else(|| String::from("BENCH_parallel.json"));

    print!("{}", report.render_human());
    std::fs::write(&out_path, report.to_json()).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out_path}");
}
