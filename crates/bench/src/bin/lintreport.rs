//! Prints the static-detectability ladder (hlisa-lint over the rungs).
fn main() {
    eprintln!("linting the simulator ladder's action programs...");
    let rungs = hlisa_bench::lintreport::run(5);
    println!("{}", hlisa_bench::lintreport::report(&rungs));
}
