//! Regenerates Table 1 (spoofing side effects).
fn main() {
    let result = hlisa_bench::table1::run();
    println!("{}", hlisa_bench::table1::report(&result));
}
