//! Regenerates Table 3 (HLISA API conformance sweep).
fn main() {
    let checks = hlisa_bench::table3::run(2021);
    println!("{}", hlisa_bench::table3::report(&checks));
    if checks.iter().any(|c| !c.passed) {
        std::process::exit(1);
    }
}
