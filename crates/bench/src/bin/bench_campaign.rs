//! Runs the campaign-throughput benchmark and writes `BENCH_campaign.json`.
//!
//! Usage: `bench_campaign [--smoke] [--chaos] [--out PATH]`
//!
//! `--smoke` uses the seconds-scale CI sizing; the default sizing matches
//! the numbers committed at the repository root. `--chaos` runs the
//! fault-plane benchmark instead (rate-0 overhead + 5%-fault throughput)
//! and defaults the output to `BENCH_chaos.json`.
fn main() {
    let mut smoke = false;
    let mut chaos = false;
    let mut out_path: Option<String> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--chaos" => chaos = true,
            "--out" => {
                out_path = Some(argv.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_campaign [--smoke] [--chaos] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    let mode = if smoke { "smoke" } else { "full" };

    let (human, json, out_path) = if chaos {
        let config = if smoke {
            hlisa_bench::chaos_bench::ChaosBenchConfig::smoke()
        } else {
            hlisa_bench::chaos_bench::ChaosBenchConfig::full()
        };
        eprintln!("benchmarking chaos-mode campaign ({mode} mode)...");
        let report = hlisa_bench::chaos_bench::run(config);
        (
            report.render_human(),
            report.to_json(),
            out_path.unwrap_or_else(|| String::from("BENCH_chaos.json")),
        )
    } else {
        let config = if smoke {
            hlisa_bench::campaign_bench::BenchConfig::smoke()
        } else {
            hlisa_bench::campaign_bench::BenchConfig::full()
        };
        eprintln!("benchmarking campaign throughput ({mode} mode)...");
        let report = hlisa_bench::campaign_bench::run(config);
        (
            report.render_human(),
            report.to_json(),
            out_path.unwrap_or_else(|| String::from("BENCH_campaign.json")),
        )
    };

    print!("{human}");
    std::fs::write(&out_path, json).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out_path}");
}
