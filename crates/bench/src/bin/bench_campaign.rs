//! Runs the campaign-throughput benchmark and writes `BENCH_campaign.json`.
//!
//! Usage: `bench_campaign [--smoke] [--out PATH]`
//!
//! `--smoke` uses the seconds-scale CI sizing; the default sizing matches
//! the numbers committed at the repository root.
fn main() {
    let mut smoke = false;
    let mut out_path = String::from("BENCH_campaign.json");
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                out_path = argv.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_campaign [--smoke] [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    let config = if smoke {
        hlisa_bench::campaign_bench::BenchConfig::smoke()
    } else {
        hlisa_bench::campaign_bench::BenchConfig::full()
    };
    eprintln!(
        "benchmarking campaign throughput ({} mode)...",
        if smoke { "smoke" } else { "full" }
    );
    let report = hlisa_bench::campaign_bench::run(config);
    print!("{}", report.render_human());
    std::fs::write(&out_path, report.to_json()).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out_path}");
}
