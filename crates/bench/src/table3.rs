//! Table 3 regenerator: an end-to-end conformance sweep over every
//! function of the HLISA API.
//!
//! Each row of Table 3 is exercised against a live session; a row passes
//! when the call succeeds *and* its observable effect (events, cursor
//! position, scroll offset, element text) is present.

use hlisa::HlisaActionChains;
use hlisa_browser::dom::standard_test_page;
use hlisa_browser::{Browser, BrowserConfig, EventKind, Point};
use hlisa_stats::ascii::format_table;
use hlisa_webdriver::{By, Session};

/// One conformance check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiCheck {
    /// API function name as listed in Table 3.
    pub function: &'static str,
    /// Table 3 argument summary.
    pub arguments: &'static str,
    /// Whether the check passed.
    pub passed: bool,
    /// What was verified.
    pub evidence: String,
}

fn fresh() -> Session {
    Session::new(Browser::open(
        BrowserConfig::webdriver(),
        standard_test_page("https://table3.test/", 30_000.0),
    ))
}

/// Runs the sweep.
pub fn run(seed: u64) -> Vec<ApiCheck> {
    let mut checks = Vec::new();
    let mut check = |function: &'static str,
                     arguments: &'static str,
                     f: &mut dyn FnMut() -> Result<String, String>| {
        let (passed, evidence) = match f() {
            Ok(e) => (true, e),
            Err(e) => (false, e),
        };
        checks.push(ApiCheck {
            function,
            arguments,
            passed,
            evidence,
        });
    };

    check("HLISA_ActionChains()", "webdriver", &mut || {
        let chain = HlisaActionChains::new(seed);
        Ok(format!("constructed, {} steps queued", chain.len()))
    });

    check("perform()", "", &mut || {
        let mut s = fresh();
        HlisaActionChains::new(seed)
            .move_to(300.0, 200.0)
            .perform(&mut s)
            .map_err(|e| e.to_string())?;
        Ok(format!("{} events dispatched", s.browser.recorder.len()))
    });

    check("reset_actions()", "", &mut || {
        let chain = HlisaActionChains::new(seed).click(None).reset_actions();
        if chain.is_empty() {
            Ok("queue cleared".into())
        } else {
            Err("queue not cleared".into())
        }
    });

    check("pause()", "duration", &mut || {
        let mut s = fresh();
        let t0 = s.browser.now_ms();
        HlisaActionChains::new(seed)
            .pause(1.25)
            .perform(&mut s)
            .map_err(|e| e.to_string())?;
        let dt = s.browser.now_ms() - t0;
        if (dt - 1_250.0).abs() < 1.0 {
            Ok(format!("paused {dt} ms"))
        } else {
            Err(format!("paused {dt} ms, wanted 1250"))
        }
    });

    check("move_to()", "x,y", &mut || {
        let mut s = fresh();
        HlisaActionChains::new(seed)
            .move_to(640.0, 360.0)
            .perform(&mut s)
            .map_err(|e| e.to_string())?;
        expect_cursor(&s, Point::new(640.0, 360.0))
    });

    check("move_by_offset()", "x, y", &mut || {
        let mut s = fresh();
        HlisaActionChains::new(seed)
            .move_to(100.0, 100.0)
            .move_by_offset(50.0, -25.0)
            .perform(&mut s)
            .map_err(|e| e.to_string())?;
        expect_cursor(&s, Point::new(150.0, 75.0))
    });

    check("move_to_element()", "element", &mut || {
        let mut s = fresh();
        let el = s
            .find_element(By::Id("submit".into()))
            .map_err(|e| e.to_string())?;
        let rect = s.element_rect(el);
        HlisaActionChains::new(seed)
            .move_to_element(el)
            .perform(&mut s)
            .map_err(|e| e.to_string())?;
        let p = s.browser.mouse_position();
        if rect.contains(p) {
            Ok(format!("cursor within element at ({:.0},{:.0})", p.x, p.y))
        } else {
            Err(format!("cursor outside element: {p:?}"))
        }
    });

    check(
        "move_to_element_with_offset()",
        "element, x, y",
        &mut || {
            let mut s = fresh();
            let el = s
                .find_element(By::Id("submit".into()))
                .map_err(|e| e.to_string())?;
            let rect = s.element_rect(el);
            HlisaActionChains::new(seed)
                .move_to_element_with_offset(el, 5.0, 7.0)
                .perform(&mut s)
                .map_err(|e| e.to_string())?;
            expect_cursor(&s, Point::new(rect.x + 5.0, rect.y + 7.0))
        },
    );

    check("move_to_element_outside_viewport()", "element", &mut || {
        let mut s = fresh();
        let el = s
            .find_element(By::Id("section-end".into()))
            .map_err(|e| e.to_string())?;
        HlisaActionChains::new(seed)
            .move_to_element_outside_viewport(el)
            .perform(&mut s)
            .map_err(|e| e.to_string())?;
        let rect = s.element_rect(el);
        if s.browser.viewport.is_y_visible(rect.center().y) && s.browser.recorder.wheel_count() > 0
        {
            Ok(format!(
                "scrolled into view with {} wheel ticks",
                s.browser.recorder.wheel_count()
            ))
        } else {
            Err("element not brought into view by wheel".into())
        }
    });

    check("click()", "element", &mut || {
        let mut s = fresh();
        let el = s
            .find_element(By::Id("submit".into()))
            .map_err(|e| e.to_string())?;
        HlisaActionChains::new(seed)
            .click(Some(el))
            .perform(&mut s)
            .map_err(|e| e.to_string())?;
        expect_events(&s, EventKind::Click, 1)
    });

    check("click_and_hold()", "element", &mut || {
        let mut s = fresh();
        let el = s
            .find_element(By::Id("submit".into()))
            .map_err(|e| e.to_string())?;
        HlisaActionChains::new(seed)
            .click_and_hold(Some(el))
            .perform(&mut s)
            .map_err(|e| e.to_string())?;
        let downs = s.browser.recorder.of_kind(EventKind::MouseDown).len();
        let ups = s.browser.recorder.of_kind(EventKind::MouseUp).len();
        if downs == 1 && ups == 0 {
            Ok("pressed without release".into())
        } else {
            Err(format!("downs={downs} ups={ups}"))
        }
    });

    check("release()", "element", &mut || {
        let mut s = fresh();
        let el = s
            .find_element(By::Id("submit".into()))
            .map_err(|e| e.to_string())?;
        HlisaActionChains::new(seed)
            .click_and_hold(Some(el))
            .release(None)
            .perform(&mut s)
            .map_err(|e| e.to_string())?;
        expect_events(&s, EventKind::MouseUp, 1)
    });

    check("double_click()", "element", &mut || {
        let mut s = fresh();
        let el = s
            .find_element(By::Id("submit".into()))
            .map_err(|e| e.to_string())?;
        HlisaActionChains::new(seed)
            .double_click(Some(el))
            .perform(&mut s)
            .map_err(|e| e.to_string())?;
        expect_events(&s, EventKind::DblClick, 1)
    });

    check("send_keys()", "keys", &mut || {
        let mut s = fresh();
        let el = s
            .find_element(By::Id("text_area".into()))
            .map_err(|e| e.to_string())?;
        HlisaActionChains::new(seed)
            .click(Some(el))
            .send_keys("hi")
            .perform(&mut s)
            .map_err(|e| e.to_string())?;
        if s.element_text(el) == "hi" {
            Ok("typed into focused element".into())
        } else {
            Err(format!("text = {:?}", s.element_text(el)))
        }
    });

    check("send_keys_to_element()", "element, keys", &mut || {
        let mut s = fresh();
        let el = s
            .find_element(By::Id("text_area".into()))
            .map_err(|e| e.to_string())?;
        HlisaActionChains::new(seed)
            .send_keys_to_element(el, "Text..")
            .perform(&mut s)
            .map_err(|e| e.to_string())?;
        if s.element_text(el) == "Text.." {
            Ok("Listing 2 flow works".into())
        } else {
            Err(format!("text = {:?}", s.element_text(el)))
        }
    });

    check("scroll_by()", "x, y", &mut || {
        let mut s = fresh();
        HlisaActionChains::new(seed)
            .scroll_by(0.0, 1_000.0)
            .perform(&mut s)
            .map_err(|e| e.to_string())?;
        let y = s.browser.viewport.scroll_y();
        if (y - 1_000.0).abs() <= 57.0 {
            Ok(format!("scrolled to y = {y}"))
        } else {
            Err(format!("scrolled to y = {y}, wanted ≈1000"))
        }
    });

    check("scroll_to()", "x, y", &mut || {
        let mut s = fresh();
        HlisaActionChains::new(seed)
            .scroll_by(0.0, 500.0)
            .scroll_to(0.0, 2_000.0)
            .perform(&mut s)
            .map_err(|e| e.to_string())?;
        let y = s.browser.viewport.scroll_y();
        if (y - 2_000.0).abs() <= 57.0 {
            Ok(format!("scrolled to y = {y}"))
        } else {
            Err(format!("scrolled to y = {y}, wanted ≈2000"))
        }
    });

    check("context_click()", "element", &mut || {
        let mut s = fresh();
        let el = s
            .find_element(By::Id("submit".into()))
            .map_err(|e| e.to_string())?;
        HlisaActionChains::new(seed)
            .context_click(Some(el))
            .perform(&mut s)
            .map_err(|e| e.to_string())?;
        expect_events(&s, EventKind::ContextMenu, 1)
    });

    check("drag_and_drop()", "element1, element2", &mut || {
        let mut s = fresh();
        let a = s
            .find_element(By::Id("submit".into()))
            .map_err(|e| e.to_string())?;
        let b = s
            .find_element(By::Id("jump".into()))
            .map_err(|e| e.to_string())?;
        HlisaActionChains::new(seed)
            .drag_and_drop(a, b)
            .perform(&mut s)
            .map_err(|e| e.to_string())?;
        let target = s.element_rect(b);
        let p = s.browser.mouse_position();
        if target.contains(p) {
            Ok("released over target element".into())
        } else {
            Err(format!("released at {p:?}"))
        }
    });

    check("drag_and_drop_by_offset()", "element, x, y", &mut || {
        let mut s = fresh();
        let el = s
            .find_element(By::Id("submit".into()))
            .map_err(|e| e.to_string())?;
        let before = s.element_rect(el);
        HlisaActionChains::new(seed)
            .drag_and_drop_by_offset(el, 200.0, 50.0)
            .perform(&mut s)
            .map_err(|e| e.to_string())?;
        let p = s.browser.mouse_position();
        // The cursor must end one offset away from where it pressed.
        if p.x > before.x + before.width
            && s.browser.recorder.of_kind(EventKind::MouseUp).len() == 1
        {
            Ok("held, moved by offset, released".into())
        } else {
            Err(format!("cursor at {p:?}"))
        }
    });

    checks
}

/// Expects the cursor at a specific point.
fn expect_cursor(s: &Session, want: Point) -> Result<String, String> {
    let p = s.browser.mouse_position();
    if (p.x - want.x).abs() < 0.5 && (p.y - want.y).abs() < 0.5 {
        Ok(format!("cursor at ({:.0},{:.0})", p.x, p.y))
    } else {
        Err(format!("cursor at {p:?}, wanted {want:?}"))
    }
}

fn expect_events(s: &Session, kind: EventKind, n: usize) -> Result<String, String> {
    let got = s.browser.recorder.of_kind(kind).len();
    if got == n {
        Ok(format!("{n} × {}", kind.name()))
    } else {
        Err(format!("{got} × {} (wanted {n})", kind.name()))
    }
}

/// Formats the sweep as Table 3.
pub fn report(checks: &[ApiCheck]) -> String {
    let mut out = String::from("Table 3: The HLISA API — conformance sweep.\n\n");
    let header = ["API function", "Arguments", "Status", "Evidence"];
    let rows: Vec<Vec<String>> = checks
        .iter()
        .map(|c| {
            vec![
                c.function.to_string(),
                c.arguments.to_string(),
                if c.passed { "PASS" } else { "FAIL" }.to_string(),
                c.evidence.clone(),
            ]
        })
        .collect();
    out.push_str(&format_table(&header, &rows));
    let passed = checks.iter().filter(|c| c.passed).count();
    out.push_str(&format!(
        "\n{passed}/{} functions verified.\n",
        checks.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_api_function_passes() {
        let checks = run(2024);
        for c in &checks {
            assert!(c.passed, "{} failed: {}", c.function, c.evidence);
        }
        // All 20 Table 3 rows are covered.
        assert_eq!(checks.len(), 20);
    }

    #[test]
    fn report_lists_all_rows() {
        let checks = run(1);
        let r = report(&checks);
        assert!(r.contains("send_keys_to_element"));
        assert!(r.contains("20/20"));
    }
}
