//! Lint-throughput benchmark: how fast the AST-grade determinism
//! analysis covers the workspace, and what the structure costs over the
//! retired token scanner.
//!
//! Three measurements, emitted as `BENCH_lint.json`:
//!
//! 1. **Parse** — lexing + tree building + recursive-descent parsing
//!    ([`hlisa_lint::AstAnalysis`] construction) over every file the
//!    workspace linter covers.
//! 2. **Analyze** — the rule passes ([`hlisa_lint::analyze_file`]) over
//!    pre-built analyses, with each file's real exemptions and pass
//!    configuration, so the split shows where a `hlisa-lint` run spends
//!    its time.
//! 3. **Token scanner** — the retired line/token scanner
//!    ([`hlisa_lint::analyze_source`]) as the reference point: the
//!    `ast_cost_ratio` says what the AST upgrade costs per covered line
//!    (expected well above 1 — the parse buys precision, and the
//!    differential suite keeps both sides honest).
//!
//! Timing here reads the *wall clock on purpose*: the benchmark measures
//! real elapsed cost, and its numbers feed a JSON report, never a
//! simulated observable, so the determinism fence does not apply.

use hlisa_lint::{
    analyze_file, analyze_source, exemptions_for, find_workspace_root, workspace_files,
    AstAnalysis, Exemptions, RulePasses,
};
use std::hint::black_box;
use std::path::Path;
use std::time::Duration;

/// Benchmark sizing.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Full workspace sweeps per timed phase.
    pub iters: u32,
}

impl BenchConfig {
    /// The default run: big enough for stable rates.
    pub fn full() -> Self {
        Self { iters: 40 }
    }

    /// A seconds-scale smoke run for CI.
    pub fn smoke() -> Self {
        Self { iters: 3 }
    }
}

/// One timed phase.
#[derive(Debug, Clone, Copy)]
pub struct Phase {
    /// Mean seconds per full workspace sweep.
    pub seconds_per_sweep: f64,
    /// Source lines covered per second.
    pub lines_per_s: f64,
}

/// The full benchmark result.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Sizing used.
    pub config: BenchConfig,
    /// Files the sweep covers.
    pub files: usize,
    /// Source lines the sweep covers.
    pub lines: u64,
    /// Findings per sweep (pre-suppression rule hits are not counted;
    /// this is the post-suppression diagnostic count, a sanity anchor
    /// that the timed work is the real analysis).
    pub findings: usize,
    /// Lex + tree building + parsing.
    pub parse: Phase,
    /// Rule passes over pre-built analyses.
    pub analyze: Phase,
    /// Parse + analyze (one `hlisa-lint` visit per file).
    pub total: Phase,
    /// The retired token scanner, for reference.
    pub scanner: Phase,
}

impl BenchReport {
    /// AST end-to-end cost per line over the token scanner's.
    pub fn ast_cost_ratio(&self) -> f64 {
        self.total.seconds_per_sweep / self.scanner.seconds_per_sweep.max(1e-12)
    }

    /// Fraction of the AST pass spent past the parser.
    pub fn analyze_share(&self) -> f64 {
        self.analyze.seconds_per_sweep / self.total.seconds_per_sweep.max(1e-12)
    }
}

fn timed<R>(f: impl FnOnce() -> R) -> (Duration, R) {
    let start = std::time::Instant::now();
    let out = f();
    (start.elapsed(), out)
}

fn phase(total: Duration, iters: u32, lines: u64) -> Phase {
    let per_sweep = total.as_secs_f64() / f64::from(iters.max(1));
    Phase {
        seconds_per_sweep: per_sweep,
        lines_per_s: lines as f64 / per_sweep.max(1e-12),
    }
}

/// One loaded workspace file.
struct Loaded {
    rel: String,
    text: String,
    exempt: Exemptions,
    passes: RulePasses,
}

fn load_workspace(root: &Path) -> Vec<Loaded> {
    workspace_files(root)
        .expect("walk workspace")
        .into_iter()
        .map(|(rel, path, passes)| {
            let text = std::fs::read_to_string(&path).expect("read source");
            let exempt = exemptions_for(&rel);
            Loaded {
                rel,
                text,
                exempt,
                passes,
            }
        })
        .collect()
}

/// Runs the benchmark against the enclosing workspace.
pub fn run(config: BenchConfig) -> BenchReport {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("bench must run inside the workspace");
    let files = load_workspace(&root);
    let lines = files
        .iter()
        .map(|f| f.text.lines().count() as u64)
        .sum::<u64>();

    // Parse: AstAnalysis construction only.
    let (parse_t, analyses) = timed(|| {
        let mut last = Vec::new();
        for _ in 0..config.iters {
            last = files
                .iter()
                .map(|f| black_box(AstAnalysis::of(&f.text)))
                .collect();
        }
        last
    });

    // Analyze: rule passes over the pre-built analyses.
    let (analyze_t, findings) = timed(|| {
        let mut n = 0usize;
        for _ in 0..config.iters {
            n = files
                .iter()
                .zip(&analyses)
                .map(|(f, a)| black_box(analyze_file(&f.rel, a, f.exempt, f.passes)).len())
                .sum();
        }
        n
    });

    // Token scanner reference.
    let (scanner_t, _) = timed(|| {
        let mut n = 0usize;
        for _ in 0..config.iters {
            n = files
                .iter()
                .map(|f| black_box(analyze_source(&f.rel, &f.text, f.exempt)).len())
                .sum();
        }
        n
    });

    BenchReport {
        config,
        files: files.len(),
        lines,
        findings,
        parse: phase(parse_t, config.iters, lines),
        analyze: phase(analyze_t, config.iters, lines),
        total: phase(parse_t + analyze_t, config.iters, lines),
        scanner: phase(scanner_t, config.iters, lines),
    }
}

fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

fn phase_json(p: &Phase) -> String {
    format!(
        "{{\"seconds_per_sweep\": {}, \"lines_per_s\": {}}}",
        json_num(p.seconds_per_sweep),
        json_num(p.lines_per_s),
    )
}

impl BenchReport {
    /// Serializes the report (hand-rolled: the workspace vendors no JSON
    /// writer and the schema is flat).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\n",
                "  \"benchmark\": \"hlisa-lint AST analysis over the workspace\",\n",
                "  \"config\": {{\"iters\": {}}},\n",
                "  \"files\": {},\n",
                "  \"lines\": {},\n",
                "  \"findings\": {},\n",
                "  \"parse\": {},\n",
                "  \"analyze\": {},\n",
                "  \"total\": {},\n",
                "  \"token_scanner\": {},\n",
                "  \"ast_cost_ratio\": {},\n",
                "  \"analyze_share\": {}\n",
                "}}\n"
            ),
            self.config.iters,
            self.files,
            self.lines,
            self.findings,
            phase_json(&self.parse),
            phase_json(&self.analyze),
            phase_json(&self.total),
            phase_json(&self.scanner),
            json_num(self.ast_cost_ratio()),
            json_num(self.analyze_share()),
        )
    }

    /// Human-readable summary.
    pub fn render_human(&self) -> String {
        let row = |label: &str, p: &Phase| {
            format!(
                "{label:<14} {:>10.1} ms/sweep   {:>12.0} lines/s\n",
                p.seconds_per_sweep * 1e3,
                p.lines_per_s
            )
        };
        let mut out = format!(
            "lint throughput over {} files / {} lines ({} findings per sweep)\n",
            self.files, self.lines, self.findings
        );
        out.push_str(&row("parse", &self.parse));
        out.push_str(&row("analyze", &self.analyze));
        out.push_str(&row("ast total", &self.total));
        out.push_str(&row("token scanner", &self.scanner));
        out.push_str(&format!(
            "ast/scanner cost ratio {:.1}x, {:.0}% of the AST pass is past the parser\n",
            self.ast_cost_ratio(),
            self.analyze_share() * 100.0
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_report_is_well_formed() {
        let report = run(BenchConfig { iters: 1 });
        assert!(report.files > 100, "{} files", report.files);
        assert!(report.lines > 10_000, "{} lines", report.lines);
        // The workspace gate holds, so a sweep with the real exemptions
        // finds nothing.
        assert_eq!(report.findings, 0);
        let json = report.to_json();
        for field in [
            "\"parse\"",
            "\"analyze\"",
            "\"total\"",
            "\"token_scanner\"",
            "\"ast_cost_ratio\"",
            "\"lines_per_s\"",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        assert!(report.render_human().contains("lint throughput"));
    }
}
