//! Experiment harness: one regenerator per table and figure of the paper.
//!
//! Each `pub fn` returns a structured result *and* a formatted report; the
//! thin binaries in `src/bin/` print the reports. Mapping:
//!
//! | Paper artefact | Module | Binary |
//! |---|---|---|
//! | Table 1 (spoofing side effects) | [`table1`] | `table1` |
//! | Table 2 (screenshot evaluation) | [`fieldstudy`] | `table2` |
//! | Figure 4 / Appendix B (HTTP errors) | [`fieldstudy`] | `figure4` |
//! | Figure 1 (cursor trajectories) | [`figures`] | `figure1` |
//! | Figure 2 (click distributions) | [`figures`] | `figure2` |
//! | Figure 3 (arms race) | [`figure3`] | `figure3` |
//! | Table 3 (the HLISA API) | [`table3`] | `table3` |
//! | Table 4 / Appendix G (tool comparison) | [`table4`] | `table4` |
//! | Appendix C/D (events & granularity) | [`appendix_d`] | `appendix_d` |
//! | Design-choice ablations | [`ablations`] | `ablations` |

pub mod ablations;
pub mod appendix_d;
pub mod campaign_bench;
pub mod chaos_bench;
pub mod fieldstudy;
pub mod figure3;
pub mod figures;
pub mod interaction_bench;
pub mod lint_bench;
pub mod lintreport;
pub mod parallel_bench;
pub mod reliability_bench;
pub mod table1;
pub mod table3;
pub mod table4;
pub mod web_bench;
