//! Figure 3 regenerator: the arms-race detection matrix.

use hlisa_armsrace::{run_tournament, TournamentConfig, TournamentResult};
use hlisa_detect::DetectorLevel;
use hlisa_stats::ascii::format_table;

/// Runs the tournament at paper-illustration scale.
pub fn run(config: &TournamentConfig) -> TournamentResult {
    run_tournament(config)
}

/// Renders the matrix with detection rates and GDPR annotations.
pub fn report(result: &TournamentResult) -> String {
    let mut out = String::from(
        "Figure 3: the arms race for page interaction, as a measured detection matrix.\n\
         Cells: fraction of sessions flagged by a detector at that level.\n\n",
    );
    let mut header: Vec<String> = vec!["Simulator \\ Detector".to_string()];
    for l in DetectorLevel::ALL {
        header.push(format!(
            "L{}{}",
            l as usize + 1,
            if l.gdpr_sensitive() { "*" } else { "" }
        ));
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let rows: Vec<Vec<String>> = result
        .simulators
        .iter()
        .map(|sim| {
            let mut row = vec![sim.clone()];
            for l in DetectorLevel::ALL {
                let rate = result.rate(sim, l).unwrap_or(f64::NAN);
                row.push(format!("{rate:.2}"));
            }
            row
        })
        .collect();
    out.push_str(&format_table(&header_refs, &rows));
    out.push_str(
        "\n* levels the paper flags as potentially conflicting with privacy regulation (GDPR):\n",
    );
    for l in DetectorLevel::ALL {
        out.push_str(&format!(
            "  L{} = {}{}\n",
            l as usize + 1,
            l.label(),
            if l.gdpr_sensitive() {
                "  [GDPR-sensitive]"
            } else {
                ""
            }
        ));
    }
    out.push_str(
        "\nReading: HLISA is first caught at L3 — \"to detect HLISA, an interaction-based\n\
         detector needs to compare the observed interaction to a model of human behaviour\" (§5).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_contains_matrix_and_annotations() {
        let cfg = TournamentConfig {
            seed: 3,
            sessions_per_agent: 2,
            reference_sessions: 2,
            enrollment_sessions: 2,
        };
        let r = report(&run(&cfg));
        assert!(r.contains("L1"));
        assert!(r.contains("GDPR"));
        assert!(r.contains("HLISA"));
        // 7 simulator rows.
        assert!(r.matches("0.").count() >= 7);
    }
}
