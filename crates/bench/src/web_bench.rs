//! Layered page-model benchmark: tree generation, layered hit testing,
//! and batched DOM mutation.
//!
//! Three measurements, emitted as `BENCH_web.json`:
//!
//! 1. **Page generation** — [`generate_page`] throughput: nested DOM tree
//!    construction plus the RNG-free flow layout, the cost every scenario
//!    visit pays up front. A plain rate (there is no slow side to compare
//!    against — the flat model could not build these pages at all).
//! 2. **Layered hit testing** — the from-scratch linear reference
//!    ([`Document::hit_test_linear`], which recomputes effective layers
//!    and pre-order per probe) vs the spatial-grid index
//!    ([`Document::hit_test`]) over generated pages carrying a
//!    cookie-banner overlay, so occlusion and z-order are on the probed
//!    path.
//! 3. **DOM mutation** — one reflow per change (the naive `mutate` call
//!    per operation) vs one [`DocumentMutator`] batch that reflows once
//!    at the end, over SPA-style detach/restyle bursts.
//!
//! Timing here reads the *wall clock on purpose*: the benchmark measures
//! real elapsed cost, and its numbers feed a JSON report, never a
//! simulated observable, so the determinism fence does not apply.

pub use crate::campaign_bench::Comparison;
use hlisa_browser::{Display, Document, Point};
use hlisa_sim::SimContext;
use hlisa_web::dynamics::{apply_scenario, ScenarioKind};
use hlisa_web::page::{generate_page, GeneratedPage, PageStructure};
use hlisa_web::Site;
use std::hint::black_box;
use std::time::Duration;

/// Benchmark sizing.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Pages generated for the throughput row (and reused as the probe
    /// corpus for hit testing).
    pub pages: usize,
    /// Full passes over the probe lattice per hit-test loop.
    pub hit_passes: u32,
    /// Mutation bursts per mutation loop.
    pub mutate_bursts: u32,
    /// Style changes per burst.
    pub muts_per_burst: usize,
}

impl BenchConfig {
    /// The default run: big enough for stable ratios.
    pub fn full() -> Self {
        Self {
            pages: 400,
            hit_passes: 40,
            mutate_bursts: 2_000,
            muts_per_burst: 24,
        }
    }

    /// A seconds-scale smoke run for CI.
    pub fn smoke() -> Self {
        Self {
            pages: 40,
            hit_passes: 4,
            mutate_bursts: 50,
            muts_per_burst: 12,
        }
    }
}

/// The full benchmark result.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Sizing used.
    pub config: BenchConfig,
    /// Pages generated on the timed path.
    pub gen_pages: u64,
    /// Page generation + flow layout, seconds.
    pub gen_s: f64,
    /// Nodes in the generated corpus (all pages).
    pub corpus_nodes: u64,
    /// Linear reference vs spatial-grid hit testing on layered pages.
    pub hit_test: Comparison,
    /// Reflow-per-change vs one batched reflow.
    pub mutation: Comparison,
}

impl BenchReport {
    /// Pages generated per second.
    pub fn gen_rate(&self) -> f64 {
        self.gen_pages as f64 / self.gen_s.max(1e-12)
    }
}

fn timed<R>(f: impl FnOnce() -> R) -> (Duration, R) {
    let start = std::time::Instant::now();
    let out = f();
    (start.elapsed(), out)
}

fn bench_site(i: usize) -> Site {
    Site {
        rank: (i as u32 % 9_000) + 1,
        domain: format!("bench{i:04}.example"),
        detector: None,
        ad_slots: (i % 6) as u8,
        has_video: i % 5 == 0,
        breaks_under_spoofing: false,
        unreachable: false,
        flaky_visit_prob: 0.0,
        first_party_requests: 8,
        third_party_requests: 14,
        scenario: None,
    }
}

fn generate_corpus(pages: usize) -> Vec<GeneratedPage> {
    (0..pages)
        .map(|i| {
            let site = bench_site(i);
            let mut ctx = SimContext::new(0xB00C + i as u64);
            let mut page = generate_page(&site, &PageStructure::default(), &mut ctx);
            // An overlay on every page puts occlusion on the probed path.
            apply_scenario(&mut page, ScenarioKind::CookieBanner);
            page
        })
        .collect()
}

fn bench_generation(config: &BenchConfig) -> (u64, f64, u64) {
    // Warm (page-in, branch predictors) with a few pages.
    black_box(generate_corpus(config.pages.min(8)));
    let (t, nodes) = timed(|| {
        generate_corpus(config.pages)
            .iter()
            .map(|p| p.doc.len() as u64)
            .sum::<u64>()
    });
    (config.pages as u64, t.as_secs_f64(), nodes)
}

/// Probe lattice: 32×32 points per page, spanning the page box.
fn probe_points(doc: &Document) -> Vec<Point> {
    let mut points = Vec::with_capacity(32 * 32);
    for i in 0..32u32 {
        for j in 0..32u32 {
            points.push(Point::new(
                f64::from(i) / 31.0 * (doc.page_width - 1.0),
                f64::from(j) / 31.0 * (doc.page_height - 1.0),
            ));
        }
    }
    points
}

fn bench_hit_test(config: &BenchConfig, corpus: &[GeneratedPage]) -> Comparison {
    let pages: Vec<(&Document, Vec<Point>)> = corpus
        .iter()
        .map(|p| {
            // Prime each grid so index construction is not on the timed
            // path (a session builds it once, queries it thousands of
            // times).
            let _ = p.doc.hit_test(Point::new(0.0, 0.0));
            let pts = probe_points(&p.doc);
            (&p.doc, pts)
        })
        .collect();
    let ops =
        u64::from(config.hit_passes) * pages.iter().map(|(_, pts)| pts.len() as u64).sum::<u64>();
    let (linear_t, a) = timed(|| {
        let mut acc = 0u64;
        for _ in 0..config.hit_passes {
            for (doc, pts) in &pages {
                for p in pts {
                    acc += doc
                        .hit_test_linear(black_box(*p))
                        .map_or(0, |id| id.index() as u64 + 1);
                }
            }
        }
        acc
    });
    let (grid_t, b) = timed(|| {
        let mut acc = 0u64;
        for _ in 0..config.hit_passes {
            for (doc, pts) in &pages {
                for p in pts {
                    acc += doc
                        .hit_test(black_box(*p))
                        .map_or(0, |id| id.index() as u64 + 1);
                }
            }
        }
        acc
    });
    assert_eq!(a, b, "hit-test sides disagree");
    Comparison {
        ops,
        baseline_s: linear_t.as_secs_f64(),
        optimized_s: grid_t.as_secs_f64(),
    }
}

/// One SPA-style burst: restyle `k` leaf blocks (alternating hide/show),
/// through either one `mutate` call per change (baseline: a reflow each)
/// or a single batch (optimized: one reflow at the end).
fn mutation_targets(doc: &Document, k: usize) -> Vec<hlisa_browser::NodeId> {
    doc.ids()
        .filter(|&id| doc.element(id).tag == "p")
        .take(k)
        .collect()
}

fn bench_mutation(config: &BenchConfig, corpus: &[GeneratedPage]) -> Comparison {
    let template = &corpus[0].doc;
    let targets = mutation_targets(template, config.muts_per_burst);
    assert!(!targets.is_empty(), "corpus page has no leaf paragraphs");
    let burst = |doc: &mut Document, batched: bool, flip: bool| {
        let display = |j: usize| {
            if (j % 2 == 0) ^ flip {
                Display::None
            } else {
                Display::Block {
                    height: 40.0,
                    width_frac: 1.0,
                    margin: 4.0,
                    padding: 2.0,
                }
            }
        };
        if batched {
            doc.mutate(|m| {
                for (j, &id) in targets.iter().enumerate() {
                    m.set_display(id, display(j));
                }
            });
        } else {
            for (j, &id) in targets.iter().enumerate() {
                doc.mutate(|m| m.set_display(id, display(j)));
            }
        }
    };
    let ops = u64::from(config.mutate_bursts) * targets.len() as u64;
    let mut doc_a = template.clone();
    let (per_change_t, ()) = timed(|| {
        for i in 0..config.mutate_bursts {
            burst(&mut doc_a, false, i % 2 == 0);
        }
    });
    let mut doc_b = template.clone();
    let (batched_t, ()) = timed(|| {
        for i in 0..config.mutate_bursts {
            burst(&mut doc_b, true, i % 2 == 0);
        }
    });
    assert_eq!(doc_a, doc_b, "mutation sides disagree");
    Comparison {
        ops,
        baseline_s: per_change_t.as_secs_f64(),
        optimized_s: batched_t.as_secs_f64(),
    }
}

/// Runs the whole suite.
pub fn run(config: BenchConfig) -> BenchReport {
    let (gen_pages, gen_s, corpus_nodes) = bench_generation(&config);
    let corpus = generate_corpus(config.pages);
    let hit_test = bench_hit_test(&config, &corpus);
    let mutation = bench_mutation(&config, &corpus);
    BenchReport {
        config,
        gen_pages,
        gen_s,
        corpus_nodes,
        hit_test,
        mutation,
    }
}

fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

fn comparison_json(c: &Comparison, unit: &str) -> String {
    format!(
        concat!(
            "{{\"ops\": {}, \"unit\": \"{}\", \"baseline_s\": {}, \"optimized_s\": {}, ",
            "\"baseline_per_sec\": {}, \"optimized_per_sec\": {}, \"speedup\": {}}}"
        ),
        c.ops,
        unit,
        json_num(c.baseline_s),
        json_num(c.optimized_s),
        json_num(c.baseline_rate()),
        json_num(c.optimized_rate()),
        json_num(c.speedup()),
    )
}

impl BenchReport {
    /// Serializes the report (hand-rolled: the workspace vendors no JSON
    /// writer and the schema is flat).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\n",
                "  \"benchmark\": \"hlisa layered page model (generation/hit test/mutation)\",\n",
                "  \"config\": {{\"pages\": {}, \"hit_passes\": {}, ",
                "\"mutate_bursts\": {}, \"muts_per_burst\": {}}},\n",
                "  \"corpus_nodes\": {},\n",
                "  \"page_generation\": {{\"ops\": {}, \"unit\": \"pages\", ",
                "\"seconds\": {}, \"per_sec\": {}}},\n",
                "  \"layered_hit_test\": {},\n",
                "  \"dom_mutation\": {}\n",
                "}}\n"
            ),
            self.config.pages,
            self.config.hit_passes,
            self.config.mutate_bursts,
            self.config.muts_per_burst,
            self.corpus_nodes,
            self.gen_pages,
            json_num(self.gen_s),
            json_num(self.gen_rate()),
            comparison_json(&self.hit_test, "probes"),
            comparison_json(&self.mutation, "changes"),
        )
    }

    /// Human-readable summary.
    pub fn render_human(&self) -> String {
        let row = |label: &str, c: &Comparison| {
            format!(
                "{label:<18} {:>12.0}/s -> {:>12.0}/s   ({:.1}x)\n",
                c.baseline_rate(),
                c.optimized_rate(),
                c.speedup()
            )
        };
        let mut out = String::from("layered page-model benchmark (baseline -> optimized)\n");
        out.push_str(&format!(
            "{:<18} {:>12.0} pages/s ({} nodes built)\n",
            "page generation",
            self.gen_rate(),
            self.corpus_nodes
        ));
        out.push_str(&row("layered hit test", &self.hit_test));
        out.push_str(&row("dom mutation", &self.mutation));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_report_is_well_formed() {
        let cfg = BenchConfig {
            pages: 4,
            hit_passes: 1,
            mutate_bursts: 2,
            muts_per_burst: 4,
        };
        let report = run(cfg);
        assert!(report.corpus_nodes > 100, "{} nodes", report.corpus_nodes);
        let json = report.to_json();
        for field in [
            "\"page_generation\"",
            "\"layered_hit_test\"",
            "\"dom_mutation\"",
            "\"speedup\"",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        let human = report.render_human();
        assert!(human.contains("layered hit test"));
    }

    #[test]
    fn corpus_pages_carry_overlays_and_nested_structure() {
        let corpus = generate_corpus(3);
        for p in &corpus {
            assert!(p.doc.by_id("cookie-banner").is_some());
            let max_depth = p.doc.ids().map(|id| p.doc.depth(id)).max().unwrap_or(0);
            assert!(max_depth >= 2, "flat page in corpus");
        }
    }
}
