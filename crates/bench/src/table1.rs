//! Table 1 regenerator: detectable side effects by spoofing method.

use hlisa_detect::{probe_side_effects, SideEffect};
use hlisa_jsom::{build_firefox_world, BrowserFlavor, Value};
use hlisa_spoof::SpoofMethod;
use hlisa_stats::ascii::format_table;

/// The computed matrix: for each side effect, which methods exhibit it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1Result {
    /// (side effect, \[method 1..4 exhibits it\]).
    pub rows: Vec<(SideEffect, [bool; 4])>,
}

impl Table1Result {
    /// The matrix the paper reports (Table 1).
    pub fn paper_expected() -> Vec<(SideEffect, [bool; 4])> {
        vec![
            (
                SideEffect::IncorrectNavigatorOrder,
                [true, true, false, false],
            ),
            (
                SideEffect::ModifiedNavigatorLength,
                [true, true, false, false],
            ),
            (SideEffect::NewObjectKeys, [true, true, false, false]),
            (
                SideEffect::DefinedProtoWebdriver,
                [false, false, true, false],
            ),
            (
                SideEffect::UnnamedNavigatorFunctions,
                [false, false, false, true],
            ),
        ]
    }

    /// True when the measured matrix equals the paper's.
    pub fn matches_paper(&self) -> bool {
        self.rows == Self::paper_expected()
    }
}

/// Runs the §3.1 experiment: spoof `navigator.webdriver = false` in a
/// WebDriver Firefox with each method, then run the five probes.
pub fn run() -> Table1Result {
    let mut per_method: Vec<Vec<SideEffect>> = Vec::new();
    for method in SpoofMethod::ALL {
        let mut world = build_firefox_world(BrowserFlavor::WebDriverFirefox);
        method
            .apply(&mut world, "webdriver", Value::Bool(false))
            .expect("spoofing applies");
        per_method.push(probe_side_effects(&mut world));
    }
    let rows = SideEffect::ALL
        .iter()
        .map(|se| {
            let mut marks = [false; 4];
            for (i, found) in per_method.iter().enumerate() {
                marks[i] = found.contains(se);
            }
            (*se, marks)
        })
        .collect();
    Table1Result { rows }
}

/// Formats the result like the paper's Table 1.
pub fn report(result: &Table1Result) -> String {
    let mut out = String::from("Table 1: Detectable side effects by spoofing methods\n\n");
    let header = ["Side effect", "1", "2", "3", "4"];
    let rows: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|(se, marks)| {
            let mut row = vec![se.label().to_string()];
            row.extend(marks.iter().map(|m| if *m { "x" } else { "" }.to_string()));
            row
        })
        .collect();
    out.push_str(&format_table(&header, &rows));
    out.push_str(
        "\nMethods: 1=defineProperty  2=__defineGetter__  3=setPrototypeOf  4=Proxy objects\n",
    );
    out.push_str(&format!(
        "Matches the paper's matrix: {}\n",
        if result.matches_paper() { "YES" } else { "NO" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_matrix_matches_paper_exactly() {
        let r = run();
        assert!(
            r.matches_paper(),
            "measured: {:#?}\nexpected: {:#?}",
            r.rows,
            Table1Result::paper_expected()
        );
    }

    #[test]
    fn report_mentions_every_method() {
        let s = report(&run());
        for needle in [
            "defineProperty",
            "__defineGetter__",
            "setPrototypeOf",
            "Proxy",
        ] {
            assert!(s.contains(needle));
        }
        assert!(s.contains("YES"));
    }
}
