//! Campaign-throughput benchmark: the atoms/shapes/snapshots hot path.
//!
//! Three measurements, emitted as `BENCH_campaign.json`:
//!
//! 1. **World acquisition** — building a `WebDriverFirefox` world from
//!    scratch vs stamping one from a [`WorldSnapshot`] (the per-visit
//!    cost a crawl pays 16,000 times at the paper's scale).
//! 2. **Property lookups** — the linear-scan reference model
//!    ([`LinearObject`]) vs the shape-indexed realm storage, probed over
//!    the real `Navigator.prototype` key set.
//! 3. **Campaign visits/sec** — the full two-machine crawl with the
//!    world-snapshot cache off (the pre-optimization cost model: one
//!    fresh world build per visit) and on (stamped worlds).
//!
//! Timing here reads the *wall clock on purpose*: the benchmark measures
//! real elapsed cost, and its numbers feed a JSON report, never a
//! simulated observable, so the determinism fence does not apply.

use hlisa_crawler::campaign::{run_campaign, Campaign, CampaignConfig};
use hlisa_jsom::object::JsObject;
use hlisa_jsom::realm::Realm;
use hlisa_jsom::{build_firefox_world, BrowserFlavor, LinearObject, PropertyDescriptor, Value};
use hlisa_web::{PopulationConfig, WorldSnapshot};
use std::hint::black_box;
use std::time::Duration;

/// Benchmark sizing.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// World builds/stamps per timing loop.
    pub world_iters: u32,
    /// Full passes over the navigator key set per lookup loop.
    pub lookup_iters: u32,
    /// Sites in the campaign population.
    pub campaign_sites: usize,
    /// Visits per site per machine.
    pub visits_per_site: usize,
}

impl BenchConfig {
    /// The default run: big enough for stable ratios.
    pub fn full() -> Self {
        Self {
            world_iters: 200,
            lookup_iters: 20_000,
            campaign_sites: 120,
            visits_per_site: 8,
        }
    }

    /// A seconds-scale smoke run for CI.
    pub fn smoke() -> Self {
        Self {
            world_iters: 20,
            lookup_iters: 2_000,
            campaign_sites: 30,
            visits_per_site: 4,
        }
    }
}

/// One before/after pair with derived rates.
#[derive(Debug, Clone, Copy)]
pub struct Comparison {
    /// Operations timed on each side.
    pub ops: u64,
    /// Baseline (pre-optimization) elapsed seconds.
    pub baseline_s: f64,
    /// Optimized elapsed seconds.
    pub optimized_s: f64,
}

impl Comparison {
    /// Baseline operations per second.
    pub fn baseline_rate(&self) -> f64 {
        self.ops as f64 / self.baseline_s.max(1e-12)
    }

    /// Optimized operations per second.
    pub fn optimized_rate(&self) -> f64 {
        self.ops as f64 / self.optimized_s.max(1e-12)
    }

    /// Throughput ratio (optimized / baseline).
    pub fn speedup(&self) -> f64 {
        self.baseline_s / self.optimized_s.max(1e-12)
    }
}

/// The full benchmark result.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Sizing used.
    pub config: BenchConfig,
    /// Fresh world build vs snapshot stamp (per-visit world acquisition).
    pub world: Comparison,
    /// Linear-scan vs shape-indexed own-property lookups.
    pub lookup: Comparison,
    /// Total visits simulated per campaign side.
    pub campaign_visits: u64,
    /// Fresh-built-worlds campaign vs snapshot-stamped campaign.
    pub campaign: Comparison,
}

fn timed<R>(f: impl FnOnce() -> R) -> (Duration, R) {
    let start = std::time::Instant::now();
    let out = f();
    (start.elapsed(), out)
}

fn bench_world(iters: u32) -> Comparison {
    let snapshot = WorldSnapshot::build(BrowserFlavor::WebDriverFirefox);
    let (build_t, _) = timed(|| {
        for _ in 0..iters {
            black_box(build_firefox_world(BrowserFlavor::WebDriverFirefox));
        }
    });
    let (stamp_t, _) = timed(|| {
        for _ in 0..iters {
            black_box(snapshot.stamp());
        }
    });
    Comparison {
        ops: u64::from(iters),
        baseline_s: build_t.as_secs_f64(),
        optimized_s: stamp_t.as_secs_f64(),
    }
}

/// Lookup probe sizing: a real `window` global exposes hundreds of Web
/// IDL properties (the repro's reduced world keeps only the study's hot
/// ones), so the scan-vs-shape scaling is measured on a window-sized
/// object; detectors also probe for tells that are *absent* (headless
/// leak names), which cost the linear scan a full pass.
const LOOKUP_PRESENT_KEYS: usize = 256;
const LOOKUP_ABSENT_PROBES: usize = 64;

fn bench_lookup(iters: u32) -> Comparison {
    let mut realm = Realm::new();
    let obj = realm.alloc(JsObject::plain("Window", None));
    let mut linear = LinearObject::new();
    let mut probes: Vec<String> = Vec::new();
    for i in 0..LOOKUP_PRESENT_KEYS {
        let key = format!("idlAttribute{i:03}");
        let desc = PropertyDescriptor::plain(Value::Number(i as f64));
        realm.set_own(obj, &key, desc.clone());
        linear.set_own(&key, desc);
        probes.push(key);
    }
    for i in 0..LOOKUP_ABSENT_PROBES {
        probes.push(format!("headlessTell{i:02}"));
    }
    let ops = u64::from(iters) * probes.len() as u64;
    let (linear_t, a) = timed(|| {
        let mut hits = 0u64;
        for _ in 0..iters {
            for key in &probes {
                hits += u64::from(black_box(linear.own(black_box(key))).is_some());
            }
        }
        hits
    });
    let (shape_t, b) = timed(|| {
        let mut hits = 0u64;
        for _ in 0..iters {
            for key in &probes {
                hits += u64::from(black_box(realm.has_own(obj, black_box(key))));
            }
        }
        hits
    });
    assert_eq!(a, b, "lookup sides disagree");
    Comparison {
        ops,
        baseline_s: linear_t.as_secs_f64(),
        optimized_s: shape_t.as_secs_f64(),
    }
}

/// The campaign config both sides run (only `world_cache` differs).
fn campaign_config(bench: &BenchConfig, world_cache: bool) -> CampaignConfig {
    CampaignConfig {
        seed: 42,
        population: PopulationConfig {
            n_sites: bench.campaign_sites,
            ..PopulationConfig::default()
        },
        visits_per_site: bench.visits_per_site,
        instances: 4,
        world_cache,
        plan_interactions: false,
    }
}

fn bench_campaign(bench: &BenchConfig) -> (u64, Comparison) {
    // 2 machines × sites × visits.
    let visits = 2 * bench.campaign_sites as u64 * bench.visits_per_site as u64;
    let (fresh_t, fresh) = timed(|| run_campaign(&campaign_config(bench, false)));
    let (cached_t, cached) = timed(|| run_campaign(&campaign_config(bench, true)));
    assert_campaigns_equal(&fresh, &cached);
    (
        visits,
        Comparison {
            ops: visits,
            baseline_s: fresh_t.as_secs_f64(),
            optimized_s: cached_t.as_secs_f64(),
        },
    )
}

/// The two timed campaigns must also be bit-identical — a benchmark that
/// compared different outputs would be measuring the wrong thing.
fn assert_campaigns_equal(a: &Campaign, b: &Campaign) {
    assert_eq!(a, b, "cached and fresh campaigns diverged");
}

/// Runs the whole suite.
pub fn run(config: BenchConfig) -> BenchReport {
    let world = bench_world(config.world_iters);
    let lookup = bench_lookup(config.lookup_iters);
    let (campaign_visits, campaign) = bench_campaign(&config);
    BenchReport {
        config,
        world,
        lookup,
        campaign_visits,
        campaign,
    }
}

fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

fn comparison_json(c: &Comparison, unit: &str) -> String {
    format!(
        concat!(
            "{{\"ops\": {}, \"unit\": \"{}\", \"baseline_s\": {}, \"optimized_s\": {}, ",
            "\"baseline_per_sec\": {}, \"optimized_per_sec\": {}, \"speedup\": {}}}"
        ),
        c.ops,
        unit,
        json_num(c.baseline_s),
        json_num(c.optimized_s),
        json_num(c.baseline_rate()),
        json_num(c.optimized_rate()),
        json_num(c.speedup()),
    )
}

impl BenchReport {
    /// Serializes the report (hand-rolled: the workspace vendors no JSON
    /// writer and the schema is three flat objects).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\n",
                "  \"benchmark\": \"hlisa campaign throughput (atoms/shapes/snapshots)\",\n",
                "  \"config\": {{\"world_iters\": {}, \"lookup_iters\": {}, ",
                "\"campaign_sites\": {}, \"visits_per_site\": {}}},\n",
                "  \"world_acquisition\": {},\n",
                "  \"property_lookup\": {},\n",
                "  \"campaign\": {}\n",
                "}}\n"
            ),
            self.config.world_iters,
            self.config.lookup_iters,
            self.config.campaign_sites,
            self.config.visits_per_site,
            comparison_json(&self.world, "worlds"),
            comparison_json(&self.lookup, "lookups"),
            comparison_json(&self.campaign, "visits"),
        )
    }

    /// Human-readable summary.
    pub fn render_human(&self) -> String {
        let row = |label: &str, c: &Comparison| {
            format!(
                "{label:<18} {:>12.0}/s -> {:>12.0}/s   ({:.1}x)\n",
                c.baseline_rate(),
                c.optimized_rate(),
                c.speedup()
            )
        };
        let mut out = String::from("campaign throughput benchmark (baseline -> optimized)\n");
        out.push_str(&row("world acquisition", &self.world));
        out.push_str(&row("property lookup", &self.lookup));
        out.push_str(&row("campaign visits", &self.campaign));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_report_is_well_formed() {
        let mut cfg = BenchConfig::smoke();
        // Keep the test fast; rates are not asserted here.
        cfg.world_iters = 2;
        cfg.lookup_iters = 10;
        cfg.campaign_sites = 10;
        cfg.visits_per_site = 2;
        let report = run(cfg);
        assert_eq!(report.campaign_visits, 2 * 10 * 2);
        let json = report.to_json();
        for field in [
            "\"world_acquisition\"",
            "\"property_lookup\"",
            "\"campaign\"",
            "\"speedup\"",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        let human = report.render_human();
        assert!(human.contains("campaign visits"));
    }

    #[test]
    fn comparison_rates_and_speedup() {
        let c = Comparison {
            ops: 100,
            baseline_s: 10.0,
            optimized_s: 2.0,
        };
        assert!((c.baseline_rate() - 10.0).abs() < 1e-9);
        assert!((c.optimized_rate() - 50.0).abs() < 1e-9);
        assert!((c.speedup() - 5.0).abs() < 1e-9);
    }
}
