//! Field-study regenerators: Table 2 and Figure 4 / Appendix B.

use hlisa_crawler::{analyze_http, run_campaign, screenshot_table, Campaign, CampaignConfig};
use hlisa_stats::ascii::{bar_chart, format_table};

/// Runs the paper-scale campaign (1,000 sites × 8 visits × 2 machines).
pub fn run_paper_scale() -> Campaign {
    run_campaign(&CampaignConfig::default())
}

/// Runs a smaller campaign for quick checks.
pub fn run_small(seed: u64, n_sites: usize) -> Campaign {
    let mut config = CampaignConfig {
        seed,
        ..CampaignConfig::default()
    };
    config.population.n_sites = n_sites;
    config.population.unreachable_sites = n_sites * 79 / 1_000;
    run_campaign(&config)
}

/// Formats Table 2 as in the paper.
pub fn table2_report(campaign: &Campaign) -> String {
    let t = screenshot_table(campaign);
    let mut out = String::from("Table 2: Results from the screenshot evaluation.\n\n");
    let header = [
        "Response",
        "sites (1)",
        "sites (2)",
        "visits (1)",
        "visits (2)",
    ];
    let rows: Vec<Vec<String>> = t
        .rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                r.sites.0.to_string(),
                r.sites.1.to_string(),
                r.visits.0.to_string(),
                r.visits.1.to_string(),
            ]
        })
        .collect();
    out.push_str(&format_table(&header, &rows));
    out.push_str("\n(1) = OpenWPM   (2) = OpenWPM+extension\n");
    if let (Some(total), Some(block)) = (t.row("total"), t.row("blocking/CAPTCHAs")) {
        let visible: usize = t
            .rows
            .iter()
            .filter(|r| r.label != "total" && !r.label.starts_with('-'))
            .map(|r| r.sites.0)
            .sum();
        out.push_str(&format!(
            "\nVisible signs of bot detection affect {} of {} reached sites ({:.1}%) for OpenWPM;\n\
             blocking persists on {} site(s) with the extension.\n",
            visible,
            total.sites.0,
            100.0 * visible as f64 / total.sites.0.max(1) as f64,
            block.sites.1,
        ));
    }
    out
}

/// Formats Figure 4 (status-code chart + Wilcoxon) as a terminal report.
pub fn figure4_report(campaign: &Campaign) -> String {
    let r = analyze_http(campaign);
    let mut out = String::from(
        "Figure 4: HTTP (error) responses listed by status code with more than 100 occurrences.\n\n",
    );
    for (name, counts) in [
        ("First-party", &r.first_party),
        ("Third-party", &r.third_party),
    ] {
        out.push_str(&format!("{name} responses (errors only):\n"));
        let rows: Vec<(String, u64)> = r
            .frequent_codes(counts, 100, true)
            .into_iter()
            .flat_map(|code| {
                let (a, b) = counts[&code];
                [
                    (format!("{code} OpenWPM    "), a),
                    (format!("{code} +extension "), b),
                ]
            })
            .collect();
        out.push_str(&bar_chart(&rows, 50));
        out.push('\n');
    }
    if let Some(w) = &r.wilcoxon_first_party {
        out.push_str(&format!(
            "Wilcoxon matched-pairs signed-rank on per-site first-party errors: W = {}, n = {}, p = {:.4} ({})\n",
            w.w,
            w.n_used,
            w.p_value,
            if w.significant_at(0.05) { "significant decrease" } else { "not significant" },
        ));
    }
    if let Some(w) = &r.wilcoxon_third_party {
        out.push_str(&format!(
            "Third-party errors: p = {:.3} ({})\n",
            w.p_value,
            if w.significant_at(0.05) {
                "significant"
            } else {
                "no notable difference"
            },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlisa_crawler::screenshot_table;

    #[test]
    fn small_campaign_shows_paper_shape() {
        let c = run_small(11, 250);
        let t = screenshot_table(&c);
        let block = t.row("blocking/CAPTCHAs").unwrap();
        assert!(block.sites.0 > block.sites.1);
        let report = table2_report(&c);
        assert!(report.contains("OpenWPM+extension"));
        let fig4 = figure4_report(&c);
        assert!(fig4.contains("Wilcoxon"));
    }

    #[test]
    fn reports_are_deterministic() {
        let a = table2_report(&run_small(3, 120));
        let b = table2_report(&run_small(3, 120));
        assert_eq!(a, b);
    }
}
