//! Core-scaling benchmark for the sharded campaign engine.
//!
//! Sweeps the worker count over a large lazily-sharded population and
//! emits `BENCH_parallel.json` with, per `instances` value:
//!
//! * visits/sec and elapsed wall time;
//! * speedup vs the 1-worker run, parallel efficiency
//!   (`speedup / instances`) and efficiency normalised to the physical
//!   core count (`speedup / min(instances, cores)` — oversubscribed
//!   workers beyond the cores can't speed anything up);
//! * the peak-RSS proxy: bytes of population materialised at once
//!   (`peak resident shards × shard bytes`), against the bytes an eager
//!   `generate_population` would pin for the whole campaign.
//!
//! A final `batch_plan` section runs the same campaign at the core-count
//! worker level with the batch interaction planner off and on: the two
//! outcome tables must be bit-identical (the plan draws from a forked
//! context), and the throughput delta is the cost of synthesising every
//! successful visit's full interaction plan at campaign pace.
//!
//! Every sweep entry must also produce identical per-shard summaries —
//! the benchmark doubles as a scale check of the bit-identical-for-any-
//! `instances` property on a population far larger than the test suite's.
//!
//! Timing here reads the *wall clock on purpose*: the benchmark measures
//! real elapsed cost, and its numbers feed a JSON report, never a
//! simulated observable, so the determinism fence does not apply. The
//! residency high-water mark is a measurement too: it records how much
//! thread overlap the OS actually scheduled, so like elapsed time it can
//! vary run to run — only its bound (`peak <= workers`) is guaranteed.

use hlisa_crawler::campaign::{
    run_machine, run_machine_planned, run_machine_shard_summaries, CampaignConfig,
};
use hlisa_web::{generate_population, sites_bytes, ClientKind, PopulationConfig, PopulationShards};
use std::time::Duration;

/// Benchmark sizing.
#[derive(Debug, Clone)]
pub struct ParallelBenchConfig {
    /// Sites in the campaign population.
    pub n_sites: usize,
    /// Visits per site (1 at scale: the sweep measures scheduling, not
    /// per-site repetition).
    pub visits_per_site: usize,
    /// Shard granularity for claiming and lazy materialisation.
    pub shard_size: usize,
    /// Worker counts to sweep (deduplicated, in order).
    pub instance_sweep: Vec<usize>,
}

/// Worker counts the sweep always probes, plus the machine's core count.
fn sweep_with_max() -> Vec<usize> {
    let cores = available_cores();
    let mut sweep = vec![1usize, 2, 4, 8, cores];
    sweep.sort_unstable();
    sweep.dedup();
    sweep
}

/// The machine's available parallelism (1 if undetectable).
pub fn available_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

impl ParallelBenchConfig {
    /// The default run: a 100K-site campaign.
    pub fn full() -> Self {
        Self {
            n_sites: 100_000,
            visits_per_site: 1,
            shard_size: 256,
            instance_sweep: sweep_with_max(),
        }
    }

    /// A seconds-scale smoke run for CI.
    pub fn smoke() -> Self {
        Self {
            n_sites: 2_000,
            visits_per_site: 1,
            shard_size: 128,
            instance_sweep: sweep_with_max(),
        }
    }
}

/// What one worker-count run measured.
#[derive(Debug, Clone)]
pub struct SweepEntry {
    /// Workers requested.
    pub instances: usize,
    /// Elapsed wall time.
    pub elapsed_s: f64,
    /// Visits completed per second.
    pub visits_per_sec: f64,
    /// Throughput ratio vs the 1-worker entry.
    pub speedup_vs_1: f64,
    /// `speedup / instances`.
    pub efficiency: f64,
    /// `speedup / min(instances, cores)` — what the hardware could give.
    pub efficiency_at_cores: f64,
    /// High-water mark of concurrently materialised shards.
    pub peak_resident_shards: usize,
    /// Peak-RSS proxy: peak resident shards × representative shard bytes.
    pub peak_materialised_bytes: usize,
}

/// Campaign throughput with the batch interaction planner off vs on, at
/// the core-count worker level. Planning synthesises every successful
/// visit's full interaction plan (cursor samples, key transitions, wheel
/// ticks) on top of the visit outcome, so the delta between the two rows
/// is the per-visit cost of full-session interaction synthesis at
/// campaign scale.
#[derive(Debug, Clone)]
pub struct PlanThroughput {
    /// Visits driven by each run.
    pub visits: u64,
    /// Elapsed seconds with planning off.
    pub off_s: f64,
    /// Elapsed seconds with planning on.
    pub on_s: f64,
    /// Planned actions across all successful visits.
    pub actions: u64,
    /// Planned cursor samples across all successful visits.
    pub samples: u64,
    /// Planned key transitions across all successful visits.
    pub keys: u64,
    /// Planned wheel ticks across all successful visits.
    pub ticks: u64,
}

impl PlanThroughput {
    /// Visits/sec with planning off.
    pub fn off_rate(&self) -> f64 {
        self.visits as f64 / self.off_s.max(1e-12)
    }

    /// Visits/sec with planning on.
    pub fn on_rate(&self) -> f64 {
        self.visits as f64 / self.on_s.max(1e-12)
    }

    /// Throughput retained with planning on (`on_rate / off_rate`).
    pub fn throughput_ratio(&self) -> f64 {
        self.on_rate() / self.off_rate().max(1e-12)
    }
}

/// One shard's folded results — tiny, so a 1M-site campaign keeps one of
/// these per shard instead of a `SiteResult` per site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ShardSummary {
    sites: usize,
    reached: usize,
    successes: usize,
    detected: usize,
}

/// The full benchmark result.
#[derive(Debug, Clone)]
pub struct ParallelBenchReport {
    /// Sizing used.
    pub config: ParallelBenchConfig,
    /// Physical parallelism of the benchmarking machine.
    pub cores: usize,
    /// Bytes an eager population pins for the whole campaign.
    pub eager_population_bytes: usize,
    /// Standing bytes of the lazy layer's bookkeeping.
    pub shard_bookkeeping_bytes: usize,
    /// Seconds to eagerly generate the whole population.
    pub eager_generation_s: f64,
    /// Seconds for the lazy layer's skeleton pass.
    pub shard_setup_s: f64,
    /// One entry per swept worker count.
    pub sweep: Vec<SweepEntry>,
    /// Efficiency of the entry whose `instances` equals the core count.
    pub efficiency_at_max_cores: f64,
    /// Campaign throughput with the batch interaction planner off vs on.
    pub batch_plan: PlanThroughput,
}

fn timed<R>(f: impl FnOnce() -> R) -> (Duration, R) {
    let start = std::time::Instant::now();
    let out = f();
    (start.elapsed(), out)
}

fn campaign_config(bench: &ParallelBenchConfig, instances: usize) -> CampaignConfig {
    CampaignConfig {
        seed: 42,
        population: PopulationConfig {
            n_sites: bench.n_sites,
            ..PopulationConfig::default()
        },
        visits_per_site: bench.visits_per_site,
        instances,
        world_cache: true,
        plan_interactions: false,
    }
}

/// Runs the whole sweep.
pub fn run(config: ParallelBenchConfig) -> ParallelBenchReport {
    let cores = available_cores();
    let population = PopulationConfig {
        n_sites: config.n_sites,
        ..PopulationConfig::default()
    };

    // The memory story: what the eager path pins vs what the lazy layer
    // keeps standing. The eager population is dropped before the sweep —
    // only the shard layer exists while workers run.
    let (eager_t, eager_bytes) = timed(|| {
        let sites = generate_population(&population);
        sites_bytes(&sites)
    });
    let (setup_t, shards) =
        timed(|| PopulationShards::with_shard_size(&population, config.shard_size));
    let shard_bytes = sites_bytes(&shards.generate_shard(0));

    let summarise = |_k: usize, results: Vec<hlisa_crawler::SiteResult>| ShardSummary {
        sites: results.len(),
        reached: results.iter().filter(|r| r.reached()).count(),
        successes: results.iter().map(|r| r.successful_visits()).sum(),
        detected: results
            .iter()
            .flat_map(|r| &r.outcomes)
            .filter(|o| o.detected)
            .count(),
    };

    let visits = (config.n_sites * config.visits_per_site) as f64;
    let mut reference: Option<Vec<ShardSummary>> = None;
    let mut raw: Vec<(usize, f64, usize)> = Vec::new();
    for &instances in &config.instance_sweep {
        // Fresh shard layer per entry so the residency high-water mark is
        // this run's, not the sweep's.
        let shards = PopulationShards::with_shard_size(&population, config.shard_size);
        let cfg = campaign_config(&config, instances);
        let (t, summaries) =
            timed(|| run_machine_shard_summaries(&cfg, &shards, ClientKind::OpenWpm, &summarise));
        // Scale check: every worker count folds to the same summaries.
        match &reference {
            None => reference = Some(summaries),
            Some(want) => assert_eq!(
                &summaries, want,
                "{instances}-worker run diverged from the 1-worker run"
            ),
        }
        raw.push((instances, t.as_secs_f64(), shards.peak_resident_shards()));
    }

    let base_s = raw.first().map_or(0.0, |(_, t, _)| *t);
    let sweep: Vec<SweepEntry> = raw
        .into_iter()
        .map(|(instances, elapsed_s, peak)| {
            let speedup = base_s / elapsed_s.max(1e-12);
            SweepEntry {
                instances,
                elapsed_s,
                visits_per_sec: visits / elapsed_s.max(1e-12),
                speedup_vs_1: speedup,
                efficiency: speedup / instances as f64,
                efficiency_at_cores: speedup / instances.min(cores).max(1) as f64,
                peak_resident_shards: peak,
                peak_materialised_bytes: peak * shard_bytes,
            }
        })
        .collect();

    let efficiency_at_max_cores = sweep
        .iter()
        .find(|e| e.instances == cores)
        .map_or(0.0, |e| e.efficiency);

    // Planner off vs on over the same campaign at the core-count worker
    // level. The outcome table must be bit-identical either way — the
    // plan draws from a forked context, never the visit stream.
    let sites = generate_population(&population);
    let plan_cfg = campaign_config(&config, cores);
    let (off_t, baseline_run) = timed(|| run_machine(&plan_cfg, &sites, ClientKind::OpenWpm));
    let (on_t, (planned_run, totals)) =
        timed(|| run_machine_planned(&plan_cfg, &sites, ClientKind::OpenWpm));
    assert_eq!(
        baseline_run, planned_run,
        "planned campaign diverged from the unplanned run"
    );
    let batch_plan = PlanThroughput {
        visits: (config.n_sites * config.visits_per_site) as u64,
        off_s: off_t.as_secs_f64(),
        on_s: on_t.as_secs_f64(),
        actions: totals.actions,
        samples: totals.samples,
        keys: totals.keys,
        ticks: totals.ticks,
    };

    ParallelBenchReport {
        config,
        cores,
        eager_population_bytes: eager_bytes,
        shard_bookkeeping_bytes: shards.bookkeeping_bytes(),
        eager_generation_s: eager_t.as_secs_f64(),
        shard_setup_s: setup_t.as_secs_f64(),
        sweep,
        efficiency_at_max_cores,
        batch_plan,
    }
}

fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

impl ParallelBenchReport {
    /// Serializes the report (hand-rolled: the workspace vendors no JSON
    /// writer and the schema is one flat object plus a sweep array).
    pub fn to_json(&self) -> String {
        let sweep_rows: Vec<String> = self
            .sweep
            .iter()
            .map(|e| {
                format!(
                    concat!(
                        "    {{\"instances\": {}, \"elapsed_s\": {}, ",
                        "\"visits_per_sec\": {}, \"speedup_vs_1\": {}, ",
                        "\"efficiency\": {}, \"efficiency_at_cores\": {}, ",
                        "\"peak_resident_shards\": {}, \"peak_materialised_bytes\": {}}}"
                    ),
                    e.instances,
                    json_num(e.elapsed_s),
                    json_num(e.visits_per_sec),
                    json_num(e.speedup_vs_1),
                    json_num(e.efficiency),
                    json_num(e.efficiency_at_cores),
                    e.peak_resident_shards,
                    e.peak_materialised_bytes,
                )
            })
            .collect();
        format!(
            concat!(
                "{{\n",
                "  \"benchmark\": \"hlisa parallel campaign scaling (lazy shards + claiming workers)\",\n",
                "  \"config\": {{\"n_sites\": {}, \"visits_per_site\": {}, \"shard_size\": {}}},\n",
                "  \"cores\": {},\n",
                "  \"population\": {{\"eager_bytes\": {}, \"shard_bookkeeping_bytes\": {}, ",
                "\"eager_generation_s\": {}, \"shard_setup_s\": {}}},\n",
                "  \"sweep\": [\n{}\n  ],\n",
                "  \"parallel_efficiency_at_max_cores\": {},\n",
                "  \"batch_plan\": {{\"visits\": {}, \"plan_off_s\": {}, \"plan_on_s\": {}, ",
                "\"plan_off_visits_per_sec\": {}, \"plan_on_visits_per_sec\": {}, ",
                "\"throughput_ratio\": {}, \"actions\": {}, \"samples\": {}, ",
                "\"keys\": {}, \"ticks\": {}}}\n",
                "}}\n"
            ),
            self.config.n_sites,
            self.config.visits_per_site,
            self.config.shard_size,
            self.cores,
            self.eager_population_bytes,
            self.shard_bookkeeping_bytes,
            json_num(self.eager_generation_s),
            json_num(self.shard_setup_s),
            sweep_rows.join(",\n"),
            json_num(self.efficiency_at_max_cores),
            self.batch_plan.visits,
            json_num(self.batch_plan.off_s),
            json_num(self.batch_plan.on_s),
            json_num(self.batch_plan.off_rate()),
            json_num(self.batch_plan.on_rate()),
            json_num(self.batch_plan.throughput_ratio()),
            self.batch_plan.actions,
            self.batch_plan.samples,
            self.batch_plan.keys,
            self.batch_plan.ticks,
        )
    }

    /// Human-readable summary.
    pub fn render_human(&self) -> String {
        let mut out = format!(
            concat!(
                "parallel campaign scaling ({} sites, shard {}, {} core(s))\n",
                "population: eager {} KiB pinned vs {} KiB shard bookkeeping\n"
            ),
            self.config.n_sites,
            self.config.shard_size,
            self.cores,
            self.eager_population_bytes / 1024,
            self.shard_bookkeeping_bytes / 1024,
        );
        for e in &self.sweep {
            out.push_str(&format!(
                concat!(
                    "  instances {:>3}: {:>10.0} visits/s  speedup {:>5.2}x  ",
                    "eff {:>5.2}  eff@cores {:>5.2}  peak {} shard(s) ({} KiB)\n"
                ),
                e.instances,
                e.visits_per_sec,
                e.speedup_vs_1,
                e.efficiency,
                e.efficiency_at_cores,
                e.peak_resident_shards,
                e.peak_materialised_bytes / 1024,
            ));
        }
        out.push_str(&format!(
            "efficiency at max cores: {:.2}\n",
            self.efficiency_at_max_cores
        ));
        out.push_str(&format!(
            concat!(
                "batch planner: {:.0} visits/s off -> {:.0} visits/s on ",
                "({:.0}% retained; {} actions, {} samples planned)\n"
            ),
            self.batch_plan.off_rate(),
            self.batch_plan.on_rate(),
            self.batch_plan.throughput_ratio() * 100.0,
            self.batch_plan.actions,
            self.batch_plan.samples,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_report_is_well_formed_and_efficient_at_max_cores() {
        let cfg = ParallelBenchConfig {
            n_sites: 300,
            visits_per_site: 1,
            shard_size: 32,
            instance_sweep: vec![1, 2, available_cores()],
        };
        let report = run(cfg);
        assert_eq!(report.sweep.len(), {
            let mut s = vec![1, 2, available_cores()];
            s.dedup();
            s.len()
        });
        // The 1-worker entry is its own baseline.
        let first = &report.sweep[0];
        assert!((first.speedup_vs_1 - 1.0).abs() < 1e-9);
        assert!((first.efficiency - 1.0).abs() < 1e-9);
        // Laziness: no run ever materialised more shards than workers.
        for e in &report.sweep {
            assert!(
                e.peak_resident_shards <= e.instances,
                "instances {}: {} shards resident",
                e.instances,
                e.peak_resident_shards
            );
            assert!(e.peak_resident_shards >= 1);
            assert!(e.peak_materialised_bytes < report.eager_population_bytes);
        }
        // The planner drove real visits and synthesised real interaction.
        assert!(report.batch_plan.actions > 0);
        assert!(report.batch_plan.samples > report.batch_plan.actions);
        let json = report.to_json();
        for field in [
            "\"sweep\"",
            "\"parallel_efficiency_at_max_cores\"",
            "\"peak_resident_shards\"",
            "\"eager_bytes\"",
            "\"batch_plan\"",
            "\"throughput_ratio\"",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        let human = report.render_human();
        assert!(human.contains("efficiency at max cores"));
        assert!(human.contains("batch planner"));
    }
}
