//! Static-detectability report: the Fig. 3 simulator ladder judged by
//! the `hlisa-lint` chain linter instead of the runtime detectors.
//!
//! Where Figure 3 measures detection *rates* over recorded traces, this
//! table shows which Table 1 tells are decidable from the interaction
//! program alone — before a single event reaches a page. The split is
//! the same: rules pile up on the lower rungs and vanish at HLISA.

use hlisa_armsrace::{lint_simulator, Simulator};
use hlisa_lint::Report;
use hlisa_stats::ascii::format_table;

/// One ladder rung's static verdict.
#[derive(Debug, Clone)]
pub struct RungLint {
    /// Fig. 3 rung label.
    pub label: &'static str,
    /// The linter's report, or `None` for human reference rows.
    pub report: Option<Report>,
}

/// Lints every scriptable rung (plus the human row for contrast).
pub fn run(seed: u64) -> Vec<RungLint> {
    [
        Simulator::Selenium,
        Simulator::Naive,
        Simulator::Hlisa,
        Simulator::ConsistentHlisa,
        Simulator::Human,
    ]
    .iter()
    .map(|sim| RungLint {
        label: sim.label(),
        report: lint_simulator(sim, seed),
    })
    .collect()
}

/// Renders the rung × findings table.
pub fn report(rungs: &[RungLint]) -> String {
    let mut out = String::from(
        "Static detectability by simulator rung (hlisa-lint chain linter).\n\
         Rules fired while replaying the three Appendix E tasks symbolically.\n\n",
    );
    let rows: Vec<Vec<String>> = rungs
        .iter()
        .map(|r| {
            let verdict = match &r.report {
                None => "(no action program: human input)".to_string(),
                Some(rep) if rep.is_clean() => "clean".to_string(),
                Some(rep) => rep.rule_ids().join(", "),
            };
            let count = match &r.report {
                None => "-".to_string(),
                Some(rep) => rep.rule_ids().len().to_string(),
            };
            vec![r.label.to_string(), count, verdict]
        })
        .collect();
    out.push_str(&format_table(&["Simulator", "Rules", "Findings"], &rows));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_static_split_holds() {
        let rungs = run(5);
        let by_label: Vec<(&str, Option<usize>)> = rungs
            .iter()
            .map(|r| (r.label, r.report.as_ref().map(|rep| rep.rule_ids().len())))
            .collect();
        for (label, rules) in &by_label {
            match *rules {
                Some(n) if label.contains("Selenium") || label.contains("naive") => {
                    assert!(n >= 3, "{label}: {n} rules")
                }
                Some(n) if label.contains("HLISA") => assert_eq!(n, 0, "{label} flagged"),
                Some(_) => {}
                None => assert!(label.contains("Human"), "{label} should be lintable"),
            }
        }
    }

    #[test]
    fn the_table_renders_every_rung() {
        let rungs = run(5);
        let text = report(&rungs);
        for r in &rungs {
            assert!(text.contains(r.label), "missing {}", r.label);
        }
        assert!(text.contains("clean"));
    }
}
