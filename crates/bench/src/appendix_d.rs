//! Appendix C/D regenerator: the event catalogue, the covering set, and
//! the granularity measurements (1 ms key events, 600 ms Selenium
//! double-click interval, 57 px wheel tick, coarse mousemove cadence).

use hlisa_browser::dom::standard_test_page;
use hlisa_browser::events::{CoverageCategory, EventTarget, COVERING_SET, EVENT_CATALOG};
use hlisa_browser::viewport::WHEEL_TICK_PX;
use hlisa_browser::{Browser, BrowserConfig, EventKind, RawInput};
use hlisa_stats::ascii::format_table;

/// Measured granularity facts.
#[derive(Debug, Clone, PartialEq)]
pub struct GranularityReport {
    /// Catalogue size (Appendix C).
    pub catalog_size: usize,
    /// Covering-set size (Appendix D).
    pub covering_set_size: usize,
    /// Distinct interaction categories covered.
    pub categories: usize,
    /// Page-observable key-event granularity (ms).
    pub key_granularity_ms: f64,
    /// Double-click interval under the Selenium environment (ms).
    pub selenium_double_click_ms: f64,
    /// Double-click interval on stock Windows-like defaults (ms).
    pub default_double_click_ms: f64,
    /// Wheel tick distance (px).
    pub wheel_tick_px: f64,
    /// `mousemove` events dispatched for 100 raw 1 ms pointer samples
    /// (shows the event API is "too coarse to register every detail").
    pub mousemove_events_per_100_samples: usize,
}

/// Runs the measurements.
pub fn run() -> GranularityReport {
    // Key granularity: timestamps are whole milliseconds.
    let mut b = Browser::open(
        BrowserConfig::regular(),
        standard_test_page("https://appendixd.test/", 5_000.0),
    );
    b.advance(10.123);
    b.input(RawInput::KeyDown { key: "a".into() });
    let t = b.recorder.events().last().unwrap().timestamp_ms;
    let key_granularity_ms = if t == t.floor() { 1.0 } else { t - t.floor() };

    // Mousemove coalescing.
    let mut b = Browser::open(
        BrowserConfig::regular(),
        standard_test_page("https://appendixd.test/", 5_000.0),
    );
    for i in 0..100 {
        b.input_after(
            1.0,
            RawInput::MouseMove {
                x: f64::from(i),
                y: 0.0,
            },
        );
    }
    let mousemove_events = b.recorder.of_kind(EventKind::MouseMove).len();

    GranularityReport {
        catalog_size: EVENT_CATALOG.len(),
        covering_set_size: COVERING_SET.len(),
        categories: {
            let mut cats: Vec<CoverageCategory> = COVERING_SET.iter().map(|(_, c)| *c).collect();
            cats.sort_by_key(|c| *c as usize);
            cats.dedup();
            cats.len()
        },
        key_granularity_ms,
        selenium_double_click_ms: BrowserConfig::webdriver().double_click_interval_ms,
        default_double_click_ms: BrowserConfig::regular().double_click_interval_ms,
        wheel_tick_px: WHEEL_TICK_PX,
        mousemove_events_per_100_samples: mousemove_events,
    }
}

/// Formats the Appendix C/D report.
pub fn report(r: &GranularityReport) -> String {
    let mut out = String::from("Appendix C/D: interaction events and measurement granularity.\n\n");

    out.push_str(&format!(
        "Event catalogue: {} interaction-related events ({} document, {} element, {} window).\n",
        r.catalog_size,
        EVENT_CATALOG
            .iter()
            .filter(|e| e.target == EventTarget::Document)
            .count(),
        EVENT_CATALOG
            .iter()
            .filter(|e| e.target == EventTarget::Element)
            .count(),
        EVENT_CATALOG
            .iter()
            .filter(|e| e.target == EventTarget::Window)
            .count(),
    ));
    out.push_str(&format!(
        "Covering set: {} events over {} interaction categories.\n\n",
        r.covering_set_size, r.categories,
    ));

    let header = ["Measurement", "Value", "Paper"];
    let rows = vec![
        vec![
            "Key event granularity".to_string(),
            format!("{} ms", r.key_granularity_ms),
            "1 ms".to_string(),
        ],
        vec![
            "Double-click interval (Selenium env)".to_string(),
            format!("{} ms", r.selenium_double_click_ms),
            "600 ms".to_string(),
        ],
        vec![
            "Double-click interval (Windows default)".to_string(),
            format!("{} ms", r.default_double_click_ms),
            "500 ms".to_string(),
        ],
        vec![
            "Wheel tick distance".to_string(),
            format!("{} px", r.wheel_tick_px),
            "57 px".to_string(),
        ],
        vec![
            "mousemove events per 100 × 1 ms samples".to_string(),
            format!("{}", r.mousemove_events_per_100_samples),
            "coarse (frame-coalesced)".to_string(),
        ],
    ];
    out.push_str(&format_table(&header, &rows));

    out.push_str("\nCovering set (Appendix D):\n");
    for (name, cat) in COVERING_SET {
        out.push_str(&format!("  {name:<18} {cat:?}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurements_match_the_paper() {
        let r = run();
        assert_eq!(r.catalog_size, 54);
        assert_eq!(r.key_granularity_ms, 1.0);
        assert_eq!(r.selenium_double_click_ms, 600.0);
        assert_eq!(r.default_double_click_ms, 500.0);
        assert_eq!(r.wheel_tick_px, 57.0);
        assert!(r.mousemove_events_per_100_samples < 20);
        assert_eq!(r.categories, 6);
    }

    #[test]
    fn report_renders() {
        let s = report(&run());
        assert!(s.contains("57 px"));
        assert!(s.contains("mousemove"));
        assert!(s.contains("600 ms"));
    }
}
